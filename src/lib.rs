//! # Unified Spatial Join
//!
//! A from-scratch Rust reproduction of *"A Unified Approach for Indexed and
//! Non-Indexed Spatial Joins"* (Arge, Procopiuc, Ramaswamy, Suel, Vahrenhold,
//! Vitter — EDBT 2000).
//!
//! This facade crate re-exports the workspace crates so downstream users can
//! depend on a single package:
//!
//! * [`geom`] — rectangles, points, intervals, Hilbert curve.
//! * [`io`] — the simulated external-memory substrate: block device with
//!   sequential/random I/O accounting, LRU buffer pool, record streams,
//!   external multiway mergesort, and the three machine cost models from
//!   Table 1 of the paper.
//! * [`rtree`] — packed, Hilbert bulk-loaded R-trees stored on the simulated
//!   disk.
//! * [`sweep`] — the `Forward-Sweep` and `Striped-Sweep` interval structures
//!   and the plane-sweep join driver.
//! * [`datagen`] — TIGER-like synthetic workloads matching Table 2.
//! * [`join`] — the four spatial-join algorithms (SSSJ, PBSM, ST and the
//!   paper's new PQ join), the multi-way extension, the cost model that
//!   decides between indexed and non-indexed execution, and the parallel
//!   partitioned executor that shards any of them across a worker pool.
//! * [`live`] — LSM-style live ingestion (memtable → sorted delta runs →
//!   merge compaction, with generation snapshots) and the symmetric
//!   streaming join that emits pairs while its inputs are still being
//!   scanned.
//! * [`service`] — the register-once/query-many layer: a dataset
//!   [`Catalog`](prelude::Catalog) persisting sorted runs, R-trees and
//!   histogram summaries on the device, and a concurrent
//!   [`Service`](prelude::Service) admitting join and window/point selection
//!   queries against a shared memory budget with gauge-based admission
//!   control and a plan cache.
//!
//! ## Quickstart
//!
//! Joins are described with the [`SpatialQuery`](prelude::SpatialQuery)
//! builder: pick an algorithm (or let the paper's §6.3 cost model pick),
//! a predicate, and an execution strategy, then stream the result pairs
//! into any sink.
//!
//! ```
//! use unified_spatial_join::prelude::*;
//!
//! // Generate a small TIGER-like workload.
//! let workload = WorkloadSpec::preset(Preset::NJ).with_scale(200).generate(42);
//!
//! // Build the simulated machine and an R-tree over each relation.
//! let machine = MachineConfig::machine3();
//! let mut env = SimEnv::new(machine);
//! let roads_tree = RTree::bulk_load(&mut env, &workload.roads).unwrap();
//! let hydro_tree = RTree::bulk_load(&mut env, &workload.hydro).unwrap();
//!
//! // Describe and run the join; Algo::Auto routes through the cost model,
//! // Algo::Pq forces the paper's unified algorithm.
//! let result = SpatialQuery::new(
//!         JoinInput::Indexed(&roads_tree),
//!         JoinInput::Indexed(&hydro_tree),
//!     )
//!     .algorithm(Algo::Pq)
//!     .run(&mut env)
//!     .unwrap();
//! assert!(result.pairs > 0);
//! ```

pub use usj_core as join;
pub use usj_datagen as datagen;
pub use usj_geom as geom;
pub use usj_io as io;
pub use usj_live as live;
pub use usj_obs as obs;
pub use usj_rtree as rtree;
pub use usj_service as service;
pub use usj_sweep as sweep;

/// Commonly used items, re-exported for convenience.
///
/// The pre-0.2 `SpatialJoin` shim trait (deprecated in 0.2.0) has been
/// removed; drive joins through [`JoinOperator`](usj_core::JoinOperator)
/// (plain closures implement `PairSink`) or the
/// [`SpatialQuery`](usj_core::SpatialQuery) builder.
pub mod prelude {
    pub use usj_core::{
        cost::{CostBasedJoin, CostEstimate, JoinPlan},
        parallel::{HilbertPartitioner, ParallelJoin, Partitioner, ShardMap, TilePartitioner},
        pbsm::PbsmJoin,
        pq::PqJoin,
        query::{Algo, Execution, MemoryPlan, PartitionStrategy, QueryPlan, SpatialQuery},
        sssj::SssjJoin,
        st::StJoin,
        CatalogedInput, CollectSink, CountSink, FanoutSink, GridHistogram, JoinAlgorithm,
        JoinInput, JoinOperator, JoinResult, LimitSink, MemoryStats, MultiwayJoin, PairSink,
        Predicate, SampleSink, TripleSink,
    };
    pub use usj_datagen::{Preset, Workload, WorkloadSpec};
    pub use usj_geom::{Interval, Point, Rect};
    pub use usj_io::{machine::MachineConfig, sim::SimEnv, stats::IoStats};
    pub use usj_live::{LiveCatalog, LiveConfig, LiveDataset, LiveSnapshot, StreamingJoin};
    pub use usj_obs::{
        ChromeTrace, HostClock, LogHistogram, MetricsSnapshot, QueryTrace, VirtualClock,
    };
    pub use usj_rtree::{NodeStore, RTree};
    pub use usj_service::{
        CancelToken, Catalog, Dataset, DatasetId, JoinSpec, PlanCache, QueryKind, QueryOutcome,
        QueryRequest, QueryStats, QueryStatus, Service, ServiceConfig, ServiceReport,
        ServiceStats, Session,
    };
    pub use usj_sweep::{
        EagerStripedSweep, ForwardSweep, ListSweep, StripedSweep, SweepScratch, SweepStructure,
    };
}
