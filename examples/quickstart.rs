//! Quickstart: generate a TIGER-like workload, build R-trees on the simulated
//! disk and run the paper's PQ join through the `SpatialQuery` builder.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use unified_spatial_join::prelude::*;

fn main() {
    // 1. Generate a small New-Jersey-like workload (roads + hydrography MBRs).
    let workload = WorkloadSpec::preset(Preset::NJ).with_scale(100).generate(42);
    println!(
        "workload {}: {} road MBRs, {} hydrography MBRs",
        workload.name,
        workload.roads.len(),
        workload.hydro.len()
    );

    // 2. Create the simulated machine (DEC Alpha 500 / Cheetah, Table 1) and
    //    bulk load both relations into packed R-trees.
    let mut env = SimEnv::new(MachineConfig::machine3());
    let roads_tree = RTree::bulk_load(&mut env, &workload.roads).expect("bulk load roads");
    let hydro_tree = RTree::bulk_load(&mut env, &workload.hydro).expect("bulk load hydro");
    println!(
        "indexes: roads {} nodes ({} levels), hydro {} nodes",
        roads_tree.nodes(),
        roads_tree.height(),
        hydro_tree.nodes()
    );
    env.device.reset_stats();

    // 3. Describe the join once and run it. `Algo::Pq` forces the paper's
    //    Priority-Queue-Driven Traversal; `Algo::Auto` would let the §6.3
    //    cost model decide.
    let query = SpatialQuery::new(
        JoinInput::Indexed(&roads_tree),
        JoinInput::Indexed(&hydro_tree),
    )
    .algorithm(Algo::Pq);
    let result = query.run(&mut env).expect("PQ join");

    // 4. Report what the paper's tables report.
    println!("\nPQ join results");
    println!("  intersecting pairs      : {}", result.pairs);
    println!(
        "  index page requests     : {} (lower bound {})",
        result.index_page_requests,
        roads_tree.nodes() + hydro_tree.nodes()
    );
    println!(
        "  priority queue memory   : {:.3} MB",
        result.memory.priority_queue_bytes as f64 / (1024.0 * 1024.0)
    );
    println!(
        "  sweep structure memory  : {:.3} MB",
        result.memory.sweep_structure_bytes as f64 / (1024.0 * 1024.0)
    );
    let cost = result.observed_cost(&env.machine);
    println!(
        "  simulated time          : {:.2} s CPU + {:.2} s I/O = {:.2} s",
        cost.cpu_secs,
        cost.io_secs,
        cost.total_secs()
    );
}
