//! Multi-way joins with PQ: because PQ produces its output in sweep order, a
//! 3-way intersection join can cascade two sweeps without re-sorting the
//! intermediate result (Section 4 of the paper).
//!
//! The scenario: find (road, hydrography, administrative-zone) triples whose
//! MBRs mutually overlap — e.g. every river/road crossing inside a flood
//! zone.
//!
//! ```text
//! cargo run --release --example multiway_join
//! ```

use unified_spatial_join::datagen::generator::{GeneratorConfig, TigerLikeGenerator};
use unified_spatial_join::io::ItemStream;
use unified_spatial_join::prelude::*;

fn main() {
    // Roads and hydrography from the standard generator.
    let workload = WorkloadSpec::preset(Preset::NJ).with_scale(200).generate(42);

    // A third relation: coarse administrative "zones" covering parts of the
    // region (generated as large lake-like boxes).
    let mut gen = TigerLikeGenerator::new(
        7,
        workload.region,
        workload.roads.len() as u64,
        GeneratorConfig::default(),
    );
    let zones = gen.hydro(workload.hydro.len() as u64 / 4, 0x6000_0000);

    let mut env = SimEnv::new(MachineConfig::machine3());
    let (roads_tree, hydro_tree, zones_stream) = env.unaccounted(|env| {
        (
            RTree::bulk_load(env, &workload.roads).unwrap(),
            RTree::bulk_load(env, &workload.hydro).unwrap(),
            ItemStream::from_items(env, &zones).unwrap(),
        )
    });
    env.device.reset_stats();

    println!(
        "inputs: {} roads (indexed), {} hydro (indexed), {} zones (non-indexed stream)",
        workload.roads.len(),
        workload.hydro.len(),
        zones.len()
    );

    let mut sample = Vec::new();
    let result = MultiwayJoin
        .run_with(
            &mut env,
            JoinInput::Indexed(&roads_tree),
            JoinInput::Indexed(&hydro_tree),
            JoinInput::Stream(&zones_stream),
            &mut |road: u32, hydro: u32, zone: u32| {
                if sample.len() < 5 {
                    sample.push((road, hydro, zone));
                }
            },
        )
        .expect("3-way join");

    println!("\n3-way join (roads ⋈ hydro) ⋈ zones");
    println!("  intermediate road-hydro pairs : {}", result.intermediate_pairs);
    println!("  final triples                 : {}", result.triples);
    println!("  index page requests           : {}", result.index_page_requests);
    println!(
        "  working memory                : {:.3} MB",
        result.memory.total_bytes() as f64 / (1024.0 * 1024.0)
    );
    println!("  first triples                 : {sample:?}");
}
