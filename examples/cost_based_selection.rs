//! The Section 6.3 scenario: joining a *localized* relation (hydrography of
//! one "state") against a country-wide relation (all roads). `Algo::Auto`
//! decides whether to traverse the indexes or to ignore them and sort — the
//! paper's point being that "index available" does not imply "index fastest".
//!
//! ```text
//! cargo run --release --example cost_based_selection
//! ```

use unified_spatial_join::geom::Rect;
use unified_spatial_join::join::cost::crossover_fraction;
use unified_spatial_join::prelude::*;

fn main() {
    let workload = WorkloadSpec::preset(Preset::Disk1).with_scale(200).generate(7);
    let region = workload.region;
    println!(
        "country-wide roads: {} MBRs; machine 3 crossover fraction: {:.2}",
        workload.roads.len(),
        crossover_fraction(&MachineConfig::machine3())
    );
    println!(
        "\n{:>10} {:>10} {:>12} {:>14} {:>14} {:>12}",
        "window", "hydro", "touched frac", "est indexed s", "est sorted s", "chosen plan"
    );

    for window_frac in [1.0f32, 0.5, 0.25, 0.1, 0.02] {
        // Clip the hydrography to a corner window covering `window_frac` of
        // the country's area — the "Minnesota vs the whole US" situation.
        let side = region.width() * window_frac.sqrt();
        let window = Rect::from_coords(
            region.lo.x,
            region.lo.y,
            region.lo.x + side,
            region.lo.y + side,
        );
        let local_hydro: Vec<_> = workload
            .hydro
            .iter()
            .copied()
            .filter(|it| window.contains(&it.rect))
            .collect();

        let mut env = SimEnv::new(MachineConfig::machine3());
        let (roads_tree, hydro_tree) = env.unaccounted(|env| {
            (
                RTree::bulk_load(env, &workload.roads).unwrap(),
                RTree::bulk_load(env, &local_hydro).unwrap(),
            )
        });
        env.device.reset_stats();

        // The builder lowers Algo::Auto to an inspectable plan (which
        // strategy, and why) and then executes it.
        let query = SpatialQuery::new(
            JoinInput::Indexed(&roads_tree),
            JoinInput::Indexed(&hydro_tree),
        )
        .algorithm(Algo::Auto);
        let plan = query.plan(&mut env).expect("query plan");
        let estimate = plan.cost.expect("auto plans carry the estimate");
        // `run_planned` reuses the plan instead of re-pricing the estimate.
        let result = query.run_planned(&mut env, &plan).expect("cost-based join");
        println!(
            "{:>9.0}% {:>10} {:>12.2} {:>14.2} {:>14.2} {:>12}",
            window_frac * 100.0,
            local_hydro.len(),
            estimate.touched_fraction,
            estimate.indexed_secs,
            estimate.non_indexed_secs,
            format!("{:?} ({} pairs)", plan.chosen.expect("auto plan"), result.pairs)
        );
    }
    println!("\n(Small windows touch a small fraction of the road index, so the indexed plan wins; country-wide joins fall back to the sort-based SSSJ.)");
}
