//! Compare all four join algorithms (SSSJ, PBSM, PQ, ST) on one TIGER-like
//! data set and all three simulated machines — a miniature Figure 3, driven
//! through the `SpatialQuery` builder.
//!
//! ```text
//! cargo run --release --example tiger_comparison [scale]
//! ```

use unified_spatial_join::io::ItemStream;
use unified_spatial_join::join::JoinAlgorithm;
use unified_spatial_join::prelude::*;

fn main() {
    let scale: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let spec = WorkloadSpec::preset(Preset::NY).with_scale(scale);
    let workload = spec.generate(42);
    println!(
        "data set {} at scale 1/{}: {} roads, {} hydro",
        workload.name,
        scale,
        workload.roads.len(),
        workload.hydro.len()
    );

    for machine in MachineConfig::all() {
        println!(
            "\n{} — {} / {} ({} ms avg read, {} MB/s)",
            machine.name, machine.workstation, machine.disk, machine.avg_read_ms, machine.peak_mbps
        );
        println!(
            "  {:<6} {:>12} {:>12} {:>12} {:>12} {:>14}",
            "alg", "pairs", "cpu (s)", "io (s)", "total (s)", "page requests"
        );
        for alg in JoinAlgorithm::all() {
            // Fresh environment per run so the measurements are independent.
            let mut env = SimEnv::new(machine.clone());
            let (roads_tree, hydro_tree, roads_stream, hydro_stream) = env.unaccounted(|env| {
                (
                    RTree::bulk_load(env, &workload.roads).unwrap(),
                    RTree::bulk_load(env, &workload.hydro).unwrap(),
                    ItemStream::from_items(env, &workload.roads).unwrap(),
                    ItemStream::from_items(env, &workload.hydro).unwrap(),
                )
            });
            env.device.reset_stats();
            // Each algorithm gets its natural input representation, then the
            // builder does the dispatch.
            let (left, right) = match alg {
                JoinAlgorithm::Pq | JoinAlgorithm::St => (
                    JoinInput::Indexed(&roads_tree),
                    JoinInput::Indexed(&hydro_tree),
                ),
                _ => (
                    JoinInput::Stream(&roads_stream),
                    JoinInput::Stream(&hydro_stream),
                ),
            };
            let result = SpatialQuery::new(left, right)
                .algorithm(alg.into())
                .run(&mut env)
                .unwrap();
            let cost = result.observed_cost(&machine);
            println!(
                "  {:<6} {:>12} {:>12.2} {:>12.2} {:>12.2} {:>14}",
                alg.short_name(),
                result.pairs,
                cost.cpu_secs,
                cost.io_secs,
                cost.total_secs(),
                result.index_page_requests
            );
        }
    }
    println!("\n(The shape to look for: SSSJ/PBSM do more I/O but sequentially; PQ touches each index page exactly once; ST depends on its buffer pool.)");
}
