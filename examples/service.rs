//! Register-once / query-many: the dataset catalog and the concurrent
//! query service.
//!
//! ```text
//! cargo run --release --example service
//! ```
//!
//! The example registers the NJ workload's two relations in a [`Catalog`]
//! (paying the sort + bulk-load + histogram preparation exactly once),
//! shows the per-query saving against uncataloged inputs, then stands up a
//! [`Service`] and pushes a mixed batch of join and window/point selection
//! queries through it under a 16 MB shared memory budget.

use unified_spatial_join::prelude::*;

fn main() {
    let machine = MachineConfig::machine3();
    let workload = WorkloadSpec::preset(Preset::NJ).with_scale(400).generate(42);
    let region = workload.region;

    // ---- Register once -------------------------------------------------
    let mut env = SimEnv::new(machine);
    let mut catalog = Catalog::new();
    let m = env.begin();
    let roads = catalog.register(&mut env, "roads", &workload.roads).unwrap();
    let hydro = catalog.register(&mut env, "hydro", &workload.hydro).unwrap();
    let (reg_io, _) = env.since(&m);
    println!(
        "registered {} + {} objects: {} pages written once (sorted runs + R-trees)",
        workload.roads.len(),
        workload.hydro.len(),
        reg_io.pages_written
    );

    // ---- The per-query saving ------------------------------------------
    // The same ST join, uncataloged (bulk-loads throwaway trees) vs
    // cataloged (reads the persisted ones).
    let mut scratch = SimEnv::new(MachineConfig::machine3());
    let (rs, hs) = scratch.unaccounted(|env| {
        (
            unified_spatial_join::io::ItemStream::from_items(env, &workload.roads).unwrap(),
            unified_spatial_join::io::ItemStream::from_items(env, &workload.hydro).unwrap(),
        )
    });
    let uncat = StJoin::default()
        .run(&mut scratch, JoinInput::Stream(&rs), JoinInput::Stream(&hs))
        .unwrap();
    let cat = StJoin::default()
        .run(
            &mut env,
            catalog.get(roads).unwrap().input(),
            catalog.get(hydro).unwrap().input(),
        )
        .unwrap();
    assert_eq!(cat.pairs, uncat.pairs);
    println!(
        "ST join ({} pairs): uncataloged {} pages charged, cataloged {} — the index build is gone",
        cat.pairs,
        uncat.io.pages_read + uncat.io.pages_written,
        cat.io.pages_read + cat.io.pages_written,
    );

    // ---- Query many, concurrently --------------------------------------
    let service = Service::new(
        env,
        catalog,
        ServiceConfig::default()
            .with_workers(4)
            .with_memory_limit(16 * 1024 * 1024),
    );
    let window = Rect::from_coords(
        region.lo.x,
        region.lo.y,
        region.lo.x + region.width() * 0.4,
        region.lo.y + region.height() * 0.4,
    );
    let mut requests = vec![
        // A heavy, high-priority analytical join...
        QueryRequest::join(roads, hydro)
            .with_algorithm(Algo::St)
            .with_memory_budget(12 * 1024 * 1024)
            .with_priority(3),
    ];
    for _ in 0..3 {
        // ...repeat Auto joins (the 2nd and 3rd hit the plan cache)...
        requests.push(QueryRequest::join(roads, hydro).with_memory_budget(6 * 1024 * 1024));
    }
    // ...an ε-distance join, a LIMITed selection, and a point lookup.
    requests.push(
        QueryRequest::join(roads, hydro)
            .with_algorithm(Algo::Pq)
            .with_predicate(Predicate::WithinDistance(0.001))
            .with_memory_budget(6 * 1024 * 1024),
    );
    requests.push(QueryRequest::window(roads, window).with_limit(25).collecting());
    requests.push(QueryRequest::point(roads, region.center()).collecting());

    let report = service.run(requests);
    println!("\nservice batch: {}", report.stats);
    for outcome in &report.outcomes {
        let result = outcome.result().expect("all queries complete");
        println!(
            "  query {}: {:>8} pairs, {:>5} pages read, peak {:>7} B of {:>8} B granted, \
             waited {:?}, deferred {}x",
            outcome.request,
            result.pairs,
            result.io.pages_read,
            result.memory.peak_bytes,
            outcome.stats.admitted_bytes,
            outcome.stats.queue_wait,
            outcome.stats.deferrals,
        );
    }
    assert_eq!(report.stats.completed, report.stats.submitted);
    assert!(report.stats.plan_cache_hits >= 2, "repeat Auto joins hit the plan cache");
    assert!(report.stats.peak_admitted_bytes <= 16 * 1024 * 1024);

    // Identical Auto joins agree.
    let auto_pairs: Vec<u64> = report.outcomes[1..4]
        .iter()
        .map(|o| o.result().unwrap().pairs)
        .collect();
    assert!(auto_pairs.windows(2).all(|w| w[0] == w[1]));
    println!("\nall {} queries served from one registration — register once, query many.", report.stats.completed);
}
