//! Pluggable predicates and streaming sinks: the query shapes the callback
//! API could not express.
//!
//! * an ε-distance join ("every hydrography feature within ε of a road"),
//! * a containment join,
//! * a `LIMIT n` query that stops the join — and its I/O — early,
//! * a sampled preview of a large result.
//!
//! ```text
//! cargo run --release --example query_sinks
//! ```

use unified_spatial_join::prelude::*;

fn main() {
    let workload = WorkloadSpec::preset(Preset::NJ).with_scale(100).generate(42);
    let mut env = SimEnv::new(MachineConfig::machine3());
    let (roads_tree, hydro_tree) = env.unaccounted(|env| {
        (
            RTree::bulk_load(env, &workload.roads).unwrap(),
            RTree::bulk_load(env, &workload.hydro).unwrap(),
        )
    });
    env.device.reset_stats();
    let query = SpatialQuery::new(
        JoinInput::Indexed(&roads_tree),
        JoinInput::Indexed(&hydro_tree),
    )
    .algorithm(Algo::Pq);

    // 1. The plain intersection join as the baseline.
    let base = query.run(&mut env).expect("intersection join");
    println!(
        "intersects           : {:>8} pairs ({} index page requests)",
        base.pairs, base.index_page_requests
    );

    // 2. ε-distance join: grow ε and watch the result widen. All four
    //    algorithms support this through the same ε-expanded sweep.
    for frac in [0.001f32, 0.005, 0.02] {
        let eps = workload.region.width() * frac;
        let n = query
            .predicate(Predicate::WithinDistance(eps))
            .count(&mut env)
            .expect("distance join");
        println!(
            "within eps={:<8.1} : {:>8} pairs (+{} near misses)",
            eps,
            n,
            n - base.pairs
        );
    }

    // 3. Containment: roads whose MBR swallows a hydrography MBR entirely.
    let contained = query
        .predicate(Predicate::Contains)
        .count(&mut env)
        .expect("containment join");
    println!("contains             : {:>8} pairs", contained);

    // 4. LIMIT: ask for the first 100 pairs. The sink stops the priority
    //    queue traversal, so most index pages are never requested.
    let (limited, first_pairs) = query.first(&mut env, 100).expect("limited join");
    println!(
        "limit 100            : {:>8} pairs, {} of {} index page requests",
        first_pairs.len(),
        limited.index_page_requests,
        base.index_page_requests
    );

    // 5. A 1-in-64 systematic sample of the output, streamed through a
    //    custom sink stack.
    let mut sample = SampleSink::new(CollectSink::default(), 64);
    query.execute(&mut env, &mut sample).expect("sampled join");
    println!(
        "sample 1/64          : {:>8} of {} pairs kept",
        sample.kept(),
        sample.seen()
    );

    // 6. The same distance query, sharded across a worker pool — predicates
    //    and parallel execution compose.
    let eps = workload.region.width() * 0.005;
    let parallel = query
        .predicate(Predicate::WithinDistance(eps))
        .execution(Execution::parallel())
        .run(&mut env)
        .expect("parallel distance join");
    let serial = query
        .predicate(Predicate::WithinDistance(eps))
        .count(&mut env)
        .expect("serial distance join");
    assert_eq!(parallel.pairs, serial);
    println!(
        "parallel eps join    : {:>8} pairs (identical to serial)",
        parallel.pairs
    );
}
