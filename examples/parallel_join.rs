//! The parallel partitioned executor: shard a TIGER-like join spatially and
//! fan it out across a worker pool, with exact serial-equivalent results —
//! all through the `SpatialQuery` builder.
//!
//! ```text
//! cargo run --release --example parallel_join
//! ```

use std::time::Instant;

use unified_spatial_join::join::parallel::{ParallelJoin, TilePartitioner};
use unified_spatial_join::prelude::*;

fn main() {
    // 1. Generate a New-Jersey-like workload and materialise both relations
    //    as flat streams on the simulated disk.
    let workload = WorkloadSpec::preset(Preset::NJ).with_scale(50).generate(42);
    let mut env = SimEnv::new(MachineConfig::machine3());
    let (roads, hydro) = env.unaccounted(|e| {
        (
            unified_spatial_join::io::ItemStream::from_items(e, &workload.roads).unwrap(),
            unified_spatial_join::io::ItemStream::from_items(e, &workload.hydro).unwrap(),
        )
    });
    println!(
        "workload {}: {} roads x {} hydro MBRs",
        workload.name,
        workload.roads.len(),
        workload.hydro.len()
    );

    // 2. Serial baseline: the paper's PQ join.
    let serial_query = SpatialQuery::new(JoinInput::Stream(&roads), JoinInput::Stream(&hydro))
        .algorithm(Algo::Pq);
    let t = Instant::now();
    let serial = serial_query.run(&mut env).expect("serial PQ join");
    println!(
        "serial PQ:      {:>8} pairs  {:>8.1?}  ({} simulated I/Os)",
        serial.pairs,
        t.elapsed(),
        serial.io.total_ops()
    );

    // 3. The same join, Hilbert-sharded across 1..=8 worker threads. The
    //    pair count is identical at every thread count.
    for threads in [1usize, 2, 4, 8] {
        let query = serial_query.execution(Execution::Parallel {
            partitioner: PartitionStrategy::Hilbert,
            threads,
            shards: 16,
        });
        let t = Instant::now();
        let run = query.run(&mut env).expect("parallel join");
        assert_eq!(run.pairs, serial.pairs, "parallel must equal serial");
        println!(
            "hilbert x{threads}:     {:>8} pairs  {:>8.1?}  ({} simulated I/Os)",
            run.pairs,
            t.elapsed(),
            run.io.total_ops(),
        );
    }

    // 4. Per-shard breakdown under the PBSM-style tile partitioner: the
    //    round-robin cell deal balances the load, Hilbert keeps locality.
    //    (`ParallelJoin::run_detailed` exposes what the builder aggregates.)
    let join = ParallelJoin::new(PqJoin::default(), TilePartitioner::default())
        .with_threads(4)
        .with_shards(4);
    let run = join
        .run_detailed(
            &mut env,
            JoinInput::Stream(&roads),
            JoinInput::Stream(&hydro),
            &mut CountSink::default(),
        )
        .expect("tile-sharded join");
    println!("tile x4 shards:");
    for (i, shard) in run.shards.iter().enumerate() {
        println!(
            "  shard {i}: {:>7} pairs, {:>6} I/O ops, {:>9} CPU ops",
            shard.pairs,
            shard.io.total_ops(),
            shard.cpu.total()
        );
    }
    assert_eq!(run.total.pairs, serial.pairs);
    println!("all configurations reported exactly {} pairs", serial.pairs);
}
