//! Differential suite: the optimized struct-of-arrays kernels vs the naive
//! [`ListSweep`] reference on deterministic pseudo-random workloads.
//!
//! Always-on sibling of the feature-gated proptest module — tier-1 `cargo
//! test` exercises these invariants on every run:
//!
//! * identical pair *sequences* (not just sets) between `ListSweep` and the
//!   SoA `ForwardSweep`, identical pair sets for `StripedSweep`;
//! * `SweepStats` bookkeeping: `inserts = expirations + final residents`,
//!   `max_resident`/`max_bytes` monotone with respect to the resident count.

use usj_geom::{Item, Rect};
use usj_sweep::{
    sweep_join, EagerStripedSweep, ForwardSweep, ListSweep, Side, StripedSweep, SweepDriver,
    SweepStructure,
};

/// SplitMix64 — the same deterministic generator the datagen crate uses.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn f32_in(&mut self, lo: f32, hi: f32) -> f32 {
        let t = (self.next() >> 40) as f32 / (1u64 << 24) as f32;
        lo + t * (hi - lo)
    }
}

/// A mix of short segments (the TIGER-like common case) and a few long-lived
/// wide rectangles (the expiry/tombstone stress case).
fn workload(seed: u64, n: usize, id_base: u32) -> Vec<Item> {
    let mut rng = Rng(seed);
    (0..n as u32)
        .map(|i| {
            let x = rng.f32_in(-100.0, 100.0);
            let y = rng.f32_in(-100.0, 100.0);
            let (w, h) = if i % 13 == 0 {
                (rng.f32_in(20.0, 120.0), rng.f32_in(20.0, 120.0))
            } else {
                (rng.f32_in(0.0, 3.0), rng.f32_in(0.0, 3.0))
            };
            Item::new(Rect::from_coords(x, y, x + w, y + h), id_base + i)
        })
        .collect()
}

fn pair_sequence<S: SweepStructure>(left: &[Item], right: &[Item]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    sweep_join::<S, _>(left, right, |a, b| out.push((a.id, b.id)));
    out
}

#[test]
fn soa_forward_kernel_reports_the_exact_list_sweep_sequence() {
    for seed in 0..8u64 {
        let left = workload(seed, 300, 0);
        let right = workload(seed ^ 0xDEAD_BEEF, 300, 100_000);
        let reference = pair_sequence::<ListSweep>(&left, &right);
        let optimized = pair_sequence::<ForwardSweep>(&left, &right);
        // Byte-identical report sequence: lazy expiration and tombstone
        // compaction preserve insertion order, so even the order matches.
        assert_eq!(optimized, reference, "seed {seed}");
    }
}

#[test]
fn soa_striped_kernel_reports_the_exact_list_sweep_pair_set() {
    for seed in 0..8u64 {
        let left = workload(seed.wrapping_mul(77), 400, 0);
        let right = workload(seed.wrapping_mul(77) ^ 0x00C0_FFEE, 400, 100_000);
        let mut reference = pair_sequence::<ListSweep>(&left, &right);
        let mut optimized = pair_sequence::<StripedSweep>(&left, &right);
        let mut pre_pr = pair_sequence::<EagerStripedSweep>(&left, &right);
        let raw_len = optimized.len();
        reference.sort_unstable();
        optimized.sort_unstable();
        optimized.dedup();
        pre_pr.sort_unstable();
        assert_eq!(raw_len, optimized.len(), "seed {seed}: duplicate pairs");
        assert_eq!(optimized, reference, "seed {seed}");
        // The preserved pre-PR striped baseline agrees too, so the hotpath
        // benchmark's 'vs eager' comparison is apples-to-apples.
        assert_eq!(pre_pr, reference, "seed {seed}: pre-PR striped baseline");
    }
}

/// Drives one structure through a full sweep (inserts + expirations) and
/// checks the `SweepStats` bookkeeping invariants at several checkpoints.
fn check_stats_invariants<S: SweepStructure>(seed: u64) {
    let mut items = workload(seed, 500, 0);
    items.sort_unstable_by(Item::cmp_by_lower_y);
    let mut s = S::with_extent(-100.0, 220.0);
    let mut max_seen_resident = 0usize;
    for (i, it) in items.iter().enumerate() {
        s.expire_before(it.rect.lo.y);
        s.insert(*it);
        max_seen_resident = max_seen_resident.max(s.len());
        if i % 97 == 0 {
            let st = s.stats();
            assert_eq!(
                st.inserts,
                st.expirations + s.len() as u64,
                "{}: inserts must equal expirations + residents",
                S::name()
            );
            // The high-water marks are monotone vs the resident count.
            assert!(st.max_resident >= s.len());
            assert!(st.max_resident >= max_seen_resident);
            assert!(
                st.max_bytes >= s.len() * std::mem::size_of::<Item>(),
                "{}: max_bytes below the live payload",
                S::name()
            );
        }
    }
    // Drain completely: every insert must be matched by an expiration.
    s.expire_before(f32::INFINITY);
    let st = s.stats();
    assert_eq!(st.inserts, items.len() as u64);
    assert_eq!(st.expirations, st.inserts);
    assert_eq!(s.len(), 0);
    assert!(s.is_empty());
    assert!(st.max_resident >= 1);
    assert!(st.max_bytes >= st.max_resident * std::mem::size_of::<Item>());
}

#[test]
fn stats_invariants_hold_for_every_kernel() {
    for seed in [3u64, 17, 4242] {
        check_stats_invariants::<ListSweep>(seed);
        check_stats_invariants::<ForwardSweep>(seed);
        check_stats_invariants::<StripedSweep>(seed);
    }
}

type DriverPush = Box<dyn FnMut(Side, Item, &mut Vec<(u32, u32)>)>;

#[test]
fn drivers_agree_across_kernels_under_interleaved_sides() {
    for seed in 0..4u64 {
        let mut left = workload(seed, 250, 0);
        let mut right = workload(!seed, 250, 100_000);
        left.sort_unstable_by(Item::cmp_by_lower_y);
        right.sort_unstable_by(Item::cmp_by_lower_y);

        let run = |mut push: DriverPush| {
            let mut out = Vec::new();
            let (mut li, mut ri) = (0, 0);
            while li < left.len() || ri < right.len() {
                let take_left = match (left.get(li), right.get(ri)) {
                    (Some(a), Some(b)) => a.cmp_by_lower_y(b) != std::cmp::Ordering::Greater,
                    (Some(_), None) => true,
                    _ => false,
                };
                if take_left {
                    push(Side::Left, left[li], &mut out);
                    li += 1;
                } else {
                    push(Side::Right, right[ri], &mut out);
                    ri += 1;
                }
            }
            out.sort_unstable();
            out
        };

        let mut list: SweepDriver<ListSweep> = SweepDriver::new(-100.0, 220.0);
        let a = run(Box::new(move |side, item, out| {
            list.push(side, item, |x, y| out.push((x.id, y.id)));
        }));
        let mut striped: SweepDriver<StripedSweep> = SweepDriver::new(-100.0, 220.0);
        let b = run(Box::new(move |side, item, out| {
            striped.push(side, item, |x, y| out.push((x.id, y.id)));
        }));
        assert_eq!(a, b, "seed {seed}");
    }
}
