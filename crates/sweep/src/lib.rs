//! Plane-sweep interval structures and the sweep-join driver.
//!
//! All four join algorithms in the paper ultimately reduce rectangle
//! intersection to a *dynamic 1-D interval intersection* problem: a
//! horizontal sweep line moves upward through the data, and only rectangles
//! currently cut by the line — represented by their x-projections — need to
//! be tested against each other. Two internal-memory structures for the
//! active intervals are compared in the SSSJ paper and reused here:
//!
//! * [`ForwardSweep`] — the classic structure used by earlier spatial-join
//!   implementations: one unordered active list per input, scanned linearly
//!   for every query.
//! * [`StripedSweep`] — the x-extent is divided into vertical strips and each
//!   active interval is registered in every strip it overlaps, so queries
//!   only inspect the strips they intersect. The SSSJ paper measured it to be
//!   2–5× faster than the alternatives on real data.
//!
//! Both structures keep their resident sets in **struct-of-arrays layout**
//! with **lazy batched expiration** (see [`soa`](crate::forward) docs): the
//! overlap scan streams packed coordinate arrays and the per-push `O(n)`
//! expiration `retain` of the naive kernel is replaced by an exact expiry
//! heap plus threshold-triggered tombstone compaction. The pre-optimization
//! list kernel survives as [`ListSweep`] — the differential-testing oracle
//! and the wall-clock baseline of the `hotpath` benchmark.
//!
//! The [`SweepDriver`] consumes two y-sorted item sequences (in-memory slices
//! or, in the join crate, streams extracted from R-trees) and produces the
//! intersecting pairs plus detailed operation counts, which the simulation
//! environment later converts into CPU time.
//!
//! When the active intervals outgrow the internal-memory budget, the
//! [`SpillingSweepDriver`] takes over: it evicts the soonest-to-expire items
//! to the simulated device and recovers their missed intersections with a
//! log-based fix-up join, keeping the memory governor's limit a hard
//! invariant at the price of extra (charged) I/O.
//!
//! For *live* inputs that cannot be globally sorted up front, the
//! [`SymmetricSweepDriver`] relaxes the protocol to per-side ordering with
//! arbitrary cross-side interleaving (watermark-based expiry, XJoin-style),
//! emitting pairs as items arrive while reusing the same spill/fix-up
//! machinery.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod driver;
pub mod forward;
pub mod reference;
mod soa;
pub mod spill;
pub mod striped;
pub mod structure;
pub mod symmetric;

pub use driver::{
    sweep_join, sweep_join_count, sweep_join_eps, sweep_join_eps_with, Side, SweepDriver,
    SweepJoinStats, SweepScratch,
};
pub use forward::ForwardSweep;
pub use reference::{EagerStripedSweep, ListSweep};
pub use spill::SpillingSweepDriver;
pub use symmetric::SymmetricSweepDriver;
pub use striped::{StripedSweep, INITIAL_STRIPS, MAX_STRIPS, TARGET_PER_STRIP};
pub use structure::{SweepStats, SweepStructure};

// Property-based tests need the external `proptest` crate, which the
// offline build environment cannot provide; they are opt-in behind the
// `proptest` feature (see KNOWN_FAILURES.md).
#[cfg(all(test, feature = "proptest"))]
mod proptests;
