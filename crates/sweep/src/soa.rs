//! Shared building blocks of the struct-of-arrays interval structures.
//!
//! Both [`ForwardSweep`](crate::ForwardSweep) and
//! [`StripedSweep`](crate::StripedSweep) keep their resident sets in a
//! [`SoaBuf`]: five parallel arrays (`x_lo`, `x_hi`, `y_lo`, `y_hi`, `id`)
//! instead of a `Vec<Item>`. The interval-overlap scan then touches three
//! tightly packed `f32` streams with no pointer chasing and a branch-light
//! inner comparison, which the compiler can unroll and vectorize.
//!
//! Expiration is *lazy*: passing the sweep line over an item's upper edge
//! only pops its entry from an [`ExpiryHeap`] (exact counters, `O(log n)`)
//! and leaves the array entry behind as a tombstone that scans skip with a
//! single `y_hi >= cut` comparison. Tombstones are reclaimed in batches by
//! [`SoaBuf::compact`] once their density crosses a threshold, so the
//! per-push `O(n)` `retain` of the old list kernel disappears from the hot
//! path while every reported pair and every counter stays identical.

use usj_geom::{Item, Point, Rect};

/// Struct-of-arrays storage for one resident set (or one strip of it).
///
/// Entries are append-only between [`SoaBuf::compact`] calls; logical
/// deletion is the caller's `y_hi < cut` tombstone test.
#[derive(Debug, Default, Clone)]
pub(crate) struct SoaBuf {
    /// Lower x-coordinates of the stored rectangles.
    pub x_lo: Vec<f32>,
    /// Upper x-coordinates.
    pub x_hi: Vec<f32>,
    /// Lower y-coordinates (only needed to reconstruct reported items).
    pub y_lo: Vec<f32>,
    /// Upper y-coordinates — the expiry positions the scans and the
    /// tombstone test compare against.
    pub y_hi: Vec<f32>,
    /// Object identifiers.
    pub id: Vec<u32>,
}

impl SoaBuf {
    /// Number of physical entries (live + tombstoned).
    #[inline]
    pub fn len(&self) -> usize {
        self.x_lo.len()
    }

    /// Appends one item.
    #[inline]
    pub fn push(&mut self, item: &Item) {
        self.x_lo.push(item.rect.lo.x);
        self.x_hi.push(item.rect.hi.x);
        self.y_lo.push(item.rect.lo.y);
        self.y_hi.push(item.rect.hi.y);
        self.id.push(item.id);
    }

    /// Reconstructs the full item stored at index `i`.
    #[inline]
    pub fn item(&self, i: usize) -> Item {
        Item::new(
            Rect::new(
                Point::new(self.x_lo[i], self.y_lo[i]),
                Point::new(self.x_hi[i], self.y_hi[i]),
            ),
            self.id[i],
        )
    }

    /// Scans the buffer for live entries whose x-projection overlaps
    /// `[q_lo, q_hi]`, invoking `on_hit` with the index of each match (in
    /// insertion order) and returning the number of live entries tested.
    ///
    /// The scan runs in two passes: a side-effect-free counting pass whose
    /// boolean-sum reductions the compiler turns into packed float compares
    /// over the whole buffer, and — only when the count found something — a
    /// scalar locate pass that re-finds the matching indices and stops as
    /// soon as the counted hits are delivered. Most sweep queries hit little
    /// or nothing, so the callback and all per-hit work stay out of the hot
    /// loop, and the typical query is one vectorized sweep over three packed
    /// `f32` streams.
    #[inline]
    pub fn scan_overlaps(
        &self,
        cut: f32,
        q_lo: f32,
        q_hi: f32,
        mut on_hit: impl FnMut(usize),
    ) -> u64 {
        let n = self.len();
        let x_lo = &self.x_lo[..n];
        let x_hi = &self.x_hi[..n];
        let y_hi = &self.y_hi[..n];
        let mut live_n = 0u32;
        let mut hit_n = 0u32;
        for j in 0..n {
            let live = (y_hi[j] >= cut) as u32;
            live_n += live;
            hit_n += live & (x_lo[j] <= q_hi) as u32 & (q_lo <= x_hi[j]) as u32;
        }
        if hit_n > 0 {
            let mut remaining = hit_n;
            for j in 0..n {
                if y_hi[j] >= cut && x_lo[j] <= q_hi && q_lo <= x_hi[j] {
                    on_hit(j);
                    remaining -= 1;
                    if remaining == 0 {
                        break;
                    }
                }
            }
        }
        u64::from(live_n)
    }

    /// Drops every entry with `y_hi < cut` (the tombstones), preserving the
    /// order of the survivors. Returns the number of surviving entries.
    pub fn compact(&mut self, cut: f32) -> usize {
        let mut w = 0;
        for r in 0..self.len() {
            if self.y_hi[r] >= cut {
                if w != r {
                    self.x_lo[w] = self.x_lo[r];
                    self.x_hi[w] = self.x_hi[r];
                    self.y_lo[w] = self.y_lo[r];
                    self.y_hi[w] = self.y_hi[r];
                    self.id[w] = self.id[r];
                }
                w += 1;
            }
        }
        self.truncate(w);
        w
    }

    /// Truncates all five arrays to `len` entries.
    #[inline]
    pub fn truncate(&mut self, len: usize) {
        self.x_lo.truncate(len);
        self.x_hi.truncate(len);
        self.y_lo.truncate(len);
        self.y_hi.truncate(len);
        self.id.truncate(len);
    }

    /// Removes every entry for which `drop` returns `true`, preserving order.
    /// `drop` receives the entry index and may inspect the arrays through the
    /// provided buffer reference before the entry is overwritten.
    pub fn retain_indexed(&mut self, mut keep: impl FnMut(&SoaBuf, usize) -> bool) {
        let mut w = 0;
        for r in 0..self.len() {
            if keep(&*self, r) {
                if w != r {
                    self.x_lo[w] = self.x_lo[r];
                    self.x_hi[w] = self.x_hi[r];
                    self.y_lo[w] = self.y_lo[r];
                    self.y_hi[w] = self.y_hi[r];
                    self.id[w] = self.id[r];
                }
                w += 1;
            }
        }
        self.truncate(w);
    }
}

/// One live resident item as seen by the expiry bookkeeping: its expiry
/// position and how many strip copies it occupies.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ExpiryEntry {
    /// Upper y-coordinate — the sweep position at which the item expires.
    pub y: f32,
    /// Physical array entries the item occupies (1 for the forward sweep,
    /// the strip-overlap count for the striped sweep).
    pub copies: u32,
}

/// A 4-ary min-heap over the expiry positions of the live resident items.
///
/// One entry per unique resident item. `len()` is therefore the exact live
/// resident count, and popping entries as the sweep line passes them keeps
/// the expiration counters exact without scanning the arrays.
///
/// Four children per node halve the tree depth of a binary heap and let the
/// sift-down pick the smallest child with a short run of compares over one
/// or two cache lines — pops are the per-item fixed cost of the lazy
/// expiration scheme, so their constant matters.
#[derive(Debug, Default)]
pub(crate) struct ExpiryHeap {
    entries: Vec<ExpiryEntry>,
}

/// Heap arity.
const D: usize = 4;

impl ExpiryHeap {
    /// Number of live resident items.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Bytes occupied by the bookkeeping entries.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<ExpiryEntry>()
    }

    /// Pushes one live item.
    pub fn push(&mut self, y: f32, copies: u32) {
        self.entries.push(ExpiryEntry { y, copies });
        let mut i = self.entries.len() - 1;
        // Sift up with a hole: the new entry is written only once at its
        // final position.
        let e = self.entries[i];
        while i > 0 {
            let parent = (i - 1) / D;
            if e.y < self.entries[parent].y {
                self.entries[i] = self.entries[parent];
                i = parent;
            } else {
                break;
            }
        }
        self.entries[i] = e;
    }

    /// Index of the smallest child of `i`, if any.
    #[inline]
    fn min_child(&self, i: usize) -> Option<usize> {
        let first = D * i + 1;
        if first >= self.entries.len() {
            return None;
        }
        let last = (first + D).min(self.entries.len());
        let mut best = first;
        for c in first + 1..last {
            if self.entries[c].y < self.entries[best].y {
                best = c;
            }
        }
        Some(best)
    }

    /// Restores the heap property downward from `i`, assuming the entry at
    /// `i` is the only possible violation (hole technique: one final write).
    fn sift_down(&mut self, mut i: usize) {
        let e = self.entries[i];
        while let Some(c) = self.min_child(i) {
            if self.entries[c].y < e.y {
                self.entries[i] = self.entries[c];
                i = c;
            } else {
                break;
            }
        }
        self.entries[i] = e;
    }

    /// Pops the soonest-expiring entry if `pred` accepts its expiry position.
    pub fn pop_if(&mut self, pred: impl Fn(f32) -> bool) -> Option<ExpiryEntry> {
        let top = *self.entries.first()?;
        if !pred(top.y) {
            return None;
        }
        let last = self.entries.len() - 1;
        self.entries.swap(0, last);
        self.entries.pop();
        if !self.entries.is_empty() {
            self.sift_down(0);
        }
        Some(top)
    }

    /// Appends every live expiry position to `out` (one per unique item, in
    /// heap order — callers that need an order must sort or select).
    pub fn expiries_into(&self, out: &mut Vec<f32>) {
        out.extend(self.entries.iter().map(|e| e.y));
    }

    /// Replaces the heap contents with `entries` and restores the heap
    /// property in `O(n)` (used when a strip-layout rebuild changes every
    /// item's copy count).
    pub fn rebuild(&mut self, entries: Vec<ExpiryEntry>) {
        self.entries = entries;
        let n = self.entries.len();
        if n < 2 {
            return;
        }
        let last_parent = (n - 2) / D;
        for start in (0..=last_parent).rev() {
            self.sift_down(start);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_geom::Rect;

    fn item(x0: f32, y0: f32, x1: f32, y1: f32, id: u32) -> Item {
        Item::new(Rect::from_coords(x0, y0, x1, y1), id)
    }

    #[test]
    fn soa_push_item_roundtrip_and_compact() {
        let mut b = SoaBuf::default();
        b.push(&item(0.0, 1.0, 2.0, 3.0, 7));
        b.push(&item(4.0, 1.0, 5.0, 9.0, 8));
        b.push(&item(6.0, 1.0, 7.0, 2.0, 9));
        assert_eq!(b.item(1), item(4.0, 1.0, 5.0, 9.0, 8));
        // Entries expiring below 3.0 (ids 9) become tombstones and compact away.
        assert_eq!(b.compact(3.0), 2);
        assert_eq!(b.len(), 2);
        assert_eq!(b.item(0).id, 7);
        assert_eq!(b.item(1).id, 8);
    }

    #[test]
    fn heap_pops_in_expiry_order_with_exact_counts() {
        let mut h = ExpiryHeap::default();
        for (y, c) in [(5.0, 1), (1.0, 3), (9.0, 2), (1.0, 1), (4.0, 5)] {
            h.push(y, c);
        }
        assert_eq!(h.len(), 5);
        let mut popped = Vec::new();
        while let Some(e) = h.pop_if(|y| y < 5.0) {
            popped.push((e.y, e.copies));
        }
        popped.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        assert_eq!(popped, vec![(1.0, 1), (1.0, 3), (4.0, 5)]);
        assert_eq!(h.len(), 2);
        assert!(h.pop_if(|y| y < 5.0).is_none());
        assert_eq!(h.pop_if(|y| y <= 5.0).map(|e| e.copies), Some(1));
    }

    #[test]
    fn heap_rebuild_restores_the_heap_property() {
        let mut h = ExpiryHeap::default();
        h.rebuild(
            [8.0, 3.0, 6.0, 1.0, 9.0, 2.0]
                .iter()
                .map(|&y| ExpiryEntry { y, copies: 1 })
                .collect(),
        );
        let mut order = Vec::new();
        while let Some(e) = h.pop_if(|_| true) {
            order.push(e.y);
        }
        assert_eq!(order, vec![1.0, 2.0, 3.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn retain_indexed_keeps_order() {
        let mut b = SoaBuf::default();
        for i in 0..6 {
            b.push(&item(i as f32, 0.0, i as f32 + 1.0, 10.0, i));
        }
        b.retain_indexed(|buf, i| buf.id[i] % 2 == 0);
        assert_eq!(b.len(), 3);
        assert_eq!((b.id[0], b.id[1], b.id[2]), (0, 2, 4));
    }
}
