//! The *symmetric* streaming plane-sweep driver.
//!
//! Every driver so far consumes the two inputs as one globally y-ordered
//! merge: [`SweepDriver`](crate::SweepDriver) and
//! [`SpillingSweepDriver`](crate::SpillingSweepDriver) assert ascending
//! lower-y across *both* sides, which forces the caller to sort everything
//! before the first pair can be reported. Live feeds cannot wait for that —
//! items arrive on either side in *that side's* order, and the interleaving
//! across sides is whatever the network delivers.
//!
//! This driver relaxes the protocol the way XJoin and Progressive Merge
//! Join relax sort-merge joins: each side must still arrive in ascending
//! lower-y order **within itself** (live-catalog snapshots are unions of
//! sorted runs, so their merge cursors deliver exactly that), but the two
//! sides may interleave arbitrarily. Each arriving item is inserted into
//! its side's resident [`StripedSweep`] and immediately probed against the
//! *opposite* resident set, so pairs surface as items arrive:
//!
//! * **Watermarks.** `w_left`/`w_right` track the largest lower-y seen per
//!   side. A **left** resident only exists to be probed by future **right**
//!   arrivals (and vice versa), so the left structure expires items below
//!   `w_right` and the right structure below `w_left` — the classic
//!   symmetric watermark rule. When one input ends,
//!   [`SymmetricSweepDriver::close_side`] lifts its watermark to `+∞` and
//!   the opposite resident set drains.
//! * **Lagging probes need full tests.** Because one side may run ahead of
//!   the other, a resident probed in x-range may not overlap the query in
//!   y (the classic drivers get y-overlap for free from the global order).
//!   Probe hits are therefore re-checked with a full rectangle test before
//!   being reported.
//! * **Memory pressure.** Identical to [`crate::SpillingSweepDriver`]: residents
//!   beyond the budget are evicted (soonest-to-expire first) into spill
//!   batches, arrivals are shadow-logged while any batch is open, and each
//!   batch is joined against its log *suffix* once both watermarks pass
//!   every spilled item. Pairs are recovered exactly once, so the reported
//!   pair *set* equals the offline [`SweepDriver`](crate::SweepDriver)
//!   answer on the same data.

use usj_geom::Item;
use usj_io::{ItemStreamWriter, MemoryReservation, Result, SimEnv};

use crate::driver::{Side, SweepJoinStats};
use crate::spill::{
    join_batch_against_log, SpillBatch, SpillEpoch, MIN_SWEEP_BUDGET, SPILL_PAGES_PER_BLOCK,
};
use crate::structure::SweepStructure;
use crate::StripedSweep;

/// A memory-governed symmetric plane-sweep join over two individually
/// y-sorted inputs with arbitrary cross-side interleaving.
///
/// The push-based protocol of [`SpillingSweepDriver`](crate::SpillingSweepDriver)
/// minus the global ordering requirement: items of one side must arrive in
/// ascending lower-y order (asserted in debug builds), the other side's
/// progress is independent.
#[derive(Debug)]
pub struct SymmetricSweepDriver {
    left: StripedSweep,
    right: StripedSweep,
    stats: SweepJoinStats,
    /// Largest lower-y pushed so far per side (`[left, right]`).
    watermark: [f32; 2],
    budget: usize,
    reservation: MemoryReservation,
    epoch: Option<SpillEpoch>,
    fixup_rect_tests: u64,
    evict_left: Vec<Item>,
    evict_right: Vec<Item>,
    expiry_scratch: Vec<f32>,
}

impl SymmetricSweepDriver {
    /// Creates a driver whose structures cover the x-extent `[x_lo, x_hi]`.
    ///
    /// The in-memory budget is half the gauge's current headroom (floored
    /// at [`MIN_SWEEP_BUDGET`]), matching
    /// [`SpillingSweepDriver::new`](crate::SpillingSweepDriver::new).
    pub fn new(env: &SimEnv, x_lo: f32, x_hi: f32) -> Self {
        let budget = (env.memory.headroom() / 2).max(MIN_SWEEP_BUDGET);
        SymmetricSweepDriver {
            left: StripedSweep::with_extent(x_lo, x_hi),
            right: StripedSweep::with_extent(x_lo, x_hi),
            stats: SweepJoinStats::default(),
            watermark: [f32::NEG_INFINITY; 2],
            budget,
            reservation: env.memory.reserve_empty(),
            epoch: None,
            fixup_rect_tests: 0,
            evict_left: Vec::new(),
            evict_right: Vec::new(),
            expiry_scratch: Vec::new(),
        }
    }

    /// In-memory budget in bytes.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Spill batches of the current epoch still awaiting their fix-up join.
    pub fn open_batches(&self) -> usize {
        self.epoch.as_ref().map_or(0, |e| e.batches.len())
    }

    /// Largest lower-y pushed so far on `side`.
    pub fn watermark(&self, side: Side) -> f32 {
        self.watermark[side as usize]
    }

    /// Resident items currently held in memory (both sides).
    pub fn resident(&self) -> usize {
        self.left.len() + self.right.len()
    }

    /// Declares `side` exhausted: no further items will arrive on it.
    ///
    /// Lifts the side's watermark to `+∞` so the *opposite* resident set
    /// expires eagerly and any open spill epoch can close at the next push
    /// or at [`finish`](SymmetricSweepDriver::finish). Reports any fix-up
    /// pairs that become reportable through `report`.
    pub fn close_side<F: FnMut(&Item, &Item)>(
        &mut self,
        env: &mut SimEnv,
        side: Side,
        mut report: F,
    ) -> Result<()> {
        self.watermark[side as usize] = f32::INFINITY;
        self.expire_and_fixup(env, &mut report)
    }

    /// Processes `item` arriving on `side`, reporting every join partner as
    /// `(left_item, right_item)`. Items must arrive in ascending lower-y
    /// order *within each side* (asserted in debug builds); the cross-side
    /// interleaving is unconstrained.
    ///
    /// Fix-up pairs of a spill epoch both watermarks have passed are
    /// reported through the same callback before the new item is processed.
    pub fn push<F: FnMut(&Item, &Item)>(
        &mut self,
        env: &mut SimEnv,
        side: Side,
        item: Item,
        mut report: F,
    ) -> Result<()> {
        let y = item.rect.lo.y;
        debug_assert!(
            y >= self.watermark[side as usize] || self.watermark[side as usize].is_infinite(),
            "each side must be pushed in ascending lower-y order"
        );
        debug_assert!(
            self.watermark[side as usize] < f32::INFINITY,
            "push on a side already declared closed"
        );
        self.watermark[side as usize] = self.watermark[side as usize].max(y);

        self.expire_and_fixup(env, &mut report)?;

        // Shadow-log the arrival: its pairs with already-spilled items can
        // only be discovered at fix-up time.
        if let Some(epoch) = &mut self.epoch {
            epoch.log(env, side, item)?;
        }

        // Probe the opposite residents, then insert. The structures prune
        // by x-overlap and their own expiry cut only — with lagging
        // watermarks a candidate may still miss the query in y, so every
        // hit is re-checked with the full rectangle test.
        match side {
            Side::Left => {
                self.right.query(&item, |other| {
                    if item.rect.intersects(&other.rect) {
                        report(&item, other);
                    }
                });
                self.left.insert(item);
                self.stats.left_items += 1;
            }
            Side::Right => {
                self.left.query(&item, |other| {
                    if item.rect.intersects(&other.rect) {
                        report(other, &item);
                    }
                });
                self.right.insert(item);
                self.stats.right_items += 1;
            }
        }
        self.note_sizes();

        if self.left.bytes() + self.right.bytes() > self.budget {
            self.spill(env)?;
        }
        self.reservation
            .try_set(self.left.bytes() + self.right.bytes())?;
        Ok(())
    }

    /// Applies the watermark expiry rule and closes the spill epoch once
    /// both watermarks have passed every spilled item.
    fn expire_and_fixup<F: FnMut(&Item, &Item)>(
        &mut self,
        env: &mut SimEnv,
        report: &mut F,
    ) -> Result<()> {
        let [w_left, w_right] = self.watermark;
        // Left residents serve probes from future *right* arrivals (whose
        // lower-y is at least w_right), and vice versa. The resident count
        // is only sampled while a recorder is installed, so the expiry
        // event costs nothing on the production path.
        let before = usj_obs::enabled().then(|| self.left.len() + self.right.len());
        self.left.expire_before(w_right);
        self.right.expire_before(w_left);
        if let Some(before) = before {
            let expired = before.saturating_sub(self.left.len() + self.right.len());
            if expired > 0 {
                usj_obs::instant("sweep.expire", expired as u64);
            }
        }

        // A spilled item is unreachable once both sides have passed it —
        // conservative for per-side batches, exact for mixed ones.
        let horizon = w_left.min(w_right);
        if self.epoch.as_ref().is_some_and(|e| e.max_y < horizon) {
            let epoch = self.epoch.take().expect("checked above");
            usj_obs::instant("sweep.fixup_epoch", epoch.batches.len() as u64);
            self.fixup_epoch(env, epoch, report)?;
        }
        Ok(())
    }

    fn note_sizes(&mut self) {
        let bytes = self.left.bytes() + self.right.bytes();
        let resident = self.left.len() + self.right.len();
        self.stats.max_structure_bytes = self.stats.max_structure_bytes.max(bytes);
        self.stats.max_resident = self.stats.max_resident.max(resident);
    }

    /// Evicts the soonest-to-expire resident items until the in-memory
    /// state is at most half the budget, writing them to a new spill batch
    /// (the [`SpillingSweepDriver`](crate::SpillingSweepDriver) policy).
    fn spill(&mut self, env: &mut SimEnv) -> Result<()> {
        self.expiry_scratch.clear();
        self.left.resident_expiries(&mut self.expiry_scratch);
        self.right.resident_expiries(&mut self.expiry_scratch);
        if self.expiry_scratch.is_empty() {
            return Ok(());
        }
        let mid = self.expiry_scratch.len() / 2;
        self.expiry_scratch.select_nth_unstable_by(mid, f32::total_cmp);
        let cut = self.expiry_scratch[mid];

        self.evict_left.clear();
        self.evict_right.clear();
        self.left.evict_until(cut, &mut self.evict_left);
        self.right.evict_until(cut, &mut self.evict_right);
        if self.left.bytes() + self.right.bytes() > self.budget / 2 {
            self.left.evict_until(f32::INFINITY, &mut self.evict_left);
            self.right.evict_until(f32::INFINITY, &mut self.evict_right);
        }
        if self.evict_left.is_empty() && self.evict_right.is_empty() {
            return Ok(());
        }

        let mut batch_max_y = f32::NEG_INFINITY;
        for it in self.evict_left.iter().chain(self.evict_right.iter()) {
            batch_max_y = batch_max_y.max(it.rect.hi.y);
        }
        let mut wl = ItemStreamWriter::new(env, SPILL_PAGES_PER_BLOCK);
        for it in &self.evict_left {
            wl.push(env, *it)?;
        }
        let left = wl.finish(env)?;
        let mut wr = ItemStreamWriter::new(env, SPILL_PAGES_PER_BLOCK);
        for it in &self.evict_right {
            wr.push(env, *it)?;
        }
        let right = wr.finish(env)?;

        self.stats.spilled_items += (self.evict_left.len() + self.evict_right.len()) as u64;
        self.stats.spill_runs += 1;
        usj_obs::instant(
            "sweep.spill",
            (self.evict_left.len() + self.evict_right.len()) as u64,
        );

        let epoch = match &mut self.epoch {
            Some(e) => e,
            None => self.epoch.insert(SpillEpoch::new(env)),
        };
        epoch.max_y = epoch.max_y.max(batch_max_y);
        epoch.batches.push(SpillBatch {
            left,
            right,
            log_left_start: epoch.log_left_n,
            log_right_start: epoch.log_right_n,
        });
        Ok(())
    }

    /// Joins every batch of a closed epoch against its shadow-log suffix.
    fn fixup_epoch<F: FnMut(&Item, &Item)>(
        &mut self,
        env: &mut SimEnv,
        epoch: SpillEpoch,
        report: &mut F,
    ) -> Result<()> {
        let log_left = epoch.log_left.finish(env)?;
        let log_right = epoch.log_right.finish(env)?;
        for batch in epoch.batches {
            self.fixup_rect_tests += join_batch_against_log(
                env,
                &batch.left,
                &log_right,
                batch.log_right_start,
                Side::Left,
                report,
            )?;
            self.fixup_rect_tests += join_batch_against_log(
                env,
                &batch.right,
                &log_left,
                batch.log_left_start,
                Side::Right,
                report,
            )?;
        }
        Ok(())
    }

    /// Registers `n` reported pairs in the statistics (the driver does not
    /// count them itself, mirroring the other drivers).
    pub fn add_pairs(&mut self, n: u64) {
        self.stats.pairs += n;
    }

    /// Fixes up any remaining spill epoch (reporting its pairs) and returns
    /// the final statistics.
    pub fn finish<F: FnMut(&Item, &Item)>(
        mut self,
        env: &mut SimEnv,
        mut report: F,
    ) -> Result<SweepJoinStats> {
        if let Some(epoch) = self.epoch.take() {
            self.fixup_epoch(env, epoch, &mut report)?;
        }
        Ok(self.stats_snapshot())
    }

    /// Abandons any pending spill state *without* reading it back — the
    /// early-termination path (a stopped sink does not want more pairs, so
    /// the fix-up I/O is saved).
    pub fn discard(self) -> SweepJoinStats {
        self.stats_snapshot()
    }

    fn stats_snapshot(&self) -> SweepJoinStats {
        let mut stats = self.stats;
        stats.rect_tests =
            self.left.stats().rect_tests + self.right.stats().rect_tests + self.fixup_rect_tests;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_geom::Rect;
    use usj_io::MachineConfig;

    fn item(x0: f32, y0: f32, x1: f32, y1: f32, id: u32) -> Item {
        Item::new(Rect::from_coords(x0, y0, x1, y1), id)
    }

    fn env_with_memory(bytes: usize) -> SimEnv {
        SimEnv::new(MachineConfig::machine3()).with_memory_limit(bytes)
    }

    fn long_lived(n: u32, id_base: u32) -> Vec<Item> {
        (0..n)
            .map(|i| {
                let x = (i % 37) as f32;
                let y = i as f32 * 0.01;
                item(x, y, x + 3.0, y + 50.0, id_base + i)
            })
            .collect()
    }

    fn brute(left: &[Item], right: &[Item]) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for a in left {
            for b in right {
                if a.rect.intersects(&b.rect) {
                    out.push((a.id, b.id));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Drives both sorted inputs through the driver with a deterministic
    /// but skewed interleaving: `stride` left items, then one right item.
    fn run_symmetric(
        env: &mut SimEnv,
        left: &[Item],
        right: &[Item],
        stride: usize,
    ) -> (Vec<(u32, u32)>, SweepJoinStats) {
        let mut l = left.to_vec();
        let mut r = right.to_vec();
        l.sort_unstable_by(Item::cmp_by_lower_y);
        r.sort_unstable_by(Item::cmp_by_lower_y);
        let mut driver = SymmetricSweepDriver::new(env, 0.0, 64.0);
        let mut out = Vec::new();
        let (mut li, mut ri) = (0, 0);
        while li < l.len() || ri < r.len() {
            for _ in 0..stride.max(1) {
                if li >= l.len() {
                    break;
                }
                driver
                    .push(env, Side::Left, l[li], |a, b| out.push((a.id, b.id)))
                    .unwrap();
                li += 1;
            }
            if ri < r.len() {
                driver
                    .push(env, Side::Right, r[ri], |a, b| out.push((a.id, b.id)))
                    .unwrap();
                ri += 1;
            }
        }
        let stats = driver.finish(env, |a, b| out.push((a.id, b.id))).unwrap();
        let n = out.len();
        out.sort_unstable();
        out.dedup();
        assert_eq!(out.len(), n, "a pair was reported twice");
        (out, stats)
    }

    #[test]
    fn arbitrary_interleavings_report_the_exact_pair_set() {
        for stride in [1, 3, 17, 1000] {
            let mut env = env_with_memory(16 * 1024 * 1024);
            let left = long_lived(300, 0);
            let right = long_lived(300, 10_000);
            let (pairs, _) = run_symmetric(&mut env, &left, &right, stride);
            assert_eq!(pairs, brute(&left, &right), "stride {stride}");
        }
    }

    #[test]
    fn one_side_running_far_ahead_still_joins_completely() {
        // The whole left input arrives before any right item: every pair is
        // discovered by the right-side probes (or the fix-up, if spilling).
        let mut env = env_with_memory(16 * 1024 * 1024);
        let left = long_lived(250, 0);
        let right = long_lived(250, 10_000);
        let (pairs, _) = run_symmetric(&mut env, &left, &right, usize::MAX / 2);
        assert_eq!(pairs, brute(&left, &right));
    }

    #[test]
    fn spilling_under_a_small_budget_recovers_every_pair_once() {
        let mut env = env_with_memory(64 * 1024);
        let left = long_lived(600, 0);
        let right = long_lived(600, 10_000);
        let m = env.begin();
        let (pairs, stats) = run_symmetric(&mut env, &left, &right, 3);
        let (io, _) = env.since(&m);
        assert_eq!(pairs, brute(&left, &right));
        assert!(stats.spill_runs > 0, "a 64 KB budget must spill: {stats:?}");
        assert!(io.pages_written > 0, "spill batches are written to the device");
        assert!(io.pages_read > 0, "fix-ups read the spilled items back");
    }

    #[test]
    fn watermark_expiry_keeps_the_resident_set_small_on_aligned_streams() {
        // Short-lived rectangles arriving in lockstep: the opposite-side
        // watermark tracks closely, so residents expire promptly.
        let mut env = env_with_memory(16 * 1024 * 1024);
        let mk = |base: u32| -> Vec<Item> {
            (0..2_000u32)
                .map(|i| {
                    let y = i as f32 * 0.1;
                    item((i % 29) as f32, y, (i % 29) as f32 + 1.5, y + 0.3, base + i)
                })
                .collect()
        };
        let left = mk(0);
        let right = mk(100_000);
        let (pairs, stats) = run_symmetric(&mut env, &left, &right, 1);
        assert_eq!(pairs, brute(&left, &right));
        assert!(
            stats.max_resident < 200,
            "lockstep streams must expire promptly: {stats:?}"
        );
    }

    #[test]
    fn close_side_drains_the_opposite_residents() {
        let mut env = env_with_memory(16 * 1024 * 1024);
        let left = long_lived(100, 0);
        let mut l = left.clone();
        l.sort_unstable_by(Item::cmp_by_lower_y);
        let mut driver = SymmetricSweepDriver::new(&env, 0.0, 64.0);
        for it in &l {
            driver.push(&mut env, Side::Left, *it, |_, _| {}).unwrap();
        }
        assert!(driver.resident() > 0);
        driver.close_side(&mut env, Side::Right, |_, _| {}).unwrap();
        assert_eq!(
            driver.resident(),
            0,
            "no future right arrivals can probe the left residents"
        );
    }

    #[test]
    fn discard_skips_the_fixup_io() {
        let mut env = env_with_memory(64 * 1024);
        let left = long_lived(500, 0);
        let right = long_lived(500, 10_000);
        let mut l = left;
        let mut r = right;
        l.sort_unstable_by(Item::cmp_by_lower_y);
        r.sort_unstable_by(Item::cmp_by_lower_y);
        let mut driver = SymmetricSweepDriver::new(&env, 0.0, 64.0);
        for (a, b) in l.iter().zip(r.iter()) {
            driver.push(&mut env, Side::Left, *a, |_, _| {}).unwrap();
            driver.push(&mut env, Side::Right, *b, |_, _| {}).unwrap();
        }
        assert!(driver.open_batches() > 0, "batches should still be open");
        let m = env.begin();
        let stats = driver.discard();
        let (io, _) = env.since(&m);
        assert!(stats.spill_runs > 0);
        assert_eq!(io.pages_read, 0, "discard must not read the batches back");
    }
}
