//! The plane-sweep join driver.
//!
//! The driver consumes two sequences of items sorted by ascending lower
//! y-coordinate and maintains one interval structure per input. For every
//! item reached by the sweep line it
//!
//! 1. removes from *both* structures everything the sweep line has passed,
//! 2. probes the *other* input's structure for x-overlaps (each hit is an
//!    intersecting pair), and
//! 3. inserts the item into its own input's structure.
//!
//! The driver is deliberately push-based: SSSJ feeds it from two sorted
//! streams, PQ feeds it from the priority-queue index adapters, PBSM feeds it
//! per partition, and ST feeds it with the entries of two R-tree nodes — the
//! exact reuse of "a few standard operations" the paper advertises.

use usj_geom::Item;

use crate::structure::{SweepStats, SweepStructure};

/// Which of the two join inputs an item belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The left (first) input; by convention the larger "road" relation.
    Left,
    /// The right (second) input; by convention the "hydrography" relation.
    Right,
}

impl Side {
    /// The opposite side.
    pub fn other(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }
}

/// Counters describing one complete sweep join.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepJoinStats {
    /// Intersecting pairs reported.
    pub pairs: u64,
    /// Items consumed from the left input.
    pub left_items: u64,
    /// Items consumed from the right input.
    pub right_items: u64,
    /// Rectangle tests performed by the interval structures.
    pub rect_tests: u64,
    /// Maximum combined size of both structures in bytes (Table 3).
    ///
    /// For the spilling driver this is the *in-memory* residency only; the
    /// spilled strips live on the simulated device.
    pub max_structure_bytes: usize,
    /// Maximum combined number of resident items.
    pub max_resident: usize,
    /// Items evicted to the simulated device by the external spilling sweep
    /// (zero when the structures fit in memory).
    pub spilled_items: u64,
    /// Spill episodes of the external spilling sweep.
    pub spill_runs: u64,
}

impl SweepJoinStats {
    /// Accumulates `other` into `self`: counters are summed, peak sizes take
    /// the maximum. Used when one logical join is executed as several sweeps
    /// (PBSM partitions, parallel shards) whose statistics must roll up into
    /// one summary.
    pub fn merge(&mut self, other: &SweepJoinStats) {
        self.pairs += other.pairs;
        self.left_items += other.left_items;
        self.right_items += other.right_items;
        self.rect_tests += other.rect_tests;
        self.max_structure_bytes = self.max_structure_bytes.max(other.max_structure_bytes);
        self.max_resident = self.max_resident.max(other.max_resident);
        self.spilled_items += other.spilled_items;
        self.spill_runs += other.spill_runs;
    }
}

/// A streaming plane-sweep join over two y-sorted inputs.
#[derive(Debug)]
pub struct SweepDriver<S: SweepStructure> {
    left: S,
    right: S,
    stats: SweepJoinStats,
    last_y: f32,
}

impl<S: SweepStructure> SweepDriver<S> {
    /// Creates a driver whose structures cover the x-extent `[x_lo, x_hi]`.
    pub fn new(x_lo: f32, x_hi: f32) -> Self {
        SweepDriver {
            left: S::with_extent(x_lo, x_hi),
            right: S::with_extent(x_lo, x_hi),
            stats: SweepJoinStats::default(),
            last_y: f32::NEG_INFINITY,
        }
    }

    /// Advances the sweep line to `item.rect.lo.y` and processes `item` from
    /// input `side`, reporting every join partner to `report` as
    /// `(left_item, right_item)`.
    ///
    /// The full items (not just identifiers) are reported so that callers can
    /// refine the candidate pair with a stricter predicate — containment,
    /// reference-point deduplication, exact distance — without keeping their
    /// own id-to-rectangle side tables.
    ///
    /// Items must be pushed in ascending lower-y order across *both* sides;
    /// this is asserted in debug builds.
    pub fn push<F: FnMut(&Item, &Item)>(&mut self, side: Side, item: Item, mut report: F) {
        let y = item.rect.lo.y;
        debug_assert!(
            y >= self.last_y,
            "sweep inputs must be pushed in ascending lower-y order"
        );
        self.last_y = y;
        self.left.expire_before(y);
        self.right.expire_before(y);
        match side {
            Side::Left => {
                self.right.query(&item, |other| {
                    report(&item, other);
                });
                self.left.insert(item);
                self.stats.left_items += 1;
            }
            Side::Right => {
                self.left.query(&item, |other| {
                    report(other, &item);
                });
                self.right.insert(item);
                self.stats.right_items += 1;
            }
        }
        self.note_sizes();
    }

    fn note_sizes(&mut self) {
        let bytes = self.bytes();
        let resident = self.left.len() + self.right.len();
        self.stats.max_structure_bytes = self.stats.max_structure_bytes.max(bytes);
        self.stats.max_resident = self.stats.max_resident.max(resident);
    }

    /// Current combined size of the two interval structures in bytes (the
    /// instantaneous figure behind `SweepJoinStats::max_structure_bytes`) —
    /// callers that own the driver can register it with a memory gauge.
    pub fn bytes(&self) -> usize {
        self.left.bytes() + self.right.bytes()
    }

    /// Registers `n` reported pairs in the statistics. The driver does not
    /// count them itself because callers may suppress duplicates (PBSM) or
    /// fan the output into further joins (multi-way PQ).
    pub fn add_pairs(&mut self, n: u64) {
        self.stats.pairs += n;
    }

    /// Final statistics (rectangle-test counts are pulled from the
    /// structures).
    pub fn finish(self) -> SweepJoinStats {
        let mut stats = self.stats;
        stats.rect_tests = self.left.stats().rect_tests + self.right.stats().rect_tests;
        stats
    }

    /// Combined statistics of the two interval structures.
    pub fn structure_stats(&self) -> SweepStats {
        self.left.stats().combined(&self.right.stats())
    }
}

/// Joins two in-memory slices, reporting intersecting `(left, right)` item
/// pairs to a callback.
///
/// Inputs that are not sorted are handled by sorting copies first, so the
/// function is safe to call on arbitrary slices (PBSM partitions arrive
/// unsorted, for example). Returns the join statistics.
pub fn sweep_join<S, F>(left: &[Item], right: &[Item], report: F) -> SweepJoinStats
where
    S: SweepStructure,
    F: FnMut(&Item, &Item),
{
    sweep_join_eps::<S, F>(left, right, 0.0, report)
}

/// Reusable sorted-copy buffers for [`sweep_join_eps_with`].
///
/// One in-memory sweep needs a sorted copy of each input. Callers that run
/// many sweeps in a row (PBSM joins one per partition, ST one per node pair)
/// keep a scratch around so the copies stop allocating fresh vectors.
#[derive(Debug, Default)]
pub struct SweepScratch {
    left: Vec<Item>,
    right: Vec<Item>,
}

impl SweepScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        SweepScratch::default()
    }
}

/// [`sweep_join`] with ε-expansion of the left input.
///
/// Every left rectangle is grown by `eps` on all sides before the sweep, so
/// the reported pairs are exactly the pairs whose Chebyshev (L∞) distance is
/// at most `eps` — the within-distance join predicate. The callback receives
/// the *expanded* left item; with `eps == 0.0` this is identical to
/// [`sweep_join`].
///
/// Expanding only one side keeps the test symmetric (`d(a, b) <= eps` is
/// symmetric) while shifting every left sort key by the same constant, which
/// preserves the sorted order the sweep relies on.
pub fn sweep_join_eps<S, F>(left: &[Item], right: &[Item], eps: f32, report: F) -> SweepJoinStats
where
    S: SweepStructure,
    F: FnMut(&Item, &Item),
{
    sweep_join_eps_with::<S, F>(left, right, eps, &mut SweepScratch::new(), report)
}

/// [`sweep_join_eps`] with caller-provided scratch buffers for the sorted
/// input copies (see [`SweepScratch`]).
pub fn sweep_join_eps_with<S, F>(
    left: &[Item],
    right: &[Item],
    eps: f32,
    scratch: &mut SweepScratch,
    mut report: F,
) -> SweepJoinStats
where
    S: SweepStructure,
    F: FnMut(&Item, &Item),
{
    let l = &mut scratch.left;
    let r = &mut scratch.right;
    l.clear();
    l.extend(left.iter().map(|it| Item::new(it.rect.expanded(eps), it.id)));
    r.clear();
    r.extend_from_slice(right);
    l.sort_unstable_by(Item::cmp_by_lower_y);
    r.sort_unstable_by(Item::cmp_by_lower_y);

    let (mut x_lo, mut x_hi) = (f32::INFINITY, f32::NEG_INFINITY);
    for it in l.iter().chain(r.iter()) {
        x_lo = x_lo.min(it.rect.lo.x);
        x_hi = x_hi.max(it.rect.hi.x);
    }
    if !x_lo.is_finite() || !x_hi.is_finite() {
        x_lo = 0.0;
        x_hi = 1.0;
    }

    let mut driver: SweepDriver<S> = SweepDriver::new(x_lo, x_hi);
    let mut li = 0;
    let mut ri = 0;
    let mut pairs = 0u64;
    while li < l.len() || ri < r.len() {
        let take_left = match (l.get(li), r.get(ri)) {
            (Some(a), Some(b)) => a.cmp_by_lower_y(b) != std::cmp::Ordering::Greater,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if take_left {
            driver.push(Side::Left, l[li], |a, b| {
                pairs += 1;
                report(a, b);
            });
            li += 1;
        } else {
            driver.push(Side::Right, r[ri], |a, b| {
                pairs += 1;
                report(a, b);
            });
            ri += 1;
        }
    }
    driver.add_pairs(pairs);
    driver.finish()
}

/// Convenience wrapper returning only the number of intersecting pairs.
pub fn sweep_join_count<S: SweepStructure>(left: &[Item], right: &[Item]) -> u64 {
    sweep_join::<S, _>(left, right, |_, _| {}).pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ForwardSweep, StripedSweep};
    use usj_geom::Rect;

    fn item(x0: f32, y0: f32, x1: f32, y1: f32, id: u32) -> Item {
        Item::new(Rect::from_coords(x0, y0, x1, y1), id)
    }

    /// Brute-force reference join.
    fn brute(left: &[Item], right: &[Item]) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for a in left {
            for b in right {
                if a.rect.intersects(&b.rect) {
                    out.push((a.id, b.id));
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn run<S: SweepStructure>(left: &[Item], right: &[Item]) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        sweep_join::<S, _>(left, right, |a, b| out.push((a.id, b.id)));
        out.sort_unstable();
        out
    }

    #[test]
    fn simple_join_matches_brute_force() {
        let left = vec![
            item(0.0, 0.0, 2.0, 2.0, 1),
            item(5.0, 5.0, 6.0, 6.0, 2),
            item(0.0, 5.0, 10.0, 6.0, 3),
        ];
        let right = vec![
            item(1.0, 1.0, 3.0, 3.0, 10),
            item(5.5, 5.5, 7.0, 7.0, 11),
            item(100.0, 100.0, 101.0, 101.0, 12),
        ];
        let expected = brute(&left, &right);
        assert_eq!(run::<ForwardSweep>(&left, &right), expected);
        assert_eq!(run::<StripedSweep>(&left, &right), expected);
        assert!(!expected.is_empty());
    }

    #[test]
    fn join_with_empty_inputs() {
        let left = vec![item(0.0, 0.0, 1.0, 1.0, 1)];
        assert_eq!(run::<ForwardSweep>(&left, &[]), vec![]);
        assert_eq!(run::<StripedSweep>(&[], &left), vec![]);
        assert_eq!(run::<ForwardSweep>(&[], &[]), vec![]);
    }

    #[test]
    fn identical_inputs_report_full_cross_product_of_overlaps() {
        let a = vec![
            item(0.0, 0.0, 1.0, 1.0, 1),
            item(0.5, 0.5, 1.5, 1.5, 2),
        ];
        let expected = brute(&a, &a);
        assert_eq!(expected.len(), 4);
        assert_eq!(run::<ForwardSweep>(&a, &a), expected);
        assert_eq!(run::<StripedSweep>(&a, &a), expected);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let left = vec![
            item(0.0, 9.0, 1.0, 10.0, 1),
            item(0.0, 0.0, 1.0, 1.0, 2),
            item(0.0, 5.0, 1.0, 6.0, 3),
        ];
        let right = vec![
            item(0.5, 5.5, 0.6, 5.6, 10),
            item(0.5, 0.5, 0.6, 0.6, 11),
        ];
        assert_eq!(run::<StripedSweep>(&left, &right), brute(&left, &right));
    }

    #[test]
    fn stats_count_pairs_and_items() {
        let left = vec![item(0.0, 0.0, 1.0, 1.0, 1), item(2.0, 0.0, 3.0, 1.0, 2)];
        let right = vec![item(0.5, 0.5, 2.5, 0.6, 10)];
        let stats = sweep_join::<ForwardSweep, _>(&left, &right, |_, _| {});
        assert_eq!(stats.pairs, 2);
        assert_eq!(stats.left_items, 2);
        assert_eq!(stats.right_items, 1);
        assert!(stats.rect_tests >= 2);
        assert!(stats.max_resident >= 1);
        assert!(stats.max_structure_bytes > 0);
    }

    #[test]
    fn driver_reports_sides_in_left_right_order() {
        let mut driver: SweepDriver<ForwardSweep> = SweepDriver::new(0.0, 10.0);
        let mut pairs = Vec::new();
        driver.push(Side::Right, item(0.0, 0.0, 5.0, 5.0, 100), |a, b| {
            pairs.push((a.id, b.id))
        });
        driver.push(Side::Left, item(1.0, 1.0, 2.0, 2.0, 7), |a, b| {
            pairs.push((a.id, b.id))
        });
        assert_eq!(pairs, vec![(7, 100)]);
    }

    #[test]
    fn touching_rectangles_are_joined() {
        let left = vec![item(0.0, 0.0, 1.0, 1.0, 1)];
        let right = vec![item(1.0, 1.0, 2.0, 2.0, 2)];
        assert_eq!(run::<ForwardSweep>(&left, &right), vec![(1, 2)]);
        assert_eq!(run::<StripedSweep>(&left, &right), vec![(1, 2)]);
    }

    #[test]
    fn eps_expansion_reports_near_pairs() {
        // Two unit squares a gap of 1.0 apart in x: disjoint under the plain
        // intersect join, within distance under eps >= 1.0.
        let left = vec![item(0.0, 0.0, 1.0, 1.0, 1)];
        let right = vec![item(2.0, 0.0, 3.0, 1.0, 2)];
        assert_eq!(run::<StripedSweep>(&left, &right), vec![]);
        let mut near = Vec::new();
        sweep_join_eps::<StripedSweep, _>(&left, &right, 1.0, |a, b| near.push((a.id, b.id)));
        assert_eq!(near, vec![(1, 2)]);
        // The callback sees the expanded left rectangle.
        sweep_join_eps::<StripedSweep, _>(&left, &right, 1.5, |a, b| {
            assert_eq!(a.rect.lo.x, -1.5);
            assert_eq!(b.rect.lo.x, 2.0);
        });
        // Below the gap, still nothing.
        let mut far = Vec::new();
        sweep_join_eps::<StripedSweep, _>(&left, &right, 0.5, |a, b| far.push((a.id, b.id)));
        assert!(far.is_empty());
    }

    #[test]
    fn side_other_flips() {
        assert_eq!(Side::Left.other(), Side::Right);
        assert_eq!(Side::Right.other(), Side::Left);
    }
}
