//! The external *spilling* plane-sweep driver.
//!
//! [`SweepDriver`](crate::SweepDriver) keeps both interval structures fully
//! in memory — fine for the paper's real-life workloads, where Table 3 shows
//! the sweep state staying far below 1 % of the data, but a silent budget
//! violation on adversarial inputs (many long-lived rectangles alive at the
//! same sweep position). This driver enforces the memory-governor budget:
//!
//! 1. The in-memory structures register their bytes with the environment's
//!    [`MemoryGauge`](usj_io::MemoryGauge).
//! 2. When they outgrow the budget, the driver *evicts* the resident items
//!    the sweep line will expire soonest (their fix-up window is the
//!    shortest) and writes them to a **spill batch** on the simulated
//!    device — sequential writes, charged like any other I/O.
//! 3. While any batch is live, every arriving item is also appended to a
//!    shared **shadow log**. Once the sweep line has passed every spilled
//!    item (the *epoch* ends), each batch is read back and joined against
//!    the portion of the log that arrived after its eviction — exactly the
//!    intersections the in-memory sweep could no longer see.
//!
//! Each missed pair is recovered exactly once: a pair `(s, z)` with `s`
//! spilled and `z` arriving later is reported by the unique batch holding
//! `s`, against the log suffix starting at `s`'s eviction; partners that
//! arrived *before* the eviction were already reported by the in-memory
//! probe and fall outside that suffix. The reported pair *set* is therefore
//! identical to the all-in-memory driver's; only the order of the fix-up
//! pairs differs (they surface when their epoch closes). Spill volume and
//! episode counts are reported through
//! [`SweepJoinStats::spilled_items`]/[`spill_runs`](SweepJoinStats::spill_runs).

use usj_geom::Item;
use usj_io::{ItemStream, ItemStreamWriter, MemoryReservation, Result, SimEnv};

use crate::driver::{Side, SweepJoinStats};
use crate::structure::SweepStructure;
use crate::StripedSweep;

/// Smallest in-memory budget the driver will operate with, even when the
/// gauge headroom is lower (a handful of pages; below this the simulation
/// degenerates into one spill per item).
pub const MIN_SWEEP_BUDGET: usize = 4096;

/// Logical block size (in pages) of the spill batches and the shadow log.
/// Small on purpose: the writers' block buffers are themselves charged to
/// the gauge.
pub(crate) const SPILL_PAGES_PER_BLOCK: u64 = 1;

/// One eviction: the spilled items of both sides, plus where in the shared
/// shadow log the post-eviction arrivals begin.
///
/// Shared with the symmetric streaming driver
/// ([`SymmetricSweepDriver`](crate::SymmetricSweepDriver)), whose epoch
/// lifecycle is watermark-driven but whose batches are identical.
#[derive(Debug)]
pub(crate) struct SpillBatch {
    pub(crate) left: ItemStream,
    pub(crate) right: ItemStream,
    pub(crate) log_left_start: u64,
    pub(crate) log_right_start: u64,
}

/// The live spill state: open batches and the shared shadow log of every
/// arrival since the first of them. Ends (and is fixed up) once the sweep
/// line passes `max_y`.
#[derive(Debug)]
pub(crate) struct SpillEpoch {
    pub(crate) batches: Vec<SpillBatch>,
    pub(crate) log_left: ItemStreamWriter,
    pub(crate) log_right: ItemStreamWriter,
    pub(crate) log_left_n: u64,
    pub(crate) log_right_n: u64,
    /// Largest upper y-coordinate among all spilled items of the epoch.
    pub(crate) max_y: f32,
}

impl SpillEpoch {
    /// An empty epoch with fresh shadow logs.
    pub(crate) fn new(env: &mut SimEnv) -> Self {
        SpillEpoch {
            batches: Vec::new(),
            log_left: ItemStreamWriter::new(env, SPILL_PAGES_PER_BLOCK),
            log_right: ItemStreamWriter::new(env, SPILL_PAGES_PER_BLOCK),
            log_left_n: 0,
            log_right_n: 0,
            max_y: f32::NEG_INFINITY,
        }
    }

    /// Shadow-logs one arrival on `side`.
    pub(crate) fn log(&mut self, env: &mut SimEnv, side: Side, item: Item) -> Result<()> {
        match side {
            Side::Left => {
                self.log_left.push(env, item)?;
                self.log_left_n += 1;
            }
            Side::Right => {
                self.log_right.push(env, item)?;
                self.log_right_n += 1;
            }
        }
        Ok(())
    }
}

/// Joins one spilled batch side against the shadow-log entries that arrived
/// after its eviction, returning the number of rectangle tests performed.
///
/// The batch is read back in memory-governed chunks and the log suffix is
/// streamed past each chunk. Chunking matters: an "evict everything" batch
/// can approach the whole budget, and at epoch-close time the live
/// structures may hold the budget again — reserving the full batch could
/// spuriously exceed the limit, while a chunk of the *current* headroom
/// always fits. The log reader starts directly at the batch's suffix, so
/// pre-eviction blocks are never re-read (they were probed in memory;
/// re-reporting them would duplicate pairs).
pub(crate) fn join_batch_against_log<F: FnMut(&Item, &Item)>(
    env: &mut SimEnv,
    spilled: &ItemStream,
    log: &ItemStream,
    log_start: u64,
    spilled_side: Side,
    report: &mut F,
) -> Result<u64> {
    if spilled.is_empty() || log.len() <= log_start {
        return Ok(0);
    }
    let mut rect_tests = 0u64;
    let chunk_bytes = (env.memory.headroom() / 2)
        .max(MIN_SWEEP_BUDGET)
        .min(spilled.data_bytes() as usize);
    let chunk_items = (chunk_bytes / usj_geom::ITEM_BYTES).max(1);
    let mut claim = env.memory.try_reserve(chunk_items * usj_geom::ITEM_BYTES)?;
    let mut spilled_reader = spilled.reader();
    loop {
        let mut chunk = Vec::with_capacity(chunk_items);
        while chunk.len() < chunk_items {
            match spilled_reader.next(env)? {
                Some(s) => chunk.push(s),
                None => break,
            }
        }
        if chunk.is_empty() {
            break;
        }
        let mut reader = log.reader_from(log_start);
        while let Some(z) = reader.next(env)? {
            for s in &chunk {
                rect_tests += 1;
                if s.rect.intersects(&z.rect) {
                    match spilled_side {
                        Side::Left => report(s, &z),
                        Side::Right => report(&z, s),
                    }
                }
            }
        }
    }
    claim.release();
    Ok(rect_tests)
}

/// A memory-governed streaming plane-sweep join over two y-sorted inputs.
///
/// The drop-in external sibling of
/// [`SweepDriver<StripedSweep>`](crate::SweepDriver): same push-based
/// protocol, but `push` takes the environment (evictions and fix-ups perform
/// simulated I/O) and the in-memory state never exceeds the budget derived
/// from the gauge's headroom at construction.
#[derive(Debug)]
pub struct SpillingSweepDriver {
    left: StripedSweep,
    right: StripedSweep,
    stats: SweepJoinStats,
    last_y: f32,
    budget: usize,
    reservation: MemoryReservation,
    epoch: Option<SpillEpoch>,
    fixup_rect_tests: u64,
    /// Reusable eviction buffers: [`StripedSweep::evict_until`] appends into
    /// them, so repeated spill episodes stop allocating fresh vectors.
    evict_left: Vec<Item>,
    evict_right: Vec<Item>,
    /// Reusable scratch for [`StripedSweep::resident_expiries`].
    expiry_scratch: Vec<f32>,
}

impl SpillingSweepDriver {
    /// Creates a driver whose structures cover the x-extent `[x_lo, x_hi]`.
    ///
    /// The in-memory budget is half the gauge's current headroom (floored at
    /// [`MIN_SWEEP_BUDGET`]): the other half stays free for the fix-up
    /// working sets, the shadow-log buffers and the callers' stream buffers.
    pub fn new(env: &SimEnv, x_lo: f32, x_hi: f32) -> Self {
        let budget = (env.memory.headroom() / 2).max(MIN_SWEEP_BUDGET);
        SpillingSweepDriver {
            left: StripedSweep::with_extent(x_lo, x_hi),
            right: StripedSweep::with_extent(x_lo, x_hi),
            stats: SweepJoinStats::default(),
            last_y: f32::NEG_INFINITY,
            budget,
            reservation: env.memory.reserve_empty(),
            epoch: None,
            fixup_rect_tests: 0,
            evict_left: Vec::new(),
            evict_right: Vec::new(),
            expiry_scratch: Vec::new(),
        }
    }

    /// In-memory budget in bytes.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Spill batches of the current epoch still awaiting their fix-up join.
    pub fn open_batches(&self) -> usize {
        self.epoch.as_ref().map_or(0, |e| e.batches.len())
    }

    /// Advances the sweep line to `item.rect.lo.y` and processes `item` from
    /// input `side`, reporting every join partner as `(left_item,
    /// right_item)`. Items must be pushed in ascending lower-y order across
    /// both sides (asserted in debug builds).
    ///
    /// Fix-up pairs of a spill epoch the sweep line has passed are reported
    /// through the same callback before the new item is processed.
    pub fn push<F: FnMut(&Item, &Item)>(
        &mut self,
        env: &mut SimEnv,
        side: Side,
        item: Item,
        mut report: F,
    ) -> Result<()> {
        let y = item.rect.lo.y;
        debug_assert!(
            y >= self.last_y,
            "sweep inputs must be pushed in ascending lower-y order"
        );
        self.last_y = y;

        // Close the epoch once every spilled item has expired.
        if self.epoch.as_ref().is_some_and(|e| e.max_y < y) {
            let epoch = self.epoch.take().expect("checked above");
            self.fixup_epoch(env, epoch, &mut report)?;
        }

        self.left.expire_before(y);
        self.right.expire_before(y);

        // Shadow-log the arrival: its pairs with already-spilled items can
        // only be discovered at fix-up time.
        if let Some(epoch) = &mut self.epoch {
            epoch.log(env, side, item)?;
        }

        match side {
            Side::Left => {
                self.right.query(&item, |other| report(&item, other));
                self.left.insert(item);
                self.stats.left_items += 1;
            }
            Side::Right => {
                self.left.query(&item, |other| report(other, &item));
                self.right.insert(item);
                self.stats.right_items += 1;
            }
        }
        self.note_sizes();

        if self.left.bytes() + self.right.bytes() > self.budget {
            self.spill(env)?;
        }
        self.reservation
            .try_set(self.left.bytes() + self.right.bytes())?;
        Ok(())
    }

    fn note_sizes(&mut self) {
        let bytes = self.left.bytes() + self.right.bytes();
        let resident = self.left.len() + self.right.len();
        self.stats.max_structure_bytes = self.stats.max_structure_bytes.max(bytes);
        self.stats.max_resident = self.stats.max_resident.max(resident);
    }

    /// Evicts the soonest-to-expire resident items until the in-memory state
    /// is at most half the budget, writing them to a new spill batch.
    fn spill(&mut self, env: &mut SimEnv) -> Result<()> {
        self.expiry_scratch.clear();
        self.left.resident_expiries(&mut self.expiry_scratch);
        self.right.resident_expiries(&mut self.expiry_scratch);
        if self.expiry_scratch.is_empty() {
            return Ok(());
        }
        let mid = self.expiry_scratch.len() / 2;
        self.expiry_scratch.select_nth_unstable_by(mid, f32::total_cmp);
        let cut = self.expiry_scratch[mid];

        self.evict_left.clear();
        self.evict_right.clear();
        self.left.evict_until(cut, &mut self.evict_left);
        self.right.evict_until(cut, &mut self.evict_right);
        if self.left.bytes() + self.right.bytes() > self.budget / 2 {
            // Median eviction was not enough (heavily duplicated expiries or
            // strip-spanning copies): evict everything. `evict_until` appends
            // to the reusable buffers, so no extra vector changes hands.
            self.left.evict_until(f32::INFINITY, &mut self.evict_left);
            self.right.evict_until(f32::INFINITY, &mut self.evict_right);
        }
        if self.evict_left.is_empty() && self.evict_right.is_empty() {
            return Ok(());
        }

        let mut batch_max_y = f32::NEG_INFINITY;
        for it in self.evict_left.iter().chain(self.evict_right.iter()) {
            batch_max_y = batch_max_y.max(it.rect.hi.y);
        }
        let mut wl = ItemStreamWriter::new(env, SPILL_PAGES_PER_BLOCK);
        for it in &self.evict_left {
            wl.push(env, *it)?;
        }
        let left = wl.finish(env)?;
        let mut wr = ItemStreamWriter::new(env, SPILL_PAGES_PER_BLOCK);
        for it in &self.evict_right {
            wr.push(env, *it)?;
        }
        let right = wr.finish(env)?;

        self.stats.spilled_items += (self.evict_left.len() + self.evict_right.len()) as u64;
        self.stats.spill_runs += 1;
        usj_obs::instant(
            "sweep.spill",
            (self.evict_left.len() + self.evict_right.len()) as u64,
        );

        let epoch = match &mut self.epoch {
            Some(e) => e,
            None => self.epoch.insert(SpillEpoch::new(env)),
        };
        epoch.max_y = epoch.max_y.max(batch_max_y);
        epoch.batches.push(SpillBatch {
            left,
            right,
            log_left_start: epoch.log_left_n,
            log_right_start: epoch.log_right_n,
        });
        Ok(())
    }

    /// Joins every batch of a closed epoch against its shadow-log suffix.
    fn fixup_epoch<F: FnMut(&Item, &Item)>(
        &mut self,
        env: &mut SimEnv,
        epoch: SpillEpoch,
        report: &mut F,
    ) -> Result<()> {
        let log_left = epoch.log_left.finish(env)?;
        let log_right = epoch.log_right.finish(env)?;
        for batch in epoch.batches {
            self.join_spilled(env, &batch.left, &log_right, batch.log_right_start, Side::Left, report)?;
            self.join_spilled(env, &batch.right, &log_left, batch.log_left_start, Side::Right, report)?;
        }
        Ok(())
    }

    /// Joins one spilled batch side against the shadow-log entries that
    /// arrived after its eviction (see [`join_batch_against_log`]).
    fn join_spilled<F: FnMut(&Item, &Item)>(
        &mut self,
        env: &mut SimEnv,
        spilled: &ItemStream,
        log: &ItemStream,
        log_start: u64,
        spilled_side: Side,
        report: &mut F,
    ) -> Result<()> {
        self.fixup_rect_tests +=
            join_batch_against_log(env, spilled, log, log_start, spilled_side, report)?;
        Ok(())
    }

    /// Registers `n` reported pairs in the statistics (the driver does not
    /// count them itself, mirroring [`SweepDriver`](crate::SweepDriver)).
    pub fn add_pairs(&mut self, n: u64) {
        self.stats.pairs += n;
    }

    /// Fixes up any remaining spill epoch (reporting its pairs) and returns
    /// the final statistics.
    pub fn finish<F: FnMut(&Item, &Item)>(
        mut self,
        env: &mut SimEnv,
        mut report: F,
    ) -> Result<SweepJoinStats> {
        if let Some(epoch) = self.epoch.take() {
            self.fixup_epoch(env, epoch, &mut report)?;
        }
        Ok(self.stats_snapshot())
    }

    /// Abandons any pending spill state *without* reading it back — the
    /// early-termination path (a stopped sink does not want more pairs, so
    /// the fix-up I/O is saved).
    pub fn discard(self) -> SweepJoinStats {
        self.stats_snapshot()
    }

    fn stats_snapshot(&self) -> SweepJoinStats {
        let mut stats = self.stats;
        stats.rect_tests =
            self.left.stats().rect_tests + self.right.stats().rect_tests + self.fixup_rect_tests;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_geom::Rect;
    use usj_io::MachineConfig;

    fn item(x0: f32, y0: f32, x1: f32, y1: f32, id: u32) -> Item {
        Item::new(Rect::from_coords(x0, y0, x1, y1), id)
    }

    fn env_with_memory(bytes: usize) -> SimEnv {
        SimEnv::new(MachineConfig::machine3()).with_memory_limit(bytes)
    }

    /// Dense long-lived rectangles: many are alive at once, so a small
    /// budget must spill.
    fn long_lived(n: u32, id_base: u32) -> Vec<Item> {
        (0..n)
            .map(|i| {
                let x = (i % 37) as f32;
                let y = i as f32 * 0.01;
                item(x, y, x + 3.0, y + 50.0, id_base + i)
            })
            .collect()
    }

    fn brute(left: &[Item], right: &[Item]) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for a in left {
            for b in right {
                if a.rect.intersects(&b.rect) {
                    out.push((a.id, b.id));
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn run_spilling(
        env: &mut SimEnv,
        left: &[Item],
        right: &[Item],
    ) -> (Vec<(u32, u32)>, SweepJoinStats) {
        let mut l = left.to_vec();
        let mut r = right.to_vec();
        l.sort_unstable_by(Item::cmp_by_lower_y);
        r.sort_unstable_by(Item::cmp_by_lower_y);
        let mut driver = SpillingSweepDriver::new(env, 0.0, 64.0);
        let mut out = Vec::new();
        let (mut li, mut ri) = (0, 0);
        while li < l.len() || ri < r.len() {
            let take_left = match (l.get(li), r.get(ri)) {
                (Some(a), Some(b)) => a.cmp_by_lower_y(b) != std::cmp::Ordering::Greater,
                (Some(_), None) => true,
                _ => false,
            };
            if take_left {
                driver
                    .push(env, Side::Left, l[li], |a, b| out.push((a.id, b.id)))
                    .unwrap();
                li += 1;
            } else {
                driver
                    .push(env, Side::Right, r[ri], |a, b| out.push((a.id, b.id)))
                    .unwrap();
                ri += 1;
            }
        }
        driver.add_pairs(out.len() as u64);
        let stats = driver.finish(env, |a, b| out.push((a.id, b.id))).unwrap();
        out.sort_unstable();
        out.dedup();
        (out, stats)
    }

    #[test]
    fn no_spill_when_the_budget_is_ample() {
        let mut env = env_with_memory(16 * 1024 * 1024);
        let left = long_lived(200, 0);
        let right = long_lived(200, 10_000);
        let (pairs, stats) = run_spilling(&mut env, &left, &right);
        assert_eq!(pairs, brute(&left, &right));
        assert_eq!(stats.spill_runs, 0);
        assert_eq!(stats.spilled_items, 0);
    }

    #[test]
    fn spilling_reports_the_exact_pair_set_and_charges_io() {
        let mut env = env_with_memory(64 * 1024);
        let left = long_lived(700, 0);
        let right = long_lived(700, 10_000);
        let m = env.begin();
        let (pairs, stats) = run_spilling(&mut env, &left, &right);
        let (io, _) = env.since(&m);
        assert_eq!(pairs, brute(&left, &right));
        assert!(stats.spill_runs > 0, "a 32 KB budget must spill: {stats:?}");
        assert!(stats.spilled_items > 0);
        assert!(io.pages_written > 0, "spill batches are written to the device");
        assert!(io.pages_read > 0, "fix-ups read the spilled items back");
        // The in-memory state stayed near the budget. A single push may
        // overshoot before the spill reacts, and that push may additionally
        // trigger a strip-layout retune (more strips -> more copies of wide
        // items plus per-strip overhead), so allow one block of slack.
        assert!(stats.max_structure_bytes <= 32 * 1024 + 8192, "{stats:?}");
    }

    #[test]
    fn spill_pairs_are_reported_exactly_once() {
        // No dedup pass: the raw report sequence must already be
        // duplicate-free across the in-memory and fix-up paths.
        let mut env = env_with_memory(64 * 1024);
        let left = long_lived(500, 0);
        let right = long_lived(500, 10_000);
        let mut l = left.clone();
        let mut r = right.clone();
        l.sort_unstable_by(Item::cmp_by_lower_y);
        r.sort_unstable_by(Item::cmp_by_lower_y);
        let mut driver = SpillingSweepDriver::new(&env, 0.0, 64.0);
        let mut out = Vec::new();
        for (a, b) in l.iter().zip(r.iter()) {
            driver
                .push(&mut env, Side::Left, *a, |x, y| out.push((x.id, y.id)))
                .unwrap();
            driver
                .push(&mut env, Side::Right, *b, |x, y| out.push((x.id, y.id)))
                .unwrap();
        }
        let stats = driver
            .finish(&mut env, |x, y| out.push((x.id, y.id)))
            .unwrap();
        assert!(stats.spill_runs > 0);
        let n = out.len();
        out.sort_unstable();
        out.dedup();
        assert_eq!(out.len(), n, "fix-up re-reported already-seen pairs");
        assert_eq!(out, brute(&left, &right));
    }

    #[test]
    fn memory_gauge_never_exceeds_the_limit_while_spilling() {
        let mut env = env_with_memory(64 * 1024);
        let left = long_lived(800, 0);
        let right = long_lived(800, 10_000);
        env.memory.begin_phase();
        let (pairs, stats) = run_spilling(&mut env, &left, &right);
        assert_eq!(pairs.len(), brute(&left, &right).len());
        assert!(stats.spill_runs > 0);
        assert!(
            env.memory.peak() <= env.memory_limit,
            "peak {} exceeds limit {}",
            env.memory.peak(),
            env.memory_limit
        );
    }

    #[test]
    fn discard_skips_the_fixup_io() {
        let mut env = env_with_memory(64 * 1024);
        let left = long_lived(500, 0);
        let right = long_lived(500, 10_000);
        let mut l = left.clone();
        l.sort_unstable_by(Item::cmp_by_lower_y);
        let mut r = right.clone();
        r.sort_unstable_by(Item::cmp_by_lower_y);
        let mut driver = SpillingSweepDriver::new(&env, 0.0, 64.0);
        for (a, b) in l.iter().zip(r.iter()) {
            driver.push(&mut env, Side::Left, *a, |_, _| {}).unwrap();
            driver.push(&mut env, Side::Right, *b, |_, _| {}).unwrap();
        }
        assert!(driver.open_batches() > 0, "batches should still be open");
        let m = env.begin();
        let stats = driver.discard();
        let (io, _) = env.since(&m);
        assert!(stats.spill_runs > 0);
        assert_eq!(io.pages_read, 0, "discard must not read the batches back");
    }
}
