//! The interface shared by the interval structures.

use usj_geom::Item;

/// Operation counters reported by a sweep structure.
///
/// The counters feed the deterministic CPU model (rectangle tests dominate
/// the internal-memory cost of the sweep) and the memory accounting of
/// Table 3 (the maximum number of bytes the structure held at any time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Rectangle/interval comparisons performed while answering queries.
    pub rect_tests: u64,
    /// Items inserted into the structure.
    pub inserts: u64,
    /// Items removed because the sweep line passed their upper edge.
    pub expirations: u64,
    /// Maximum number of items resident at any point of the sweep.
    pub max_resident: usize,
    /// Maximum size of the structure in bytes at any point of the sweep.
    pub max_bytes: usize,
}

impl SweepStats {
    /// Component-wise sum of two counters.
    pub fn combined(&self, other: &SweepStats) -> SweepStats {
        SweepStats {
            rect_tests: self.rect_tests + other.rect_tests,
            inserts: self.inserts + other.inserts,
            expirations: self.expirations + other.expirations,
            max_resident: self.max_resident.max(other.max_resident),
            max_bytes: self.max_bytes.max(other.max_bytes),
        }
    }
}

/// A dynamic set of x-intervals (rectangles cut by the current sweep line).
///
/// The structure stores the full [`Item`] so that matches can be reported
/// with their identifiers; logically only the x-projection and the upper
/// y-coordinate (the expiry) matter.
pub trait SweepStructure {
    /// Creates an empty structure covering the given x-extent.
    ///
    /// `Forward-Sweep` ignores the extent; `Striped-Sweep` uses it to place
    /// its strips.
    fn with_extent(x_lo: f32, x_hi: f32) -> Self
    where
        Self: Sized;

    /// Inserts an item whose lower edge the sweep line just reached.
    fn insert(&mut self, item: Item);

    /// Removes every item whose upper y-coordinate is strictly below `y`
    /// (the sweep line has passed it, so it can never intersect anything
    /// processed later). Returns the number of removed items.
    fn expire_before(&mut self, y: f32) -> usize;

    /// Reports every resident item whose x-projection overlaps `query`'s to
    /// the callback. Expired items may be skipped or lazily removed, but must
    /// never be reported.
    fn query<F: FnMut(&Item)>(&mut self, query: &Item, report: F);

    /// Number of items currently resident (including any not yet lazily
    /// expired items is acceptable only if `expire_before` was not called).
    fn len(&self) -> usize;

    /// Returns `true` when no items are resident.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate current size of the structure in bytes (used for the
    /// Table 3 memory accounting).
    fn bytes(&self) -> usize;

    /// Operation counters accumulated so far.
    fn stats(&self) -> SweepStats;

    /// Human-readable name used in reports and benchmarks.
    fn name() -> &'static str
    where
        Self: Sized;
}
