//! Property-based tests: both interval structures must agree with a
//! brute-force rectangle join on arbitrary inputs.

use proptest::prelude::*;
use usj_geom::{Item, Rect};

use crate::{sweep_join, ForwardSweep, StripedSweep, SweepStructure};

fn arb_items(max_len: usize, id_base: u32) -> impl Strategy<Value = Vec<Item>> {
    prop::collection::vec(
        (
            -100.0f32..100.0,
            -100.0f32..100.0,
            0.0f32..30.0,
            0.0f32..30.0,
        ),
        0..max_len,
    )
    .prop_map(move |v| {
        v.into_iter()
            .enumerate()
            .map(|(i, (x, y, w, h))| {
                Item::new(Rect::from_coords(x, y, x + w, y + h), id_base + i as u32)
            })
            .collect()
    })
}

fn brute(left: &[Item], right: &[Item]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for a in left {
        for b in right {
            if a.rect.intersects(&b.rect) {
                out.push((a.id, b.id));
            }
        }
    }
    out.sort_unstable();
    out
}

fn run<S: SweepStructure>(left: &[Item], right: &[Item]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    sweep_join::<S, _>(left, right, |a, b| out.push((a.id, b.id)));
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn forward_sweep_matches_brute_force(
        left in arb_items(60, 0),
        right in arb_items(60, 10_000),
    ) {
        prop_assert_eq!(run::<ForwardSweep>(&left, &right), brute(&left, &right));
    }

    #[test]
    fn striped_sweep_matches_brute_force(
        left in arb_items(60, 0),
        right in arb_items(60, 10_000),
    ) {
        prop_assert_eq!(run::<StripedSweep>(&left, &right), brute(&left, &right));
    }

    #[test]
    fn both_structures_agree_on_pair_counts(
        left in arb_items(80, 0),
        right in arb_items(80, 10_000),
    ) {
        let f = sweep_join::<ForwardSweep, _>(&left, &right, |_, _| {});
        let s = sweep_join::<StripedSweep, _>(&left, &right, |_, _| {});
        prop_assert_eq!(f.pairs, s.pairs);
        prop_assert_eq!(f.left_items, s.left_items);
        prop_assert_eq!(f.right_items, s.right_items);
    }

    #[test]
    fn striped_sweep_never_tests_more_than_forward_on_point_like_data(
        left in arb_items(50, 0),
        right in arb_items(50, 10_000),
    ) {
        // With narrow rectangles the striped structure should do at most the
        // work of the scan-everything structure (up to the duplicate copies
        // of strip-spanning rectangles, which these inputs avoid by keeping
        // widths far below one strip width).
        let narrow = |v: &[Item]| -> Vec<Item> {
            v.iter()
                .map(|it| {
                    Item::new(
                        Rect::from_coords(it.rect.lo.x, it.rect.lo.y,
                                          it.rect.lo.x, it.rect.hi.y),
                        it.id,
                    )
                })
                .collect()
        };
        let (l, r) = (narrow(&left), narrow(&right));
        let f = sweep_join::<ForwardSweep, _>(&l, &r, |_, _| {});
        let s = sweep_join::<StripedSweep, _>(&l, &r, |_, _| {});
        prop_assert!(s.rect_tests <= f.rect_tests);
        prop_assert_eq!(f.pairs, s.pairs);
    }
}
