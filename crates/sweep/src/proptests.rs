//! Property-based tests on the in-tree `usj_proptest` harness: the interval
//! structures and the spilling driver must agree with a brute-force
//! rectangle join on arbitrary inputs.

use usj_geom::{Item, Rect};
use usj_io::{MachineConfig, SimEnv};
use usj_proptest::{forall, Gen};

use crate::{
    sweep_join, ForwardSweep, ListSweep, Side, SpillingSweepDriver, StripedSweep, SweepStructure,
};

fn arb_items(g: &mut Gen, max_len: usize, id_base: u32) -> Vec<Item> {
    let mut next = 0u32;
    g.vec(0, max_len, |g| {
        let x = g.f32_in(-100.0, 100.0);
        let y = g.f32_in(-100.0, 100.0);
        let w = g.f32_in(0.0, 30.0);
        let h = g.f32_in(0.0, 30.0);
        let id = id_base + next;
        next += 1;
        Item::new(Rect::from_coords(x, y, x + w, y + h), id)
    })
}

fn brute(left: &[Item], right: &[Item]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for a in left {
        for b in right {
            if a.rect.intersects(&b.rect) {
                out.push((a.id, b.id));
            }
        }
    }
    out.sort_unstable();
    out
}

fn run<S: SweepStructure>(left: &[Item], right: &[Item]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    sweep_join::<S, _>(left, right, |a, b| out.push((a.id, b.id)));
    out.sort_unstable();
    out
}

#[test]
fn forward_sweep_matches_brute_force() {
    forall!(64, |g| {
        let left = arb_items(g, 60, 0);
        let right = arb_items(g, 60, 10_000);
        assert_eq!(run::<ForwardSweep>(&left, &right), brute(&left, &right));
    });
}

#[test]
fn striped_sweep_matches_brute_force() {
    forall!(64, |g| {
        let left = arb_items(g, 60, 0);
        let right = arb_items(g, 60, 10_000);
        assert_eq!(run::<StripedSweep>(&left, &right), brute(&left, &right));
    });
}

#[test]
fn both_structures_agree_on_pair_counts() {
    forall!(64, |g| {
        let left = arb_items(g, 80, 0);
        let right = arb_items(g, 80, 10_000);
        let f = sweep_join::<ForwardSweep, _>(&left, &right, |_, _| {});
        let s = sweep_join::<StripedSweep, _>(&left, &right, |_, _| {});
        assert_eq!(f.pairs, s.pairs);
        assert_eq!(f.left_items, s.left_items);
        assert_eq!(f.right_items, s.right_items);
    });
}

#[test]
fn striped_sweep_never_tests_more_than_forward_on_point_like_data() {
    forall!(64, |g| {
        let left = arb_items(g, 50, 0);
        let right = arb_items(g, 50, 10_000);
        // With narrow rectangles the striped structure should do at most the
        // work of the scan-everything structure (up to the duplicate copies
        // of strip-spanning rectangles, which these inputs avoid by keeping
        // widths far below one strip width).
        let narrow = |v: &[Item]| -> Vec<Item> {
            v.iter()
                .map(|it| {
                    Item::new(
                        Rect::from_coords(it.rect.lo.x, it.rect.lo.y, it.rect.lo.x, it.rect.hi.y),
                        it.id,
                    )
                })
                .collect()
        };
        let (l, r) = (narrow(&left), narrow(&right));
        let f = sweep_join::<ForwardSweep, _>(&l, &r, |_, _| {});
        let s = sweep_join::<StripedSweep, _>(&l, &r, |_, _| {});
        assert!(s.rect_tests <= f.rect_tests);
        assert_eq!(f.pairs, s.pairs);
    });
}

#[test]
fn soa_kernels_match_the_naive_list_sweep() {
    // The differential satellite: the optimized SoA kernels must report the
    // exact pair set of the naive eager list sweep on arbitrary workloads,
    // and their stats bookkeeping must balance.
    forall!(64, |g| {
        let left = arb_items(g, 80, 0);
        let right = arb_items(g, 80, 10_000);
        let reference = run::<ListSweep>(&left, &right);
        assert_eq!(run::<ForwardSweep>(&left, &right), reference);
        assert_eq!(run::<StripedSweep>(&left, &right), reference);
    });
}

#[test]
fn soa_kernel_stats_invariants_hold_on_arbitrary_sweeps() {
    forall!(64, |g| {
        let mut items = arb_items(g, 120, 0);
        items.sort_unstable_by(Item::cmp_by_lower_y);
        fn drive<S: SweepStructure>(items: &[Item]) {
            let mut s = S::with_extent(-100.0, 130.0);
            for it in items {
                s.expire_before(it.rect.lo.y);
                s.insert(*it);
                let st = s.stats();
                // inserts = expirations + live residents, at every step.
                assert_eq!(st.inserts, st.expirations + s.len() as u64, "{}", S::name());
                // max_bytes is monotone vs the resident count.
                assert!(st.max_resident >= s.len());
                assert!(st.max_bytes >= s.len() * std::mem::size_of::<Item>());
            }
            s.expire_before(f32::INFINITY);
            let st = s.stats();
            assert_eq!(st.expirations, st.inserts);
            assert!(s.is_empty());
        }
        drive::<ForwardSweep>(&items);
        drive::<StripedSweep>(&items);
        drive::<ListSweep>(&items);
    });
}

#[test]
fn spilling_driver_matches_brute_force_under_a_tiny_budget() {
    forall!(32, |g| {
        let left = arb_items(g, 120, 0);
        let right = arb_items(g, 120, 10_000);
        // A 64 KB environment forces the driver to spill on the denser
        // draws; the pair set must stay exact either way.
        let mut env = SimEnv::new(MachineConfig::machine3()).with_memory_limit(64 * 1024);
        let mut l = left.clone();
        let mut r = right.clone();
        l.sort_unstable_by(Item::cmp_by_lower_y);
        r.sort_unstable_by(Item::cmp_by_lower_y);
        let mut driver = SpillingSweepDriver::new(&env, -100.0, 130.0);
        let mut out = Vec::new();
        let (mut li, mut ri) = (0, 0);
        while li < l.len() || ri < r.len() {
            let take_left = match (l.get(li), r.get(ri)) {
                (Some(a), Some(b)) => a.cmp_by_lower_y(b) != std::cmp::Ordering::Greater,
                (Some(_), None) => true,
                _ => false,
            };
            if take_left {
                driver
                    .push(&mut env, Side::Left, l[li], |a, b| out.push((a.id, b.id)))
                    .unwrap();
                li += 1;
            } else {
                driver
                    .push(&mut env, Side::Right, r[ri], |a, b| out.push((a.id, b.id)))
                    .unwrap();
                ri += 1;
            }
        }
        driver
            .finish(&mut env, |a, b| out.push((a.id, b.id)))
            .unwrap();
        out.sort_unstable();
        assert_eq!(out, brute(&left, &right));
        assert!(
            env.memory.peak() <= env.memory_limit,
            "gauge peak {} over limit",
            env.memory.peak()
        );
    });
}
