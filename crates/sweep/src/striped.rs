//! The `Striped-Sweep` interval structure.
//!
//! The x-extent of the data is divided into a fixed number of vertical
//! strips. Every active interval is registered in each strip it overlaps, so
//! a query only has to look at the strips its own x-projection touches —
//! typically a small constant number for the short road/hydrography segments
//! of the TIGER data. The SSSJ study found this structure to be a factor of
//! 2–5 faster than `Forward-Sweep` and the tree-based alternatives on most
//! real-life data sets, which is why both SSSJ and PQ use it.
//!
//! Because an interval may be registered in several strips, a query could see
//! the same partner more than once. Duplicates are suppressed by reporting a
//! pair only in its *canonical* strip — the strip containing the larger of
//! the two lower x-endpoints, i.e. the leftmost strip where both intervals
//! are present.

use usj_geom::Item;

use crate::structure::{SweepStats, SweepStructure};

/// Default number of strips.
///
/// The SSSJ implementation tunes the strip count to the data; 256 is a good
/// middle ground for the workloads in this reproduction (hundreds of strips
/// keep the per-strip lists short without wasting memory on empty strips).
pub const DEFAULT_STRIPS: usize = 256;

/// Row index of the strip containing `x` for a structure of `n` strips over
/// `[x_lo, x_hi]` (coordinates outside the extent clamp onto the border
/// strips). A free function so the `retain`-based removal loops can use the
/// same formula while the strip vector is mutably borrowed.
#[inline]
fn strip_index(x_lo: f32, x_hi: f32, n: usize, x: f32) -> usize {
    let t = (f64::from(x) - f64::from(x_lo)) / (f64::from(x_hi) - f64::from(x_lo));
    let idx = (t * n as f64).floor();
    if idx < 0.0 {
        0
    } else if idx >= n as f64 {
        n - 1
    } else {
        idx as usize
    }
}

/// Striped active-list interval structure.
#[derive(Debug)]
pub struct StripedSweep {
    strips: Vec<Vec<Item>>,
    x_lo: f32,
    x_hi: f32,
    resident: usize,
    copies: usize,
    stats: SweepStats,
}

impl StripedSweep {
    /// Creates a structure with an explicit strip count over `[x_lo, x_hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `strips == 0`.
    pub fn with_strips(x_lo: f32, x_hi: f32, strips: usize) -> Self {
        assert!(strips > 0, "strip count must be positive");
        let (x_lo, x_hi) = if x_hi > x_lo { (x_lo, x_hi) } else { (x_lo, x_lo + 1.0) };
        StripedSweep {
            strips: vec![Vec::new(); strips],
            x_lo,
            x_hi,
            resident: 0,
            copies: 0,
            stats: SweepStats::default(),
        }
    }

    /// Number of strips.
    pub fn strip_count(&self) -> usize {
        self.strips.len()
    }

    #[inline]
    fn strip_of(&self, x: f32) -> usize {
        strip_index(self.x_lo, self.x_hi, self.strips.len(), x)
    }

    /// Strip range `[first, last]` overlapped by an item's x-projection.
    #[inline]
    fn strip_range(&self, item: &Item) -> (usize, usize) {
        (self.strip_of(item.rect.lo.x), self.strip_of(item.rect.hi.x))
    }

    /// Home strip of an item: the strip containing its lower x-endpoint.
    #[inline]
    fn home_strip(&self, item: &Item) -> usize {
        self.strip_of(item.rect.lo.x)
    }

    fn note_size(&mut self) {
        self.stats.max_resident = self.stats.max_resident.max(self.resident);
        self.stats.max_bytes = self.stats.max_bytes.max(self.bytes());
    }

    /// Upper y-coordinates (expiry positions) of every resident item, one
    /// entry per unique item. The spilling driver uses this to pick an
    /// eviction cut-off.
    pub fn resident_expiries(&self, out: &mut Vec<f32>) {
        for (s, strip) in self.strips.iter().enumerate() {
            for it in strip {
                if self.strip_of(it.rect.lo.x) == s {
                    out.push(it.rect.hi.y);
                }
            }
        }
    }

    /// Removes and returns every resident item whose upper y-coordinate is
    /// at most `y_cut` — the items the sweep line will expire soonest.
    ///
    /// Unlike [`SweepStructure::expire_before`] the removed items are still
    /// *active* (the sweep line has not passed them); the caller takes over
    /// responsibility for joining them against later arrivals. This is the
    /// eviction primitive of the external spilling sweep.
    pub fn evict_until(&mut self, y_cut: f32) -> Vec<Item> {
        let mut evicted = Vec::new();
        let mut removed_copies = 0;
        let (x_lo, x_hi) = (self.x_lo, self.x_hi);
        let n = self.strips.len();
        for (s, strip) in self.strips.iter_mut().enumerate() {
            let before = strip.len();
            strip.retain(|it| {
                let evict = it.rect.hi.y <= y_cut;
                if evict && strip_index(x_lo, x_hi, n, it.rect.lo.x) == s {
                    evicted.push(*it);
                }
                !evict
            });
            removed_copies += before - strip.len();
        }
        self.copies -= removed_copies;
        self.resident -= evicted.len();
        evicted
    }
}

impl SweepStructure for StripedSweep {
    fn with_extent(x_lo: f32, x_hi: f32) -> Self {
        StripedSweep::with_strips(x_lo, x_hi, DEFAULT_STRIPS)
    }

    fn insert(&mut self, item: Item) {
        let (first, last) = self.strip_range(&item);
        for s in first..=last {
            self.strips[s].push(item);
            self.copies += 1;
        }
        self.resident += 1;
        self.stats.inserts += 1;
        self.note_size();
    }

    fn expire_before(&mut self, y: f32) -> usize {
        let mut removed_unique = 0;
        let mut removed_copies = 0;
        // An item is counted as expired in its home strip only, so the unique
        // count is exact even though copies live in several strips.
        let (x_lo, x_hi) = (self.x_lo, self.x_hi);
        let n = self.strips.len();
        for (s, strip) in self.strips.iter_mut().enumerate() {
            let before = strip.len();
            strip.retain(|it| {
                let expired = it.rect.hi.y < y;
                if expired && strip_index(x_lo, x_hi, n, it.rect.lo.x) == s {
                    removed_unique += 1;
                }
                !expired
            });
            removed_copies += before - strip.len();
        }
        self.copies -= removed_copies;
        self.resident -= removed_unique;
        self.stats.expirations += removed_unique as u64;
        removed_unique
    }

    fn query<F: FnMut(&Item)>(&mut self, query: &Item, mut report: F) {
        let (first, last) = self.strip_range(query);
        let q_home = self.home_strip(query);
        let qx = query.rect.x_interval();
        for s in first..=last {
            for it in &self.strips[s] {
                self.stats.rect_tests += 1;
                if !qx.overlaps(&it.rect.x_interval()) {
                    continue;
                }
                // Canonical strip of the pair: where the rightmost of the two
                // lower endpoints falls. Report the pair only there.
                let canonical = q_home.max(self.strip_of(it.rect.lo.x));
                if canonical == s {
                    report(it);
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.resident
    }

    fn bytes(&self) -> usize {
        self.copies * std::mem::size_of::<Item>()
            + self.strips.len() * std::mem::size_of::<Vec<Item>>()
    }

    fn stats(&self) -> SweepStats {
        self.stats
    }

    fn name() -> &'static str {
        "Striped-Sweep"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_geom::Rect;

    fn item(x0: f32, y0: f32, x1: f32, y1: f32, id: u32) -> Item {
        Item::new(Rect::from_coords(x0, y0, x1, y1), id)
    }

    fn collect_query(s: &mut StripedSweep, q: &Item) -> Vec<u32> {
        let mut out = Vec::new();
        s.query(q, |it| out.push(it.id));
        out.sort_unstable();
        out
    }

    #[test]
    fn reports_each_overlapping_item_exactly_once() {
        let mut s = StripedSweep::with_strips(0.0, 100.0, 10);
        // This item spans many strips.
        s.insert(item(5.0, 0.0, 95.0, 10.0, 1));
        s.insert(item(40.0, 0.0, 60.0, 10.0, 2));
        s.insert(item(96.0, 0.0, 99.0, 10.0, 3));
        // Query also spans many strips: each overlap must be reported once.
        let q = item(0.0, 1.0, 100.0, 2.0, 99);
        assert_eq!(collect_query(&mut s, &q), vec![1, 2, 3]);
        // Narrow query inside the long item's extent.
        let q2 = item(50.0, 1.0, 51.0, 2.0, 98);
        assert_eq!(collect_query(&mut s, &q2), vec![1, 2]);
    }

    #[test]
    fn items_outside_query_strips_are_never_tested() {
        let mut s = StripedSweep::with_strips(0.0, 100.0, 10);
        s.insert(item(90.0, 0.0, 91.0, 10.0, 1));
        let before = s.stats().rect_tests;
        let q = item(5.0, 1.0, 6.0, 2.0, 99);
        assert_eq!(collect_query(&mut s, &q), Vec::<u32>::new());
        // The lone item lives in strip 9; the query touches strip 0 only.
        assert_eq!(s.stats().rect_tests, before);
    }

    #[test]
    fn expire_counts_unique_items() {
        let mut s = StripedSweep::with_strips(0.0, 100.0, 10);
        s.insert(item(0.0, 0.0, 100.0, 1.0, 1)); // copies in all 10 strips
        s.insert(item(0.0, 0.0, 5.0, 5.0, 2));
        assert_eq!(s.len(), 2);
        assert_eq!(s.expire_before(2.0), 1);
        assert_eq!(s.len(), 1);
        assert_eq!(s.expire_before(10.0), 1);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        assert_eq!(s.stats().expirations, 2);
    }

    #[test]
    fn coordinates_outside_the_extent_are_clamped() {
        let mut s = StripedSweep::with_strips(0.0, 10.0, 4);
        s.insert(item(-5.0, 0.0, -1.0, 10.0, 1));
        s.insert(item(11.0, 0.0, 20.0, 10.0, 2));
        let q = item(-10.0, 1.0, 30.0, 2.0, 99);
        assert_eq!(collect_query(&mut s, &q), vec![1, 2]);
    }

    #[test]
    fn degenerate_extent_does_not_panic() {
        let mut s = StripedSweep::with_strips(5.0, 5.0, 8);
        s.insert(item(4.0, 0.0, 6.0, 10.0, 1));
        let q = item(5.0, 1.0, 5.0, 2.0, 9);
        assert_eq!(collect_query(&mut s, &q), vec![1]);
    }

    #[test]
    fn memory_accounting_counts_copies() {
        let mut s = StripedSweep::with_strips(0.0, 100.0, 10);
        s.insert(item(0.0, 0.0, 100.0, 1.0, 1));
        let item_sz = std::mem::size_of::<Item>();
        assert!(s.bytes() >= 10 * item_sz);
        assert_eq!(s.stats().max_resident, 1);
    }

    #[test]
    fn default_extent_constructor_uses_default_strip_count() {
        let s = StripedSweep::with_extent(0.0, 1.0);
        assert_eq!(s.strip_count(), DEFAULT_STRIPS);
        assert_eq!(StripedSweep::name(), "Striped-Sweep");
    }

    #[test]
    #[should_panic(expected = "strip count")]
    fn zero_strips_rejected() {
        let _ = StripedSweep::with_strips(0.0, 1.0, 0);
    }
}
