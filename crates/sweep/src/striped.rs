//! The `Striped-Sweep` interval structure.
//!
//! The x-extent of the data is divided into a number of vertical strips.
//! Every active interval is registered in each strip it overlaps, so a query
//! only has to look at the strips its own x-projection touches — typically a
//! small constant number for the short road/hydrography segments of the
//! TIGER data. The SSSJ study found this structure to be a factor of 2–5
//! faster than `Forward-Sweep` and the tree-based alternatives on most
//! real-life data sets, which is why both SSSJ and PQ use it.
//!
//! Because an interval may be registered in several strips, a query could see
//! the same partner more than once. Duplicates are suppressed by reporting a
//! pair only in its *canonical* strip — the strip containing the larger of
//! the two lower x-endpoints, i.e. the leftmost strip where both intervals
//! are present.
//!
//! ## Hot-path layout
//!
//! Each strip is a struct-of-arrays buffer (the `soa` module's `SoaBuf`), so the
//! per-strip overlap scan streams packed `f32` arrays instead of chasing
//! 20-byte `Item` records. Expiration is lazy: an exact expiry heap tracks
//! the live residents while passed entries linger as tombstones until a
//! batched compaction (density threshold) reclaims them — the `O(strips +
//! copies)` `retain` the old kernel paid on *every* push is gone.
//!
//! ## Density-based strip auto-tuning
//!
//! A fixed strip count wastes memory on sparse inputs and degenerates into
//! long per-strip scans on dense ones. Structures created through
//! [`SweepStructure::with_extent`] therefore start at [`INITIAL_STRIPS`] and
//! rebuild to roughly [`TARGET_PER_STRIP`] live residents per strip
//! (doubling up to [`MAX_STRIPS`], shrinking again after heavy eviction);
//! the rebuilds are geometric, so their amortized cost per insert is
//! constant. [`StripedSweep::with_strips`] pins an explicit count and
//! disables the tuning.

use usj_geom::Item;

use crate::soa::{ExpiryEntry, ExpiryHeap, SoaBuf};
use crate::structure::{SweepStats, SweepStructure};

/// Strip count an auto-tuned structure starts with.
pub const INITIAL_STRIPS: usize = 16;

/// Upper bound of the auto-tuning (4096 strips keep the per-strip overhead
/// bounded while keeping per-strip scans short on dense workloads).
pub const MAX_STRIPS: usize = 4096;

/// Live residents per strip the auto-tuning rebuilds towards. A strip that
/// holds a few cache lines of entries amortizes the per-strip scan setup;
/// fewer residents per strip would trade that for more replicated copies of
/// strip-spanning rectangles.
pub const TARGET_PER_STRIP: usize = 16;

/// Growth trigger: rebuild once the live residents exceed this many per
/// strip (hysteresis above [`TARGET_PER_STRIP`] so rebuilds stay geometric).
const GROW_PER_STRIP: usize = 32;

/// Compact once tombstoned copies exceed half the physical entries.
const COMPACT_DENOMINATOR: usize = 2;

/// Never compact below this many tombstoned copies — compaction walks every
/// strip, so firing it for a handful of tombstones in a small resident set
/// would thrash instead of batch.
const COMPACT_FLOOR: usize = 64;

/// Row index of the strip containing `x` for `n` strips over `[x_lo, ..]`
/// with precomputed scale `inv_span = n / (x_hi - x_lo)` (coordinates
/// outside the extent clamp onto the border strips). A free function so the
/// compaction loops can use the same formula while the strip vector is
/// mutably borrowed. The scale is precomputed once per layout: a multiply on
/// the insert/query path instead of an `f64` division.
#[inline]
fn strip_index(x_lo: f32, inv_span: f64, n: usize, x: f32) -> usize {
    let idx = ((f64::from(x) - f64::from(x_lo)) * inv_span).floor();
    if idx < 0.0 {
        0
    } else if idx >= n as f64 {
        n - 1
    } else {
        idx as usize
    }
}

/// The strip scale for `n` strips over `[x_lo, x_hi]`.
#[inline]
fn inv_span(x_lo: f32, x_hi: f32, n: usize) -> f64 {
    n as f64 / (f64::from(x_hi) - f64::from(x_lo))
}

/// Striped interval structure in struct-of-arrays layout with lazy batched
/// expiration and density-based strip auto-tuning.
#[derive(Debug)]
pub struct StripedSweep {
    strips: Vec<SoaBuf>,
    /// Exact live bookkeeping: one `(expiry, copies)` entry per resident item.
    heap: ExpiryHeap,
    x_lo: f32,
    x_hi: f32,
    /// Precomputed `strips / (x_hi - x_lo)` of the current layout.
    inv_span: f64,
    /// Entries with `y_hi < cut` are tombstones (logically expired).
    cut: f32,
    /// Strip copies of live items.
    live_copies: usize,
    /// Physical strip entries (live + tombstoned).
    phys_copies: usize,
    auto_tune: bool,
    stats: SweepStats,
}

impl StripedSweep {
    /// Creates a structure with an explicit, fixed strip count over
    /// `[x_lo, x_hi]` (auto-tuning disabled).
    ///
    /// # Panics
    ///
    /// Panics if `strips == 0`.
    pub fn with_strips(x_lo: f32, x_hi: f32, strips: usize) -> Self {
        assert!(strips > 0, "strip count must be positive");
        let (x_lo, x_hi) = if x_hi > x_lo { (x_lo, x_hi) } else { (x_lo, x_lo + 1.0) };
        StripedSweep {
            strips: vec![SoaBuf::default(); strips],
            heap: ExpiryHeap::default(),
            x_lo,
            x_hi,
            inv_span: inv_span(x_lo, x_hi, strips),
            cut: f32::NEG_INFINITY,
            live_copies: 0,
            phys_copies: 0,
            auto_tune: false,
            stats: SweepStats::default(),
        }
    }

    /// Number of strips.
    pub fn strip_count(&self) -> usize {
        self.strips.len()
    }

    #[inline]
    fn strip_of(&self, x: f32) -> usize {
        strip_index(self.x_lo, self.inv_span, self.strips.len(), x)
    }

    /// Strip range `[first, last]` overlapped by an item's x-projection.
    #[inline]
    fn strip_range(&self, item: &Item) -> (usize, usize) {
        (self.strip_of(item.rect.lo.x), self.strip_of(item.rect.hi.x))
    }

    fn note_size(&mut self) {
        self.stats.max_resident = self.stats.max_resident.max(self.heap.len());
        self.stats.max_bytes = self.stats.max_bytes.max(self.bytes());
    }

    /// Upper y-coordinates (expiry positions) of every resident item, one
    /// entry per unique item. The spilling driver uses this to pick an
    /// eviction cut-off.
    pub fn resident_expiries(&self, out: &mut Vec<f32>) {
        self.heap.expiries_into(out);
    }

    /// Strip count the auto-tuning would pick for `live` residents.
    fn desired_strips(live: usize) -> usize {
        let raw = live.div_ceil(TARGET_PER_STRIP).max(INITIAL_STRIPS);
        raw.next_power_of_two().min(MAX_STRIPS)
    }

    /// Rebuilds the strip layout for `new_strips` strips from the live
    /// residents (tombstones are dropped for free along the way).
    fn retune(&mut self, new_strips: usize) {
        let cut = self.cut;
        let mut live: Vec<Item> = Vec::with_capacity(self.heap.len());
        for (s, strip) in self.strips.iter().enumerate() {
            for i in 0..strip.len() {
                if strip.y_hi[i] >= cut && self.strip_of(strip.x_lo[i]) == s {
                    live.push(strip.item(i));
                }
            }
        }
        self.strips = vec![SoaBuf::default(); new_strips];
        self.inv_span = inv_span(self.x_lo, self.x_hi, new_strips);
        let mut entries = Vec::with_capacity(live.len());
        let mut copies_total = 0;
        for item in &live {
            let (first, last) = self.strip_range(item);
            for s in first..=last {
                self.strips[s].push(item);
            }
            let copies = last - first + 1;
            copies_total += copies;
            entries.push(ExpiryEntry {
                y: item.rect.hi.y,
                copies: copies as u32,
            });
        }
        self.heap.rebuild(entries);
        self.live_copies = copies_total;
        self.phys_copies = copies_total;
    }

    /// Drops every tombstoned entry from every strip.
    fn compact(&mut self) {
        let cut = self.cut;
        let mut phys = 0;
        for strip in &mut self.strips {
            phys += strip.compact(cut);
        }
        self.phys_copies = phys;
    }

    /// Removes every resident item whose upper y-coordinate is at most
    /// `y_cut` — the items the sweep line will expire soonest — appending
    /// them to `out` (which is *not* cleared, so callers can batch several
    /// evictions into one reusable buffer).
    ///
    /// Unlike [`SweepStructure::expire_before`] the removed items are still
    /// *active* (the sweep line has not passed them); the caller takes over
    /// responsibility for joining them against later arrivals. This is the
    /// eviction primitive of the external spilling sweep. Returns the number
    /// of evicted items.
    pub fn evict_until(&mut self, y_cut: f32, out: &mut Vec<Item>) -> usize {
        let before = out.len();
        let (x_lo, scale, cut) = (self.x_lo, self.inv_span, self.cut);
        let n = self.strips.len();
        let mut phys = 0;
        for (s, strip) in self.strips.iter_mut().enumerate() {
            strip.retain_indexed(|buf, i| {
                let y = buf.y_hi[i];
                if y < cut {
                    return false; // tombstone: reclaim silently
                }
                if y <= y_cut {
                    if strip_index(x_lo, scale, n, buf.x_lo[i]) == s {
                        out.push(buf.item(i));
                    }
                    return false;
                }
                true
            });
            phys += strip.len();
        }
        self.phys_copies = phys;
        while let Some(e) = self.heap.pop_if(|y| y <= y_cut) {
            self.live_copies -= e.copies as usize;
        }
        if self.auto_tune {
            let desired = Self::desired_strips(self.heap.len());
            if self.strips.len() > 4 * desired {
                self.retune(desired);
            }
        }
        out.len() - before
    }
}

impl SweepStructure for StripedSweep {
    fn with_extent(x_lo: f32, x_hi: f32) -> Self {
        let mut s = StripedSweep::with_strips(x_lo, x_hi, INITIAL_STRIPS);
        s.auto_tune = true;
        s
    }

    fn insert(&mut self, item: Item) {
        let (first, last) = self.strip_range(&item);
        for s in first..=last {
            self.strips[s].push(&item);
        }
        let copies = last - first + 1;
        self.heap.push(item.rect.hi.y, copies as u32);
        self.live_copies += copies;
        self.phys_copies += copies;
        self.stats.inserts += 1;
        if self.auto_tune
            && self.heap.len() > self.strips.len() * GROW_PER_STRIP
            && self.strips.len() < MAX_STRIPS
        {
            self.retune(Self::desired_strips(self.heap.len()));
        }
        self.note_size();
    }

    fn expire_before(&mut self, y: f32) -> usize {
        if y > self.cut {
            self.cut = y;
        }
        let cut = self.cut;
        let mut removed = 0usize;
        while let Some(e) = self.heap.pop_if(|top| top < cut) {
            self.live_copies -= e.copies as usize;
            removed += 1;
        }
        self.stats.expirations += removed as u64;
        let dead = self.phys_copies - self.live_copies;
        if dead >= COMPACT_FLOOR && dead * COMPACT_DENOMINATOR > self.phys_copies {
            self.compact();
        }
        removed
    }

    fn query<F: FnMut(&Item)>(&mut self, query: &Item, mut report: F) {
        let (first, last) = self.strip_range(query);
        let q_home = self.strip_of(query.rect.lo.x);
        let (q_lo, q_hi) = (query.rect.lo.x, query.rect.hi.x);
        let cut = self.cut;
        let mut tests = 0u64;
        for s in first..=last {
            let strip = &self.strips[s];
            tests += strip.scan_overlaps(cut, q_lo, q_hi, |i| {
                // Canonical strip of the pair: where the rightmost of the two
                // lower endpoints falls. Report the pair only there.
                let canonical = q_home.max(self.strip_of(strip.x_lo[i]));
                if canonical == s {
                    report(&strip.item(i));
                }
            });
        }
        self.stats.rect_tests += tests;
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    /// Physical footprint: strip entries *including* not-yet-compacted
    /// tombstones, per-strip array headers, and the expiry-heap
    /// bookkeeping. Honest for the memory governor — a consequence is that
    /// spill budgets near the pre-overhaul threshold may trigger slightly
    /// earlier than the old `copies * 20` accounting did.
    fn bytes(&self) -> usize {
        self.phys_copies * std::mem::size_of::<Item>()
            + self.strips.len() * std::mem::size_of::<SoaBuf>()
            + self.heap.bytes()
    }

    fn stats(&self) -> SweepStats {
        self.stats
    }

    fn name() -> &'static str {
        "Striped-Sweep"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_geom::Rect;

    fn item(x0: f32, y0: f32, x1: f32, y1: f32, id: u32) -> Item {
        Item::new(Rect::from_coords(x0, y0, x1, y1), id)
    }

    fn collect_query(s: &mut StripedSweep, q: &Item) -> Vec<u32> {
        let mut out = Vec::new();
        s.query(q, |it| out.push(it.id));
        out.sort_unstable();
        out
    }

    #[test]
    fn reports_each_overlapping_item_exactly_once() {
        let mut s = StripedSweep::with_strips(0.0, 100.0, 10);
        // This item spans many strips.
        s.insert(item(5.0, 0.0, 95.0, 10.0, 1));
        s.insert(item(40.0, 0.0, 60.0, 10.0, 2));
        s.insert(item(96.0, 0.0, 99.0, 10.0, 3));
        // Query also spans many strips: each overlap must be reported once.
        let q = item(0.0, 1.0, 100.0, 2.0, 99);
        assert_eq!(collect_query(&mut s, &q), vec![1, 2, 3]);
        // Narrow query inside the long item's extent.
        let q2 = item(50.0, 1.0, 51.0, 2.0, 98);
        assert_eq!(collect_query(&mut s, &q2), vec![1, 2]);
    }

    #[test]
    fn items_outside_query_strips_are_never_tested() {
        let mut s = StripedSweep::with_strips(0.0, 100.0, 10);
        s.insert(item(90.0, 0.0, 91.0, 10.0, 1));
        let before = s.stats().rect_tests;
        let q = item(5.0, 1.0, 6.0, 2.0, 99);
        assert_eq!(collect_query(&mut s, &q), Vec::<u32>::new());
        // The lone item lives in strip 9; the query touches strip 0 only.
        assert_eq!(s.stats().rect_tests, before);
    }

    #[test]
    fn expire_counts_unique_items() {
        let mut s = StripedSweep::with_strips(0.0, 100.0, 10);
        s.insert(item(0.0, 0.0, 100.0, 1.0, 1)); // copies in all 10 strips
        s.insert(item(0.0, 0.0, 5.0, 5.0, 2));
        assert_eq!(s.len(), 2);
        assert_eq!(s.expire_before(2.0), 1);
        assert_eq!(s.len(), 1);
        assert_eq!(s.expire_before(10.0), 1);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        assert_eq!(s.stats().expirations, 2);
    }

    #[test]
    fn expired_items_are_never_reported_even_before_compaction() {
        let mut s = StripedSweep::with_strips(0.0, 100.0, 4);
        s.insert(item(10.0, 0.0, 12.0, 1.0, 1));
        s.insert(item(10.0, 0.0, 12.0, 10.0, 2));
        s.insert(item(10.0, 0.0, 12.0, 10.0, 3));
        assert_eq!(s.expire_before(2.0), 1);
        // Tombstone density (1 of 3) is below the compaction threshold: the
        // dead entry is still physically present but must stay invisible.
        let q = item(11.0, 2.0, 11.5, 3.0, 99);
        let before = s.stats().rect_tests;
        assert_eq!(collect_query(&mut s, &q), vec![2, 3]);
        assert_eq!(s.stats().rect_tests, before + 2);
    }

    #[test]
    fn coordinates_outside_the_extent_are_clamped() {
        let mut s = StripedSweep::with_strips(0.0, 10.0, 4);
        s.insert(item(-5.0, 0.0, -1.0, 10.0, 1));
        s.insert(item(11.0, 0.0, 20.0, 10.0, 2));
        let q = item(-10.0, 1.0, 30.0, 2.0, 99);
        assert_eq!(collect_query(&mut s, &q), vec![1, 2]);
    }

    #[test]
    fn degenerate_extent_does_not_panic() {
        let mut s = StripedSweep::with_strips(5.0, 5.0, 8);
        s.insert(item(4.0, 0.0, 6.0, 10.0, 1));
        let q = item(5.0, 1.0, 5.0, 2.0, 9);
        assert_eq!(collect_query(&mut s, &q), vec![1]);
    }

    #[test]
    fn memory_accounting_counts_copies() {
        let mut s = StripedSweep::with_strips(0.0, 100.0, 10);
        s.insert(item(0.0, 0.0, 100.0, 1.0, 1));
        let item_sz = std::mem::size_of::<Item>();
        assert!(s.bytes() >= 10 * item_sz);
        assert_eq!(s.stats().max_resident, 1);
    }

    #[test]
    fn default_extent_constructor_starts_at_the_initial_strip_count() {
        let s = StripedSweep::with_extent(0.0, 1.0);
        assert_eq!(s.strip_count(), INITIAL_STRIPS);
        assert_eq!(StripedSweep::name(), "Striped-Sweep");
    }

    #[test]
    fn strip_count_grows_with_density_and_shrinks_after_eviction() {
        const N: u32 = 10_000;
        let mut s = StripedSweep::with_extent(0.0, 1000.0);
        for i in 0..N {
            let x = (i % 997) as f32;
            s.insert(item(x, 0.0, x + 0.5, 1e6, i));
        }
        assert!(
            s.strip_count() > INITIAL_STRIPS,
            "{N} residents must outgrow {INITIAL_STRIPS} strips"
        );
        assert!(s.strip_count() <= MAX_STRIPS);
        assert_eq!(s.len(), N as usize);
        // Queries still see every overlap exactly once across rebuilds.
        let q = item(0.0, 1.0, 1000.0, 2.0, u32::MAX);
        let mut hits = Vec::new();
        s.query(&q, |it| hits.push(it.id));
        hits.sort_unstable();
        hits.dedup();
        assert_eq!(hits.len(), N as usize);
        // Evicting nearly everything shrinks the layout again.
        let grown = s.strip_count();
        let mut out = Vec::new();
        assert_eq!(s.evict_until(1e6, &mut out), N as usize);
        assert_eq!(out.len(), N as usize);
        assert!(s.is_empty());
        assert!(s.strip_count() < grown, "eviction should shrink the strips");
    }

    #[test]
    fn evict_until_appends_only_active_unique_items() {
        let mut s = StripedSweep::with_strips(0.0, 100.0, 10);
        s.insert(item(0.0, 0.0, 100.0, 3.0, 1)); // wide: copies in all strips
        s.insert(item(1.0, 0.0, 2.0, 1.0, 2));
        s.insert(item(3.0, 0.0, 4.0, 9.0, 3));
        assert_eq!(s.expire_before(2.0), 1); // id 2 expires
        let mut out = vec![item(9.0, 9.0, 9.5, 9.5, 77)]; // pre-existing entry
        assert_eq!(s.evict_until(5.0, &mut out), 1);
        // The expired item is not re-surfaced; the wide one appears once.
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].id, 1);
        assert_eq!(s.len(), 1);
        let q = item(0.0, 2.5, 100.0, 2.6, 99);
        assert_eq!(collect_query(&mut s, &q), vec![3]);
    }

    #[test]
    #[should_panic(expected = "strip count")]
    fn zero_strips_rejected() {
        let _ = StripedSweep::with_strips(0.0, 1.0, 0);
    }
}
