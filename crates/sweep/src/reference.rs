//! The pre-optimization reference kernels.
//!
//! Two structures preserve the exact pre-overhaul implementations, kept
//! in-tree for two jobs:
//!
//! * **oracle** — the differential tests drive the optimized kernels and
//!   these over the same workloads and require identical pair sets and
//!   consistent [`SweepStats`];
//! * **baseline** — the `hotpath` benchmark times them against the SoA
//!   kernels, so every wall-clock speedup in `BENCH_hotpath.json` is
//!   measured against the real pre-PR code, not a synthetic strawman.
//!
//! [`ListSweep`] is the pre-optimization `Forward-Sweep`: a single
//! `Vec<Item>` active list, scanned linearly for every query, with *eager*
//! expiration — every [`expire_before`](SweepStructure::expire_before) call
//! walks the whole list with `retain`. [`EagerStripedSweep`] is the
//! pre-optimization `Striped-Sweep` — `Vec<Item>` strips at a fixed count
//! of 256, with the same eager per-push `retain` over **every strip** —
//! i.e. the kernel SSSJ and PQ actually ran on before this overhaul.
//!
//! Neither is used by any join algorithm.

use usj_geom::Item;

use crate::structure::{SweepStats, SweepStructure};

/// Unordered active-list interval structure with eager expiration (the
/// pre-optimization reference kernel).
#[derive(Debug, Default)]
pub struct ListSweep {
    active: Vec<Item>,
    stats: SweepStats,
}

impl ListSweep {
    /// Creates an empty structure.
    pub fn new() -> Self {
        ListSweep::default()
    }

    fn note_size(&mut self) {
        self.stats.max_resident = self.stats.max_resident.max(self.active.len());
        self.stats.max_bytes = self.stats.max_bytes.max(self.bytes());
    }
}

impl SweepStructure for ListSweep {
    fn with_extent(_x_lo: f32, _x_hi: f32) -> Self {
        ListSweep::new()
    }

    fn insert(&mut self, item: Item) {
        self.active.push(item);
        self.stats.inserts += 1;
        self.note_size();
    }

    fn expire_before(&mut self, y: f32) -> usize {
        let before = self.active.len();
        self.active.retain(|it| it.rect.hi.y >= y);
        let removed = before - self.active.len();
        self.stats.expirations += removed as u64;
        removed
    }

    fn query<F: FnMut(&Item)>(&mut self, query: &Item, mut report: F) {
        let qx = query.rect.x_interval();
        for it in &self.active {
            self.stats.rect_tests += 1;
            if qx.overlaps(&it.rect.x_interval()) {
                report(it);
            }
        }
    }

    fn len(&self) -> usize {
        self.active.len()
    }

    fn bytes(&self) -> usize {
        self.active.len() * std::mem::size_of::<Item>()
    }

    fn stats(&self) -> SweepStats {
        self.stats
    }

    fn name() -> &'static str {
        "List-Sweep"
    }
}

/// Fixed strip count of the pre-optimization striped kernel.
const EAGER_STRIPS: usize = 256;

/// Pre-optimization striped interval structure: `Vec<Item>` strips, fixed
/// 256-strip layout, eager per-push expiration over every strip.
#[derive(Debug)]
pub struct EagerStripedSweep {
    strips: Vec<Vec<Item>>,
    x_lo: f32,
    x_hi: f32,
    resident: usize,
    copies: usize,
    stats: SweepStats,
}

/// The original f64-division strip formula, byte-for-byte.
#[inline]
fn strip_index(x_lo: f32, x_hi: f32, n: usize, x: f32) -> usize {
    let t = (f64::from(x) - f64::from(x_lo)) / (f64::from(x_hi) - f64::from(x_lo));
    let idx = (t * n as f64).floor();
    if idx < 0.0 {
        0
    } else if idx >= n as f64 {
        n - 1
    } else {
        idx as usize
    }
}

impl EagerStripedSweep {
    #[inline]
    fn strip_of(&self, x: f32) -> usize {
        strip_index(self.x_lo, self.x_hi, self.strips.len(), x)
    }

    fn note_size(&mut self) {
        self.stats.max_resident = self.stats.max_resident.max(self.resident);
        self.stats.max_bytes = self.stats.max_bytes.max(self.bytes());
    }
}

impl SweepStructure for EagerStripedSweep {
    fn with_extent(x_lo: f32, x_hi: f32) -> Self {
        let (x_lo, x_hi) = if x_hi > x_lo { (x_lo, x_hi) } else { (x_lo, x_lo + 1.0) };
        EagerStripedSweep {
            strips: vec![Vec::new(); EAGER_STRIPS],
            x_lo,
            x_hi,
            resident: 0,
            copies: 0,
            stats: SweepStats::default(),
        }
    }

    fn insert(&mut self, item: Item) {
        let (first, last) = (self.strip_of(item.rect.lo.x), self.strip_of(item.rect.hi.x));
        for s in first..=last {
            self.strips[s].push(item);
            self.copies += 1;
        }
        self.resident += 1;
        self.stats.inserts += 1;
        self.note_size();
    }

    fn expire_before(&mut self, y: f32) -> usize {
        let mut removed_unique = 0;
        let mut removed_copies = 0;
        let (x_lo, x_hi) = (self.x_lo, self.x_hi);
        let n = self.strips.len();
        for (s, strip) in self.strips.iter_mut().enumerate() {
            let before = strip.len();
            strip.retain(|it| {
                let expired = it.rect.hi.y < y;
                if expired && strip_index(x_lo, x_hi, n, it.rect.lo.x) == s {
                    removed_unique += 1;
                }
                !expired
            });
            removed_copies += before - strip.len();
        }
        self.copies -= removed_copies;
        self.resident -= removed_unique;
        self.stats.expirations += removed_unique as u64;
        removed_unique
    }

    fn query<F: FnMut(&Item)>(&mut self, query: &Item, mut report: F) {
        let (first, last) = (self.strip_of(query.rect.lo.x), self.strip_of(query.rect.hi.x));
        let q_home = self.strip_of(query.rect.lo.x);
        let qx = query.rect.x_interval();
        for s in first..=last {
            for it in &self.strips[s] {
                self.stats.rect_tests += 1;
                if !qx.overlaps(&it.rect.x_interval()) {
                    continue;
                }
                let canonical = q_home.max(self.strip_of(it.rect.lo.x));
                if canonical == s {
                    report(it);
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.resident
    }

    fn bytes(&self) -> usize {
        self.copies * std::mem::size_of::<Item>()
            + self.strips.len() * std::mem::size_of::<Vec<Item>>()
    }

    fn stats(&self) -> SweepStats {
        self.stats
    }

    fn name() -> &'static str {
        "Eager-Striped-Sweep"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_geom::Rect;

    fn item(x0: f32, y0: f32, x1: f32, y1: f32, id: u32) -> Item {
        Item::new(Rect::from_coords(x0, y0, x1, y1), id)
    }

    #[test]
    fn eager_striped_kernel_dedups_and_counts() {
        let mut s = EagerStripedSweep::with_extent(0.0, 100.0);
        s.insert(item(5.0, 0.0, 95.0, 10.0, 1)); // spans many strips
        s.insert(item(40.0, 0.0, 60.0, 1.0, 2));
        let mut hits = Vec::new();
        s.query(&item(0.0, 1.0, 100.0, 2.0, 99), |it| hits.push(it.id));
        hits.sort_unstable();
        assert_eq!(hits, vec![1, 2], "each overlap reported exactly once");
        assert_eq!(s.expire_before(5.0), 1);
        assert_eq!(s.len(), 1);
        let st = s.stats();
        assert_eq!(st.inserts, 2);
        assert_eq!(st.expirations, 1);
        assert!(st.max_bytes > 0);
        assert_eq!(EagerStripedSweep::name(), "Eager-Striped-Sweep");
    }

    #[test]
    fn reference_kernel_reports_overlaps_and_counts() {
        let mut s = ListSweep::with_extent(0.0, 10.0);
        s.insert(item(0.0, 0.0, 2.0, 10.0, 1));
        s.insert(item(5.0, 0.0, 6.0, 1.0, 2));
        let mut hits = Vec::new();
        s.query(&item(1.0, 1.0, 2.0, 2.0, 99), |it| hits.push(it.id));
        assert_eq!(hits, vec![1]);
        assert_eq!(s.expire_before(2.0), 1);
        assert_eq!(s.len(), 1);
        let st = s.stats();
        assert_eq!(st.inserts, 2);
        assert_eq!(st.expirations, 1);
        assert_eq!(st.rect_tests, 2);
        assert_eq!(st.max_bytes, 2 * std::mem::size_of::<Item>());
        assert_eq!(ListSweep::name(), "List-Sweep");
    }
}
