//! The `Forward-Sweep` interval structure.
//!
//! This is the structure used by most earlier spatial-join implementations
//! (including the original PBSM and the R-tree tree join): the active
//! rectangles of each input are kept in a single unordered list and every
//! query scans the entire list.
//!
//! This implementation keeps the resident set in struct-of-arrays layout
//! (see the `soa` module): the overlap scan reads three packed `f32` arrays
//! with a branch-light comparison, and expiration is lazy — an expiry
//! min-heap keeps the exact live count and expiration totals while
//! passed items linger as tombstones until a batched compaction reclaims
//! them. Identical pair sequences and counters to the eager
//! [`ListSweep`](crate::ListSweep) reference kernel, without the `O(n)`
//! `retain` on every push.

use usj_geom::Item;

use crate::soa::{ExpiryHeap, SoaBuf};
use crate::structure::{SweepStats, SweepStructure};

/// Compact once tombstones exceed physical entries / denominator: the
/// threshold keeps the scan overhead of tombstones bounded while the
/// batched compaction itself stays amortized-constant per insert.
const COMPACT_DENOMINATOR: usize = 4;

/// Never compact below this many tombstones — small resident sets would
/// otherwise hit the threshold every few expirations and thrash the arrays
/// with `O(n)` copies whose batching is the whole point.
const COMPACT_FLOOR: usize = 64;

/// Unordered active-list interval structure in struct-of-arrays layout with
/// lazy batched expiration.
#[derive(Debug)]
pub struct ForwardSweep {
    buf: SoaBuf,
    heap: ExpiryHeap,
    /// Entries with `y_hi < cut` are tombstones (logically expired).
    cut: f32,
    /// Tombstoned entries still physically present in `buf`.
    dead: usize,
    stats: SweepStats,
}

impl Default for ForwardSweep {
    fn default() -> Self {
        ForwardSweep::new()
    }
}

impl ForwardSweep {
    /// Creates an empty structure.
    pub fn new() -> Self {
        ForwardSweep {
            buf: SoaBuf::default(),
            heap: ExpiryHeap::default(),
            // The tombstone threshold must start below every possible
            // y-coordinate (a zero-default would silently tombstone
            // negative-y items).
            cut: f32::NEG_INFINITY,
            dead: 0,
            stats: SweepStats::default(),
        }
    }

    fn note_size(&mut self) {
        self.stats.max_resident = self.stats.max_resident.max(self.heap.len());
        self.stats.max_bytes = self.stats.max_bytes.max(self.bytes());
    }
}

impl SweepStructure for ForwardSweep {
    fn with_extent(_x_lo: f32, _x_hi: f32) -> Self {
        ForwardSweep::new()
    }

    fn insert(&mut self, item: Item) {
        self.buf.push(&item);
        self.heap.push(item.rect.hi.y, 1);
        self.stats.inserts += 1;
        self.note_size();
    }

    fn expire_before(&mut self, y: f32) -> usize {
        if y > self.cut {
            self.cut = y;
        }
        let cut = self.cut;
        let mut removed = 0;
        while self.heap.pop_if(|top| top < cut).is_some() {
            removed += 1;
        }
        self.dead += removed;
        self.stats.expirations += removed as u64;
        if self.dead >= COMPACT_FLOOR && self.dead * COMPACT_DENOMINATOR > self.buf.len() {
            self.buf.compact(cut);
            self.dead = 0;
        }
        removed
    }

    fn query<F: FnMut(&Item)>(&mut self, query: &Item, mut report: F) {
        // Tombstones are skipped without being counted — the eager reference
        // kernel never saw them either (`scan_overlaps` only counts live
        // entries).
        let buf = &self.buf;
        let tests = buf.scan_overlaps(self.cut, query.rect.lo.x, query.rect.hi.x, |i| {
            report(&buf.item(i));
        });
        self.stats.rect_tests += tests;
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn bytes(&self) -> usize {
        self.buf.len() * std::mem::size_of::<Item>() + self.heap.bytes()
    }

    fn stats(&self) -> SweepStats {
        self.stats
    }

    fn name() -> &'static str {
        "Forward-Sweep"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_geom::Rect;

    fn item(x0: f32, y0: f32, x1: f32, y1: f32, id: u32) -> Item {
        Item::new(Rect::from_coords(x0, y0, x1, y1), id)
    }

    fn collect_query(s: &mut ForwardSweep, q: &Item) -> Vec<u32> {
        let mut out = Vec::new();
        s.query(q, |it| out.push(it.id));
        out.sort_unstable();
        out
    }

    #[test]
    fn query_reports_only_x_overlapping_items() {
        let mut s = ForwardSweep::new();
        s.insert(item(0.0, 0.0, 2.0, 10.0, 1));
        s.insert(item(5.0, 0.0, 6.0, 10.0, 2));
        s.insert(item(1.5, 0.0, 5.5, 10.0, 3));
        let q = item(1.0, 1.0, 2.0, 2.0, 99);
        assert_eq!(collect_query(&mut s, &q), vec![1, 3]);
    }

    #[test]
    fn expire_removes_items_below_the_sweep_line() {
        let mut s = ForwardSweep::new();
        s.insert(item(0.0, 0.0, 1.0, 1.0, 1));
        s.insert(item(0.0, 0.0, 1.0, 5.0, 2));
        s.insert(item(0.0, 0.0, 1.0, 3.0, 3));
        assert_eq!(s.expire_before(3.0), 1); // only item 1 (hi.y = 1) expires
        assert_eq!(s.len(), 2);
        assert_eq!(s.expire_before(3.0), 0); // idempotent at the same line
        assert_eq!(s.expire_before(10.0), 2);
        assert!(s.is_empty());
    }

    #[test]
    fn items_touching_the_sweep_line_are_kept() {
        let mut s = ForwardSweep::new();
        s.insert(item(0.0, 0.0, 1.0, 2.0, 1));
        assert_eq!(s.expire_before(2.0), 0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn expired_items_are_never_reported_even_before_compaction() {
        let mut s = ForwardSweep::new();
        // Many short-lived items plus one survivor: the tombstone density
        // stays below the compaction threshold after the first expiration,
        // so the query must skip tombstones by itself.
        s.insert(item(0.0, 0.0, 1.0, 1.0, 1));
        s.insert(item(0.0, 0.0, 1.0, 10.0, 2));
        s.insert(item(0.0, 0.0, 1.0, 10.0, 3));
        assert_eq!(s.expire_before(2.0), 1);
        let q = item(0.0, 2.0, 1.0, 3.0, 99);
        assert_eq!(collect_query(&mut s, &q), vec![2, 3]);
        // Tombstones are not rectangle-tested either.
        assert_eq!(s.stats().rect_tests, 2);
    }

    #[test]
    fn stats_track_inserts_tests_and_memory() {
        let mut s = ForwardSweep::new();
        for i in 0..10 {
            s.insert(item(i as f32, 0.0, i as f32 + 1.0, 10.0, i));
        }
        let q = item(0.0, 0.0, 100.0, 1.0, 99);
        let mut n = 0;
        s.query(&q, |_| n += 1);
        assert_eq!(n, 10);
        let st = s.stats();
        assert_eq!(st.inserts, 10);
        assert_eq!(st.rect_tests, 10);
        assert_eq!(st.max_resident, 10);
        // 20 payload bytes per entry plus 8 bytes of expiry bookkeeping.
        assert_eq!(st.max_bytes, 10 * (std::mem::size_of::<Item>() + 8));
        s.expire_before(100.0);
        assert_eq!(s.stats().expirations, 10);
    }

    #[test]
    fn with_extent_ignores_the_extent() {
        let s = ForwardSweep::with_extent(0.0, 100.0);
        assert!(s.is_empty());
        assert_eq!(ForwardSweep::name(), "Forward-Sweep");
    }

    #[test]
    fn default_instance_handles_negative_coordinates() {
        // Regression: a derived Default once left the tombstone cut at 0.0,
        // silently hiding items that live entirely below y = 0.
        let mut s = ForwardSweep::default();
        s.insert(item(-5.0, -10.0, -4.0, -1.0, 1));
        assert_eq!(s.len(), 1);
        let q = item(-4.5, -9.0, -4.2, -8.0, 99);
        assert_eq!(collect_query(&mut s, &q), vec![1]);
        assert_eq!(s.expire_before(-0.5), 1);
        assert!(s.is_empty());
    }
}
