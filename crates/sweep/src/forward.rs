//! The `Forward-Sweep` interval structure.
//!
//! This is the structure used by most earlier spatial-join implementations
//! (including the original PBSM and the R-tree tree join): the active
//! rectangles of each input are kept in a single unordered list, every query
//! scans the entire list, and expired entries are removed when the sweep
//! line passes them.

use usj_geom::Item;

use crate::structure::{SweepStats, SweepStructure};

/// Unordered active-list interval structure.
#[derive(Debug, Default)]
pub struct ForwardSweep {
    active: Vec<Item>,
    stats: SweepStats,
}

impl ForwardSweep {
    /// Creates an empty structure.
    pub fn new() -> Self {
        ForwardSweep::default()
    }

    fn note_size(&mut self) {
        self.stats.max_resident = self.stats.max_resident.max(self.active.len());
        self.stats.max_bytes = self.stats.max_bytes.max(self.bytes());
    }
}

impl SweepStructure for ForwardSweep {
    fn with_extent(_x_lo: f32, _x_hi: f32) -> Self {
        ForwardSweep::new()
    }

    fn insert(&mut self, item: Item) {
        self.active.push(item);
        self.stats.inserts += 1;
        self.note_size();
    }

    fn expire_before(&mut self, y: f32) -> usize {
        let before = self.active.len();
        self.active.retain(|it| it.rect.hi.y >= y);
        let removed = before - self.active.len();
        self.stats.expirations += removed as u64;
        removed
    }

    fn query<F: FnMut(&Item)>(&mut self, query: &Item, mut report: F) {
        let qx = query.rect.x_interval();
        for it in &self.active {
            self.stats.rect_tests += 1;
            if qx.overlaps(&it.rect.x_interval()) {
                report(it);
            }
        }
    }

    fn len(&self) -> usize {
        self.active.len()
    }

    fn bytes(&self) -> usize {
        self.active.len() * std::mem::size_of::<Item>()
    }

    fn stats(&self) -> SweepStats {
        self.stats
    }

    fn name() -> &'static str {
        "Forward-Sweep"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_geom::Rect;

    fn item(x0: f32, y0: f32, x1: f32, y1: f32, id: u32) -> Item {
        Item::new(Rect::from_coords(x0, y0, x1, y1), id)
    }

    fn collect_query(s: &mut ForwardSweep, q: &Item) -> Vec<u32> {
        let mut out = Vec::new();
        s.query(q, |it| out.push(it.id));
        out.sort_unstable();
        out
    }

    #[test]
    fn query_reports_only_x_overlapping_items() {
        let mut s = ForwardSweep::new();
        s.insert(item(0.0, 0.0, 2.0, 10.0, 1));
        s.insert(item(5.0, 0.0, 6.0, 10.0, 2));
        s.insert(item(1.5, 0.0, 5.5, 10.0, 3));
        let q = item(1.0, 1.0, 2.0, 2.0, 99);
        assert_eq!(collect_query(&mut s, &q), vec![1, 3]);
    }

    #[test]
    fn expire_removes_items_below_the_sweep_line() {
        let mut s = ForwardSweep::new();
        s.insert(item(0.0, 0.0, 1.0, 1.0, 1));
        s.insert(item(0.0, 0.0, 1.0, 5.0, 2));
        s.insert(item(0.0, 0.0, 1.0, 3.0, 3));
        assert_eq!(s.expire_before(3.0), 1); // only item 1 (hi.y = 1) expires
        assert_eq!(s.len(), 2);
        assert_eq!(s.expire_before(3.0), 0); // idempotent at the same line
        assert_eq!(s.expire_before(10.0), 2);
        assert!(s.is_empty());
    }

    #[test]
    fn items_touching_the_sweep_line_are_kept() {
        let mut s = ForwardSweep::new();
        s.insert(item(0.0, 0.0, 1.0, 2.0, 1));
        assert_eq!(s.expire_before(2.0), 0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn stats_track_inserts_tests_and_memory() {
        let mut s = ForwardSweep::new();
        for i in 0..10 {
            s.insert(item(i as f32, 0.0, i as f32 + 1.0, 10.0, i));
        }
        let q = item(0.0, 0.0, 100.0, 1.0, 99);
        let mut n = 0;
        s.query(&q, |_| n += 1);
        assert_eq!(n, 10);
        let st = s.stats();
        assert_eq!(st.inserts, 10);
        assert_eq!(st.rect_tests, 10);
        assert_eq!(st.max_resident, 10);
        assert_eq!(st.max_bytes, 10 * std::mem::size_of::<Item>());
        s.expire_before(100.0);
        assert_eq!(s.stats().expirations, 10);
    }

    #[test]
    fn with_extent_ignores_the_extent() {
        let s = ForwardSweep::with_extent(0.0, 100.0);
        assert!(s.is_empty());
        assert_eq!(ForwardSweep::name(), "Forward-Sweep");
    }
}
