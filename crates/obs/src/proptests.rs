//! Property tests on the vendored `usj_proptest` harness.
//!
//! The load-bearing property is the histogram's quantile error bound: for
//! any random sample set and any quantile, the log-bucketed answer must
//! bracket the exact nearest-rank answer from above by at most
//! `exact/16 + 1` — that is the contract that let the bench crates drop
//! their private sort-the-samples percentile code.

use usj_proptest::forall;

use crate::histogram::LogHistogram;
use crate::recorder::{Event, RingCollector, Recorder};

/// Exact nearest-rank percentile over a sorted sample — the code shape
/// `usj_bench::loadgen` used before the histogram replaced it.
fn exact_nearest_rank(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[test]
fn histogram_quantiles_bracket_exact_nearest_rank() {
    forall!(128, |g| {
        // Mix of scales: tight clusters, long tails, zeros.
        let mut samples = g.vec(1, 400, |g| match g.usize_in(0, 4) {
            0 => g.u64_in(0, 20),
            1 => g.u64_in(0, 2_000),
            2 => g.u64_in(1_000, 5_000_000),
            _ => g.u64_in(0, u64::MAX / 2),
        });
        let h = LogHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        let mut prev = 0u64;
        for q in [0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0] {
            let exact = exact_nearest_rank(&samples, q);
            let approx = h.quantile(q);
            assert!(approx >= exact, "q={q}: approx {approx} below exact {exact}");
            assert!(
                approx <= exact + exact / 16 + 1,
                "q={q}: approx {approx} beyond the 1/16-relative bound over exact {exact}"
            );
            assert!(approx >= prev, "quantiles must be monotone in q");
            prev = approx;
        }
        assert_eq!(h.min(), samples.first().copied(), "min is exact");
        assert_eq!(h.max(), samples.last().copied(), "max is exact");
        assert_eq!(h.count(), samples.len() as u64);
    });
}

#[test]
fn ring_collector_never_exceeds_capacity_and_accounts_every_event() {
    forall!(64, |g| {
        let cap = g.usize_in(1, 64);
        let ring = RingCollector::new(cap);
        let mut pushed = 0u64;
        for _ in 0..g.usize_in(1, 8) {
            let mut batch: Vec<Event> = (0..g.usize_in(0, 48))
                .map(|i| Event::Instant {
                    name: "tick",
                    parent: None,
                    t_us: i as u64,
                    value: 0,
                })
                .collect();
            pushed += batch.len() as u64;
            ring.record_batch(&mut batch);
            assert!(ring.len() <= cap, "ring exceeded its bound");
        }
        let (events, dropped) = ring.drain();
        assert_eq!(events.len() as u64 + dropped, pushed, "kept + dropped == pushed");
    });
}
