//! Observability core: tracing spans, clocks, and a metric registry.
//!
//! The paper's central claim is a *cost argument* — sweeping-based spatial
//! joins win because their I/O and working-set behaviour is predictable.
//! Every other crate in the workspace proves that claim through end-of-run
//! aggregates; this crate adds the operational layer that turns per-phase
//! behaviour into *observable facts*:
//!
//! * [`Clock`] — a pluggable monotonic microsecond clock: [`HostClock`]
//!   (anchored `Instant`) in production, [`VirtualClock`] (manually
//!   advanced atomic) in tests, so trace tests are deterministic.
//! * [`Recorder`] / [`RingCollector`] — the event sink. Spans are buffered
//!   in a thread-local vector and drained in batches into a bounded ring
//!   (oldest events dropped first, drop count reported), so a recording
//!   run can never hoard unbounded memory.
//! * [`span`] / [`install`] — the thread-local span context. With no
//!   recorder installed (the default), [`span`] is a single thread-local
//!   probe and the returned guard is inert — tracing off stays
//!   byte-identical and near-zero-cost. Layers annotate spans with charged
//!   I/O deltas ([`SpanIo`]) so every phase carries both wall time and the
//!   simulated cost model's verdict.
//! * [`LogHistogram`] — a log-bucketed histogram with a proven quantile
//!   error bound (≤ 1/16 relative + 1), replacing the bench crates'
//!   private nearest-rank percentile code.
//! * [`MetricsRegistry`] — named counters / gauges / histograms with a
//!   cheap always-on update path and a [`MetricsSnapshot`] JSON export.
//! * [`QueryTrace`] — the span tree reconstructed from drained events,
//!   exportable as JSON or as a Chrome trace-event file
//!   ([`ChromeTrace`]) viewable in `chrome://tracing` / Perfetto.
//!
//! The crate is dependency-free (the optional `usj_proptest` is the
//! vendored in-tree property harness) so every layer — including `usj_io`
//! at the bottom of the stack — can depend on it.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod clock;
pub mod context;
pub mod histogram;
pub mod metrics;
pub mod recorder;
pub mod trace;

pub use clock::{Clock, HostClock, VirtualClock};
pub use context::{enabled, install, instant, span, span_detail, ObsGuard, SpanGuard};
pub use histogram::LogHistogram;
pub use metrics::{Counter, Gauge, HistogramSummary, MetricsRegistry, MetricsSnapshot};
pub use recorder::{Event, NoopRecorder, Recorder, RingCollector, SpanIo};
pub use trace::{ChromeTrace, QueryTrace, TraceMark, TraceSpan};

// Property-based tests on the vendored `usj_proptest` harness; opt-in
// behind the `proptest` feature like the rest of the workspace.
#[cfg(all(test, feature = "proptest"))]
mod proptests;
