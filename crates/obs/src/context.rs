//! The thread-local span context.
//!
//! Tracing is *installed* per thread: [`install`] binds a recorder and a
//! clock to the current thread and returns an RAII [`ObsGuard`] that
//! restores the previous binding (and flushes buffered events) on drop.
//! Code at any depth then calls [`span`] / [`instant`] without threading a
//! recorder handle through every operator signature.
//!
//! The cost contract: with nothing installed — the production default —
//! [`span`] is one thread-local probe and the returned [`SpanGuard`] is
//! inert, so instrumented code paths stay near-zero-cost and byte-identical
//! to uninstrumented ones. Events are buffered in a thread-local `Vec` and
//! drained to the recorder in batches of [`FLUSH_BATCH`], so a recording
//! run takes the collector lock once per batch, not once per event.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::clock::Clock;
use crate::recorder::{Event, Recorder, SpanIo};

/// Thread-local buffer capacity before a drain to the recorder.
pub const FLUSH_BATCH: usize = 128;

/// Process-wide span identifier allocator (ids stay unique when traces
/// from many threads merge into one collector).
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

struct ThreadCtx {
    recorder: Arc<dyn Recorder>,
    clock: Arc<dyn Clock>,
    buf: Vec<Event>,
    /// Open spans on this thread, innermost last.
    stack: Vec<u64>,
}

impl ThreadCtx {
    fn push_event(&mut self, event: Event) {
        self.buf.push(event);
        if self.buf.len() >= FLUSH_BATCH {
            self.recorder.record_batch(&mut self.buf);
        }
    }

    fn flush(&mut self) {
        if !self.buf.is_empty() {
            self.recorder.record_batch(&mut self.buf);
        }
    }
}

thread_local! {
    static CTX: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
}

/// Binds `recorder` + `clock` to the current thread until the returned
/// guard drops (which flushes buffered events and restores any previous
/// binding). Installing a recorder whose
/// [`is_enabled`](Recorder::is_enabled) is false (the
/// [`NoopRecorder`](crate::NoopRecorder)) is equivalent to installing
/// nothing.
pub fn install(recorder: Arc<dyn Recorder>, clock: Arc<dyn Clock>) -> ObsGuard {
    // A disabled recorder installs `None`, which uninstalls any outer
    // binding for the guard's lifetime (that is what "no-op" means).
    let new = recorder.is_enabled().then(|| ThreadCtx {
        recorder,
        clock,
        buf: Vec::with_capacity(FLUSH_BATCH),
        stack: Vec::new(),
    });
    let prev = CTX.with(|c| std::mem::replace(&mut *c.borrow_mut(), new));
    ObsGuard { prev }
}

/// True when the current thread has an enabled recorder installed.
pub fn enabled() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// Restores the previous thread binding on drop, flushing first.
///
/// Returned by [`install`]; hold it for the scope that should be traced.
#[must_use = "dropping the guard immediately uninstalls the recorder"]
pub struct ObsGuard {
    prev: Option<ThreadCtx>,
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        let restored = self.prev.take();
        CTX.with(|c| {
            let mut slot = c.borrow_mut();
            if let Some(ctx) = slot.as_mut() {
                ctx.flush();
            }
            *slot = restored;
        });
    }
}

/// Opens a span named `name` on the current thread.
///
/// With no recorder installed the returned guard is inert. Otherwise the
/// span nests under the innermost open span on this thread and closes when
/// the guard drops (or earlier, field-by-field, via
/// [`SpanGuard::add_io`]).
pub fn span(name: &'static str) -> SpanGuard {
    open_span(name, None)
}

/// Like [`span`], but attaches a dynamic label built only when tracing is
/// enabled (so the common disabled path never allocates).
pub fn span_detail(name: &'static str, detail: impl FnOnce() -> String) -> SpanGuard {
    if enabled() {
        open_span_with(name, Some(detail()))
    } else {
        SpanGuard { id: None, io: SpanIo::default() }
    }
}

fn open_span(name: &'static str, detail: Option<String>) -> SpanGuard {
    if enabled() {
        open_span_with(name, detail)
    } else {
        SpanGuard { id: None, io: SpanIo::default() }
    }
}

fn open_span_with(name: &'static str, detail: Option<String>) -> SpanGuard {
    CTX.with(|c| {
        let mut slot = c.borrow_mut();
        let Some(ctx) = slot.as_mut() else {
            return SpanGuard { id: None, io: SpanIo::default() };
        };
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = ctx.stack.last().copied();
        let t_us = ctx.clock.now_us();
        ctx.stack.push(id);
        ctx.push_event(Event::SpanBegin { id, parent, name, detail, t_us });
        SpanGuard { id: Some(id), io: SpanIo::default() }
    })
}

/// Emits a point event (`value` is a free-form magnitude) under the
/// innermost open span. A no-op when nothing is installed.
pub fn instant(name: &'static str, value: u64) {
    CTX.with(|c| {
        let mut slot = c.borrow_mut();
        let Some(ctx) = slot.as_mut() else { return };
        let parent = ctx.stack.last().copied();
        let t_us = ctx.clock.now_us();
        ctx.push_event(Event::Instant { name, parent, t_us, value });
    });
}

/// RAII handle for an open span; closing happens on drop.
#[must_use = "dropping the span guard closes the span"]
pub struct SpanGuard {
    id: Option<u64>,
    io: SpanIo,
}

impl SpanGuard {
    /// True when this span is actually being recorded. Callers use this to
    /// skip measurement work (e.g. an I/O snapshot) on the disabled path.
    pub fn is_recording(&self) -> bool {
        self.id.is_some()
    }

    /// Attributes a charged-I/O delta to this span (accumulated; reported
    /// on the span-end event).
    pub fn add_io(&mut self, io: SpanIo) {
        if self.id.is_some() {
            self.io = self.io.merged(&io);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(id) = self.id else { return };
        let io = self.io;
        CTX.with(|c| {
            let mut slot = c.borrow_mut();
            let Some(ctx) = slot.as_mut() else { return };
            // Guards normally drop innermost-first; if an intermediate
            // guard leaked, closing this span implicitly closes anything
            // opened under it.
            if let Some(pos) = ctx.stack.iter().rposition(|&s| s == id) {
                ctx.stack.truncate(pos);
            }
            let t_us = ctx.clock.now_us();
            ctx.push_event(Event::SpanEnd { id, t_us, io });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::recorder::{NoopRecorder, RingCollector};

    #[test]
    fn spans_are_inert_without_an_installed_recorder() {
        assert!(!enabled());
        let mut s = span("orphan");
        assert!(!s.is_recording());
        s.add_io(SpanIo { pages_read: 1, ..SpanIo::default() });
        instant("orphan.instant", 7);
        drop(s);
        assert!(!enabled());
    }

    #[test]
    fn nested_spans_record_parentage_and_io() {
        let ring = Arc::new(RingCollector::new(1024));
        let clock = Arc::new(VirtualClock::new());
        let guard = install(ring.clone(), clock.clone());
        assert!(enabled());

        let outer = span("outer");
        clock.advance(5);
        {
            let mut inner = span_detail("inner", || "d".to_string());
            inner.add_io(SpanIo { pages_read: 3, ..SpanIo::default() });
            instant("mark", 42);
            clock.advance(10);
        }
        clock.advance(1);
        drop(outer);
        drop(guard);
        assert!(!enabled());

        let (events, dropped) = ring.drain();
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 5);
        let Event::SpanBegin { id: outer_id, parent: None, name: "outer", t_us: 0, .. } =
            &events[0]
        else {
            panic!("unexpected first event {:?}", events[0]);
        };
        let Event::SpanBegin { id: inner_id, parent: Some(p), detail: Some(d), t_us: 5, .. } =
            &events[1]
        else {
            panic!("unexpected second event {:?}", events[1]);
        };
        assert_eq!(p, outer_id);
        assert_eq!(d, "d");
        let Event::Instant { name: "mark", parent: Some(ip), value: 42, .. } = &events[2] else {
            panic!("unexpected third event {:?}", events[2]);
        };
        assert_eq!(ip, inner_id);
        let Event::SpanEnd { id: e1, t_us: 15, io } = &events[3] else {
            panic!("unexpected fourth event {:?}", events[3]);
        };
        assert_eq!(e1, inner_id);
        assert_eq!(io.pages_read, 3);
        let Event::SpanEnd { id: e2, t_us: 16, .. } = &events[4] else {
            panic!("unexpected fifth event {:?}", events[4]);
        };
        assert_eq!(e2, outer_id);
    }

    #[test]
    fn installing_the_noop_recorder_masks_an_outer_recording_context() {
        let ring = Arc::new(RingCollector::new(64));
        let clock = Arc::new(VirtualClock::new());
        let outer = install(ring.clone(), clock);
        {
            let inner = install(Arc::new(NoopRecorder), Arc::new(VirtualClock::new()));
            assert!(!enabled(), "no-op recorder behaves exactly like no recorder");
            let s = span("hidden");
            assert!(!s.is_recording());
            drop(s);
            drop(inner);
        }
        assert!(enabled(), "outer binding restored");
        drop(span("visible"));
        drop(outer);
        let (events, _) = ring.drain();
        assert_eq!(events.len(), 2, "only the outer span was recorded");
    }

    #[test]
    fn batches_flush_at_the_threshold() {
        let ring = Arc::new(RingCollector::new(100_000));
        let guard = install(ring.clone(), Arc::new(VirtualClock::new()));
        for _ in 0..FLUSH_BATCH / 2 {
            drop(span("tick"));
        }
        // FLUSH_BATCH events were buffered, so at least one batch reached
        // the ring before the guard dropped.
        assert!(ring.len() >= FLUSH_BATCH);
        drop(guard);
        let (events, _) = ring.drain();
        assert_eq!(events.len(), FLUSH_BATCH);
    }
}
