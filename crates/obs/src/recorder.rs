//! Event sinks: the [`Recorder`] trait, the no-op default, and the bounded
//! [`RingCollector`].
//!
//! Spans are buffered per thread (see [`crate::context`]) and handed to the
//! recorder in batches, so the recorder's lock is taken once per batch, not
//! once per event. The ring is bounded: a runaway trace drops its *oldest*
//! events and reports how many, instead of hoarding memory.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Charged-I/O delta attributed to one span, in the simulated cost model's
/// units (see `usj_io::IoStats`; this crate sits below `usj_io`, so it
/// carries the four numbers that matter rather than the full struct).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanIo {
    /// Pages read while the span was open.
    pub pages_read: u64,
    /// Pages written while the span was open.
    pub pages_written: u64,
    /// Sequential device operations (reads + writes).
    pub seq_ops: u64,
    /// Random device operations (reads + writes).
    pub rand_ops: u64,
}

impl SpanIo {
    /// True when the span charged no I/O at all.
    pub fn is_zero(&self) -> bool {
        *self == SpanIo::default()
    }

    /// Field-wise sum of two deltas.
    pub fn merged(&self, other: &SpanIo) -> SpanIo {
        SpanIo {
            pages_read: self.pages_read + other.pages_read,
            pages_written: self.pages_written + other.pages_written,
            seq_ops: self.seq_ops + other.seq_ops,
            rand_ops: self.rand_ops + other.rand_ops,
        }
    }
}

/// One tracing event. Span identifiers are unique per process (allocated
/// from one atomic counter), so events from many threads can be merged into
/// a single collector without collisions.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A span opened.
    SpanBegin {
        /// Process-unique span identifier.
        id: u64,
        /// The enclosing span on the opening thread, if any.
        parent: Option<u64>,
        /// Static span name (`"sssj.sort"`, `"live.flush"`, …).
        name: &'static str,
        /// Optional dynamic label (dataset name, query kind); allocated
        /// only while tracing is enabled.
        detail: Option<String>,
        /// Clock reading at open, microseconds.
        t_us: u64,
    },
    /// A span closed.
    SpanEnd {
        /// Identifier from the matching [`Event::SpanBegin`].
        id: u64,
        /// Clock reading at close, microseconds.
        t_us: u64,
        /// Charged I/O attributed to the span (zero when untracked).
        io: SpanIo,
    },
    /// A point event (spill batch evicted, residents expired, …).
    Instant {
        /// Static event name.
        name: &'static str,
        /// The enclosing span on the emitting thread, if any.
        parent: Option<u64>,
        /// Clock reading, microseconds.
        t_us: u64,
        /// Free-form magnitude (items spilled, residents expired, …).
        value: u64,
    },
}

impl Event {
    /// The event's timestamp, microseconds.
    pub fn t_us(&self) -> u64 {
        match self {
            Event::SpanBegin { t_us, .. }
            | Event::SpanEnd { t_us, .. }
            | Event::Instant { t_us, .. } => *t_us,
        }
    }
}

/// Destination for drained event batches.
///
/// Implementations take the whole batch under one lock acquisition and must
/// leave the vector empty (the thread-local buffer is reused).
pub trait Recorder: Send + Sync {
    /// Consumes a batch of events, leaving `events` empty.
    fn record_batch(&self, events: &mut Vec<Event>);

    /// False when the recorder discards everything — the span context then
    /// skips event construction entirely, so installing the no-op recorder
    /// costs the same as installing nothing.
    fn is_enabled(&self) -> bool {
        true
    }
}

/// The default recorder: discards every event.
///
/// Running under `NoopRecorder` must be byte-identical to running with no
/// recorder installed — the differential suite in
/// `crates/bench/tests/obs_differential.rs` holds every preset × algorithm
/// to that contract.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn record_batch(&self, events: &mut Vec<Event>) {
        events.clear();
    }

    fn is_enabled(&self) -> bool {
        false
    }
}

/// A bounded ring of events: batches append at the tail, and when the ring
/// overflows its capacity the *oldest* events fall off the head (the most
/// recent spans are the ones a trace reader wants).
#[derive(Debug)]
pub struct RingCollector {
    capacity: usize,
    inner: Mutex<Ring>,
}

#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<Event>,
    dropped: u64,
}

impl RingCollector {
    /// A ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        RingCollector {
            capacity: capacity.max(1),
            inner: Mutex::new(Ring::default()),
        }
    }

    /// Takes every buffered event, returning `(events, dropped)` where
    /// `dropped` counts events lost to the capacity bound since the last
    /// drain.
    pub fn drain(&self) -> (Vec<Event>, u64) {
        let mut ring = self.inner.lock().expect("ring poisoned");
        let events = ring.events.drain(..).collect();
        let dropped = std::mem::take(&mut ring.dropped);
        (events, dropped)
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("ring poisoned").events.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Recorder for RingCollector {
    fn record_batch(&self, events: &mut Vec<Event>) {
        let mut ring = self.inner.lock().expect("ring poisoned");
        ring.events.extend(events.drain(..));
        while ring.events.len() > self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn begin(id: u64, t_us: u64) -> Event {
        Event::SpanBegin { id, parent: None, name: "t", detail: None, t_us }
    }

    #[test]
    fn ring_keeps_the_newest_events_and_counts_drops() {
        let ring = RingCollector::new(3);
        let mut batch: Vec<Event> = (0..5).map(|i| begin(i, i * 10)).collect();
        ring.record_batch(&mut batch);
        assert!(batch.is_empty(), "recorder must leave the batch empty");
        let (events, dropped) = ring.drain();
        assert_eq!(dropped, 2);
        assert_eq!(
            events.iter().map(Event::t_us).collect::<Vec<_>>(),
            vec![20, 30, 40],
            "oldest events fall off the head"
        );
        let (events, dropped) = ring.drain();
        assert!(events.is_empty());
        assert_eq!(dropped, 0, "drain resets the drop count");
    }

    #[test]
    fn noop_recorder_discards_and_reports_disabled() {
        let noop = NoopRecorder;
        assert!(!noop.is_enabled());
        let mut batch = vec![begin(1, 0)];
        noop.record_batch(&mut batch);
        assert!(batch.is_empty());
    }

    #[test]
    fn span_io_merges_field_wise() {
        let a = SpanIo { pages_read: 1, pages_written: 2, seq_ops: 3, rand_ops: 4 };
        let b = SpanIo { pages_read: 10, pages_written: 20, seq_ops: 30, rand_ops: 40 };
        assert_eq!(
            a.merged(&b),
            SpanIo { pages_read: 11, pages_written: 22, seq_ops: 33, rand_ops: 44 }
        );
        assert!(SpanIo::default().is_zero());
        assert!(!a.is_zero());
    }
}
