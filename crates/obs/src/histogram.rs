//! A log-bucketed histogram with a proven quantile error bound.
//!
//! Values `0..16` land in exact unit-width buckets; every power-of-two
//! decade above that is split into 16 sub-buckets, so a bucket's width is
//! at most 1/16 of its lower edge. Quantiles are answered nearest-rank
//! over the bucket counts and reported as the containing bucket's *upper*
//! edge (clamped to the recorded maximum), which yields the bound the
//! property suite checks against exact nearest-rank on random samples:
//!
//! ```text
//! exact <= quantile(q) <= exact + exact/16 + 1
//! ```
//!
//! Updates are lock-free (`fetch_add` / `fetch_min` / `fetch_max` on
//! relaxed atomics), so one histogram can be shared behind an `Arc` by a
//! worker pool and read while being written — this is what replaced the
//! bench crates' private sort-the-samples percentile code.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each power-of-two decade splits into
/// `2^SUB_BITS` buckets.
const SUB_BITS: u32 = 4;

/// Sub-buckets per decade (16).
const SUB: usize = 1 << SUB_BITS;

/// Values below `SUB` get exact unit buckets; decades `4..=63` get `SUB`
/// buckets each.
const BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// Bucket index of a value.
fn bucket_of(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let g = 63 - v.leading_zeros(); // g >= SUB_BITS
        let sub = ((v >> (g - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        SUB + (g - SUB_BITS) as usize * SUB + sub
    }
}

/// Upper (inclusive) edge of a bucket — the value a quantile query reports.
fn bucket_hi(idx: usize) -> u64 {
    if idx < SUB {
        idx as u64
    } else {
        let g = SUB_BITS + ((idx - SUB) / SUB) as u32;
        let sub = ((idx - SUB) % SUB) as u64;
        let width = 1u64 << (g - SUB_BITS);
        let lo = (1u64 << g) + sub * width;
        lo.saturating_add(width - 1)
    }
}

/// Shared log-bucketed histogram of `u64` samples (microseconds, bytes —
/// any nonnegative magnitude).
pub struct LogHistogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count())
            .field("min", &self.min())
            .field("max", &self.max())
            .field("p50", &self.quantile(0.50))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        // `[AtomicU64; N]` has no Default past 32 elements; build via Vec.
        let buckets: Box<[AtomicU64; BUCKETS]> = (0..BUCKETS)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice()
            .try_into()
            .expect("bucket count is fixed");
        LogHistogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wraps only past `u64::MAX` total).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        let v = self.min.load(Ordering::Relaxed);
        (v != u64::MAX || self.count() > 0).then_some(v)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.max.load(Ordering::Relaxed))
    }

    /// Nearest-rank quantile, `q` in `(0, 1]`; 0 on an empty histogram.
    ///
    /// The reported value is the upper edge of the bucket holding the
    /// rank-`ceil(q·n)` sample, clamped to the recorded min/max, so it
    /// never undershoots the exact nearest-rank answer and overshoots by
    /// at most `exact/16 + 1`.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                let hi = bucket_hi(idx);
                let max = self.max.load(Ordering::Relaxed);
                let min = self.min.load(Ordering::Relaxed);
                return hi.min(max).max(min.min(max));
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of the recorded samples, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact nearest-rank percentile the bench crates used to compute
    /// by sorting the raw samples — the oracle for the error bound.
    fn exact_nearest_rank(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn buckets_tile_the_u64_range_in_order() {
        // Every value maps to a bucket whose hi edge is >= the value, and
        // bucket indexes are monotone in the value.
        let mut prev_idx = 0;
        for &v in &[0u64, 1, 5, 15, 16, 17, 31, 32, 100, 1_000, 65_535, 1 << 40, u64::MAX] {
            let idx = bucket_of(v);
            assert!(idx >= prev_idx, "bucket order broke at {v}");
            assert!(bucket_hi(idx) >= v, "hi edge below value at {v}");
            prev_idx = idx;
        }
        assert!(bucket_of(u64::MAX) < BUCKETS);
    }

    #[test]
    fn small_values_are_exact() {
        let h = LogHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(1.0 / 16.0), 0);
        assert_eq!(h.quantile(0.5), 7);
        assert_eq!(h.quantile(1.0), 15);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(15));
        assert_eq!(h.sum(), (0..16).sum::<u64>());
        assert!((h.mean() - 7.5).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_monotone_and_within_the_error_bound() {
        // Deterministic skewed sample: a latency-like long tail.
        let mut samples: Vec<u64> = (0..2_000u64).map(|i| (i * i * 37) % 100_000).collect();
        let h = LogHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        let mut prev = 0;
        for &(q, _) in &[(0.01, ()), (0.25, ()), (0.50, ()), (0.95, ()), (0.99, ()), (1.0, ())] {
            let exact = exact_nearest_rank(&samples, q);
            let approx = h.quantile(q);
            assert!(approx >= exact, "q={q}: {approx} < exact {exact}");
            assert!(
                approx <= exact + exact / 16 + 1,
                "q={q}: {approx} exceeds bound over exact {exact}"
            );
            assert!(approx >= prev, "quantiles must be monotone in q");
            prev = approx;
        }
        assert_eq!(h.quantile(1.0), *samples.last().unwrap(), "p100 is the exact max");
    }

    #[test]
    fn empty_histogram_answers_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
    }
}
