//! Named metrics: counters, gauges, and log-bucketed histograms.
//!
//! The registry hands out `Arc` handles keyed by static names; the hot
//! update path is a single relaxed atomic op on the handle (no registry
//! lock), and [`MetricsRegistry::snapshot`] freezes everything into a
//! plain-data [`MetricsSnapshot`] with a hand-rolled JSON rendering (the
//! workspace is dependency-free).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::histogram::LogHistogram;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depth, backlog, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the gauge by `dv` (may be negative).
    pub fn add(&self, dv: i64) {
        self.0.fetch_add(dv, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if it is currently lower (peak tracking).
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Registry of named metric handles.
///
/// `counter` / `gauge` / `histogram` get-or-create, so independent layers
/// referring to the same name share one metric.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<LogHistogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, created on first use.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        Arc::clone(
            self.counters
                .lock()
                .expect("metrics registry poisoned")
                .entry(name)
                .or_default(),
        )
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        Arc::clone(
            self.gauges
                .lock()
                .expect("metrics registry poisoned")
                .entry(name)
                .or_default(),
        )
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &'static str) -> Arc<LogHistogram> {
        Arc::clone(
            self.histograms
                .lock()
                .expect("metrics registry poisoned")
                .entry(name)
                .or_default(),
        )
    }

    /// Freezes every registered metric into plain data.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(&name, c)| (name.to_string(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(&name, g)| (name.to_string(), g.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(&name, h)| (name.to_string(), HistogramSummary::of(h)))
            .collect();
        MetricsSnapshot { counters, gauges, histograms }
    }
}

/// Percentile summary of one histogram at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Median (log-bucket nearest-rank, see [`LogHistogram::quantile`]).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Sum of all samples.
    pub sum: u64,
}

impl HistogramSummary {
    /// Summarises a histogram's current state.
    pub fn of(h: &LogHistogram) -> Self {
        HistogramSummary {
            count: h.count(),
            min: h.min().unwrap_or(0),
            max: h.max().unwrap_or(0),
            p50: h.quantile(0.50),
            p95: h.quantile(0.95),
            p99: h.quantile(0.99),
            sum: h.sum(),
        }
    }
}

/// Plain-data snapshot of a [`MetricsRegistry`], sorted by metric name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, summary)` for every histogram.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// Value of the named counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Value of the named gauge, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Summary of the named histogram, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Hand-rolled JSON rendering; `indent` spaces prefix every line (so
    /// the object can be embedded in a larger document).
    pub fn to_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("{pad}  \"counters\": {{"));
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            out.push_str(&format!("{sep}\n{pad}    \"{name}\": {v}"));
        }
        out.push_str(&format!("\n{pad}  }},\n"));
        out.push_str(&format!("{pad}  \"gauges\": {{"));
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            out.push_str(&format!("{sep}\n{pad}    \"{name}\": {v}"));
        }
        out.push_str(&format!("\n{pad}  }},\n"));
        out.push_str(&format!("{pad}  \"histograms\": {{"));
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            out.push_str(&format!(
                "{sep}\n{pad}    \"{name}\": {{\"count\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p95\": {}, \"p99\": {}, \"sum\": {}}}",
                h.count, h.min, h.max, h.p50, h.p95, h.p99, h.sum
            ));
        }
        out.push_str(&format!("\n{pad}  }}\n{pad}}}"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("admission.grants");
        let b = reg.counter("admission.grants");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);

        let g = reg.gauge("queue.depth");
        g.add(5);
        g.add(-2);
        g.set_max(2); // below current 3: no effect
        assert_eq!(reg.gauge("queue.depth").get(), 3);

        let h = reg.histogram("queue.wait_us");
        h.record(100);
        h.record(200);

        let snap = reg.snapshot();
        assert_eq!(snap.counter("admission.grants"), Some(3));
        assert_eq!(snap.gauge("queue.depth"), Some(3));
        let hs = snap.histogram("queue.wait_us").unwrap();
        assert_eq!(hs.count, 2);
        assert_eq!(hs.min, 100);
        assert!(hs.p50 >= 100 && hs.max >= 200);
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn snapshot_json_is_balanced_and_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter("b.second").inc();
        reg.counter("a.first").add(7);
        reg.gauge("depth").set(-2);
        reg.histogram("lat_us").record(42);
        let snap = reg.snapshot();
        assert_eq!(snap.counters[0].0, "a.first", "snapshot sorts by name");
        let json = snap.to_json(2);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"a.first\": 7"));
        assert!(json.contains("\"depth\": -2"));
        assert!(json.contains("\"count\": 1"));
    }

    #[test]
    fn empty_snapshot_renders_empty_objects() {
        let json = MetricsSnapshot::default().to_json(0);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"counters\""));
    }
}
