//! Pluggable monotonic clocks.
//!
//! Every timestamp in the tracing layer is a `u64` microsecond count read
//! through the [`Clock`] trait, so the same span-emitting code runs against
//! the host's monotonic clock in production and against a manually advanced
//! [`VirtualClock`] in tests — which is what makes trace-shape assertions
//! deterministic (see `crates/live/tests/concurrency.rs`).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic microsecond clock.
///
/// Implementations must be monotone: consecutive `now_us` calls on any one
/// thread never go backwards. The zero point is implementation-defined
/// (the [`HostClock`] anchors it at construction), so only differences are
/// meaningful.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Microseconds elapsed since the clock's origin.
    fn now_us(&self) -> u64;

    /// Waits `dur_us` microseconds *on this clock*.
    ///
    /// The default implementation sleeps the calling thread, which is what
    /// a [`HostClock`] caller wants. [`VirtualClock`] overrides it to
    /// advance itself instead, so retry-backoff schedules driven through a
    /// `Clock` (the service's transient-fault retries) replay instantly
    /// and deterministically under test: the waited-for duration shows up
    /// exactly in subsequent `now_us` readings, with no host time spent.
    fn wait_us(&self, dur_us: u64) {
        std::thread::sleep(std::time::Duration::from_micros(dur_us));
    }
}

/// The production clock: microseconds since the clock was created, read
/// from the host's monotonic [`Instant`].
#[derive(Debug, Clone)]
pub struct HostClock {
    origin: Instant,
}

impl HostClock {
    /// A clock anchored at the moment of the call.
    pub fn new() -> Self {
        HostClock { origin: Instant::now() }
    }
}

impl Default for HostClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for HostClock {
    fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// A test clock that only moves when told to.
///
/// Shared behind an `Arc`, it lets a scheduler (virtual or real) decide
/// exactly what every span's timestamps will be: histories that replay from
/// a seed produce byte-identical traces.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_us: AtomicU64,
}

impl VirtualClock {
    /// A clock starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `dt_us` microseconds.
    pub fn advance(&self, dt_us: u64) {
        self.now_us.fetch_add(dt_us, Ordering::Relaxed);
    }

    /// Jumps the clock to an absolute microsecond value.
    ///
    /// # Panics
    ///
    /// Panics if `t_us` would move the clock backwards.
    pub fn set(&self, t_us: u64) {
        let prev = self.now_us.swap(t_us, Ordering::Relaxed);
        assert!(prev <= t_us, "VirtualClock moved backwards: {prev} -> {t_us}");
    }
}

impl Clock for VirtualClock {
    fn now_us(&self) -> u64 {
        self.now_us.load(Ordering::Relaxed)
    }

    /// Advances the clock instead of sleeping: the wait is visible in the
    /// virtual timeline but costs no host time.
    fn wait_us(&self, dur_us: u64) {
        self.advance(dur_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn host_clock_is_monotone() {
        let c = HostClock::new();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_moves_only_when_told() {
        let c = Arc::new(VirtualClock::new());
        assert_eq!(c.now_us(), 0);
        c.advance(250);
        assert_eq!(c.now_us(), 250);
        c.set(1_000);
        assert_eq!(c.now_us(), 1_000);
        let dyn_clock: Arc<dyn Clock> = c;
        assert_eq!(dyn_clock.now_us(), 1_000);
    }

    #[test]
    fn virtual_clock_wait_advances_instead_of_sleeping() {
        let c = Arc::new(VirtualClock::new());
        let dyn_clock: Arc<dyn Clock> = c.clone();
        let host_before = Instant::now();
        dyn_clock.wait_us(5_000_000); // five virtual seconds
        assert!(host_before.elapsed().as_secs() < 1, "must not sleep for real");
        assert_eq!(c.now_us(), 5_000_000);
    }

    #[test]
    fn host_clock_wait_sleeps_at_least_the_duration() {
        let c = HostClock::new();
        let before = c.now_us();
        c.wait_us(2_000);
        assert!(c.now_us() - before >= 2_000);
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn virtual_clock_rejects_rewind() {
        let c = VirtualClock::new();
        c.set(10);
        c.set(5);
    }
}
