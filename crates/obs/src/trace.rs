//! Span-tree reconstruction and trace export.
//!
//! Drained [`Event`]s are a flat, time-ordered stream; [`QueryTrace`]
//! rebuilds the hierarchy (every span knows its parent id) into a tree of
//! [`TraceSpan`]s with wall-clock bounds, attributed charged I/O, and
//! point-event [`TraceMark`]s. Two exports:
//!
//! * [`QueryTrace::to_json`] — a nested JSON object for machine readers.
//! * [`ChromeTrace`] — the Chrome trace-event array format (`ph:"X"`
//!   complete events plus `ph:"M"` thread-name metadata), loadable in
//!   `chrome://tracing` or Perfetto; each query renders as its own
//!   timeline row via the caller-chosen `tid`.

use crate::recorder::{Event, SpanIo};

/// One reconstructed span: a named phase with wall bounds, charged I/O,
/// child spans and point events.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Span name (static at the emit site).
    pub name: String,
    /// Optional dynamic label (dataset name, query kind).
    pub detail: Option<String>,
    /// Open timestamp, microseconds.
    pub start_us: u64,
    /// Close timestamp, microseconds (>= `start_us`).
    pub end_us: u64,
    /// Charged I/O attributed to this span (not including children unless
    /// the emitter measured it that way).
    pub io: SpanIo,
    /// Nested child spans, in open order.
    pub children: Vec<TraceSpan>,
    /// Point events recorded under this span, in order.
    pub marks: Vec<TraceMark>,
}

impl TraceSpan {
    /// A leaf span with the given bounds (used by layers that synthesise
    /// spans from existing measurements, e.g. admission wait).
    pub fn leaf(name: impl Into<String>, start_us: u64, end_us: u64) -> TraceSpan {
        TraceSpan {
            name: name.into(),
            detail: None,
            start_us,
            end_us: end_us.max(start_us),
            io: SpanIo::default(),
            children: Vec::new(),
            marks: Vec::new(),
        }
    }

    /// Span duration, microseconds.
    pub fn dur_us(&self) -> u64 {
        self.end_us - self.start_us
    }

    fn write_shape(&self, out: &mut String) {
        out.push_str(&self.name);
        if !self.children.is_empty() {
            out.push('(');
            for (i, c) in self.children.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                c.write_shape(out);
            }
            out.push(')');
        }
    }

    fn write_json(&self, out: &mut String, indent: usize) {
        let pad = " ".repeat(indent);
        out.push_str(&format!(
            "{pad}{{\"name\": \"{}\", \"start_us\": {}, \"dur_us\": {}, \
             \"pages_read\": {}, \"pages_written\": {}, \"seq_ops\": {}, \"rand_ops\": {}",
            escape(&self.name),
            self.start_us,
            self.dur_us(),
            self.io.pages_read,
            self.io.pages_written,
            self.io.seq_ops,
            self.io.rand_ops,
        ));
        if let Some(detail) = &self.detail {
            out.push_str(&format!(", \"detail\": \"{}\"", escape(detail)));
        }
        if !self.marks.is_empty() {
            out.push_str(", \"marks\": [");
            for (i, m) in self.marks.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"name\": \"{}\", \"t_us\": {}, \"value\": {}}}",
                    escape(&m.name),
                    m.t_us,
                    m.value
                ));
            }
            out.push(']');
        }
        if self.children.is_empty() {
            out.push('}');
        } else {
            out.push_str(", \"children\": [\n");
            for (i, c) in self.children.iter().enumerate() {
                c.write_json(out, indent + 2);
                if i + 1 < self.children.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&format!("{pad}]}}"));
        }
    }

    /// Depth-first search for the first span named `name` (including self).
    pub fn find(&self, name: &str) -> Option<&TraceSpan> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

/// A point event attributed to a span.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMark {
    /// Event name.
    pub name: String,
    /// Timestamp, microseconds.
    pub t_us: u64,
    /// Free-form magnitude.
    pub value: u64,
}

/// The reconstructed span tree of one traced execution.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryTrace {
    /// Top-level spans (usually one root per traced query).
    pub roots: Vec<TraceSpan>,
    /// Point events whose parent span was not in the event stream (e.g.
    /// dropped by the bounded ring).
    pub orphan_marks: Vec<TraceMark>,
    /// Events lost to the bounded ring before the drain.
    pub dropped_events: u64,
}

impl QueryTrace {
    /// Rebuilds the span tree from a drained, time-ordered event stream.
    ///
    /// Spans whose end event is missing are closed at the stream's maximum
    /// timestamp; spans whose parent is missing (dropped by the ring)
    /// become roots.
    pub fn from_events(events: &[Event], dropped_events: u64) -> QueryTrace {
        struct Node {
            parent: Option<u64>,
            span: TraceSpan,
        }
        let max_t = events.iter().map(Event::t_us).max().unwrap_or(0);
        let mut order: Vec<u64> = Vec::new();
        let mut nodes: std::collections::HashMap<u64, Node> = std::collections::HashMap::new();
        let mut orphan_marks = Vec::new();

        for ev in events {
            match ev {
                Event::SpanBegin { id, parent, name, detail, t_us } => {
                    order.push(*id);
                    nodes.insert(
                        *id,
                        Node {
                            parent: *parent,
                            span: TraceSpan {
                                name: (*name).to_string(),
                                detail: detail.clone(),
                                start_us: *t_us,
                                end_us: max_t,
                                io: SpanIo::default(),
                                children: Vec::new(),
                                marks: Vec::new(),
                            },
                        },
                    );
                }
                Event::SpanEnd { id, t_us, io } => {
                    if let Some(node) = nodes.get_mut(id) {
                        node.span.end_us = (*t_us).max(node.span.start_us);
                        node.span.io = *io;
                    }
                }
                Event::Instant { name, parent, t_us, value } => {
                    let mark =
                        TraceMark { name: (*name).to_string(), t_us: *t_us, value: *value };
                    match parent.and_then(|p| nodes.get_mut(&p)) {
                        Some(node) => node.span.marks.push(mark),
                        None => orphan_marks.push(mark),
                    }
                }
            }
        }

        // Attach children to parents bottom-up: a parent always begins
        // before its children, so reverse begin-order visits children
        // first. `insert(0, ..)` restores begin order under the reversal.
        let mut roots: Vec<TraceSpan> = Vec::new();
        for id in order.iter().rev() {
            let node = nodes.remove(id).expect("span inserted at begin");
            match node.parent.and_then(|p| nodes.get_mut(&p)) {
                Some(parent) => parent.span.children.insert(0, node.span),
                None => roots.insert(0, node.span),
            }
        }
        QueryTrace { roots, orphan_marks, dropped_events }
    }

    /// Total spans in the tree.
    pub fn span_count(&self) -> usize {
        fn count(s: &TraceSpan) -> usize {
            1 + s.children.iter().map(count).sum::<usize>()
        }
        self.roots.iter().map(count).sum()
    }

    /// Depth-first search for the first span named `name`.
    pub fn find(&self, name: &str) -> Option<&TraceSpan> {
        self.roots.iter().find_map(|r| r.find(name))
    }

    /// A timestamp-free structural signature — span names in tree order,
    /// e.g. `query(admission.wait,execute(sssj.sort,sssj.sweep))` — used
    /// by the deterministic trace-shape assertions in the concurrency
    /// harness.
    pub fn shape(&self) -> String {
        let mut out = String::new();
        for (i, r) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push(';');
            }
            r.write_shape(&mut out);
        }
        out
    }

    /// Nested JSON rendering of the tree.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"dropped_events\": ");
        out.push_str(&self.dropped_events.to_string());
        out.push_str(",\n  \"spans\": [\n");
        for (i, r) in self.roots.iter().enumerate() {
            r.write_json(&mut out, 4);
            if i + 1 < self.roots.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Builder for a Chrome trace-event (`chrome://tracing` / Perfetto) JSON
/// document merging any number of [`QueryTrace`]s onto separate `tid`
/// rows of one `pid 1` process.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    events: Vec<String>,
}

impl ChromeTrace {
    /// An empty trace document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Names a `tid` row (rendered as the row label by the viewers).
    pub fn add_thread(&mut self, tid: u64, name: &str) {
        self.events.push(format!(
            "{{\"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \"name\": \"thread_name\", \
             \"args\": {{\"name\": \"{}\"}}}}",
            escape(name)
        ));
    }

    /// Adds every span of `trace` (and its marks, as zero-duration
    /// events) on row `tid`.
    pub fn add_trace(&mut self, tid: u64, trace: &QueryTrace) {
        for root in &trace.roots {
            self.add_span(tid, root);
        }
        for mark in &trace.orphan_marks {
            self.add_mark(tid, mark);
        }
    }

    fn add_span(&mut self, tid: u64, span: &TraceSpan) {
        let detail = match &span.detail {
            Some(d) => format!(", \"detail\": \"{}\"", escape(d)),
            None => String::new(),
        };
        self.events.push(format!(
            "{{\"ph\": \"X\", \"pid\": 1, \"tid\": {tid}, \"ts\": {}, \"dur\": {}, \
             \"name\": \"{}\", \"args\": {{\"pages_read\": {}, \"pages_written\": {}, \
             \"seq_ops\": {}, \"rand_ops\": {}{detail}}}}}",
            span.start_us,
            span.dur_us(),
            escape(&span.name),
            span.io.pages_read,
            span.io.pages_written,
            span.io.seq_ops,
            span.io.rand_ops,
        ));
        for mark in &span.marks {
            self.add_mark(tid, mark);
        }
        for child in &span.children {
            self.add_span(tid, child);
        }
    }

    fn add_mark(&mut self, tid: u64, mark: &TraceMark) {
        self.events.push(format!(
            "{{\"ph\": \"X\", \"pid\": 1, \"tid\": {tid}, \"ts\": {}, \"dur\": 0, \
             \"name\": \"{}\", \"args\": {{\"value\": {}}}}}",
            mark.t_us,
            escape(&mark.name),
            mark.value,
        ));
    }

    /// Number of events added so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the JSON array document.
    pub fn finish(&self) -> String {
        let mut out = String::from("[\n");
        for (i, ev) in self.events.iter().enumerate() {
            out.push_str("  ");
            out.push_str(ev);
            if i + 1 < self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::context::{install, instant, span};
    use crate::recorder::RingCollector;
    use std::sync::Arc;

    fn sample_events() -> (Vec<Event>, u64) {
        let ring = Arc::new(RingCollector::new(1024));
        let clock = Arc::new(VirtualClock::new());
        let guard = install(ring.clone(), clock.clone());
        {
            let _root = span("query");
            clock.advance(10);
            {
                let mut sort = span("sssj.sort");
                sort.add_io(SpanIo { pages_read: 8, seq_ops: 2, ..SpanIo::default() });
                clock.advance(20);
            }
            {
                let _sweep = span("sssj.sweep");
                clock.advance(5);
                instant("sweep.spill", 100);
                clock.advance(5);
            }
            clock.advance(2);
        }
        drop(guard);
        ring.drain()
    }

    #[test]
    fn tree_reconstruction_preserves_order_io_and_marks() {
        let (events, dropped) = sample_events();
        let trace = QueryTrace::from_events(&events, dropped);
        assert_eq!(trace.dropped_events, 0);
        assert_eq!(trace.span_count(), 3);
        assert_eq!(trace.shape(), "query(sssj.sort,sssj.sweep)");
        let root = &trace.roots[0];
        assert_eq!((root.start_us, root.end_us), (0, 42));
        let sort = trace.find("sssj.sort").unwrap();
        assert_eq!((sort.start_us, sort.end_us), (10, 30));
        assert_eq!(sort.io.pages_read, 8);
        let sweep = trace.find("sssj.sweep").unwrap();
        assert_eq!(sweep.marks.len(), 1);
        assert_eq!(sweep.marks[0].t_us, 35);
        assert_eq!(sweep.marks[0].value, 100);
        assert!(trace.find("missing").is_none());
    }

    #[test]
    fn unended_spans_close_at_the_stream_maximum() {
        let events = vec![
            Event::SpanBegin { id: 1, parent: None, name: "open", detail: None, t_us: 5 },
            Event::Instant { name: "tick", parent: Some(1), t_us: 9, value: 1 },
        ];
        let trace = QueryTrace::from_events(&events, 3);
        assert_eq!(trace.dropped_events, 3);
        assert_eq!(trace.roots[0].end_us, 9);
        // A mark whose parent was dropped by the ring becomes an orphan.
        let orphan = vec![Event::Instant { name: "lost", parent: Some(99), t_us: 1, value: 0 }];
        let t2 = QueryTrace::from_events(&orphan, 0);
        assert_eq!(t2.orphan_marks.len(), 1);
        assert_eq!(t2.span_count(), 0);
    }

    #[test]
    fn json_and_chrome_exports_are_balanced() {
        let (events, dropped) = sample_events();
        let trace = QueryTrace::from_events(&events, dropped);
        let json = trace.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"name\": \"query\""));
        assert!(json.contains("\"marks\""));

        let mut chrome = ChromeTrace::new();
        assert!(chrome.is_empty());
        chrome.add_thread(0, "maintenance");
        chrome.add_trace(7, &trace);
        assert_eq!(chrome.len(), 1 + 3 + 1, "thread meta + 3 spans + 1 mark");
        let doc = chrome.finish();
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert!(doc.starts_with("[\n"));
        assert!(doc.trim_end().ends_with(']'));
        assert!(doc.contains("\"ph\": \"X\""));
        assert!(doc.contains("\"tid\": 7"));
        assert!(doc.contains("\"dur\": 0"), "marks export as zero-duration events");
    }

    #[test]
    fn synthesised_leaf_spans_clamp_backwards_bounds() {
        let leaf = TraceSpan::leaf("admission.wait", 100, 90);
        assert_eq!(leaf.dur_us(), 0);
        assert!(escape("a\"b\\c\n").contains("\\u000a"));
    }
}
