//! The six data-set presets of Table 2.

/// The six TIGER/Line 97 subsets used in the paper's evaluation (Table 2).
///
/// The numbers attached to each preset are the *paper's* object counts; a
/// [`crate::WorkloadSpec`] scales them down by its `scale` divisor so the
/// experiments run on a laptop while keeping every ratio intact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Preset {
    /// The state of New Jersey.
    NJ,
    /// The state of New York.
    NY,
    /// The first TIGER CD-ROM (15 states of the Eastern US).
    Disk1,
    /// CD-ROMs 4–6 (the Western half of the US).
    Disk4_6,
    /// CD-ROMs 1–3 (the Eastern half of the US).
    Disk1_3,
    /// All six CD-ROMs (the entire US).
    Disk1_6,
}

impl Preset {
    /// All presets in the order Table 2 lists them.
    pub fn all() -> [Preset; 6] {
        [
            Preset::NJ,
            Preset::NY,
            Preset::Disk1,
            Preset::Disk4_6,
            Preset::Disk1_3,
            Preset::Disk1_6,
        ]
    }

    /// The presets small enough for quick experiments (used by the default
    /// harness configuration).
    pub fn small() -> [Preset; 3] {
        [Preset::NJ, Preset::NY, Preset::Disk1]
    }

    /// Display name matching the paper's column headers.
    pub fn name(self) -> &'static str {
        match self {
            Preset::NJ => "NJ",
            Preset::NY => "NY",
            Preset::Disk1 => "DISK1",
            Preset::Disk4_6 => "DISK4-6",
            Preset::Disk1_3 => "DISK1-3",
            Preset::Disk1_6 => "DISK1-6",
        }
    }

    /// Number of road objects in the paper's data set.
    pub fn paper_road_objects(self) -> u64 {
        match self {
            Preset::NJ => 414_442,
            Preset::NY => 870_412,
            Preset::Disk1 => 6_030_844,
            Preset::Disk4_6 => 11_888_474,
            Preset::Disk1_3 => 17_199_848,
            Preset::Disk1_6 => 29_088_173,
        }
    }

    /// Number of hydrography objects in the paper's data set.
    pub fn paper_hydro_objects(self) -> u64 {
        match self {
            Preset::NJ => 50_853,
            Preset::NY => 156_567,
            Preset::Disk1 => 1_161_906,
            Preset::Disk4_6 => 3_446_094,
            Preset::Disk1_3 => 3_967_649,
            Preset::Disk1_6 => 7_413_353,
        }
    }

    /// Number of output pairs the paper reports for the road–hydro join.
    pub fn paper_output_pairs(self) -> u64 {
        match self {
            Preset::NJ => 130_756,
            Preset::NY => 421_110,
            Preset::Disk1 => 3_197_520,
            Preset::Disk4_6 => 8_554_133,
            Preset::Disk1_3 => 9_378_642,
            Preset::Disk1_6 => 17_938_533,
        }
    }

    /// Parses a preset from its display name (case-insensitive).
    pub fn parse(name: &str) -> Option<Preset> {
        let n = name.to_ascii_uppercase();
        Preset::all().into_iter().find(|p| p.name() == n)
    }
}

impl std::fmt::Display for Preset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_size() {
        let sizes: Vec<u64> = Preset::all().iter().map(|p| p.paper_road_objects()).collect();
        assert!(sizes.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn table2_counts_match_the_paper() {
        assert_eq!(Preset::NJ.paper_road_objects(), 414_442);
        assert_eq!(Preset::NJ.paper_hydro_objects(), 50_853);
        assert_eq!(Preset::Disk1_6.paper_road_objects(), 29_088_173);
        assert_eq!(Preset::Disk1_6.paper_hydro_objects(), 7_413_353);
        assert_eq!(Preset::NY.paper_output_pairs(), 421_110);
    }

    #[test]
    fn roads_always_outnumber_hydro() {
        for p in Preset::all() {
            assert!(p.paper_road_objects() > p.paper_hydro_objects());
        }
    }

    #[test]
    fn parse_roundtrips_names() {
        for p in Preset::all() {
            assert_eq!(Preset::parse(p.name()), Some(p));
            assert_eq!(Preset::parse(&p.name().to_lowercase()), Some(p));
        }
        assert_eq!(Preset::parse("DISKX"), None);
        assert_eq!(format!("{}", Preset::Disk4_6), "DISK4-6");
    }

    #[test]
    fn small_presets_are_a_prefix_of_all() {
        assert_eq!(&Preset::all()[..3], &Preset::small()[..]);
    }
}
