//! Workload specifications and generated workloads.

use usj_geom::{Item, Rect, ITEM_BYTES};

use crate::generator::{GeneratorConfig, TigerLikeGenerator};
use crate::preset::Preset;

/// Identifier offset separating hydrography ids from road ids, so a reported
/// pair `(road_id, hydro_id)` can never be confused with a road–road pair.
pub const HYDRO_ID_BASE: u32 = 0x4000_0000;

/// A recipe for generating one of the Table 2 data sets at a chosen scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Which of the paper's data sets to emulate.
    pub preset: Preset,
    /// Divisor applied to the paper's object counts. `scale = 1` generates
    /// the full-size data set (tens of millions of rectangles); the default
    /// of 100 keeps every preset laptop-sized while preserving all ratios.
    pub scale: u64,
    /// Generator tuning parameters.
    pub config: GeneratorConfig,
}

impl WorkloadSpec {
    /// Default scale divisor applied to the paper's object counts.
    pub const DEFAULT_SCALE: u64 = 100;

    /// Creates the spec for a preset at the default scale.
    pub fn preset(preset: Preset) -> Self {
        WorkloadSpec {
            preset,
            scale: Self::DEFAULT_SCALE,
            config: GeneratorConfig::default(),
        }
    }

    /// Overrides the scale divisor (builder style).
    pub fn with_scale(mut self, scale: u64) -> Self {
        self.scale = scale.max(1);
        self
    }

    /// Overrides the generator configuration (builder style).
    pub fn with_config(mut self, config: GeneratorConfig) -> Self {
        self.config = config;
        self
    }

    /// Number of road objects this spec will generate.
    pub fn road_count(&self) -> u64 {
        (self.preset.paper_road_objects() / self.scale).max(1)
    }

    /// Number of hydrography objects this spec will generate.
    pub fn hydro_count(&self) -> u64 {
        (self.preset.paper_hydro_objects() / self.scale).max(1)
    }

    /// The square region covered by the data set, sized so the road density
    /// is about one segment per square map unit for every preset.
    pub fn region(&self) -> Rect {
        let side = (self.road_count() as f64).sqrt().max(4.0) as f32;
        Rect::from_coords(0.0, 0.0, side, side)
    }

    /// Generates the workload deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Workload {
        let region = self.region();
        let mut gen = TigerLikeGenerator::new(seed, region, self.road_count(), self.config);
        let roads = gen.roads(self.road_count(), 0);
        let hydro = gen.hydro(self.hydro_count(), HYDRO_ID_BASE);
        Workload {
            name: self.preset.name(),
            preset: self.preset,
            scale: self.scale,
            region,
            roads,
            hydro,
        }
    }
}

/// A generated data set: the two input relations of the spatial join.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Paper-style data-set name (`"NJ"`, `"DISK1-6"`, …).
    pub name: &'static str,
    /// The preset this workload was generated from.
    pub preset: Preset,
    /// Scale divisor that was applied.
    pub scale: u64,
    /// Region covered by the data.
    pub region: Rect,
    /// Road-feature MBRs (the larger relation).
    pub roads: Vec<Item>,
    /// Hydrography-feature MBRs (the smaller relation).
    pub hydro: Vec<Item>,
}

impl Workload {
    /// Statistics of the road relation (one row of Table 2).
    pub fn road_stats(&self) -> DatasetStats {
        DatasetStats::from_items(&self.roads)
    }

    /// Statistics of the hydrography relation (one row of Table 2).
    pub fn hydro_stats(&self) -> DatasetStats {
        DatasetStats::from_items(&self.hydro)
    }

    /// Exact number of intersecting road–hydro pairs, computed with a simple
    /// grid-partitioned nested loop. Intended for tests and for reporting the
    /// output row of Table 2 at small scales; the join algorithms themselves
    /// never call this.
    pub fn reference_join_size(&self) -> u64 {
        // Partition the hydro relation into a uniform grid and probe each
        // road against the cells it overlaps, counting each pair once.
        let cells = 64usize;
        let region = self.region;
        let w = region.width().max(f32::MIN_POSITIVE);
        let h = region.height().max(f32::MIN_POSITIVE);
        let cell_of = |x: f32, y: f32| -> (usize, usize) {
            let cx = (((x - region.lo.x) / w) * cells as f32).clamp(0.0, cells as f32 - 1.0) as usize;
            let cy = (((y - region.lo.y) / h) * cells as f32).clamp(0.0, cells as f32 - 1.0) as usize;
            (cx, cy)
        };
        let mut grid: Vec<Vec<&Item>> = vec![Vec::new(); cells * cells];
        for it in &self.hydro {
            let (x0, y0) = cell_of(it.rect.lo.x, it.rect.lo.y);
            let (x1, y1) = cell_of(it.rect.hi.x, it.rect.hi.y);
            for cy in y0..=y1 {
                for cx in x0..=x1 {
                    grid[cy * cells + cx].push(it);
                }
            }
        }
        let mut pairs = 0u64;
        for road in &self.roads {
            let (x0, y0) = cell_of(road.rect.lo.x, road.rect.lo.y);
            let (x1, y1) = cell_of(road.rect.hi.x, road.rect.hi.y);
            for cy in y0..=y1 {
                for cx in x0..=x1 {
                    for hydro in &grid[cy * cells + cx] {
                        if !road.rect.intersects(&hydro.rect) {
                            continue;
                        }
                        // Count the pair only in the cell that contains the
                        // upper-left corner of the intersection, so replicas
                        // in other cells are not double counted.
                        let ix = road.rect.lo.x.max(hydro.rect.lo.x);
                        let iy = road.rect.lo.y.max(hydro.rect.lo.y);
                        if cell_of(ix, iy) == (cx, cy) {
                            pairs += 1;
                        }
                    }
                }
            }
        }
        pairs
    }
}

/// Size statistics for one relation, mirroring the rows of Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetStats {
    /// Number of MBRs.
    pub objects: u64,
    /// Size of the 20-byte-per-record data file in bytes.
    pub data_bytes: u64,
}

impl DatasetStats {
    /// Computes the statistics of a relation.
    pub fn from_items(items: &[Item]) -> Self {
        DatasetStats {
            objects: items.len() as u64,
            data_bytes: (items.len() * ITEM_BYTES) as u64,
        }
    }

    /// Data size in megabytes (the unit Table 2 uses).
    pub fn data_mb(&self) -> f64 {
        self.data_bytes as f64 / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_counts_scale_with_divisor() {
        let s = WorkloadSpec::preset(Preset::NJ).with_scale(100);
        assert_eq!(s.road_count(), 4_144);
        assert_eq!(s.hydro_count(), 508);
        let s2 = s.with_scale(1_000);
        assert_eq!(s2.road_count(), 414);
    }

    #[test]
    fn generated_counts_match_the_spec() {
        let w = WorkloadSpec::preset(Preset::NJ).with_scale(500).generate(1);
        assert_eq!(w.roads.len() as u64, 414_442 / 500);
        assert_eq!(w.hydro.len() as u64, 50_853 / 500);
        assert_eq!(w.name, "NJ");
    }

    #[test]
    fn road_and_hydro_ids_never_collide() {
        let w = WorkloadSpec::preset(Preset::NY).with_scale(1_000).generate(2);
        let max_road = w.roads.iter().map(|i| i.id).max().unwrap();
        let min_hydro = w.hydro.iter().map(|i| i.id).min().unwrap();
        assert!(max_road < HYDRO_ID_BASE);
        assert!(min_hydro >= HYDRO_ID_BASE);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::preset(Preset::NJ).with_scale(1_000);
        let a = spec.generate(42);
        let b = spec.generate(42);
        assert_eq!(a.roads, b.roads);
        assert_eq!(a.hydro, b.hydro);
        let c = spec.generate(43);
        assert_ne!(a.roads, c.roads);
    }

    #[test]
    fn dataset_stats_match_item_count() {
        let w = WorkloadSpec::preset(Preset::NJ).with_scale(1_000).generate(3);
        let s = w.road_stats();
        assert_eq!(s.objects, w.roads.len() as u64);
        assert_eq!(s.data_bytes, (w.roads.len() * ITEM_BYTES) as u64);
        assert!(s.data_mb() > 0.0);
    }

    #[test]
    fn join_selectivity_is_in_the_tiger_ballpark() {
        // The paper's output sizes are roughly 0.3-0.5 pairs per road object.
        // The synthetic generator is tuned to land in the same order of
        // magnitude (a factor of ~3 either way is acceptable).
        let w = WorkloadSpec::preset(Preset::NJ).with_scale(50).generate(7);
        let pairs = w.reference_join_size();
        let per_road = pairs as f64 / w.roads.len() as f64;
        assert!(
            per_road > 0.05 && per_road < 3.0,
            "selectivity {per_road} pairs/road is far from the TIGER workload"
        );
    }

    #[test]
    fn reference_join_matches_brute_force_on_tiny_workload() {
        let w = WorkloadSpec::preset(Preset::NJ).with_scale(3_000).generate(9);
        let brute: u64 = w
            .roads
            .iter()
            .map(|r| w.hydro.iter().filter(|h| r.rect.intersects(&h.rect)).count() as u64)
            .sum();
        assert_eq!(w.reference_join_size(), brute);
    }

    #[test]
    fn region_grows_with_preset_size() {
        let nj = WorkloadSpec::preset(Preset::NJ).with_scale(100).region();
        let d16 = WorkloadSpec::preset(Preset::Disk1_6).with_scale(100).region();
        assert!(d16.area() > 10.0 * nj.area());
    }
}
