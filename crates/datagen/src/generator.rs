//! The synthetic road / hydrography generators.

use crate::rng::SmallRng;
use usj_geom::{Item, Point, Rect};

/// Parameters controlling the road generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoadConfig {
    /// Average length of a road-segment MBR, in map units (one map unit is
    /// roughly one road segment's worth of space; the region is sized so the
    /// overall road density is about one segment per square unit).
    pub segment_len: f32,
    /// Thickness of a road-segment MBR.
    pub thickness: f32,
    /// Average number of road segments per county cluster.
    pub segments_per_county: usize,
    /// Standard deviation of the county cluster, as a fraction of the county
    /// spacing.
    pub county_spread: f32,
}

impl Default for RoadConfig {
    fn default() -> Self {
        RoadConfig {
            segment_len: 0.9,
            thickness: 0.04,
            segments_per_county: 2_000,
            county_spread: 0.55,
        }
    }
}

/// Parameters controlling the hydrography generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HydroConfig {
    /// Length of one river-segment MBR.
    pub river_segment_len: f32,
    /// Thickness of a river-segment MBR.
    pub river_thickness: f32,
    /// Number of segments per river polyline.
    pub river_segments: usize,
    /// Side length of a lake MBR.
    pub lake_side: f32,
    /// Fraction of hydrography objects that are river segments (the rest are
    /// lakes/ponds).
    pub river_fraction: f32,
}

impl Default for HydroConfig {
    fn default() -> Self {
        HydroConfig {
            river_segment_len: 1.6,
            river_thickness: 0.08,
            river_segments: 64,
            lake_side: 0.8,
            river_fraction: 0.8,
        }
    }
}

/// Full generator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GeneratorConfig {
    /// Road generator parameters.
    pub roads: RoadConfig,
    /// Hydrography generator parameters.
    pub hydro: HydroConfig,
}

/// A deterministic generator for one region of TIGER-like data.
#[derive(Debug)]
pub struct TigerLikeGenerator {
    rng: SmallRng,
    region: Rect,
    config: GeneratorConfig,
    counties: Vec<Point>,
    county_sigma: f32,
}

impl TigerLikeGenerator {
    /// Creates a generator for `region`. The number of counties is derived
    /// from the expected road count so that county density stays constant
    /// across presets.
    pub fn new(seed: u64, region: Rect, expected_roads: u64, config: GeneratorConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n_counties = (expected_roads as usize / config.roads.segments_per_county).max(1);
        // Counties on a jittered grid, so clusters cover the region evenly
        // the way real counties tile a state.
        let per_side = (n_counties as f64).sqrt().ceil() as usize;
        let dx = region.width() / per_side as f32;
        let dy = region.height() / per_side as f32;
        let mut counties = Vec::with_capacity(n_counties);
        'outer: for gy in 0..per_side {
            for gx in 0..per_side {
                if counties.len() >= n_counties {
                    break 'outer;
                }
                let cx = region.lo.x + (gx as f32 + 0.5 + rng.gen_range_f32(-0.25, 0.25)) * dx;
                let cy = region.lo.y + (gy as f32 + 0.5 + rng.gen_range_f32(-0.25, 0.25)) * dy;
                counties.push(Point::new(cx, cy));
            }
        }
        let county_sigma = dx.min(dy) * config.roads.county_spread;
        TigerLikeGenerator {
            rng,
            region,
            config,
            counties,
            county_sigma,
        }
    }

    /// Number of county clusters.
    pub fn county_count(&self) -> usize {
        self.counties.len()
    }

    fn clamp_point(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.region.lo.x, self.region.hi.x),
            p.y.clamp(self.region.lo.y, self.region.hi.y),
        )
    }

    /// Approximate normal sample built from uniform draws (Irwin–Hall with
    /// 4 terms), good enough for clustering and free of extra dependencies.
    fn approx_normal(&mut self, mean: f32, sigma: f32) -> f32 {
        let sum: f32 = (0..4).map(|_| self.rng.gen_range_f32(-1.0, 1.0)).sum();
        mean + sum * 0.5 * sigma * 1.73
    }

    fn random_county_point(&mut self) -> Point {
        let idx = self.rng.gen_range_usize(0, self.counties.len());
        let c = self.counties[idx];
        let sigma = self.county_sigma;
        let x = self.approx_normal(c.x, sigma);
        let y = self.approx_normal(c.y, sigma);
        self.clamp_point(Point::new(x, y))
    }

    /// Generates `count` road-segment MBRs with identifiers starting at
    /// `first_id`.
    pub fn roads(&mut self, count: u64, first_id: u32) -> Vec<Item> {
        let cfg = self.config.roads;
        let mut out = Vec::with_capacity(count as usize);
        for i in 0..count {
            let center = self.random_county_point();
            let len = cfg.segment_len * self.rng.gen_range_f32(0.4, 1.6);
            let thick = cfg.thickness * self.rng.gen_range_f32(0.5, 1.5);
            // Streets run mostly along the axes; give each a slight skew so
            // MBRs are not all perfectly degenerate.
            let horizontal = self.rng.gen_bool(0.5);
            let (w, h) = if horizontal { (len, thick) } else { (thick, len) };
            let lo = self.clamp_point(Point::new(center.x - w * 0.5, center.y - h * 0.5));
            let hi = self.clamp_point(Point::new(center.x + w * 0.5, center.y + h * 0.5));
            out.push(Item::new(Rect::from_corners(lo, hi), first_id + i as u32));
        }
        out
    }

    /// Generates `count` hydrography MBRs with identifiers starting at
    /// `first_id`.
    pub fn hydro(&mut self, count: u64, first_id: u32) -> Vec<Item> {
        let cfg = self.config.hydro;
        let mut out = Vec::with_capacity(count as usize);
        let mut id = first_id;
        let river_target = (count as f64 * f64::from(cfg.river_fraction)) as u64;
        // Rivers: meandering chains of elongated segments that start at a
        // county and drift, crossing road clusters on the way.
        while (out.len() as u64) < river_target {
            let mut pos = self.random_county_point();
            let mut heading: f32 = self.rng.gen_range_f32(0.0, std::f32::consts::TAU);
            let steps = cfg.river_segments.min((river_target - out.len() as u64) as usize);
            for _ in 0..steps {
                heading += self.rng.gen_range_f32(-0.5, 0.5);
                let len = cfg.river_segment_len * self.rng.gen_range_f32(0.6, 1.4);
                let dx = heading.cos() * len;
                let dy = heading.sin() * len;
                let next = self.clamp_point(Point::new(pos.x + dx, pos.y + dy));
                let mut rect = Rect::from_corners(pos, next);
                // A river has width: pad the segment MBR by the thickness.
                rect = Rect::from_coords(
                    rect.lo.x - cfg.river_thickness,
                    rect.lo.y - cfg.river_thickness,
                    rect.hi.x + cfg.river_thickness,
                    rect.hi.y + cfg.river_thickness,
                );
                out.push(Item::new(rect, id));
                id += 1;
                pos = next;
            }
        }
        // Lakes and ponds: compact boxes near counties.
        while (out.len() as u64) < count {
            let center = self.random_county_point();
            let side = cfg.lake_side * self.rng.gen_range_f32(0.3, 2.0);
            let lo = self.clamp_point(Point::new(center.x - side * 0.5, center.y - side * 0.5));
            let hi = self.clamp_point(Point::new(center.x + side * 0.5, center.y + side * 0.5));
            out.push(Item::new(Rect::from_corners(lo, hi), id));
            id += 1;
        }
        out.truncate(count as usize);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(side: f32) -> Rect {
        Rect::from_coords(0.0, 0.0, side, side)
    }

    #[test]
    fn generates_exact_counts_and_sequential_ids() {
        let mut g = TigerLikeGenerator::new(1, region(100.0), 5_000, GeneratorConfig::default());
        let roads = g.roads(5_000, 0);
        let hydro = g.hydro(1_200, 1_000_000);
        assert_eq!(roads.len(), 5_000);
        assert_eq!(hydro.len(), 1_200);
        assert_eq!(roads[0].id, 0);
        assert_eq!(roads[4_999].id, 4_999);
        assert_eq!(hydro[0].id, 1_000_000);
        assert_eq!(hydro[1_199].id, 1_001_199);
    }

    #[test]
    fn all_rectangles_stay_inside_the_region() {
        let r = region(50.0);
        let mut g = TigerLikeGenerator::new(2, r, 2_000, GeneratorConfig::default());
        for it in g.roads(2_000, 0) {
            assert!(
                it.rect.lo.x >= r.lo.x && it.rect.hi.x <= r.hi.x,
                "road {it:?} escapes the region"
            );
            assert!(it.rect.lo.y >= r.lo.y && it.rect.hi.y <= r.hi.y);
        }
        for it in g.hydro(500, 10_000) {
            // Rivers are padded by their thickness, so allow that margin.
            assert!(it.rect.lo.x >= r.lo.x - 0.2 && it.rect.hi.x <= r.hi.x + 0.2);
        }
    }

    #[test]
    fn same_seed_reproduces_identical_data() {
        let cfg = GeneratorConfig::default();
        let mut a = TigerLikeGenerator::new(7, region(80.0), 3_000, cfg);
        let mut b = TigerLikeGenerator::new(7, region(80.0), 3_000, cfg);
        assert_eq!(a.roads(1_000, 0), b.roads(1_000, 0));
        assert_eq!(a.hydro(300, 5_000), b.hydro(300, 5_000));
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = GeneratorConfig::default();
        let mut a = TigerLikeGenerator::new(1, region(80.0), 3_000, cfg);
        let mut b = TigerLikeGenerator::new(2, region(80.0), 3_000, cfg);
        assert_ne!(a.roads(100, 0), b.roads(100, 0));
    }

    #[test]
    fn roads_are_small_and_thin_hydro_is_larger() {
        let mut g = TigerLikeGenerator::new(3, region(200.0), 20_000, GeneratorConfig::default());
        let roads = g.roads(20_000, 0);
        let hydro = g.hydro(5_000, 100_000);
        let avg = |v: &[Item]| -> f64 {
            v.iter().map(|it| it.rect.area()).sum::<f64>() / v.len() as f64
        };
        assert!(
            avg(&hydro) > 3.0 * avg(&roads),
            "hydro MBRs should be larger on average: {} vs {}",
            avg(&hydro),
            avg(&roads)
        );
    }

    #[test]
    fn data_is_clustered_not_uniform() {
        // Count occupied coarse grid cells: clustered data leaves a large
        // fraction of cells empty compared to a uniform scatter.
        // A 32x32 grid over 4 000 points: a uniform scatter would leave
        // almost no cell empty (expected occupancy ~98 %), while the county
        // clustering empties a visible fraction of the cells (~75-85 %
        // occupancy across seeds).
        let side = 100.0f32;
        let mut g = TigerLikeGenerator::new(4, region(side), 4_000, GeneratorConfig::default());
        let roads = g.roads(4_000, 0);
        let cells = 32usize;
        let mut occupied = vec![false; cells * cells];
        for it in &roads {
            let c = it.rect.center();
            let cx = ((c.x / side) * cells as f32).clamp(0.0, cells as f32 - 1.0) as usize;
            let cy = ((c.y / side) * cells as f32).clamp(0.0, cells as f32 - 1.0) as usize;
            occupied[cy * cells + cx] = true;
        }
        let frac = occupied.iter().filter(|&&o| o).count() as f64 / (cells * cells) as f64;
        assert!(frac < 0.9, "road data looks uniform (occupancy {frac})");
        assert!(frac > 0.05, "road data collapsed into a point (occupancy {frac})");
    }

    #[test]
    fn county_count_scales_with_expected_roads() {
        let cfg = GeneratorConfig::default();
        let small = TigerLikeGenerator::new(1, region(50.0), 2_000, cfg);
        let large = TigerLikeGenerator::new(1, region(500.0), 200_000, cfg);
        assert!(large.county_count() > small.county_count());
        assert!(small.county_count() >= 1);
    }
}
