//! A small deterministic PRNG.
//!
//! The build environment is offline, so the generator cannot depend on the
//! `rand` crate. The workloads only need a seedable, statistically decent,
//! reproducible source of uniform values, which SplitMix64 (Steele, Lea &
//! Flood, OOPSLA 2014) provides in a dozen lines. Determinism across
//! platforms matters more here than distribution quality: the same seed must
//! generate bit-identical workloads everywhere, since tests assert on exact
//! join sizes.

/// A seedable SplitMix64 pseudo-random number generator.
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed. Equal seeds produce equal
    /// sequences on every platform.
    pub fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: seed }
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`, built from the top 53 bits.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`, built from the top 24 bits.
    pub fn gen_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn gen_range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + self.gen_f32() * (hi - lo)
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi - lo) as u64;
        // Multiply-shift range reduction (Lemire); the tiny modulo bias of
        // the plain approach would be irrelevant here, but this is just as
        // cheap and exact for spans far below 2^64.
        let hi64 = ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64;
        lo + hi64 as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn floats_stay_in_range() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = r.gen_f32();
            assert!((0.0..1.0).contains(&f));
            let v = r.gen_range_f32(-2.5, 3.5);
            assert!((-2.5..3.5).contains(&v));
        }
    }

    #[test]
    fn usize_range_covers_all_values() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = r.gen_range_usize(0, 10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "not all values drawn: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = SmallRng::seed_from_u64(4);
        let sum: f64 = (0..10_000).map(|_| r.gen_f64()).sum();
        let mean = sum / 10_000.0;
        assert!((0.48..0.52).contains(&mean), "mean {mean}");
    }
}
