//! TIGER-like synthetic spatial workloads.
//!
//! The paper evaluates on the TIGER/Line 97 data set: minimal bounding
//! rectangles of the *road* and *hydrography* features of the United States,
//! cut into six nested subsets (Table 2) ranging from the state of New Jersey
//! (about 465 000 objects) to all six CD-ROMs (about 36 million objects).
//! That data cannot be redistributed with this reproduction, so this crate
//! generates the closest synthetic equivalent:
//!
//! * **Roads** are many short, thin, axis-leaning segments clustered into
//!   "counties" — mirroring the street grids that dominate the TIGER road
//!   layer.
//! * **Hydrography** is a much smaller relation of elongated river polylines
//!   (chains of longer, thin MBRs meandering across counties) plus compact
//!   lakes.
//!
//! What matters for the paper's experiments is preserved: the relative sizes
//! of the two relations and of the six presets, the strong spatial
//! clustering, the fact that only a bounded number of rectangles intersect
//! any horizontal line (the "square-root rule" that keeps the sweep
//! structures small), and a join selectivity of a few tenths of an output
//! pair per road object. The generator is deterministic given a seed.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod generator;
pub mod preset;
pub mod rng;
pub mod workload;

pub use generator::{GeneratorConfig, HydroConfig, RoadConfig};
pub use preset::Preset;
pub use workload::{DatasetStats, Workload, WorkloadSpec};

// Property-based tests need the external `proptest` crate, which the
// offline build environment cannot provide; they are opt-in behind the
// `proptest` feature (see KNOWN_FAILURES.md).
#[cfg(all(test, feature = "proptest"))]
mod proptests;
