//! Property-based tests for the workload generator, on the in-tree
//! `usj_proptest` harness.

use usj_proptest::forall;

use crate::{Preset, WorkloadSpec};

#[test]
fn every_generated_rectangle_is_valid_and_inside_the_region() {
    forall!(16, |g| {
        let seed = g.u64_in(0, 1_000);
        let preset = Preset::small()[g.usize_in(0, 3)];
        let spec = WorkloadSpec::preset(preset).with_scale(2_000);
        let w = spec.generate(seed);
        let region = w.region;
        for it in w.roads.iter().chain(w.hydro.iter()) {
            assert!(it.rect.lo.x <= it.rect.hi.x);
            assert!(it.rect.lo.y <= it.rect.hi.y);
            // Hydro segments may be padded slightly beyond the region.
            assert!(it.rect.lo.x >= region.lo.x - 1.0);
            assert!(it.rect.hi.x <= region.hi.x + 1.0);
            assert!(it.rect.lo.y >= region.lo.y - 1.0);
            assert!(it.rect.hi.y <= region.hi.y + 1.0);
        }
    });
}

#[test]
fn ids_are_unique_within_a_workload() {
    forall!(16, |g| {
        let seed = g.u64_in(0, 1_000);
        let w = WorkloadSpec::preset(Preset::NJ).with_scale(1_000).generate(seed);
        let mut ids: Vec<u32> = w.roads.iter().chain(w.hydro.iter()).map(|i| i.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    });
}

#[test]
fn relation_size_ratio_matches_table2() {
    forall!(16, |g| {
        let seed = g.u64_in(0, 100);
        let preset = Preset::small()[g.usize_in(0, 3)];
        let w = WorkloadSpec::preset(preset).with_scale(1_000).generate(seed);
        let paper_ratio = preset.paper_road_objects() as f64 / preset.paper_hydro_objects() as f64;
        let ours = w.roads.len() as f64 / w.hydro.len() as f64;
        assert!(
            (ours / paper_ratio - 1.0).abs() < 0.05,
            "road/hydro ratio {ours} deviates from the paper's {paper_ratio}"
        );
    });
}
