//! Differential proof that observability never perturbs execution.
//!
//! Every small preset × every algorithm runs twice — once under a
//! *recording* span collector, once under the no-op recorder — and must
//! deliver **byte-identical** pair sequences, charged [`IoStats`] and
//! measured peak memory. The recording run must additionally produce a
//! non-trivial span tree (the whole point), and the no-op recorder must
//! stay within a few percent of the uninstrumented wall time on the
//! hot-path kernel (the "tracing off is free" contract).

use std::sync::Arc;
use std::time::{Duration, Instant};

use usj_bench::setup::{ExperimentConfig, PreparedWorkload};
use usj_core::{CollectSink, JoinAlgorithm, JoinInput, SpatialQuery};
use usj_datagen::Preset;
use usj_io::{IoStats, MachineConfig};
use usj_obs::{NoopRecorder, QueryTrace, Recorder, RingCollector};

const ALGORITHMS: [JoinAlgorithm; 4] = [
    JoinAlgorithm::Sssj,
    JoinAlgorithm::Pbsm,
    JoinAlgorithm::Pq,
    JoinAlgorithm::St,
];

/// Runs `alg` on a freshly built `preset` workload, collecting every pair.
fn run_collect(
    preset: Preset,
    alg: JoinAlgorithm,
) -> (Vec<(u32, u32)>, IoStats, usize) {
    use JoinAlgorithm as A;
    let cfg = ExperimentConfig::quick();
    let mut p = PreparedWorkload::build(preset, &cfg, MachineConfig::machine3());
    let (left, right) = match alg {
        A::Pq | A::St => (
            JoinInput::Indexed(&p.roads_tree),
            JoinInput::Indexed(&p.hydro_tree),
        ),
        A::Sssj | A::Pbsm => (
            JoinInput::Stream(&p.roads_stream),
            JoinInput::Stream(&p.hydro_stream),
        ),
    };
    let mut sink = CollectSink::default();
    let result = SpatialQuery::new(left, right)
        .algorithm(alg.into())
        .execute(&mut p.env, &mut sink)
        .expect("join");
    (sink.pairs, result.io, result.memory.peak_bytes)
}

#[test]
fn recording_and_noop_runs_are_byte_identical_for_every_preset_and_algorithm() {
    for preset in Preset::small() {
        for alg in ALGORITHMS {
            // Baseline: no recorder installed at all.
            let bare = run_collect(preset, alg);

            // Recording run: spans land in a ring, execution must not move.
            let ring = Arc::new(RingCollector::new(64 * 1024));
            let recorded = {
                let _g = usj_obs::install(
                    Arc::clone(&ring) as Arc<dyn Recorder>,
                    Arc::new(usj_obs::HostClock::new()),
                );
                run_collect(preset, alg)
            };
            let (events, dropped) = ring.drain();
            let trace = QueryTrace::from_events(&events, dropped);

            // No-op run: recorder installed but discarding.
            let noop = {
                let _g = usj_obs::install(
                    Arc::new(NoopRecorder) as Arc<dyn Recorder>,
                    Arc::new(usj_obs::HostClock::new()),
                );
                run_collect(preset, alg)
            };

            assert_eq!(
                bare, recorded,
                "{preset:?}/{alg:?}: recording changed pairs, I/O or peak memory"
            );
            assert_eq!(
                bare, noop,
                "{preset:?}/{alg:?}: the no-op recorder changed pairs, I/O or peak memory"
            );
            if matches!(alg, JoinAlgorithm::Sssj) {
                assert!(
                    trace.find("sssj.sort").is_some() && trace.find("sssj.sweep").is_some(),
                    "{preset:?}: SSSJ must record its operator phases, got {}",
                    trace.shape()
                );
                let sort = trace.find("sssj.sort").unwrap();
                assert!(
                    sort.io.pages_read > 0,
                    "{preset:?}: the sort phase reads its input"
                );
            }
        }
    }
}

/// Minimum-of-samples wall time of one SSSJ join on a prepared workload.
fn min_wall(p: &mut PreparedWorkload, samples: usize) -> Duration {
    (0..samples)
        .map(|_| {
            p.reset();
            let left = JoinInput::Stream(&p.roads_stream);
            let right = JoinInput::Stream(&p.hydro_stream);
            let started = Instant::now();
            let mut sink = CollectSink::default();
            SpatialQuery::new(left, right)
                .algorithm(usj_core::Algo::Sssj)
                .execute(&mut p.env, &mut sink)
                .expect("join");
            assert!(!sink.pairs.is_empty());
            started.elapsed()
        })
        .min()
        .expect("samples > 0")
}

#[test]
fn noop_recorder_overhead_on_the_hotpath_is_marginal() {
    // Minimum-of-samples on both sides absorbs scheduler noise; the bound
    // is the issue's 5% plus a small absolute grace for timer jitter on
    // very fast kernels.
    let cfg = ExperimentConfig {
        scale: 200,
        ..ExperimentConfig::quick()
    };
    let mut p = PreparedWorkload::build(Preset::NJ, &cfg, MachineConfig::machine3());
    let bare = min_wall(&mut p, 5);
    let noop = {
        let _g = usj_obs::install(
            Arc::new(NoopRecorder) as Arc<dyn Recorder>,
            Arc::new(usj_obs::HostClock::new()),
        );
        min_wall(&mut p, 5)
    };
    let bound = bare.mul_f64(1.05) + Duration::from_millis(2);
    assert!(
        noop <= bound,
        "no-op recorder cost {noop:?} exceeds {bound:?} (bare {bare:?})"
    );
}
