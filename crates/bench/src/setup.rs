//! Shared experiment set-up: workload generation, index construction and
//! stream materialisation.

use usj_core::{JoinInput, JoinOperator, SpatialQuery};
use usj_datagen::{Preset, Workload, WorkloadSpec};
use usj_io::{ItemStream, MachineConfig, SimEnv};
use usj_rtree::RTree;

/// Global knobs shared by every experiment.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Divisor applied to the paper's object counts (Table 2).
    pub scale: u64,
    /// Seed of the deterministic workload generator.
    pub seed: u64,
    /// Data sets to run on.
    pub presets: Vec<Preset>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            scale: 200,
            seed: 42,
            presets: Preset::all().to_vec(),
        }
    }
}

impl ExperimentConfig {
    /// A configuration small enough for unit tests and criterion benches.
    pub fn quick() -> Self {
        ExperimentConfig {
            scale: 1_000,
            seed: 42,
            presets: Preset::small().to_vec(),
        }
    }
}

/// One preset's data materialised on a fresh simulated device: the raw
/// workload, both R-trees and both flat streams.
pub struct PreparedWorkload {
    /// The simulation environment holding the device the data lives on.
    pub env: SimEnv,
    /// The generated workload (kept for reference-join checks).
    pub workload: Workload,
    /// R-tree over the road relation.
    pub roads_tree: RTree,
    /// R-tree over the hydrography relation.
    pub hydro_tree: RTree,
    /// Flat (non-indexed) stream of the road relation.
    pub roads_stream: ItemStream,
    /// Flat (non-indexed) stream of the hydrography relation.
    pub hydro_stream: ItemStream,
}

impl PreparedWorkload {
    /// Generates and materialises one preset on a fresh device for `machine`.
    ///
    /// Index construction and file materialisation run with I/O accounting
    /// disabled, mirroring the paper's methodology of measuring the join in
    /// isolation (index build cost is discussed separately in Section 6.3).
    pub fn build(preset: Preset, config: &ExperimentConfig, machine: MachineConfig) -> Self {
        let workload = WorkloadSpec::preset(preset)
            .with_scale(config.scale)
            .generate(config.seed);
        let mut env = SimEnv::new(machine);
        let (roads_tree, hydro_tree, roads_stream, hydro_stream) = env.unaccounted(|env| {
            let rt = RTree::bulk_load(env, &workload.roads).expect("bulk load roads");
            let ht = RTree::bulk_load(env, &workload.hydro).expect("bulk load hydro");
            let rs = ItemStream::from_items(env, &workload.roads).expect("roads stream");
            let hs = ItemStream::from_items(env, &workload.hydro).expect("hydro stream");
            (rt, ht, rs, hs)
        });
        env.device.reset_stats();
        PreparedWorkload {
            env,
            workload,
            roads_tree,
            hydro_tree,
            roads_stream,
            hydro_stream,
        }
    }

    /// The indexed inputs `(roads, hydro)`.
    ///
    /// Note: the returned inputs borrow the trees, so they cannot be used in
    /// the same expression as a mutable borrow of `self.env`; bind the tree
    /// references first (`JoinInput::Indexed(&p.roads_tree)`) when the
    /// environment is needed mutably in the same scope.
    pub fn indexed_inputs(&self) -> (JoinInput<'_>, JoinInput<'_>) {
        (
            JoinInput::Indexed(&self.roads_tree),
            JoinInput::Indexed(&self.hydro_tree),
        )
    }

    /// The non-indexed inputs `(roads, hydro)`.
    pub fn stream_inputs(&self) -> (JoinInput<'_>, JoinInput<'_>) {
        (
            JoinInput::Stream(&self.roads_stream),
            JoinInput::Stream(&self.hydro_stream),
        )
    }

    /// Runs `join` on the indexed representation `(roads ⋈ hydro)`.
    pub fn run_indexed<J: JoinOperator>(&mut self, join: &J) -> usj_core::JoinResult {
        join.run(
            &mut self.env,
            JoinInput::Indexed(&self.roads_tree),
            JoinInput::Indexed(&self.hydro_tree),
        )
        .expect("indexed join")
    }

    /// Runs `join` on the non-indexed representation `(roads ⋈ hydro)`.
    pub fn run_streams<J: JoinOperator>(&mut self, join: &J) -> usj_core::JoinResult {
        join.run(
            &mut self.env,
            JoinInput::Stream(&self.roads_stream),
            JoinInput::Stream(&self.hydro_stream),
        )
        .expect("stream join")
    }

    /// Runs one of the four algorithms on its natural input representation
    /// (indexed for PQ/ST, flat streams for SSSJ/PBSM), as in the paper —
    /// driven through the [`SpatialQuery`] builder.
    pub fn run_algorithm(&mut self, alg: usj_core::JoinAlgorithm) -> usj_core::JoinResult {
        use usj_core::JoinAlgorithm as A;
        let (left, right) = match alg {
            A::Pq | A::St => (
                JoinInput::Indexed(&self.roads_tree),
                JoinInput::Indexed(&self.hydro_tree),
            ),
            A::Sssj | A::Pbsm => (
                JoinInput::Stream(&self.roads_stream),
                JoinInput::Stream(&self.hydro_stream),
            ),
        };
        SpatialQuery::new(left, right)
            .algorithm(alg.into())
            .run(&mut self.env)
            .expect("join through the query builder")
    }

    /// Resets the device statistics and head position before a measurement.
    pub fn reset(&mut self) {
        self.env.device.reset_stats();
        self.env.cpu = usj_io::CpuCounter::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepared_workload_has_consistent_sizes() {
        let cfg = ExperimentConfig::quick();
        let p = PreparedWorkload::build(Preset::NJ, &cfg, MachineConfig::machine3());
        assert_eq!(p.roads_tree.num_items() as usize, p.workload.roads.len());
        assert_eq!(p.hydro_stream.len() as usize, p.workload.hydro.len());
        // Setup I/O is not charged.
        assert_eq!(p.env.device.stats().total_ops(), 0);
    }

    #[test]
    fn default_config_covers_all_presets() {
        let cfg = ExperimentConfig::default();
        assert_eq!(cfg.presets.len(), 6);
        assert_eq!(cfg.scale, 200);
        assert_eq!(ExperimentConfig::quick().presets.len(), 3);
    }
}
