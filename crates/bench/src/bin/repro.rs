//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment> [--scale N] [--seed N] [--presets NJ,NY,...]
//!                    [--requests N] [--workers A,B,...] [--trace PATH]
//!
//! experiments:
//!   table2 table3 table4 fig2-estimated fig2-observed fig3 crossover
//!   ablation-sweep ablation-buffer ablation-tiles ablation-packing
//!   low-memory service hotpath load live faults all
//! ```
//!
//! `service` additionally writes its rows as machine-readable
//! `BENCH_service.json` in the current directory. `hotpath` writes the full
//! detail as `BENCH_hotpath_latest.json` and *appends* a compact point to
//! the tracked `BENCH_hotpath.json` trajectory. `load` (which honours
//! `--requests` and `--workers`) and `live` rewrite `BENCH_service.json`
//! with their latest rows — including a `metrics` snapshot of the
//! service's counter/gauge/histogram registry for `load` — and *append* a
//! point to the tracked `BENCH_trajectory.json`. `load --trace PATH`
//! additionally replays the schedule once with tracing on and writes the
//! run as a Chrome trace-event document (open in `chrome://tracing` or
//! Perfetto). `faults` rewrites `BENCH_service.json` with the chaos rows
//! (injected-fault, retry, panic and crash-recovery counters) and appends
//! a point to `BENCH_trajectory.json`.

use usj_bench::{ExperimentConfig, LoadSpec, *};
use usj_datagen::Preset;

/// Parsed command line: the shared experiment knobs plus the load-harness
/// overrides (ignored by every other experiment).
struct CliOptions {
    cfg: ExperimentConfig,
    requests: Option<usize>,
    workers: Option<Vec<usize>>,
    trace: Option<String>,
}

fn parse_config(args: &[String]) -> CliOptions {
    let mut cfg = ExperimentConfig::default();
    let mut requests = None;
    let mut workers = None;
    let mut trace = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                cfg.scale = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale expects a positive integer"));
            }
            "--seed" => {
                i += 1;
                cfg.seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed expects an integer"));
            }
            "--presets" => {
                i += 1;
                let list = args.get(i).unwrap_or_else(|| die("--presets expects a list"));
                cfg.presets = list
                    .split(',')
                    .map(|name| {
                        Preset::parse(name)
                            .unwrap_or_else(|| die(&format!("unknown preset '{name}'")))
                    })
                    .collect();
            }
            "--requests" => {
                i += 1;
                requests = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .filter(|&n: &usize| n > 0)
                        .unwrap_or_else(|| die("--requests expects a positive integer")),
                );
            }
            "--workers" => {
                i += 1;
                let list = args.get(i).unwrap_or_else(|| die("--workers expects a list"));
                let parsed: Vec<usize> = list
                    .split(',')
                    .map(|n| {
                        n.parse()
                            .ok()
                            .filter(|&w| w > 0)
                            .unwrap_or_else(|| die("--workers expects positive integers"))
                    })
                    .collect();
                workers = Some(parsed);
            }
            "--trace" => {
                i += 1;
                trace = Some(
                    args.get(i)
                        .filter(|p| !p.is_empty())
                        .cloned()
                        .unwrap_or_else(|| die("--trace expects an output path")),
                );
            }
            other => die(&format!("unknown option '{other}'")),
        }
        i += 1;
    }
    CliOptions {
        cfg,
        requests,
        workers,
        trace,
    }
}

fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: repro <experiment> [--scale N] [--seed N] [--presets NJ,NY,...] \
         [--requests N] [--workers A,B,...] [--trace PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(experiment) = args.first() else {
        die("missing experiment name");
    };
    let opts = parse_config(&args[1..]);
    if opts.trace.is_some() && experiment != "load" {
        die("--trace is only supported by the load experiment");
    }
    let cfg = opts.cfg.clone();
    println!(
        "# unified-spatial-join repro — experiment '{}', scale 1/{}, seed {}",
        experiment, cfg.scale, cfg.seed
    );
    match experiment.as_str() {
        "table2" => table2(&cfg),
        "table3" => table3(&cfg),
        "table4" => table4(&cfg),
        "fig2-estimated" => fig2(&cfg, false),
        "fig2-observed" => fig2(&cfg, true),
        "fig2" => {
            fig2(&cfg, false);
            fig2(&cfg, true);
        }
        "fig3" => fig3(&cfg),
        "crossover" => crossover(&cfg),
        "ablation-sweep" => ablation_sweep(&cfg),
        "ablation-buffer" => ablation_buffer(&cfg),
        "ablation-tiles" => ablation_tiles(&cfg),
        "ablation-packing" => ablation_packing(&cfg),
        "low-memory" => low_memory(&cfg),
        "service" => {
            let rows = service_bench(&cfg);
            let json = service_bench_json(&cfg, &rows);
            let path = "BENCH_service.json";
            std::fs::write(path, &json)
                .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
            println!("wrote {path} ({} rows)", rows.len());
        }
        "hotpath" => {
            let (kernels, joins) = hotpath(&cfg);
            let json = hotpath_json(&cfg, &kernels, &joins);
            let latest = "BENCH_hotpath_latest.json";
            std::fs::write(latest, &json)
                .unwrap_or_else(|e| die(&format!("cannot write {latest}: {e}")));
            println!(
                "wrote {latest} ({} kernel rows, {} join rows)",
                kernels.len(),
                joins.len()
            );

            let point = hotpath_trajectory_point(&cfg, &kernels, &joins, unix_now());
            let trajectory = "BENCH_hotpath.json";
            let existing = std::fs::read_to_string(trajectory).ok();
            let updated = append_trajectory_with(
                existing.as_deref(),
                &point,
                HOTPATH_TRAJECTORY_DESCRIPTION,
            )
            .unwrap_or_else(|e| die(&e));
            std::fs::write(trajectory, updated)
                .unwrap_or_else(|e| die(&format!("cannot write {trajectory}: {e}")));
            println!("appended 1 point to {trajectory}");
        }
        "load" => {
            let mut spec = LoadSpec::from_config(&cfg);
            if let Some(requests) = opts.requests {
                spec.requests = requests;
            }
            if let Some(workers) = opts.workers {
                spec.worker_counts = workers;
            }
            let outcome = load_bench(&spec);
            let path = "BENCH_service.json";
            std::fs::write(path, load_bench_json(&spec, &outcome))
                .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
            println!("wrote {path} ({} rows + batching A/B)", outcome.rows.len());

            let point = trajectory_point(&spec, &outcome, unix_now());
            let trajectory = "BENCH_trajectory.json";
            let existing = std::fs::read_to_string(trajectory).ok();
            let updated = append_trajectory(existing.as_deref(), &point)
                .unwrap_or_else(|e| die(&e));
            std::fs::write(trajectory, updated)
                .unwrap_or_else(|e| die(&format!("cannot write {trajectory}: {e}")));
            println!("appended 1 point to {trajectory}");

            if let Some(trace_path) = &opts.trace {
                let doc = load_trace_json(&spec);
                std::fs::write(trace_path, doc)
                    .unwrap_or_else(|e| die(&format!("cannot write {trace_path}: {e}")));
                println!("wrote Chrome trace-event document {trace_path}");
            }
        }
        "live" => {
            let (rows, interference) = live_bench(&cfg);
            let path = "BENCH_service.json";
            std::fs::write(path, live_bench_json(&cfg, &rows, &interference))
                .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
            println!(
                "wrote {path} ({} early-result rows, {} interference rows)",
                rows.len(),
                interference.len()
            );

            let point = live_trajectory_point(&cfg, &rows, &interference, unix_now());
            let trajectory = "BENCH_trajectory.json";
            let existing = std::fs::read_to_string(trajectory).ok();
            let updated = append_trajectory(existing.as_deref(), &point)
                .unwrap_or_else(|e| die(&e));
            std::fs::write(trajectory, updated)
                .unwrap_or_else(|e| die(&format!("cannot write {trajectory}: {e}")));
            println!("appended 1 point to {trajectory}");
        }
        "faults" => {
            let rows = faults_bench(&cfg);
            let path = "BENCH_service.json";
            std::fs::write(path, faults_bench_json(&cfg, &rows))
                .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
            println!("wrote {path} ({} rows)", rows.len());

            let point = faults_trajectory_point(&cfg, &rows, unix_now());
            let trajectory = "BENCH_trajectory.json";
            let existing = std::fs::read_to_string(trajectory).ok();
            let updated = append_trajectory_with(
                existing.as_deref(),
                &point,
                FAULTS_TRAJECTORY_DESCRIPTION,
            )
            .unwrap_or_else(|e| die(&e));
            std::fs::write(trajectory, updated)
                .unwrap_or_else(|e| die(&format!("cannot write {trajectory}: {e}")));
            println!("appended 1 point to {trajectory}");
        }
        "all" => run_all(&cfg),
        other => die(&format!("unknown experiment '{other}'")),
    }
}
