//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment> [--scale N] [--seed N] [--presets NJ,NY,...]
//!
//! experiments:
//!   table2 table3 table4 fig2-estimated fig2-observed fig3 crossover
//!   ablation-sweep ablation-buffer ablation-tiles ablation-packing
//!   low-memory service hotpath all
//! ```
//!
//! `service` and `hotpath` additionally write their rows as machine-readable
//! `BENCH_service.json` / `BENCH_hotpath.json` in the current directory.

use usj_bench::{ExperimentConfig, *};
use usj_datagen::Preset;

fn parse_config(args: &[String]) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                cfg.scale = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale expects a positive integer"));
            }
            "--seed" => {
                i += 1;
                cfg.seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed expects an integer"));
            }
            "--presets" => {
                i += 1;
                let list = args.get(i).unwrap_or_else(|| die("--presets expects a list"));
                cfg.presets = list
                    .split(',')
                    .map(|name| {
                        Preset::parse(name)
                            .unwrap_or_else(|| die(&format!("unknown preset '{name}'")))
                    })
                    .collect();
            }
            other => die(&format!("unknown option '{other}'")),
        }
        i += 1;
    }
    cfg
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: repro <experiment> [--scale N] [--seed N] [--presets NJ,NY,...]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(experiment) = args.first() else {
        die("missing experiment name");
    };
    let cfg = parse_config(&args[1..]);
    println!(
        "# unified-spatial-join repro — experiment '{}', scale 1/{}, seed {}",
        experiment, cfg.scale, cfg.seed
    );
    match experiment.as_str() {
        "table2" => table2(&cfg),
        "table3" => table3(&cfg),
        "table4" => table4(&cfg),
        "fig2-estimated" => fig2(&cfg, false),
        "fig2-observed" => fig2(&cfg, true),
        "fig2" => {
            fig2(&cfg, false);
            fig2(&cfg, true);
        }
        "fig3" => fig3(&cfg),
        "crossover" => crossover(&cfg),
        "ablation-sweep" => ablation_sweep(&cfg),
        "ablation-buffer" => ablation_buffer(&cfg),
        "ablation-tiles" => ablation_tiles(&cfg),
        "ablation-packing" => ablation_packing(&cfg),
        "low-memory" => low_memory(&cfg),
        "service" => {
            let rows = service_bench(&cfg);
            let json = service_bench_json(&cfg, &rows);
            let path = "BENCH_service.json";
            std::fs::write(path, &json)
                .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
            println!("wrote {path} ({} rows)", rows.len());
        }
        "hotpath" => {
            let (kernels, joins) = hotpath(&cfg);
            let json = hotpath_json(&cfg, &kernels, &joins);
            let path = "BENCH_hotpath.json";
            std::fs::write(path, &json)
                .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
            println!(
                "wrote {path} ({} kernel rows, {} join rows)",
                kernels.len(),
                joins.len()
            );
        }
        "all" => run_all(&cfg),
        other => die(&format!("unknown experiment '{other}'")),
    }
}
