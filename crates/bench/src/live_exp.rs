//! The `live` experiment: streaming joins over LSM datasets under ingestion.
//!
//! Two questions, both wall-clock:
//!
//! * **Early results** — the streaming symmetric join emits pairs as items
//!   arrive, so its *time-to-first-K-pairs* should sit far below the
//!   offline SSSJ's *total* wall-clock on the same snapshot (which must
//!   first materialise the snapshot into one sorted run, then sweep it to
//!   completion). That gap is the entire point of the operator.
//! * **Compaction interference** — a query that lands while the dataset
//!   carries unmerged delta runs reads more, smaller runs than one landing
//!   right after a compaction folded everything into a fresh base. The
//!   ingest-while-querying loop drives [`Service::append_live`] and
//!   [`QueryRequest::streaming_join`] in alternation and buckets the
//!   per-query latencies by how fragmented the snapshot was.
//!
//! `repro live` writes the rows as `BENCH_service.json` (the scratch
//! latest-run document, like `repro load`) and appends one point to the
//! tracked `BENCH_trajectory.json`.

use std::ops::ControlFlow;
use std::time::{Duration, Instant};

use usj_core::{JoinInput, JoinOperator, PairSink, SssjJoin};
use usj_datagen::WorkloadSpec;
use usj_geom::Item;
use usj_io::{MachineConfig, SimEnv};
use usj_live::{LiveConfig, LiveDataset, LiveSnapshot, StreamingJoin};
use usj_service::{Catalog, QueryRequest, Service, ServiceConfig};

use crate::setup::ExperimentConfig;

/// The early-result target: wall-clock until this many pairs have been
/// delivered (clamped to the result size on small workloads).
pub const FIRST_K: u64 = 1000;

/// Ingest batches driven through the service in the interference loop.
const INGEST_BATCHES: usize = 8;

/// A sink that timestamps the K-th delivered pair and keeps streaming.
struct FirstKSink {
    k: u64,
    count: u64,
    started: Instant,
    first_k: Option<Duration>,
}

impl FirstKSink {
    fn new(k: u64) -> Self {
        FirstKSink {
            k,
            count: 0,
            started: Instant::now(),
            first_k: None,
        }
    }
}

impl PairSink for FirstKSink {
    fn emit(&mut self, _left: u32, _right: u32) -> ControlFlow<()> {
        self.count += 1;
        if self.first_k.is_none() && self.count >= self.k {
            self.first_k = Some(self.started.elapsed());
        }
        ControlFlow::Continue(())
    }
}

/// One preset's early-result measurement.
#[derive(Debug, Clone)]
pub struct LiveBenchRow {
    /// Workload preset name.
    pub preset: String,
    /// Items in the left (road) snapshot.
    pub left_items: u64,
    /// Items in the right (hydrography) snapshot.
    pub right_items: u64,
    /// Total intersecting pairs (streaming == offline, asserted).
    pub pairs: u64,
    /// The K the stopwatch waited for: `min(FIRST_K, pairs)`.
    pub first_k: u64,
    /// Wall-clock until the K-th streamed pair, milliseconds.
    pub streaming_first_k_ms: f64,
    /// Wall-clock of the full streaming join, milliseconds.
    pub streaming_total_ms: f64,
    /// Wall-clock of the offline path — materialise the snapshots into
    /// sorted runs, then SSSJ to completion — milliseconds.
    pub offline_sssj_ms: f64,
    /// Sorted runs in the left snapshot (base + deltas + memtable).
    pub left_runs: usize,
    /// Sorted runs in the right snapshot.
    pub right_runs: usize,
}

impl LiveBenchRow {
    /// How much sooner the K-th pair arrives than the offline answer.
    pub fn early_speedup(&self) -> f64 {
        self.offline_sssj_ms / self.streaming_first_k_ms.max(f64::EPSILON)
    }
}

/// One preset's ingest-while-querying interference measurement.
#[derive(Debug, Clone)]
pub struct LiveInterferenceRow {
    /// Workload preset name.
    pub preset: String,
    /// Append batches driven through the service.
    pub ingest_batches: u64,
    /// Memtable flushes those appends triggered (both datasets).
    pub flushes: u64,
    /// Compactions those appends triggered (both datasets).
    pub compactions: u64,
    /// Largest delta-run count any query saw across both inputs.
    pub max_delta_runs: usize,
    /// Mean streaming-query latency when ≥ 1 delta run was pending, ms.
    pub query_ms_fragmented: f64,
    /// Mean streaming-query latency over fully compacted inputs, ms.
    pub query_ms_compacted: f64,
    /// Wall-clock spent inside appends that compacted, milliseconds.
    pub compaction_ms: f64,
}

impl LiveInterferenceRow {
    /// Fragmented / compacted latency ratio (1.0 when a bucket is empty).
    pub fn interference(&self) -> f64 {
        if self.query_ms_compacted <= 0.0 || self.query_ms_fragmented <= 0.0 {
            1.0
        } else {
            self.query_ms_fragmented / self.query_ms_compacted
        }
    }
}

/// Builds a live dataset whose history left it genuinely fragmented: part
/// of the items as the base run, the rest appended in chunks small enough
/// to flush several delta runs but not enough to trigger compaction.
fn fragmented_dataset(env: &mut SimEnv, name: &str, items: &[Item]) -> LiveDataset {
    let split = items.len() / 2;
    let config = LiveConfig {
        flush_threshold_bytes: (items.len() / 8).max(64) * usj_geom::ITEM_BYTES,
        compact_after_deltas: 0, // manual only: keep the runs for the bench
    };
    let ds = env.unaccounted(|env| {
        let mut ds = LiveDataset::create(env, name, &items[..split], config)
            .expect("create live dataset");
        for chunk in items[split..].chunks((items.len() / 6).max(32)) {
            ds.append(env, chunk).expect("append");
        }
        ds
    });
    env.device.reset_stats();
    ds
}

fn median_ms(samples: &mut [f64]) -> f64 {
    samples.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite wall times"));
    samples[samples.len() / 2]
}

/// Times the offline path once: snapshot → one sorted run → full SSSJ.
fn offline_once(env: &mut SimEnv, left: &LiveSnapshot, right: &LiveSnapshot) -> (u64, f64) {
    let start = Instant::now();
    let sl = left.to_stream(env).expect("materialise left");
    let sr = right.to_stream(env).expect("materialise right");
    let result = SssjJoin::default()
        .run(env, JoinInput::Stream(&sl), JoinInput::Stream(&sr))
        .expect("offline SSSJ");
    (result.pairs, start.elapsed().as_secs_f64() * 1000.0)
}

/// Times the streaming join once, returning (pairs, first-K ms, total ms).
fn streaming_once(
    env: &mut SimEnv,
    left: &LiveSnapshot,
    right: &LiveSnapshot,
    k: u64,
) -> (u64, f64, f64) {
    let mut sink = FirstKSink::new(k);
    let start = Instant::now();
    StreamingJoin::default()
        .run(env, left, right, &mut sink)
        .expect("streaming join");
    let total_ms = start.elapsed().as_secs_f64() * 1000.0;
    let first_k_ms = sink
        .first_k
        .map_or(total_ms, |d| d.as_secs_f64() * 1000.0);
    (sink.count, first_k_ms, total_ms)
}

/// Wall-clock samples per timed case (median reported).
const SAMPLES: usize = 3;

/// Runs the live experiment: the early-result race on every preset, then
/// the service-driven ingest-while-querying interference loop.
///
/// Panics if the streaming pair count ever diverges from the offline
/// SSSJ's — the timings are only meaningful while the answers agree.
pub fn live_bench(cfg: &ExperimentConfig) -> (Vec<LiveBenchRow>, Vec<LiveInterferenceRow>) {
    println!(
        "\n== Live: time-to-first-{FIRST_K}-pairs (streaming) vs full offline SSSJ (scale divisor {}) ==",
        cfg.scale
    );
    println!(
        "{:<10} {:>9} {:>9} {:>10} {:>8} {:>11} {:>11} {:>11} {:>9}",
        "Data set", "left", "right", "pairs", "K", "first-K ms", "stream ms", "offline ms", "early x"
    );
    let mut rows = Vec::new();
    for &preset in &cfg.presets {
        let workload = WorkloadSpec::preset(preset)
            .with_scale(cfg.scale)
            .generate(cfg.seed);
        let mut env = SimEnv::new(MachineConfig::machine3());
        let roads = fragmented_dataset(&mut env, "roads", &workload.roads);
        let hydro = fragmented_dataset(&mut env, "hydro", &workload.hydro);
        let (snap_l, snap_r) = (roads.snapshot(), hydro.snapshot());

        // One untimed differential run pins the pair counts before any
        // timing is believed.
        let (offline_pairs, _) = offline_once(&mut env, &snap_l, &snap_r);
        let k = FIRST_K.min(offline_pairs.max(1));
        let (streamed, _, _) = streaming_once(&mut env, &snap_l, &snap_r, k);
        assert_eq!(
            streamed, offline_pairs,
            "{preset}: streaming join diverged from offline SSSJ"
        );

        let mut first_k_samples = Vec::with_capacity(SAMPLES);
        let mut total_samples = Vec::with_capacity(SAMPLES);
        let mut offline_samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let (_, first_k_ms, total_ms) = streaming_once(&mut env, &snap_l, &snap_r, k);
            first_k_samples.push(first_k_ms);
            total_samples.push(total_ms);
            let (_, offline_ms) = offline_once(&mut env, &snap_l, &snap_r);
            offline_samples.push(offline_ms);
        }
        let row = LiveBenchRow {
            preset: preset.name().to_string(),
            left_items: snap_l.len(),
            right_items: snap_r.len(),
            pairs: offline_pairs,
            first_k: k,
            streaming_first_k_ms: median_ms(&mut first_k_samples),
            streaming_total_ms: median_ms(&mut total_samples),
            offline_sssj_ms: median_ms(&mut offline_samples),
            left_runs: snap_l.run_count(),
            right_runs: snap_r.run_count(),
        };
        println!(
            "{:<10} {:>9} {:>9} {:>10} {:>8} {:>11.3} {:>11.3} {:>11.3} {:>8.1}x",
            row.preset,
            row.left_items,
            row.right_items,
            row.pairs,
            row.first_k,
            row.streaming_first_k_ms,
            row.streaming_total_ms,
            row.offline_sssj_ms,
            row.early_speedup(),
        );
        rows.push(row);
    }

    println!("\n== Live: ingest-while-querying through the service (compaction interference) ==");
    println!(
        "{:<10} {:>8} {:>8} {:>9} {:>9} {:>12} {:>12} {:>9} {:>11}",
        "Data set", "batches", "flushes", "compacts", "max runs", "frag q ms", "compact q ms", "interf", "compact ms"
    );
    let mut interference = Vec::new();
    for &preset in &cfg.presets {
        let row = interference_loop(cfg, preset);
        println!(
            "{:<10} {:>8} {:>8} {:>9} {:>9} {:>12.3} {:>12.3} {:>8.2}x {:>11.1}",
            row.preset,
            row.ingest_batches,
            row.flushes,
            row.compactions,
            row.max_delta_runs,
            row.query_ms_fragmented,
            row.query_ms_compacted,
            row.interference(),
            row.compaction_ms,
        );
        interference.push(row);
    }
    println!(
        "(first-K clock starts when the join starts; the offline column includes materialising \
         the snapshot into one sorted run, which is exactly the work streaming avoids)"
    );
    (rows, interference)
}

/// Alternates `append_live` batches with streaming queries on one service,
/// bucketing query latency by snapshot fragmentation at execution time.
fn interference_loop(cfg: &ExperimentConfig, preset: usj_datagen::Preset) -> LiveInterferenceRow {
    let workload = WorkloadSpec::preset(preset)
        .with_scale(cfg.scale)
        .generate(cfg.seed);
    let mut service = Service::new(
        SimEnv::new(MachineConfig::machine3()),
        Catalog::new(),
        ServiceConfig::default().with_workers(2),
    );
    let half_r = workload.roads.len() / 2;
    let half_h = workload.hydro.len() / 2;
    // Flush every ~quarter batch; compact after two pending deltas, so the
    // loop naturally alternates fragmented and freshly-compacted states.
    let config = |items: usize| LiveConfig {
        flush_threshold_bytes: (items / (INGEST_BATCHES * 4)).max(64) * usj_geom::ITEM_BYTES,
        compact_after_deltas: 2,
    };
    let la = service
        .register_live("roads", &workload.roads[..half_r], config(workload.roads.len()))
        .expect("register roads");
    let lb = service
        .register_live("hydro", &workload.hydro[..half_h], config(workload.hydro.len()))
        .expect("register hydro");

    let road_chunks: Vec<&[Item]> = workload.roads[half_r..]
        .chunks(workload.roads[half_r..].len().div_ceil(INGEST_BATCHES))
        .collect();
    let hydro_chunks: Vec<&[Item]> = workload.hydro[half_h..]
        .chunks(workload.hydro[half_h..].len().div_ceil(INGEST_BATCHES))
        .collect();

    let stats_of = |service: &Service, name: &str| {
        let (_, ds) = service.live().lookup(name).expect("dataset registered");
        (ds.stats(), ds.delta_runs().len())
    };
    let (mut fragmented, mut compacted): (Vec<f64>, Vec<f64>) = (Vec::new(), Vec::new());
    let mut max_delta_runs = 0usize;
    let mut compaction_ms = 0.0f64;
    let mut batches = 0u64;
    for i in 0..road_chunks.len().max(hydro_chunks.len()) {
        let before = stats_of(&service, "roads").0.compactions
            + stats_of(&service, "hydro").0.compactions;
        let ingest_start = Instant::now();
        if let Some(chunk) = road_chunks.get(i) {
            service.append_live("roads", chunk).expect("append roads");
        }
        if let Some(chunk) = hydro_chunks.get(i) {
            service.append_live("hydro", chunk).expect("append hydro");
        }
        let ingest_ms = ingest_start.elapsed().as_secs_f64() * 1000.0;
        let after = stats_of(&service, "roads").0.compactions
            + stats_of(&service, "hydro").0.compactions;
        if after > before {
            compaction_ms += ingest_ms;
        }
        batches += 1;

        let pending = stats_of(&service, "roads").1 + stats_of(&service, "hydro").1;
        max_delta_runs = max_delta_runs.max(pending);
        let report = service.run(vec![QueryRequest::streaming_join(la, lb)]);
        let outcome = &report.outcomes[0];
        assert!(outcome.is_completed(), "{:?}", outcome.status);
        let latency_ms = outcome.stats.latency.as_secs_f64() * 1000.0;
        if pending > 0 {
            fragmented.push(latency_ms);
        } else {
            compacted.push(latency_ms);
        }
    }
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let (roads_stats, _) = stats_of(&service, "roads");
    let (hydro_stats, _) = stats_of(&service, "hydro");
    LiveInterferenceRow {
        preset: preset.name().to_string(),
        ingest_batches: batches,
        flushes: roads_stats.flushes + hydro_stats.flushes,
        compactions: roads_stats.compactions + hydro_stats.compactions,
        max_delta_runs,
        query_ms_fragmented: mean(&fragmented),
        query_ms_compacted: mean(&compacted),
        compaction_ms,
    }
}

/// Renders the outcome as the `BENCH_service.json` document `repro live`
/// writes (hand-rolled JSON — the workspace is dependency-free).
pub fn live_bench_json(
    cfg: &ExperimentConfig,
    rows: &[LiveBenchRow],
    interference: &[LiveInterferenceRow],
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"live\",\n");
    out.push_str(&format!("  \"scale\": {},\n", cfg.scale));
    out.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    out.push_str(&format!("  \"first_k_target\": {FIRST_K},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"preset\": \"{}\", \"left_items\": {}, \"right_items\": {}, \"pairs\": {}, \
             \"first_k\": {}, \"streaming_first_k_ms\": {:.4}, \"streaming_total_ms\": {:.4}, \
             \"offline_sssj_ms\": {:.4}, \"early_speedup\": {:.3}, \
             \"left_runs\": {}, \"right_runs\": {}}}{}\n",
            r.preset,
            r.left_items,
            r.right_items,
            r.pairs,
            r.first_k,
            r.streaming_first_k_ms,
            r.streaming_total_ms,
            r.offline_sssj_ms,
            r.early_speedup(),
            r.left_runs,
            r.right_runs,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"interference\": [\n");
    for (i, r) in interference.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"preset\": \"{}\", \"ingest_batches\": {}, \"flushes\": {}, \
             \"compactions\": {}, \"max_delta_runs\": {}, \"query_ms_fragmented\": {:.4}, \
             \"query_ms_compacted\": {:.4}, \"interference\": {:.3}, \"compaction_ms\": {:.4}}}{}\n",
            r.preset,
            r.ingest_batches,
            r.flushes,
            r.compactions,
            r.max_delta_runs,
            r.query_ms_fragmented,
            r.query_ms_compacted,
            r.interference(),
            r.compaction_ms,
            if i + 1 == interference.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders one `BENCH_trajectory.json` point for this run. `unix_time` is
/// the caller-provided wall-clock stamp (seconds since the epoch).
pub fn live_trajectory_point(
    cfg: &ExperimentConfig,
    rows: &[LiveBenchRow],
    interference: &[LiveInterferenceRow],
    unix_time: u64,
) -> String {
    let per_preset: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"preset\": \"{}\", \"first_k\": {}, \"streaming_first_k_ms\": {:.4}, \
                 \"offline_sssj_ms\": {:.4}, \"early_speedup\": {:.3}}}",
                r.preset,
                r.first_k,
                r.streaming_first_k_ms,
                r.offline_sssj_ms,
                r.early_speedup()
            )
        })
        .collect();
    let worst_interference = interference
        .iter()
        .map(|r| r.interference())
        .fold(1.0f64, f64::max);
    format!(
        "    {{\"experiment\": \"live\", \"unix_time\": {}, \"scale\": {}, \"seed\": {}, \
         \"first_k_target\": {}, \"worst_interference\": {:.3}, \"rows\": [{}]}}\n",
        unix_time,
        cfg.scale,
        cfg.seed,
        FIRST_K,
        worst_interference,
        per_preset.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_datagen::Preset;

    #[test]
    fn live_bench_runs_and_serializes_on_a_tiny_configuration() {
        let cfg = ExperimentConfig {
            scale: 2_000,
            seed: 7,
            presets: vec![Preset::NJ, Preset::NY],
        };
        let (rows, interference) = live_bench(&cfg);
        assert_eq!(rows.len(), 2, "one early-result row per preset");
        assert_eq!(interference.len(), 2, "one interference row per preset");
        for r in &rows {
            // The stopwatch is monotone by construction, and the snapshot
            // history really was fragmented.
            assert!(r.streaming_first_k_ms <= r.streaming_total_ms);
            assert!(r.left_runs > 1, "{}: base-only snapshot", r.preset);
            assert!(r.first_k <= FIRST_K && r.first_k >= 1);
        }
        for r in &interference {
            assert_eq!(r.ingest_batches, INGEST_BATCHES as u64);
            assert!(r.flushes > 0, "{}: no flush ever triggered", r.preset);
            assert!(r.compactions > 0, "{}: no compaction triggered", r.preset);
            assert!(r.max_delta_runs > 0);
        }

        let json = live_bench_json(&cfg, &rows, &interference);
        assert!(json.contains("\"experiment\": \"live\""));
        assert_eq!(json.matches("\"preset\":").count(), 4);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());

        let point = live_trajectory_point(&cfg, &rows, &interference, 1_700_000_000);
        assert!(point.contains("\"experiment\": \"live\""));
        assert_eq!(point.matches('{').count(), point.matches('}').count());
        let doc = crate::loadgen::append_trajectory(None, &point).unwrap();
        let doc = crate::loadgen::append_trajectory(Some(&doc), &point).unwrap();
        assert_eq!(doc.matches("\"experiment\": \"live\"").count(), 2);
    }
}
