//! The `live` experiment: streaming joins over LSM datasets under ingestion.
//!
//! Two questions, both wall-clock:
//!
//! * **Early results** — the streaming symmetric join emits pairs as items
//!   arrive, so its *time-to-first-K-pairs* should sit far below the
//!   offline SSSJ's *total* wall-clock on the same snapshot (which must
//!   first materialise the snapshot into one sorted run, then sweep it to
//!   completion). That gap is the entire point of the operator.
//! * **Compaction interference** — a query that lands while the dataset
//!   carries unmerged delta runs reads more, smaller runs than one landing
//!   right after a compaction folded everything into a fresh base. The
//!   ingest-while-querying loop drives [`Service::append_live`] and
//!   [`QueryRequest::streaming_join`] in alternation and buckets the
//!   per-query latencies by how fragmented the snapshot was.
//!
//! `repro live` writes the rows as `BENCH_service.json` (the scratch
//! latest-run document, like `repro load`) and appends one point to the
//! tracked `BENCH_trajectory.json`.

use std::ops::ControlFlow;
use std::time::{Duration, Instant};

use usj_core::{JoinInput, JoinOperator, PairSink, SssjJoin};
use usj_datagen::WorkloadSpec;
use usj_geom::Item;
use usj_io::{MachineConfig, SimEnv};
use usj_live::{LiveConfig, LiveDataset, LiveSnapshot, StreamingJoin};
use usj_service::{Catalog, QueryRequest, Service, ServiceConfig};

use crate::setup::ExperimentConfig;

/// The early-result target: wall-clock until this many pairs have been
/// delivered (clamped to the result size on small workloads).
pub const FIRST_K: u64 = 1000;

/// Ingest batches driven through the service in the interference loop.
const INGEST_BATCHES: usize = 8;

/// A sink that timestamps the K-th delivered pair and keeps streaming.
struct FirstKSink {
    k: u64,
    count: u64,
    started: Instant,
    first_k: Option<Duration>,
}

impl FirstKSink {
    fn new(k: u64) -> Self {
        FirstKSink {
            k,
            count: 0,
            started: Instant::now(),
            first_k: None,
        }
    }
}

impl PairSink for FirstKSink {
    fn emit(&mut self, _left: u32, _right: u32) -> ControlFlow<()> {
        self.count += 1;
        if self.first_k.is_none() && self.count >= self.k {
            self.first_k = Some(self.started.elapsed());
        }
        ControlFlow::Continue(())
    }
}

/// One preset's early-result measurement.
#[derive(Debug, Clone)]
pub struct LiveBenchRow {
    /// Workload preset name.
    pub preset: String,
    /// Items in the left (road) snapshot.
    pub left_items: u64,
    /// Items in the right (hydrography) snapshot.
    pub right_items: u64,
    /// Total intersecting pairs (streaming == offline, asserted).
    pub pairs: u64,
    /// The K the stopwatch waited for: `min(FIRST_K, pairs)`.
    pub first_k: u64,
    /// Wall-clock until the K-th streamed pair, milliseconds.
    pub streaming_first_k_ms: f64,
    /// Wall-clock of the full streaming join, milliseconds.
    pub streaming_total_ms: f64,
    /// Wall-clock of the offline path — materialise the snapshots into
    /// sorted runs, then SSSJ to completion — milliseconds.
    pub offline_sssj_ms: f64,
    /// Sorted runs in the left snapshot (base + deltas + memtable).
    pub left_runs: usize,
    /// Sorted runs in the right snapshot.
    pub right_runs: usize,
}

impl LiveBenchRow {
    /// How much sooner the K-th pair arrives than the offline answer.
    pub fn early_speedup(&self) -> f64 {
        self.offline_sssj_ms / self.streaming_first_k_ms.max(f64::EPSILON)
    }
}

/// One preset × maintenance-mode ingest-while-querying measurement.
#[derive(Debug, Clone)]
pub struct LiveInterferenceRow {
    /// Workload preset name.
    pub preset: String,
    /// Maintenance mode: `"inline"` (flush/compaction run inside
    /// `append_live`) or `"background"` (handed to the worker thread).
    pub mode: &'static str,
    /// Append calls driven through the service.
    pub appends: u64,
    /// Memtable flushes maintenance performed (both datasets, post-quiesce).
    pub flushes: u64,
    /// Compactions maintenance performed (both datasets, post-quiesce).
    pub compactions: u64,
    /// Largest *observed* maintenance backlog (delta runs + pending flush
    /// batches, both datasets) at any query submit.
    pub max_backlog: usize,
    /// Mean streaming-query latency when the observed backlog at submit
    /// time was non-zero, ms.
    pub query_ms_fragmented: f64,
    /// Mean streaming-query latency when the observed backlog was zero, ms.
    pub query_ms_compacted: f64,
    /// Median `append_live` wall-clock, microseconds.
    pub append_p50_us: f64,
    /// 99th-percentile `append_live` wall-clock, microseconds — the
    /// append-stall number the background worker exists to shrink.
    pub append_p99_us: f64,
    /// Worst `append_live` wall-clock, microseconds.
    pub append_max_us: f64,
    /// Pairs of the final post-quiesce streaming join (asserted equal
    /// across modes — same data, same answer).
    pub pairs: u64,
}

impl LiveInterferenceRow {
    /// Fragmented / compacted latency ratio (1.0 when a bucket is empty).
    pub fn interference(&self) -> f64 {
        if self.query_ms_compacted <= 0.0 || self.query_ms_fragmented <= 0.0 {
            1.0
        } else {
            self.query_ms_fragmented / self.query_ms_compacted
        }
    }
}

/// Builds a live dataset whose history left it genuinely fragmented: part
/// of the items as the base run, the rest appended in chunks small enough
/// to flush several delta runs but not enough to trigger compaction.
fn fragmented_dataset(env: &mut SimEnv, name: &str, items: &[Item]) -> LiveDataset {
    let split = items.len() / 2;
    let config = LiveConfig {
        flush_threshold_bytes: (items.len() / 8).max(64) * usj_geom::ITEM_BYTES,
        compact_after_deltas: 0, // manual only: keep the runs for the bench
    };
    let ds = env.unaccounted(|env| {
        let mut ds = LiveDataset::create(env, name, &items[..split], config)
            .expect("create live dataset");
        for chunk in items[split..].chunks((items.len() / 6).max(32)) {
            ds.append(env, chunk).expect("append");
        }
        ds
    });
    env.device.reset_stats();
    ds
}

fn median_ms(samples: &mut [f64]) -> f64 {
    samples.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite wall times"));
    samples[samples.len() / 2]
}

/// Times the offline path once: snapshot → one sorted run → full SSSJ.
fn offline_once(env: &mut SimEnv, left: &LiveSnapshot, right: &LiveSnapshot) -> (u64, f64) {
    let start = Instant::now();
    let sl = left.to_stream(env).expect("materialise left");
    let sr = right.to_stream(env).expect("materialise right");
    let result = SssjJoin::default()
        .run(env, JoinInput::Stream(&sl), JoinInput::Stream(&sr))
        .expect("offline SSSJ");
    (result.pairs, start.elapsed().as_secs_f64() * 1000.0)
}

/// Times the streaming join once, returning (pairs, first-K ms, total ms).
fn streaming_once(
    env: &mut SimEnv,
    left: &LiveSnapshot,
    right: &LiveSnapshot,
    k: u64,
) -> (u64, f64, f64) {
    let mut sink = FirstKSink::new(k);
    let start = Instant::now();
    StreamingJoin::default()
        .run(env, left, right, &mut sink)
        .expect("streaming join");
    let total_ms = start.elapsed().as_secs_f64() * 1000.0;
    let first_k_ms = sink
        .first_k
        .map_or(total_ms, |d| d.as_secs_f64() * 1000.0);
    (sink.count, first_k_ms, total_ms)
}

/// Wall-clock samples per timed case (median reported).
const SAMPLES: usize = 3;

/// Runs the live experiment: the early-result race on every preset, then
/// the service-driven ingest-while-querying interference loop.
///
/// Panics if the streaming pair count ever diverges from the offline
/// SSSJ's — the timings are only meaningful while the answers agree.
pub fn live_bench(cfg: &ExperimentConfig) -> (Vec<LiveBenchRow>, Vec<LiveInterferenceRow>) {
    println!(
        "\n== Live: time-to-first-{FIRST_K}-pairs (streaming) vs full offline SSSJ (scale divisor {}) ==",
        cfg.scale
    );
    println!(
        "{:<10} {:>9} {:>9} {:>10} {:>8} {:>11} {:>11} {:>11} {:>9}",
        "Data set", "left", "right", "pairs", "K", "first-K ms", "stream ms", "offline ms", "early x"
    );
    let mut rows = Vec::new();
    for &preset in &cfg.presets {
        let workload = WorkloadSpec::preset(preset)
            .with_scale(cfg.scale)
            .generate(cfg.seed);
        let mut env = SimEnv::new(MachineConfig::machine3());
        let roads = fragmented_dataset(&mut env, "roads", &workload.roads);
        let hydro = fragmented_dataset(&mut env, "hydro", &workload.hydro);
        let (snap_l, snap_r) = (roads.snapshot(), hydro.snapshot());

        // One untimed differential run pins the pair counts before any
        // timing is believed.
        let (offline_pairs, _) = offline_once(&mut env, &snap_l, &snap_r);
        let k = FIRST_K.min(offline_pairs.max(1));
        let (streamed, _, _) = streaming_once(&mut env, &snap_l, &snap_r, k);
        assert_eq!(
            streamed, offline_pairs,
            "{preset}: streaming join diverged from offline SSSJ"
        );

        let mut first_k_samples = Vec::with_capacity(SAMPLES);
        let mut total_samples = Vec::with_capacity(SAMPLES);
        let mut offline_samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let (_, first_k_ms, total_ms) = streaming_once(&mut env, &snap_l, &snap_r, k);
            first_k_samples.push(first_k_ms);
            total_samples.push(total_ms);
            let (_, offline_ms) = offline_once(&mut env, &snap_l, &snap_r);
            offline_samples.push(offline_ms);
        }
        let row = LiveBenchRow {
            preset: preset.name().to_string(),
            left_items: snap_l.len(),
            right_items: snap_r.len(),
            pairs: offline_pairs,
            first_k: k,
            streaming_first_k_ms: median_ms(&mut first_k_samples),
            streaming_total_ms: median_ms(&mut total_samples),
            offline_sssj_ms: median_ms(&mut offline_samples),
            left_runs: snap_l.run_count(),
            right_runs: snap_r.run_count(),
        };
        println!(
            "{:<10} {:>9} {:>9} {:>10} {:>8} {:>11.3} {:>11.3} {:>11.3} {:>8.1}x",
            row.preset,
            row.left_items,
            row.right_items,
            row.pairs,
            row.first_k,
            row.streaming_first_k_ms,
            row.streaming_total_ms,
            row.offline_sssj_ms,
            row.early_speedup(),
        );
        rows.push(row);
    }

    println!(
        "\n== Live: ingest-while-querying through the service (inline vs background maintenance) =="
    );
    println!(
        "{:<10} {:<10} {:>7} {:>7} {:>8} {:>8} {:>11} {:>11} {:>7} {:>10} {:>10} {:>10}",
        "Data set", "mode", "appends", "flushes", "compacts", "backlog", "frag q ms", "quiet q ms",
        "interf", "ap p50 µs", "ap p99 µs", "ap max µs"
    );
    let mut interference = Vec::new();
    for &preset in &cfg.presets {
        let inline = interference_loop(cfg, preset, false);
        let background = interference_loop(cfg, preset, true);
        // The two modes ran identical histories; after quiescing, the final
        // streaming join must produce identical answers or the stall
        // comparison below compares different work.
        assert_eq!(
            inline.pairs, background.pairs,
            "{preset:?}: inline and background maintenance diverged"
        );
        for row in [inline, background] {
            println!(
                "{:<10} {:<10} {:>7} {:>7} {:>8} {:>8} {:>11.3} {:>11.3} {:>6.2}x {:>10.1} {:>10.1} {:>10.1}",
                row.preset,
                row.mode,
                row.appends,
                row.flushes,
                row.compactions,
                row.max_backlog,
                row.query_ms_fragmented,
                row.query_ms_compacted,
                row.interference(),
                row.append_p50_us,
                row.append_p99_us,
                row.append_max_us,
            );
            interference.push(row);
        }
    }
    println!(
        "(first-K clock starts when the join starts; the offline column includes materialising \
         the snapshot into one sorted run, which is exactly the work streaming avoids. The \
         interference buckets key on the backlog *observed at submit time*, and append-stall \
         percentiles time each append_live call — inline mode pays flush+compaction inside the \
         call, background mode hands them to the maintenance worker)"
    );
    (rows, interference)
}

/// Alternates `append_live` batches with streaming queries on one service,
/// timing every append call and bucketing query latency by the maintenance
/// backlog *observed at submit time* ([`Service::live_backlog`]) — the load
/// the query actually raced, not a post-hoc stats delta.
fn interference_loop(
    cfg: &ExperimentConfig,
    preset: usj_datagen::Preset,
    background: bool,
) -> LiveInterferenceRow {
    let workload = WorkloadSpec::preset(preset)
        .with_scale(cfg.scale)
        .generate(cfg.seed);
    let service = Service::new(
        SimEnv::new(MachineConfig::machine3()),
        Catalog::new(),
        ServiceConfig::default()
            .with_workers(2)
            .with_background_maintenance(background),
    );
    let half_r = workload.roads.len() / 2;
    let half_h = workload.hydro.len() / 2;
    // Flush every ~quarter batch; compact after two pending deltas, so the
    // loop naturally alternates fragmented and freshly-compacted states.
    let config = |items: usize| LiveConfig {
        flush_threshold_bytes: (items / (INGEST_BATCHES * 4)).max(64) * usj_geom::ITEM_BYTES,
        compact_after_deltas: 2,
    };
    let la = service
        .register_live("roads", &workload.roads[..half_r], config(workload.roads.len()))
        .expect("register roads");
    let lb = service
        .register_live("hydro", &workload.hydro[..half_h], config(workload.hydro.len()))
        .expect("register hydro");

    let road_chunks: Vec<&[Item]> = workload.roads[half_r..]
        .chunks(workload.roads[half_r..].len().div_ceil(INGEST_BATCHES))
        .collect();
    let hydro_chunks: Vec<&[Item]> = workload.hydro[half_h..]
        .chunks(workload.hydro[half_h..].len().div_ceil(INGEST_BATCHES))
        .collect();

    // Append stalls feed the shared `usj_obs` log-bucketed histogram
    // (monotone quantiles, ≤ 1/16 + 1 µs above exact nearest-rank) —
    // the same summary the service's own metrics use.
    let append_us = usj_obs::LogHistogram::new();
    // Each ingest batch is driven as small sub-appends so the stall
    // distribution has enough samples to make a p99 meaningful.
    let timed_append = |name: &str, chunk: &[Item]| {
        for sub in chunk.chunks(64) {
            let start = Instant::now();
            service.append_live(name, sub).expect("append");
            append_us.record(start.elapsed().as_micros() as u64);
        }
    };
    let (mut fragmented, mut compacted): (Vec<f64>, Vec<f64>) = (Vec::new(), Vec::new());
    let mut max_backlog = 0usize;
    for i in 0..road_chunks.len().max(hydro_chunks.len()) {
        if let Some(chunk) = road_chunks.get(i) {
            timed_append("roads", chunk);
        }
        if let Some(chunk) = hydro_chunks.get(i) {
            timed_append("hydro", chunk);
        }

        // Bucket by the backlog observed *now*, at submit — under
        // background maintenance this is what the query races.
        let backlog = service.live_backlog("roads").unwrap_or(0)
            + service.live_backlog("hydro").unwrap_or(0);
        max_backlog = max_backlog.max(backlog);
        let report = service.run(vec![QueryRequest::streaming_join(la, lb)]);
        let outcome = &report.outcomes[0];
        assert!(outcome.is_completed(), "{:?}", outcome.status);
        let latency_ms = outcome.stats.latency.as_secs_f64() * 1000.0;
        if backlog > 0 {
            fragmented.push(latency_ms);
        } else {
            compacted.push(latency_ms);
        }
    }

    // Drain all maintenance, then take the final differential answer the
    // caller compares across modes.
    service.quiesce_live("roads").expect("quiesce roads");
    service.quiesce_live("hydro").expect("quiesce hydro");
    let report = service.run(vec![QueryRequest::streaming_join(la, lb)]);
    let outcome = &report.outcomes[0];
    assert!(outcome.is_completed(), "{:?}", outcome.status);
    let pairs = outcome.result().expect("completed").pairs;

    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let stats_of = |name: &str| service.live_stats(name).expect("dataset registered");
    let (roads_stats, hydro_stats) = (stats_of("roads"), stats_of("hydro"));
    LiveInterferenceRow {
        preset: preset.name().to_string(),
        mode: if background { "background" } else { "inline" },
        appends: append_us.count(),
        flushes: roads_stats.flushes + hydro_stats.flushes,
        compactions: roads_stats.compactions + hydro_stats.compactions,
        max_backlog,
        query_ms_fragmented: mean(&fragmented),
        query_ms_compacted: mean(&compacted),
        append_p50_us: append_us.quantile(0.50) as f64,
        append_p99_us: append_us.quantile(0.99) as f64,
        append_max_us: append_us.max().unwrap_or(0) as f64,
        pairs,
    }
}

/// Renders the outcome as the `BENCH_service.json` document `repro live`
/// writes (hand-rolled JSON — the workspace is dependency-free).
pub fn live_bench_json(
    cfg: &ExperimentConfig,
    rows: &[LiveBenchRow],
    interference: &[LiveInterferenceRow],
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"live\",\n");
    out.push_str(&format!("  \"scale\": {},\n", cfg.scale));
    out.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    out.push_str(&format!("  \"first_k_target\": {FIRST_K},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"preset\": \"{}\", \"left_items\": {}, \"right_items\": {}, \"pairs\": {}, \
             \"first_k\": {}, \"streaming_first_k_ms\": {:.4}, \"streaming_total_ms\": {:.4}, \
             \"offline_sssj_ms\": {:.4}, \"early_speedup\": {:.3}, \
             \"left_runs\": {}, \"right_runs\": {}}}{}\n",
            r.preset,
            r.left_items,
            r.right_items,
            r.pairs,
            r.first_k,
            r.streaming_first_k_ms,
            r.streaming_total_ms,
            r.offline_sssj_ms,
            r.early_speedup(),
            r.left_runs,
            r.right_runs,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"interference\": [\n");
    for (i, r) in interference.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"preset\": \"{}\", \"mode\": \"{}\", \"appends\": {}, \"flushes\": {}, \
             \"compactions\": {}, \"max_backlog\": {}, \"query_ms_fragmented\": {:.4}, \
             \"query_ms_compacted\": {:.4}, \"interference\": {:.3}, \"append_p50_us\": {:.2}, \
             \"append_p99_us\": {:.2}, \"append_max_us\": {:.2}, \"pairs\": {}}}{}\n",
            r.preset,
            r.mode,
            r.appends,
            r.flushes,
            r.compactions,
            r.max_backlog,
            r.query_ms_fragmented,
            r.query_ms_compacted,
            r.interference(),
            r.append_p50_us,
            r.append_p99_us,
            r.append_max_us,
            r.pairs,
            if i + 1 == interference.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders one `BENCH_trajectory.json` point for this run. `unix_time` is
/// the caller-provided wall-clock stamp (seconds since the epoch).
pub fn live_trajectory_point(
    cfg: &ExperimentConfig,
    rows: &[LiveBenchRow],
    interference: &[LiveInterferenceRow],
    unix_time: u64,
) -> String {
    let per_preset: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"preset\": \"{}\", \"first_k\": {}, \"streaming_first_k_ms\": {:.4}, \
                 \"offline_sssj_ms\": {:.4}, \"early_speedup\": {:.3}}}",
                r.preset,
                r.first_k,
                r.streaming_first_k_ms,
                r.offline_sssj_ms,
                r.early_speedup()
            )
        })
        .collect();
    let worst_interference = interference
        .iter()
        .map(|r| r.interference())
        .fold(1.0f64, f64::max);
    // The trajectory tracks both modes' worst append-stall p99 so the
    // background-vs-inline gap is visible run over run.
    let worst_p99 = |mode: &str| {
        interference
            .iter()
            .filter(|r| r.mode == mode)
            .map(|r| r.append_p99_us)
            .fold(0.0f64, f64::max)
    };
    format!(
        "    {{\"experiment\": \"live\", \"unix_time\": {}, \"scale\": {}, \"seed\": {}, \
         \"first_k_target\": {}, \"worst_interference\": {:.3}, \
         \"append_p99_us_inline\": {:.2}, \"append_p99_us_background\": {:.2}, \
         \"rows\": [{}]}}\n",
        unix_time,
        cfg.scale,
        cfg.seed,
        FIRST_K,
        worst_interference,
        worst_p99("inline"),
        worst_p99("background"),
        per_preset.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_datagen::Preset;

    #[test]
    fn live_bench_runs_and_serializes_on_a_tiny_configuration() {
        let cfg = ExperimentConfig {
            scale: 2_000,
            seed: 7,
            presets: vec![Preset::NJ, Preset::NY],
        };
        let (rows, interference) = live_bench(&cfg);
        assert_eq!(rows.len(), 2, "one early-result row per preset");
        assert_eq!(
            interference.len(),
            4,
            "one interference row per preset per maintenance mode"
        );
        for r in &rows {
            // The stopwatch is monotone by construction, and the snapshot
            // history really was fragmented.
            assert!(r.streaming_first_k_ms <= r.streaming_total_ms);
            assert!(r.left_runs > 1, "{}: base-only snapshot", r.preset);
            assert!(r.first_k <= FIRST_K && r.first_k >= 1);
        }
        for r in &interference {
            assert!(r.appends > 0, "{}: no appends timed", r.preset);
            assert!(r.flushes > 0, "{}: no flush ever triggered", r.preset);
            assert!(r.compactions > 0, "{}: no compaction triggered", r.preset);
            assert!(r.pairs > 0, "{}: empty final join", r.preset);
            assert!(r.append_p50_us <= r.append_p99_us);
            assert!(r.append_p99_us <= r.append_max_us);
        }
        for pair in interference.chunks(2) {
            assert_eq!(pair[0].mode, "inline");
            assert_eq!(pair[1].mode, "background");
            assert_eq!(
                pair[0].pairs, pair[1].pairs,
                "{}: maintenance modes diverged",
                pair[0].preset
            );
        }

        let json = live_bench_json(&cfg, &rows, &interference);
        assert!(json.contains("\"experiment\": \"live\""));
        assert!(json.contains("\"mode\": \"background\""));
        assert_eq!(json.matches("\"preset\":").count(), 6);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());

        let point = live_trajectory_point(&cfg, &rows, &interference, 1_700_000_000);
        assert!(point.contains("\"experiment\": \"live\""));
        assert_eq!(point.matches('{').count(), point.matches('}').count());
        let doc = crate::loadgen::append_trajectory(None, &point).unwrap();
        let doc = crate::loadgen::append_trajectory(Some(&doc), &point).unwrap();
        assert_eq!(doc.matches("\"experiment\": \"live\"").count(), 2);
    }
}
