//! The chaos experiment (not in the paper): the service batch of
//! [`service_exp`](crate::service_exp) re-run under a seeded fault plan,
//! plus three targeted probes with *deterministic* outcomes.
//!
//! Four claims are exercised, per preset:
//!
//! 1. **Transient faults are absorbed.** The mixed 16-request batch runs
//!    with per-operation read/write fault probabilities injected into every
//!    query's forked device. Bounded retry must resolve every request, and
//!    a collecting join on the faulted service must produce the exact pair
//!    set of an identically-configured fault-free twin.
//! 2. **Panics are contained.** A probe service with `panic = 1.0` turns
//!    every device operation into a worker panic; the query must come back
//!    as a typed [`ServiceError::WorkerPanicked`] — not a hung or dead
//!    service — and the admission gauge must read zero afterwards.
//! 3. **Deadlines are typed failures.** A request with `deadline_us = 0`
//!    must fail as [`ServiceError::DeadlineExceeded`] without wedging the
//!    queue.
//! 4. **Acknowledged data is never lost.** A durable live dataset ingests
//!    under write/torn-write faults and is crash-recovered every round;
//!    the recovered record set must equal the set acknowledged by the last
//!    successful manifest commit, at every crash point.
//!
//! `repro faults` emits the rows as `BENCH_service.json` (the CI
//! fault-smoke job asserts the injected/retry counters are nonzero) and
//! appends one summary point to the tracked `BENCH_trajectory.json`.

use std::collections::BTreeSet;
use std::time::Instant;

use usj_core::Algo;
use usj_datagen::WorkloadSpec;
use usj_geom::{Item, Rect};
use usj_io::{fault::derive_seed, FaultConfig, FaultPlan, MachineConfig, SimEnv};
use usj_live::{LiveConfig, LiveDataset};
use usj_service::{
    Catalog, QueryRequest, Service, ServiceConfig, ServiceError, QueryStatus,
};

use crate::service_exp::{
    SERVICE_BENCH_MEMORY_LIMIT, SERVICE_BENCH_QUERY_BUDGET, SERVICE_BENCH_REQUESTS,
};
use crate::setup::ExperimentConfig;

/// Per-operation transient read-fault probability of the chaos batch.
pub const FAULTS_READ_RATE: f64 = 0.005;

/// Per-operation transient write-fault probability of the chaos batch.
pub const FAULTS_WRITE_RATE: f64 = 0.005;

/// Retry budget per query (transient faults only).
pub const FAULTS_RETRIES: u32 = 24;

/// Base backoff between retries, microseconds (exponential).
pub const FAULTS_BACKOFF_US: u64 = 20;

/// Crash/recover rounds of the durability loop.
pub const FAULTS_CRASH_ROUNDS: u64 = 6;

/// Worker threads of the chaos services.
const FAULTS_WORKERS: usize = 4;

/// One measured preset of the chaos experiment.
#[derive(Debug, Clone)]
pub struct FaultsBenchRow {
    /// Workload preset name.
    pub preset: String,
    /// Worker threads of the service.
    pub workers: usize,
    /// Requests submitted to the chaos batch.
    pub requests: u64,
    /// Chaos-batch requests completed.
    pub completed: u64,
    /// Chaos-batch requests failed.
    pub failed: u64,
    /// Faults injected across the faulted services (`faults.injected`).
    pub injected: u64,
    /// Transient-fault retries performed (`faults.retries`).
    pub retries: u64,
    /// Worker panics contained (`faults.panics`).
    pub panics: u64,
    /// Deadline misses recorded (`faults.deadline_exceeded`).
    pub deadline_exceeded: u64,
    /// Admission-gauge reading after every failure mode drained (bytes;
    /// must be zero — leaked reservations would wedge future admissions).
    pub gauge_after_bytes: usize,
    /// Pairs of the collecting identity join on the faulted service.
    pub clean_pairs: u64,
    /// Whether the faulted service's pair set equalled the fault-free twin.
    pub pairs_match: bool,
    /// Crash/recover rounds of the durability loop.
    pub crash_rounds: u64,
    /// Rounds whose ingestion was interrupted by an injected device fault.
    pub faulted_rounds: u64,
    /// Records acknowledged (manifested) when the loop ended — every one
    /// survived every crash.
    pub records_acknowledged: usize,
    /// Host wall-clock of the preset in milliseconds.
    pub wall_ms: f64,
}

/// Builds the same mixed batch as the service experiment, with per-request
/// budgets that oversubscribe the shared limit.
fn chaos_requests(
    roads: usj_service::DatasetId,
    hydro: usj_service::DatasetId,
    region: Rect,
) -> Vec<QueryRequest> {
    let window = Rect::from_coords(
        region.lo.x,
        region.lo.y,
        region.lo.x + region.width() * 0.5,
        region.lo.y + region.height() * 0.5,
    );
    (0..SERVICE_BENCH_REQUESTS as u32)
        .map(|i| {
            let request = match i % 4 {
                0 => QueryRequest::join(roads, hydro).with_algorithm(Algo::Sssj),
                1 => QueryRequest::join(roads, hydro).with_algorithm(Algo::Pq),
                2 => QueryRequest::join(roads, hydro).with_algorithm(Algo::St),
                _ => QueryRequest::window(roads, window),
            };
            request
                .with_memory_budget(SERVICE_BENCH_QUERY_BUDGET)
                .with_priority((i % 3) as u8)
        })
        .collect()
}

/// Registers the preset workload into a fresh service under `config`.
fn service_over(
    workload: &usj_datagen::Workload,
    config: ServiceConfig,
) -> (Service, usj_service::DatasetId, usj_service::DatasetId) {
    let mut env = SimEnv::new(MachineConfig::machine3());
    let mut catalog = Catalog::new();
    let (roads, hydro) = env.unaccounted(|env| {
        (
            catalog.register(env, "roads", &workload.roads).expect("register roads"),
            catalog.register(env, "hydro", &workload.hydro).expect("register hydro"),
        )
    });
    (Service::new(env, catalog, config), roads, hydro)
}

/// A small synthetic grid pair for the panic probe — the probe only needs
/// *some* device operations, not the full preset workload.
fn probe_grid(id_base: u32, offset: f32) -> Vec<Item> {
    (0..144u32)
        .map(|i| {
            let (gx, gy) = ((i % 12) as f32, (i / 12) as f32);
            let (x, y) = (gx * 8.0 + offset, gy * 8.0 + offset);
            Item::new(Rect::from_coords(x, y, x + 9.0, y + 9.0), id_base + i)
        })
        .collect()
}

fn sorted_pairs(pairs: Option<&Vec<(u32, u32)>>) -> Vec<(u32, u32)> {
    let mut out = pairs.cloned().unwrap_or_default();
    out.sort_unstable();
    out
}

/// The panic probe: every device operation panics; the query must resolve
/// as a contained `WorkerPanicked` and the gauge must drain. Returns the
/// probe service's (injected, panics) counters.
fn panic_probe(seed: u64) -> (u64, u64, usize) {
    let mut env = SimEnv::new(MachineConfig::machine3());
    let mut catalog = Catalog::new();
    let (a, b) = env.unaccounted(|env| {
        (
            catalog.register(env, "pa", &probe_grid(0, 0.0)).expect("register pa"),
            catalog.register(env, "pb", &probe_grid(10_000, 3.0)).expect("register pb"),
        )
    });
    let service = Service::new(
        env,
        catalog,
        ServiceConfig::default()
            .with_workers(2)
            .with_memory_limit(SERVICE_BENCH_MEMORY_LIMIT)
            .with_fault_plan(FaultConfig {
                seed,
                panic: 1.0,
                ..FaultConfig::default()
            }),
    );
    let mut gauge_after = usize::MAX;
    let ((), report) = service.with_session(|session| {
        session.submit(QueryRequest::join(a, b));
        while session.queue_depth() > 0 || session.running() > 0 {
            std::thread::yield_now();
        }
        gauge_after = session.admission_bytes_in_use();
    });
    assert!(
        matches!(
            report.outcomes[0].status,
            QueryStatus::Failed(ServiceError::WorkerPanicked(_))
        ),
        "panic probe must resolve as a contained WorkerPanicked, got {:?}",
        report.outcomes[0].status
    );
    let snap = service.metrics_snapshot();
    let panics = snap.counter("faults.panics").unwrap_or(0);
    assert!(panics >= 1, "panic probe must record faults.panics");
    (snap.counter("faults.injected").unwrap_or(0), panics, gauge_after)
}

/// The durability loop: ingest under write/torn-write faults, crash at the
/// end of every round (including rounds whose ingestion was cut short by
/// an injected fault), recover, and assert the recovered record set equals
/// the acknowledged (last-manifested) set. Returns (faulted rounds,
/// acknowledged records).
fn crash_loop(cfg: &ExperimentConfig, items: &[Item]) -> (u64, usize) {
    let live_config = LiveConfig {
        flush_threshold_bytes: 24 * usj_geom::ITEM_BYTES,
        compact_after_deltas: 2,
    };
    let split = items.len() / 4;
    let mut env = SimEnv::new(MachineConfig::machine3());
    let (ds, root) = LiveDataset::create_durable(&mut env, "chaos", &items[..split], live_config)
        .expect("create durable dataset");
    let mut ds = ds;
    // Recovery re-homes the root pointer onto the restarted device, so a
    // caller that will crash again must chase it across rounds.
    let mut root = root;
    let mut acked: BTreeSet<u32> = ds
        .published_items(&mut env)
        .expect("read published base")
        .iter()
        .map(|i| i.id)
        .collect();

    let mut rest = &items[split..];
    let mut faulted_rounds = 0u64;
    for round in 0..FAULTS_CRASH_ROUNDS {
        // A few write/torn faults per round; the cap keeps each round's
        // recovery bounded while still crossing flush, compaction and
        // manifest writes with live fault schedules.
        env.install_faults(FaultPlan::new(FaultConfig {
            seed: derive_seed(cfg.seed, 0x100 + round),
            write_fault: 0.02,
            torn_write: 0.02,
            max_faults: 3,
            ..FaultConfig::default()
        }));
        let chunk = rest.len().min(1 + items.len() / 8);
        let ingested = (|| -> usj_live::Result<()> {
            if chunk > 0 {
                ds.append(&mut env, &rest[..chunk])?;
            }
            ds.flush(&mut env)?;
            ds.write_manifest(&mut env)
        })();
        match ingested {
            Ok(()) => {
                rest = &rest[chunk..];
                acked = ds
                    .published_items(&mut env)
                    .expect("read acked set")
                    .iter()
                    .map(|i| i.id)
                    .collect();
            }
            Err(usj_live::LiveError::Io(_)) => faulted_rounds += 1,
            Err(other) => panic!("unexpected ingestion error: {other:?}"),
        }
        // Crash: all volatile state is gone; restart from the device image
        // (the fork carries no fault plan, so recovery itself runs clean —
        // matching a machine that comes back healthy after a power cut).
        env = env.fork_with_base(env.device.snapshot());
        let (recovered, _report) =
            LiveDataset::recover(&mut env, "chaos", root, live_config).expect("recover");
        let got: BTreeSet<u32> = recovered
            .published_items(&mut env)
            .expect("read recovered set")
            .iter()
            .map(|i| i.id)
            .collect();
        assert_eq!(
            got, acked,
            "round {round}: recovery lost or fabricated acknowledged records"
        );
        root = recovered.durable_root().expect("recovered dataset stays durable");
        ds = recovered;
    }
    (faulted_rounds, acked.len())
}

/// Runs the chaos experiment, printing one row per preset, and returns the
/// rows for machine-readable emission.
pub fn faults_bench(cfg: &ExperimentConfig) -> Vec<FaultsBenchRow> {
    println!(
        "\n== Chaos: {} mixed requests under injected faults (read {:.3}, write {:.3}, \
         {} retries), {} crash/recover rounds (scale divisor {}) ==",
        SERVICE_BENCH_REQUESTS,
        FAULTS_READ_RATE,
        FAULTS_WRITE_RATE,
        FAULTS_RETRIES,
        FAULTS_CRASH_ROUNDS,
        cfg.scale
    );
    println!(
        "{:<10} {:>9} {:>7} {:>9} {:>8} {:>7} {:>9} {:>7} {:>6} {:>7} {:>8} {:>9}",
        "Data set",
        "Complete",
        "Failed",
        "Injected",
        "Retries",
        "Panics",
        "Deadline",
        "Gauge",
        "Match",
        "Crashes",
        "Records",
        "Wall ms"
    );
    let mut rows = Vec::new();
    for &preset in &cfg.presets {
        let workload = WorkloadSpec::preset(preset).with_scale(cfg.scale).generate(cfg.seed);
        let start = Instant::now();

        let chaos_config = ServiceConfig::default()
            .with_workers(FAULTS_WORKERS)
            .with_memory_limit(SERVICE_BENCH_MEMORY_LIMIT)
            .with_fault_retries(FAULTS_RETRIES, FAULTS_BACKOFF_US)
            .with_fault_plan(FaultConfig {
                seed: derive_seed(cfg.seed, 1),
                read_fault: FAULTS_READ_RATE,
                write_fault: FAULTS_WRITE_RATE,
                ..FaultConfig::default()
            });
        let (chaos, roads, hydro) = service_over(&workload, chaos_config);
        let clean_config = ServiceConfig::default()
            .with_workers(FAULTS_WORKERS)
            .with_memory_limit(SERVICE_BENCH_MEMORY_LIMIT);
        let (clean, c_roads, c_hydro) = service_over(&workload, clean_config);

        // 1. The chaos batch: every request must resolve, the gauge must
        //    drain. (Failures are typed and reported, not asserted away —
        //    a query that exhausts its retry budget is a legal outcome.)
        let mut gauge_after = usize::MAX;
        let ((), report) = chaos.with_session(|session| {
            for request in chaos_requests(roads, hydro, workload.region) {
                session.submit(request);
            }
            while session.queue_depth() > 0 || session.running() > 0 {
                std::thread::yield_now();
            }
            gauge_after = session.admission_bytes_in_use();
        });
        let stats = &report.stats;
        assert_eq!(
            stats.completed + stats.failed,
            stats.submitted,
            "{preset}: every chaos request must resolve"
        );
        assert_eq!(gauge_after, 0, "{preset}: failures must not leak admission bytes");

        // 2. Deadline probe: an already-expired deadline is a typed,
        //    deterministic failure — never a hang.
        let deadline_report =
            chaos.run(vec![QueryRequest::join(roads, hydro).with_deadline_us(0)]);
        assert!(
            matches!(
                deadline_report.outcomes[0].status,
                QueryStatus::Failed(ServiceError::DeadlineExceeded { .. })
            ),
            "{preset}: expired deadline must fail as DeadlineExceeded"
        );

        // 3. Identity probe: the faulted service, retries and all, must
        //    answer a collecting join byte-identically to the clean twin.
        let faulted_join = chaos.run(vec![QueryRequest::join(roads, hydro)
            .with_algorithm(Algo::Sssj)
            .collecting()]);
        let clean_join = clean.run(vec![QueryRequest::join(c_roads, c_hydro)
            .with_algorithm(Algo::Sssj)
            .collecting()]);
        assert!(
            clean_join.outcomes[0].is_completed(),
            "{preset}: the fault-free twin must complete"
        );
        let faulted_pairs = sorted_pairs(faulted_join.outcomes[0].pairs.as_ref());
        let clean_pairs = sorted_pairs(clean_join.outcomes[0].pairs.as_ref());
        let pairs_match =
            faulted_join.outcomes[0].is_completed() && faulted_pairs == clean_pairs;
        assert!(
            pairs_match,
            "{preset}: faulted service diverged from the fault-free twin \
             ({} vs {} pairs)",
            faulted_pairs.len(),
            clean_pairs.len()
        );

        // 4. Panic containment probe + the durability crash loop.
        let (probe_injected, probe_panics, probe_gauge) = panic_probe(derive_seed(cfg.seed, 2));
        assert_eq!(probe_gauge, 0, "{preset}: contained panic must release its grant");
        let crash_items = &workload.roads[..workload.roads.len().min(600)];
        let (faulted_rounds, records_acknowledged) = crash_loop(cfg, crash_items);

        let snap = chaos.metrics_snapshot();
        let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
        let row = FaultsBenchRow {
            preset: preset.name().to_string(),
            workers: FAULTS_WORKERS,
            requests: stats.submitted,
            completed: stats.completed,
            failed: stats.failed,
            injected: snap.counter("faults.injected").unwrap_or(0) + probe_injected,
            retries: snap.counter("faults.retries").unwrap_or(0),
            panics: snap.counter("faults.panics").unwrap_or(0) + probe_panics,
            deadline_exceeded: snap.counter("faults.deadline_exceeded").unwrap_or(0),
            gauge_after_bytes: gauge_after,
            clean_pairs: clean_pairs.len() as u64,
            pairs_match,
            crash_rounds: FAULTS_CRASH_ROUNDS,
            faulted_rounds,
            records_acknowledged,
            wall_ms,
        };
        println!(
            "{:<10} {:>9} {:>7} {:>9} {:>8} {:>7} {:>9} {:>7} {:>6} {:>7} {:>8} {:>9.1}",
            row.preset,
            row.completed,
            row.failed,
            row.injected,
            row.retries,
            row.panics,
            row.deadline_exceeded,
            row.gauge_after_bytes,
            if row.pairs_match { "yes" } else { "NO" },
            row.faulted_rounds,
            row.records_acknowledged,
            row.wall_ms
        );
        rows.push(row);
    }
    println!(
        "(every chaos request resolves with a typed outcome; retried answers are \
         byte-identical to the fault-free twin; recovery never loses manifested records)"
    );
    rows
}

/// Renders the rows as the `BENCH_service.json` document `repro faults`
/// writes (hand-rolled JSON — the workspace is dependency-free). The CI
/// fault-smoke job asserts the injected/retry counters here are nonzero.
pub fn faults_bench_json(cfg: &ExperimentConfig, rows: &[FaultsBenchRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"faults\",\n");
    out.push_str(&format!("  \"scale\": {},\n", cfg.scale));
    out.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    out.push_str(&format!("  \"read_fault\": {FAULTS_READ_RATE},\n"));
    out.push_str(&format!("  \"write_fault\": {FAULTS_WRITE_RATE},\n"));
    out.push_str(&format!("  \"retries\": {FAULTS_RETRIES},\n"));
    out.push_str(&format!("  \"crash_rounds\": {FAULTS_CRASH_ROUNDS},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"preset\": \"{}\", \"workers\": {}, \"requests\": {}, \"completed\": {}, \
             \"failed\": {}, \"injected\": {}, \"retries\": {}, \"panics\": {}, \
             \"deadline_exceeded\": {}, \"gauge_after_bytes\": {}, \"clean_pairs\": {}, \
             \"pairs_match\": {}, \"crash_rounds\": {}, \"faulted_rounds\": {}, \
             \"records_acknowledged\": {}, \"wall_ms\": {:.3}}}{}\n",
            row.preset,
            row.workers,
            row.requests,
            row.completed,
            row.failed,
            row.injected,
            row.retries,
            row.panics,
            row.deadline_exceeded,
            row.gauge_after_bytes,
            row.clean_pairs,
            row.pairs_match,
            row.crash_rounds,
            row.faulted_rounds,
            row.records_acknowledged,
            row.wall_ms,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Description stamped into a fresh chaos trajectory document.
pub const FAULTS_TRAJECTORY_DESCRIPTION: &str =
    "usj chaos trajectory; repro faults appends one point per run";

/// Renders one trajectory point summarising the run. `unix_time` is the
/// caller-provided wall-clock stamp (seconds since the epoch).
pub fn faults_trajectory_point(
    cfg: &ExperimentConfig,
    rows: &[FaultsBenchRow],
    unix_time: u64,
) -> String {
    let injected: u64 = rows.iter().map(|r| r.injected).sum();
    let retries: u64 = rows.iter().map(|r| r.retries).sum();
    let panics: u64 = rows.iter().map(|r| r.panics).sum();
    let completed: u64 = rows.iter().map(|r| r.completed).sum();
    let failed: u64 = rows.iter().map(|r| r.failed).sum();
    let all_match = rows.iter().all(|r| r.pairs_match);
    format!(
        "    {{\"experiment\": \"faults\", \"unix_time\": {}, \"scale\": {}, \"seed\": {}, \
         \"presets\": {}, \"completed\": {}, \"failed\": {}, \"injected\": {}, \
         \"retries\": {}, \"panics\": {}, \"pairs_match\": {}, \"crash_rounds\": {}}}\n",
        unix_time,
        cfg.scale,
        cfg.seed,
        rows.len(),
        completed,
        failed,
        injected,
        retries,
        panics,
        all_match,
        FAULTS_CRASH_ROUNDS,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_datagen::Preset;

    #[test]
    fn faults_bench_runs_and_serializes_on_a_tiny_configuration() {
        let cfg = ExperimentConfig {
            scale: 2_000,
            seed: 7,
            presets: vec![Preset::NJ],
        };
        // faults_bench asserts the chaos invariants internally: every
        // request resolves, the gauge drains to zero, the panic and
        // deadline probes come back typed, the faulted pair set equals the
        // clean twin's and recovery conserves acknowledged records.
        let rows = faults_bench(&cfg);
        assert_eq!(rows.len(), 1, "one row per preset");
        let row = &rows[0];
        assert_eq!(row.completed + row.failed, row.requests);
        assert_eq!(row.gauge_after_bytes, 0);
        assert!(row.pairs_match);
        assert!(row.panics >= 1, "the panic probe guarantees a contained panic");
        assert!(row.deadline_exceeded >= 1, "the deadline probe guarantees a miss");
        assert!(row.records_acknowledged > 0);

        let json = faults_bench_json(&cfg, &rows);
        assert!(json.contains("\"experiment\": \"faults\""));
        assert!(json.contains("\"preset\": \"NJ\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());

        // The trajectory point is append-compatible with the shared
        // trajectory machinery and keeps every earlier point.
        let point = faults_trajectory_point(&cfg, &rows, 1_700_000_000);
        assert_eq!(point.matches('{').count(), point.matches('}').count());
        let doc = crate::loadgen::append_trajectory_with(
            None,
            &point,
            FAULTS_TRAJECTORY_DESCRIPTION,
        )
        .unwrap();
        assert!(doc.contains(FAULTS_TRAJECTORY_DESCRIPTION));
        let doc2 = crate::loadgen::append_trajectory_with(
            Some(&doc),
            &point,
            FAULTS_TRAJECTORY_DESCRIPTION,
        )
        .unwrap();
        assert_eq!(doc2.matches("\"experiment\": \"faults\"").count(), 2);
    }
}
