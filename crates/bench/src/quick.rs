//! A dependency-free micro-benchmark harness.
//!
//! The offline build environment cannot fetch `criterion`, so the bench
//! targets in this crate use this minimal stand-in: fixed warm-up, a fixed
//! number of timed samples, and a one-line median/min/max report per case.
//! It is deliberately simple — no outlier rejection, no statistical tests —
//! but the numbers it produces are stable enough to compare alternatives
//! within one run (which is all the paper-style A/B benches here need).

use std::time::{Duration, Instant};

/// Configuration for one group of benchmark cases.
#[derive(Debug, Clone, Copy)]
pub struct QuickBench {
    /// Timed samples per case.
    pub samples: usize,
    /// Untimed warm-up iterations per case.
    pub warmup: usize,
}

impl Default for QuickBench {
    fn default() -> Self {
        QuickBench {
            samples: 10,
            warmup: 2,
        }
    }
}

impl QuickBench {
    /// A harness with the default 10 samples and 2 warm-up iterations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the number of timed samples (builder style).
    pub fn with_samples(mut self, samples: usize) -> Self {
        self.samples = samples.max(1);
        self
    }

    /// Overrides the number of warm-up iterations (builder style).
    pub fn with_warmup(mut self, warmup: usize) -> Self {
        self.warmup = warmup;
        self
    }

    /// Runs `f` repeatedly, prints a one-line report, and returns the timing
    /// summary. The closure's return value is passed through
    /// [`std::hint::black_box`] so the work cannot be optimised away.
    pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) -> BenchReport {
        for _ in 0..self.warmup {
            std::hint::black_box(f());
        }
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            times.push(start.elapsed());
        }
        times.sort_unstable();
        let report = BenchReport {
            name: name.to_string(),
            median: times[times.len() / 2],
            min: times[0],
            max: times[times.len() - 1],
            samples: times.len(),
        };
        println!("{report}");
        report
    }
}

/// Timing summary of one benchmark case.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Case name as passed to [`QuickBench::bench`].
    pub name: String,
    /// Median of the timed samples.
    pub median: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Slowest sample.
    pub max: Duration,
    /// Number of timed samples.
    pub samples: usize,
}

impl BenchReport {
    /// Median time in seconds, for speedup arithmetic.
    pub fn median_secs(&self) -> f64 {
        self.median.as_secs_f64()
    }
}

impl std::fmt::Display for BenchReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<32} median {:>10.3?}  (min {:.3?}, max {:.3?}, n={})",
            self.name, self.median, self.min, self.max, self.samples
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let r = QuickBench::new()
            .with_samples(3)
            .with_warmup(1)
            .bench("noop", || 1 + 1);
        assert_eq!(r.samples, 3);
        assert!(r.min <= r.median && r.median <= r.max);
        assert!(r.median_secs() >= 0.0);
        assert!(format!("{r}").contains("noop"));
    }
}
