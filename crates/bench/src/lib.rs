//! Experiment harness for the EDBT 2000 evaluation.
//!
//! The `repro` binary in this crate regenerates every table and figure of the
//! paper's experimental section on the simulated substrate:
//!
//! | Command | Paper artefact |
//! |---|---|
//! | `repro table2` | Table 2 — data-set statistics |
//! | `repro table3` | Table 3 — PQ memory usage |
//! | `repro table4` | Table 4 — page requests of the indexed joins |
//! | `repro fig2-estimated` | Figure 2(a)–(c) — estimated PQ/ST cost |
//! | `repro fig2-observed` | Figure 2(d)–(f) — observed PQ/ST cost |
//! | `repro fig3` | Figure 3 — all four algorithms on all machines |
//! | `repro crossover` | Section 6.3 — cost-based index/no-index decision |
//! | `repro ablation-sweep` | Striped- vs Forward-Sweep (Sec. 3.1) |
//! | `repro ablation-buffer` | ST page requests vs buffer-pool size (Sec. 6.2) |
//! | `repro ablation-tiles` | PBSM 32×32 vs 128×128 tiles (Sec. 3.2) |
//! | `repro ablation-packing` | 75 %+20 % packing vs full packing (Sec. 7) |
//! | `repro low-memory` | memory governor: spill I/O vs 4/16/64 MB limits |
//! | `repro service` | service throughput: 16 concurrent requests at 2/4/8 workers under a 16 MB shared budget (also writes `BENCH_service.json`) |
//! | `repro hotpath` | wall-clock of the real kernels: SoA sweep vs the naive list baseline, plus all four algorithms (writes `BENCH_hotpath_latest.json`, appends to the tracked `BENCH_hotpath.json` trajectory) |
//! | `repro load` | open-loop load harness: tail latency, queue depth and deferral rate over a seeded arrival schedule, plus the shared-scan A/B (writes `BENCH_service.json`, appends to `BENCH_trajectory.json`) |
//! | `repro live` | streaming joins over live LSM datasets: time-to-first-K-pairs vs full offline SSSJ, plus ingest-while-querying compaction interference (writes `BENCH_service.json`, appends to `BENCH_trajectory.json`) |
//! | `repro faults` | chaos: the mixed service batch under seeded fault injection with bounded retry, panic/deadline probes, and a crash/recover durability loop (writes `BENCH_service.json`, appends to `BENCH_trajectory.json`) |
//! | `repro all` | everything above |
//!
//! Every experiment accepts `--scale <divisor>` (default 200) which divides
//! the paper's object counts, and `--seed <u64>` for the deterministic data
//! generator. Absolute numbers therefore differ from the paper; the *shape*
//! of every comparison (who wins, by what factor, where the crossover falls)
//! is what the harness reproduces and what `EXPERIMENTS.md` records.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod experiments;
pub mod faults_exp;
pub mod hotpath;
pub mod live_exp;
pub mod loadgen;
pub mod quick;
pub mod service_exp;
pub mod setup;

pub use experiments::*;
pub use faults_exp::{
    faults_bench, faults_bench_json, faults_trajectory_point, FaultsBenchRow,
    FAULTS_TRAJECTORY_DESCRIPTION,
};
pub use hotpath::{
    hotpath, hotpath_json, hotpath_trajectory_point, HotpathJoinRow, HotpathKernelRow,
    HOTPATH_TRAJECTORY_DESCRIPTION,
};
pub use live_exp::{
    live_bench, live_bench_json, live_trajectory_point, LiveBenchRow, LiveInterferenceRow,
    FIRST_K,
};
pub use loadgen::{
    append_trajectory, append_trajectory_with, generate_schedule, load_bench, load_bench_json,
    load_trace_json, trajectory_point, ArrivalCurve, BatchingComparison, LoadOutcome, LoadRow,
    LoadSpec, RequestTemplate, TemplateKind,
};
pub use quick::{BenchReport, QuickBench};
pub use service_exp::{service_bench, service_bench_json, ServiceBenchRow};
pub use setup::{ExperimentConfig, PreparedWorkload};
