//! The `hotpath` experiment: the first *wall-clock* point of the perf
//! trajectory.
//!
//! Everything else in this crate measures the simulated cost model
//! (deterministic I/O and CPU counters). This experiment additionally times
//! the real kernels on the host:
//!
//! * **kernel section** — the raw sweep kernel on each preset's
//!   (pre-sorted) in-memory workload: the preserved pre-PR kernels
//!   ([`ListSweep`], the eager unordered list, and [`EagerStripedSweep`],
//!   the eager fixed-256-strip structure the SSSJ/PQ production sweeps ran
//!   on) against the struct-of-arrays [`ForwardSweep`] and
//!   [`StripedSweep`]. The pair counts of all four must agree — the list
//!   kernel is the serial oracle.
//! * **joins section** — the four full algorithms (SSSJ/PBSM/PQ/ST) on
//!   their natural inputs, wall-clock per run plus the charged
//!   [`IoStats`]/[`CpuCounter`] and the measured memory peak, so regressions
//!   in either the host time or the simulated cost model show up in the
//!   same artifact.
//!
//! `repro hotpath` writes the full rows as `BENCH_hotpath_latest.json`
//! (scratch, overwritten per run) and **appends** a compact point to the
//! tracked `BENCH_hotpath.json` trajectory, so cross-PR wall-clock history
//! accumulates instead of each run replacing the baseline. Wall-clock
//! numbers vary across hosts; the speedup *ratios* and the oracle-checked
//! pair counts are the stable part.

use std::time::Instant;

use usj_datagen::WorkloadSpec;
use usj_io::{CpuCounter, CpuOp, IoStats};
use usj_sweep::{sweep_join, EagerStripedSweep, ForwardSweep, ListSweep, StripedSweep};

use crate::quick::QuickBench;
use crate::setup::{ExperimentConfig, PreparedWorkload};
use usj_core::JoinAlgorithm;
use usj_io::MachineConfig;

/// Timed samples per benchmark case.
const SAMPLES: usize = 5;

/// Untimed warm-up iterations per case.
const WARMUP: usize = 1;

/// One preset's raw-kernel comparison: naive list sweep vs the SoA kernels.
#[derive(Debug, Clone)]
pub struct HotpathKernelRow {
    /// Workload preset name.
    pub preset: String,
    /// Items in the left (road) input.
    pub left_items: u64,
    /// Items in the right (hydrography) input.
    pub right_items: u64,
    /// Intersecting pairs — identical across all three kernels (asserted).
    pub pairs: u64,
    /// Median wall-clock of the naive list-sweep baseline (the pre-PR
    /// `Forward-Sweep`), milliseconds.
    pub list_ms: f64,
    /// Median wall-clock of the eager 256-strip baseline (the pre-PR
    /// `Striped-Sweep` — the kernel SSSJ/PQ production sweeps ran on),
    /// milliseconds.
    pub eager_striped_ms: f64,
    /// Median wall-clock of the SoA forward sweep, milliseconds.
    pub forward_ms: f64,
    /// Median wall-clock of the SoA striped sweep, milliseconds.
    pub striped_ms: f64,
    /// Rectangle tests of the list baseline (equals the forward kernel's).
    pub list_rect_tests: u64,
    /// Rectangle tests of the striped kernel.
    pub striped_rect_tests: u64,
}

impl HotpathKernelRow {
    /// Wall-clock speedup of the SoA forward kernel over the list baseline.
    pub fn speedup_forward(&self) -> f64 {
        self.list_ms / self.forward_ms.max(f64::EPSILON)
    }

    /// Wall-clock speedup of the SoA striped kernel over the list baseline.
    pub fn speedup_striped(&self) -> f64 {
        self.list_ms / self.striped_ms.max(f64::EPSILON)
    }

    /// Wall-clock speedup of the SoA striped kernel over the pre-PR striped
    /// kernel (the production sweep path of SSSJ and PQ).
    pub fn speedup_striped_vs_eager(&self) -> f64 {
        self.eager_striped_ms / self.striped_ms.max(f64::EPSILON)
    }
}

/// One preset × algorithm wall-clock measurement of a full join.
#[derive(Debug, Clone)]
pub struct HotpathJoinRow {
    /// Workload preset name.
    pub preset: String,
    /// Algorithm short name (SJ/PB/PQ/ST).
    pub algo: String,
    /// Pairs reported — equal to the serial oracle's count (asserted).
    pub pairs: u64,
    /// Median wall-clock per run, milliseconds.
    pub wall_ms_median: f64,
    /// Fastest sample, milliseconds.
    pub wall_ms_min: f64,
    /// Slowest sample, milliseconds.
    pub wall_ms_max: f64,
    /// Charged I/O of one run (deterministic).
    pub io: IoStats,
    /// Deterministic CPU counters of one run.
    pub cpu: CpuCounter,
    /// Measured memory peak of one run, bytes.
    pub peak_bytes: usize,
}

/// Runs the hotpath experiment, printing both sections and returning the
/// rows for machine-readable emission.
///
/// Panics if any kernel or algorithm disagrees with the serial list-sweep
/// oracle on the pair count — the wall-clock numbers are only meaningful
/// while the results stay byte-identical.
pub fn hotpath(cfg: &ExperimentConfig) -> (Vec<HotpathKernelRow>, Vec<HotpathJoinRow>) {
    let bench = QuickBench::new().with_samples(SAMPLES).with_warmup(WARMUP);

    println!(
        "\n== Hot path: raw sweep kernel wall-clock, SoA vs pre-PR kernels (scale divisor {}) ==",
        cfg.scale
    );
    println!(
        "{:<10} {:>10} {:>10} {:>9} {:>9} {:>9} {:>8} {:>8} {:>9}",
        "Data set", "pairs", "list ms", "eager ms", "fwd ms", "strip ms", "fwd x", "strip x", "vs eager"
    );
    let mut kernel_rows = Vec::new();
    for &preset in &cfg.presets {
        let workload = WorkloadSpec::preset(preset)
            .with_scale(cfg.scale)
            .generate(cfg.seed);
        // The kernels consume y-sorted inputs; sorting once up front times
        // the sweep itself rather than diluting every sample with the same
        // sort (the sort phase is measured by the joins section below).
        let mut roads = workload.roads.clone();
        let mut hydro = workload.hydro.clone();
        usj_geom::sort_by_lower_y(&mut roads);
        usj_geom::sort_by_lower_y(&mut hydro);
        let (roads, hydro) = (&roads, &hydro);

        // The serial oracle: the pre-optimization list kernel.
        let list_stats = sweep_join::<ListSweep, _>(roads, hydro, |_, _| {});
        let eager_stats = sweep_join::<EagerStripedSweep, _>(roads, hydro, |_, _| {});
        let forward_stats = sweep_join::<ForwardSweep, _>(roads, hydro, |_, _| {});
        let striped_stats = sweep_join::<StripedSweep, _>(roads, hydro, |_, _| {});
        assert_eq!(
            forward_stats.pairs, list_stats.pairs,
            "{preset}: SoA forward kernel diverged from the list oracle"
        );
        assert_eq!(
            striped_stats.pairs, list_stats.pairs,
            "{preset}: SoA striped kernel diverged from the list oracle"
        );
        assert_eq!(
            eager_stats.pairs, list_stats.pairs,
            "{preset}: pre-PR striped baseline diverged from the list oracle"
        );

        let list = bench.bench(&format!("{preset}/kernel/list"), || {
            sweep_join::<ListSweep, _>(roads, hydro, |_, _| {}).pairs
        });
        let eager = bench.bench(&format!("{preset}/kernel/eager-striped"), || {
            sweep_join::<EagerStripedSweep, _>(roads, hydro, |_, _| {}).pairs
        });
        let forward = bench.bench(&format!("{preset}/kernel/forward-soa"), || {
            sweep_join::<ForwardSweep, _>(roads, hydro, |_, _| {}).pairs
        });
        let striped = bench.bench(&format!("{preset}/kernel/striped-soa"), || {
            sweep_join::<StripedSweep, _>(roads, hydro, |_, _| {}).pairs
        });

        let row = HotpathKernelRow {
            preset: preset.name().to_string(),
            left_items: roads.len() as u64,
            right_items: hydro.len() as u64,
            pairs: list_stats.pairs,
            list_ms: list.median_secs() * 1000.0,
            eager_striped_ms: eager.median_secs() * 1000.0,
            forward_ms: forward.median_secs() * 1000.0,
            striped_ms: striped.median_secs() * 1000.0,
            list_rect_tests: list_stats.rect_tests,
            striped_rect_tests: striped_stats.rect_tests,
        };
        println!(
            "{:<10} {:>10} {:>10.3} {:>9.3} {:>9.3} {:>9.3} {:>7.2}x {:>7.2}x {:>8.2}x",
            row.preset,
            row.pairs,
            row.list_ms,
            row.eager_striped_ms,
            row.forward_ms,
            row.striped_ms,
            row.speedup_forward(),
            row.speedup_striped(),
            row.speedup_striped_vs_eager(),
        );
        kernel_rows.push(row);
    }

    println!("\n== Hot path: full algorithms wall-clock (charged I/O unchanged by construction) ==");
    println!(
        "{:<10} {:>5} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "Data set", "Alg", "pairs", "wall ms", "min ms", "max ms", "pages rd", "pages wr", "peak KB"
    );
    let mut join_rows = Vec::new();
    for &preset in &cfg.presets {
        let oracle_pairs = kernel_rows
            .iter()
            .find(|r| r.preset == preset.name())
            .expect("kernel row exists for every preset")
            .pairs;
        for alg in JoinAlgorithm::all() {
            let mut p = PreparedWorkload::build(preset, cfg, MachineConfig::machine3());
            let report = bench.bench(&format!("{preset}/join/{}", alg.short_name()), || {
                p.reset();
                p.run_algorithm(alg)
            });
            // One more deterministic run for the recorded counters.
            p.reset();
            let result = p.run_algorithm(alg);
            assert_eq!(
                result.pairs, oracle_pairs,
                "{preset} {alg:?}: pair count diverged from the serial oracle"
            );
            let row = HotpathJoinRow {
                preset: preset.name().to_string(),
                algo: alg.short_name().to_string(),
                pairs: result.pairs,
                wall_ms_median: report.median_secs() * 1000.0,
                wall_ms_min: report.min.as_secs_f64() * 1000.0,
                wall_ms_max: report.max.as_secs_f64() * 1000.0,
                io: result.io,
                cpu: result.cpu,
                peak_bytes: result.memory.peak_bytes,
            };
            println!(
                "{:<10} {:>5} {:>10} {:>10.3} {:>10.3} {:>10.3} {:>10} {:>10} {:>10.1}",
                row.preset,
                row.algo,
                row.pairs,
                row.wall_ms_median,
                row.wall_ms_min,
                row.wall_ms_max,
                row.io.pages_read,
                row.io.pages_written,
                row.peak_bytes as f64 / 1024.0,
            );
            join_rows.push(row);
        }
    }
    println!(
        "(list/eager = pre-PR kernels kept as oracle/baseline; 'vs eager' is the SSSJ/PQ production sweep path; wall-clock varies per host, pair counts and charged I/O are deterministic)"
    );
    (kernel_rows, join_rows)
}

/// Renders the rows as the `BENCH_hotpath.json` document `repro hotpath`
/// writes (hand-rolled JSON — the workspace is dependency-free).
pub fn hotpath_json(
    cfg: &ExperimentConfig,
    kernels: &[HotpathKernelRow],
    joins: &[HotpathJoinRow],
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"hotpath\",\n");
    out.push_str(&format!("  \"scale\": {},\n", cfg.scale));
    out.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    out.push_str(&format!("  \"samples\": {SAMPLES},\n"));
    out.push_str("  \"kernel\": [\n");
    for (i, r) in kernels.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"preset\": \"{}\", \"left_items\": {}, \"right_items\": {}, \"pairs\": {}, \
             \"list_ms\": {:.4}, \"eager_striped_ms\": {:.4}, \"forward_ms\": {:.4}, \"striped_ms\": {:.4}, \
             \"speedup_forward_vs_list\": {:.3}, \"speedup_striped_vs_list\": {:.3}, \
             \"speedup_striped_vs_eager_striped\": {:.3}, \
             \"list_rect_tests\": {}, \"striped_rect_tests\": {}}}{}\n",
            r.preset,
            r.left_items,
            r.right_items,
            r.pairs,
            r.list_ms,
            r.eager_striped_ms,
            r.forward_ms,
            r.striped_ms,
            r.speedup_forward(),
            r.speedup_striped(),
            r.speedup_striped_vs_eager(),
            r.list_rect_tests,
            r.striped_rect_tests,
            if i + 1 == kernels.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"joins\": [\n");
    for (i, r) in joins.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"preset\": \"{}\", \"algo\": \"{}\", \"pairs\": {}, \
             \"wall_ms_median\": {:.4}, \"wall_ms_min\": {:.4}, \"wall_ms_max\": {:.4}, \
             \"pages_read\": {}, \"pages_written\": {}, \
             \"seq_read_ops\": {}, \"rand_read_ops\": {}, \"seq_write_ops\": {}, \"rand_write_ops\": {}, \
             \"cpu_compare\": {}, \"cpu_heap_op\": {}, \"cpu_rect_test\": {}, \
             \"cpu_item_move\": {}, \"cpu_output_pair\": {}, \"peak_bytes\": {}}}{}\n",
            r.preset,
            r.algo,
            r.pairs,
            r.wall_ms_median,
            r.wall_ms_min,
            r.wall_ms_max,
            r.io.pages_read,
            r.io.pages_written,
            r.io.seq_read_ops,
            r.io.rand_read_ops,
            r.io.seq_write_ops,
            r.io.rand_write_ops,
            r.cpu.get(CpuOp::Compare),
            r.cpu.get(CpuOp::HeapOp),
            r.cpu.get(CpuOp::RectTest),
            r.cpu.get(CpuOp::ItemMove),
            r.cpu.get(CpuOp::OutputPair),
            r.peak_bytes,
            if i + 1 == joins.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders one point of the tracked `BENCH_hotpath.json` *trajectory*:
/// the per-preset kernel speedups plus every join's median wall-clock —
/// the numbers a cross-PR regression scan needs, without the per-run CPU
/// counter detail (that lives in `BENCH_hotpath_latest.json`). `unix_time`
/// is the caller-provided wall-clock stamp (seconds since the epoch).
pub fn hotpath_trajectory_point(
    cfg: &ExperimentConfig,
    kernels: &[HotpathKernelRow],
    joins: &[HotpathJoinRow],
    unix_time: u64,
) -> String {
    let kernel_points: Vec<String> = kernels
        .iter()
        .map(|r| {
            format!(
                "{{\"preset\": \"{}\", \"pairs\": {}, \"striped_ms\": {:.4}, \
                 \"speedup_striped_vs_list\": {:.3}, \"speedup_striped_vs_eager\": {:.3}}}",
                r.preset,
                r.pairs,
                r.striped_ms,
                r.speedup_striped(),
                r.speedup_striped_vs_eager()
            )
        })
        .collect();
    let join_points: Vec<String> = joins
        .iter()
        .map(|r| {
            format!(
                "{{\"preset\": \"{}\", \"algo\": \"{}\", \"wall_ms_median\": {:.4}, \
                 \"peak_bytes\": {}}}",
                r.preset, r.algo, r.wall_ms_median, r.peak_bytes
            )
        })
        .collect();
    format!(
        "    {{\"experiment\": \"hotpath\", \"unix_time\": {}, \"scale\": {}, \"seed\": {}, \
         \"kernel\": [{}], \"joins\": [{}]}}\n",
        unix_time,
        cfg.scale,
        cfg.seed,
        kernel_points.join(", "),
        join_points.join(", ")
    )
}

/// Description stamped into a fresh hotpath trajectory document.
pub const HOTPATH_TRAJECTORY_DESCRIPTION: &str =
    "usj hot-path wall-clock trajectory; repro hotpath appends one point per run";

/// Host wall-clock of one closure call, milliseconds (exposed for smoke
/// tests that want a single ad-hoc measurement).
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_datagen::Preset;

    #[test]
    fn hotpath_runs_and_serializes_on_a_tiny_configuration() {
        let cfg = ExperimentConfig {
            scale: 2_000,
            seed: 7,
            presets: vec![Preset::NJ, Preset::NY],
        };
        let (kernels, joins) = hotpath(&cfg);
        assert_eq!(kernels.len(), 2, "one kernel row per preset");
        assert_eq!(joins.len(), 2 * 4, "one join row per preset x algorithm");
        // Pair counts are oracle-checked inside hotpath(); re-check the
        // cross-section consistency here.
        for k in &kernels {
            for j in joins.iter().filter(|j| j.preset == k.preset) {
                assert_eq!(j.pairs, k.pairs, "{}/{}", j.preset, j.algo);
            }
        }
        let json = hotpath_json(&cfg, &kernels, &joins);
        assert!(json.contains("\"experiment\": \"hotpath\""));
        assert_eq!(json.matches("\"algo\":").count(), 8);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());

        // The trajectory point is append-compatible with the shared
        // trajectory machinery and keeps every earlier point.
        let point = hotpath_trajectory_point(&cfg, &kernels, &joins, 1_700_000_000);
        assert_eq!(point.matches('{').count(), point.matches('}').count());
        let doc = crate::loadgen::append_trajectory_with(
            None,
            &point,
            HOTPATH_TRAJECTORY_DESCRIPTION,
        )
        .unwrap();
        assert!(doc.contains(HOTPATH_TRAJECTORY_DESCRIPTION));
        let doc2 = crate::loadgen::append_trajectory_with(
            Some(&doc),
            &point,
            HOTPATH_TRAJECTORY_DESCRIPTION,
        )
        .unwrap();
        assert_eq!(doc2.matches("\"experiment\": \"hotpath\"").count(), 2);

        let (_, ms) = time_ms(|| 1 + 1);
        assert!(ms >= 0.0);
    }
}
