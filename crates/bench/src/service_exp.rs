//! The service throughput experiment (not in the paper): N concurrent mixed
//! join/selection requests against a cataloged workload, at 2/4/8 workers,
//! under one shared memory limit.
//!
//! This is the first entry of the bench trajectory for the service
//! subsystem: it exercises register-once/query-many (every request reads the
//! persisted catalog representations), gauge-based admission (each request
//! demands 6 MB of the 16 MB shared budget, so deferrals are guaranteed),
//! and the plan cache (the join shapes repeat). `repro service` additionally
//! emits the rows as machine-readable `BENCH_service.json`.

use std::time::Instant;

use usj_core::Algo;
use usj_datagen::WorkloadSpec;
use usj_geom::Rect;
use usj_io::{MachineConfig, SimEnv};
use usj_service::{Catalog, QueryRequest, Service, ServiceConfig};

use crate::setup::ExperimentConfig;

/// Shared admission budget of the experiment (16 MB).
pub const SERVICE_BENCH_MEMORY_LIMIT: usize = 16 * 1024 * 1024;

/// Per-request demanded budget (6 MB: 2.67× oversubscription at 16 requests).
pub const SERVICE_BENCH_QUERY_BUDGET: usize = 6 * 1024 * 1024;

/// Budget of the one high-priority "heavy" request (12 MB): admitted first,
/// it leaves less than one regular budget of headroom, so a head-of-queue
/// deferral is recorded deterministically at every worker count.
pub const SERVICE_BENCH_HEAVY_BUDGET: usize = 12 * 1024 * 1024;

/// Requests per batch.
pub const SERVICE_BENCH_REQUESTS: usize = 16;

/// One measured configuration of the service experiment.
#[derive(Debug, Clone)]
pub struct ServiceBenchRow {
    /// Workload preset name.
    pub preset: String,
    /// Worker threads of the service.
    pub workers: usize,
    /// Requests submitted.
    pub requests: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests failed.
    pub failed: u64,
    /// Admission deferral events.
    pub deferrals: u64,
    /// Plan-cache hits during the batch.
    pub plan_cache_hits: u64,
    /// Total pairs delivered.
    pub pairs: u64,
    /// Aggregate pages read across every query's forked environment.
    pub pages_read: u64,
    /// Aggregate pages written.
    pub pages_written: u64,
    /// High-water mark of the admission gauge (bytes).
    pub peak_admitted_bytes: usize,
    /// Largest measured per-query peak (bytes).
    pub peak_query_bytes: usize,
    /// Host wall-clock time of the batch in milliseconds.
    pub wall_ms: f64,
}

/// Builds the mixed request batch: joins across the algorithms (including
/// repeats, so the plan cache gets hits) plus half-region window selections.
fn mixed_requests(
    roads: usj_service::DatasetId,
    hydro: usj_service::DatasetId,
    region: Rect,
) -> Vec<QueryRequest> {
    let window = Rect::from_coords(
        region.lo.x,
        region.lo.y,
        region.lo.x + region.width() * 0.5,
        region.lo.y + region.height() * 0.5,
    );
    (0..SERVICE_BENCH_REQUESTS as u32)
        .map(|i| {
            let request = match i % 4 {
                0 => QueryRequest::join(roads, hydro).with_algorithm(Algo::Sssj),
                1 => QueryRequest::join(roads, hydro).with_algorithm(Algo::Pq),
                2 => QueryRequest::join(roads, hydro).with_algorithm(Algo::St),
                _ => QueryRequest::window(roads, window),
            };
            if i == 0 {
                request
                    .with_memory_budget(SERVICE_BENCH_HEAVY_BUDGET)
                    .with_priority(3)
            } else {
                request
                    .with_memory_budget(SERVICE_BENCH_QUERY_BUDGET)
                    .with_priority((i % 3) as u8)
            }
        })
        .collect()
}

/// Runs the experiment, printing one row per preset × worker count, and
/// returns the rows for machine-readable emission.
pub fn service_bench(cfg: &ExperimentConfig) -> Vec<ServiceBenchRow> {
    println!(
        "\n== Service throughput: {} mixed requests, {} MB shared budget (scale divisor {}) ==",
        SERVICE_BENCH_REQUESTS,
        SERVICE_BENCH_MEMORY_LIMIT / (1024 * 1024),
        cfg.scale
    );
    println!(
        "{:<10} {:>7} {:>9} {:>9} {:>9} {:>10} {:>10} {:>10} {:>12} {:>11} {:>9}",
        "Data set",
        "Workers",
        "Complete",
        "Deferred",
        "PlanHits",
        "Pairs",
        "Pages rd",
        "Pages wr",
        "PeakAdm MB",
        "PeakQry MB",
        "Wall ms"
    );
    let mut rows = Vec::new();
    for &preset in &cfg.presets {
        let workload = WorkloadSpec::preset(preset)
            .with_scale(cfg.scale)
            .generate(cfg.seed);
        for workers in [2usize, 4, 8] {
            let mut env = SimEnv::new(MachineConfig::machine3());
            let mut catalog = Catalog::new();
            let (roads, hydro) = env.unaccounted(|env| {
                (
                    catalog
                        .register(env, "roads", &workload.roads)
                        .expect("register roads"),
                    catalog
                        .register(env, "hydro", &workload.hydro)
                        .expect("register hydro"),
                )
            });
            let service = Service::new(
                env,
                catalog,
                ServiceConfig::default()
                    .with_workers(workers)
                    .with_memory_limit(SERVICE_BENCH_MEMORY_LIMIT),
            );
            let requests = mixed_requests(roads, hydro, workload.region);
            let start = Instant::now();
            let report = service.run(requests);
            let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
            let stats = &report.stats;
            assert_eq!(
                stats.completed + stats.failed,
                stats.submitted,
                "{preset}: every request must resolve"
            );
            for outcome in &report.outcomes {
                if let Some(result) = outcome.result() {
                    assert!(
                        result.memory.peak_bytes <= SERVICE_BENCH_MEMORY_LIMIT,
                        "{preset}: per-query peak over the shared limit"
                    );
                }
            }
            println!(
                "{:<10} {:>7} {:>9} {:>9} {:>9} {:>10} {:>10} {:>10} {:>12.1} {:>11.2} {:>9.1}",
                preset.name(),
                workers,
                stats.completed,
                stats.deferrals,
                stats.plan_cache_hits,
                stats.pairs,
                stats.io.pages_read,
                stats.io.pages_written,
                stats.peak_admitted_bytes as f64 / (1024.0 * 1024.0),
                stats.peak_query_bytes as f64 / (1024.0 * 1024.0),
                wall_ms
            );
            rows.push(ServiceBenchRow {
                preset: preset.name().to_string(),
                workers,
                requests: stats.submitted,
                completed: stats.completed,
                failed: stats.failed,
                deferrals: stats.deferrals,
                plan_cache_hits: stats.plan_cache_hits,
                pairs: stats.pairs,
                pages_read: stats.io.pages_read,
                pages_written: stats.io.pages_written,
                peak_admitted_bytes: stats.peak_admitted_bytes,
                peak_query_bytes: stats.peak_query_bytes,
                wall_ms,
            });
        }
    }
    println!(
        "(admission control bounds concurrent grants to the shared budget; deferrals are the queue doing its job, not failures)"
    );
    rows
}

/// Renders the rows as the `BENCH_service.json` document `repro service`
/// writes (hand-rolled JSON — the workspace is dependency-free).
pub fn service_bench_json(cfg: &ExperimentConfig, rows: &[ServiceBenchRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"service\",\n");
    out.push_str(&format!("  \"scale\": {},\n", cfg.scale));
    out.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    out.push_str(&format!(
        "  \"shared_memory_limit_bytes\": {},\n",
        SERVICE_BENCH_MEMORY_LIMIT
    ));
    out.push_str(&format!(
        "  \"per_query_budget_bytes\": {},\n",
        SERVICE_BENCH_QUERY_BUDGET
    ));
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"preset\": \"{}\", \"workers\": {}, \"requests\": {}, \"completed\": {}, \
             \"failed\": {}, \"deferrals\": {}, \"plan_cache_hits\": {}, \"pairs\": {}, \
             \"pages_read\": {}, \"pages_written\": {}, \"peak_admitted_bytes\": {}, \
             \"peak_query_bytes\": {}, \"wall_ms\": {:.3}}}{}\n",
            row.preset,
            row.workers,
            row.requests,
            row.completed,
            row.failed,
            row.deferrals,
            row.plan_cache_hits,
            row.pairs,
            row.pages_read,
            row.pages_written,
            row.peak_admitted_bytes,
            row.peak_query_bytes,
            row.wall_ms,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_datagen::Preset;

    #[test]
    fn service_bench_runs_and_serializes_on_a_tiny_configuration() {
        let cfg = ExperimentConfig {
            scale: 2_000,
            seed: 7,
            presets: vec![Preset::NJ],
        };
        let rows = service_bench(&cfg);
        assert_eq!(rows.len(), 3, "one row per worker count");
        assert!(rows.iter().all(|r| r.completed == SERVICE_BENCH_REQUESTS as u64));
        // The heavy request is admitted first and leaves less than one
        // regular budget of headroom, so every configuration records at
        // least one deferral, deterministically.
        assert!(rows.iter().all(|r| r.deferrals > 0), "oversubscription must defer");
        assert!(
            rows.iter().all(|r| r.peak_admitted_bytes <= SERVICE_BENCH_MEMORY_LIMIT),
            "admission gauge bound"
        );
        let json = service_bench_json(&cfg, &rows);
        assert!(json.contains("\"experiment\": \"service\""));
        assert!(json.contains("\"preset\": \"NJ\""));
        assert_eq!(json.matches("\"workers\":").count(), 3);
        // Crude structural sanity: balanced braces/brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
