//! Deterministic open-loop load harness for the query service.
//!
//! The paper's cost model is about *sustained* external-memory throughput,
//! but `repro service` measures one 16-request batch. This module drives
//! [`usj_service::Service`] the way a front end under heavy traffic would:
//! a seeded (SplitMix64) generator produces an **arrival schedule** —
//! thousands of mixed requests (joins, window/point selections, `LIMIT`
//! queries, occasional pre-fired cancellations) with arrival offsets drawn
//! from a configurable rate curve — and the driver submits each request at
//! its scheduled instant through [`Service::with_session`], *regardless of
//! how backed up the service is*.
//!
//! That open-loop discipline is the point: a closed loop (submit, wait,
//! submit) lets a slow server throttle its own load, so queueing delay
//! hides from the measurement (the coordinated-omission trap). Here
//! arrivals keep coming while the queue grows, so p95/p99 latency reflects
//! what a client would actually see under that offered load.
//!
//! Everything is deterministic from the seed *except* wall-clock timing:
//! the schedule itself replays bit-identically ([`generate_schedule`]), and
//! [`ServiceStats::replay_digest`](usj_service::ServiceStats::replay_digest)
//! over the outcome is interleaving-
//! independent, which is what makes the tracked `BENCH_trajectory.json`
//! points comparable across PRs.

use std::time::{Duration, Instant};

use usj_core::Algo;
use usj_datagen::rng::SmallRng;
use usj_datagen::{Preset, WorkloadSpec};
use usj_geom::{Point, Rect};
use usj_io::{MachineConfig, SimEnv};
use usj_service::{
    Catalog, CancelToken, ChromeTrace, DatasetId, QueryRequest, Service, ServiceConfig,
    ServiceReport,
};

use crate::setup::ExperimentConfig;

/// Shared admission budget of the load harness (16 MB, matching
/// `repro service`).
pub const LOAD_MEMORY_LIMIT: usize = 16 * 1024 * 1024;

/// Default request count of `repro load` (the acceptance floor is 1000).
pub const LOAD_REQUESTS: usize = 1024;

/// Worker counts swept by `repro load`.
pub const LOAD_WORKER_COUNTS: [usize; 3] = [2, 4, 8];

/// How the offered arrival rate evolves over the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalCurve {
    /// Constant rate: a Poisson process at the base rate.
    Uniform,
    /// Rate ramps linearly from 0.5× to 1.5× the base rate — the "morning
    /// traffic builds up" shape; the tail of the run oversubscribes the
    /// service and the queue-depth series shows the backlog forming.
    Ramp,
    /// Alternating calm/burst phases (four cycles; bursts offer 3× the
    /// base rate, calms 0.33×) — stresses admission during spikes.
    Burst,
}

impl ArrivalCurve {
    /// Instantaneous rate multiplier at `progress` ∈ [0, 1).
    fn multiplier(self, progress: f64) -> f64 {
        match self {
            ArrivalCurve::Uniform => 1.0,
            ArrivalCurve::Ramp => 0.5 + progress,
            ArrivalCurve::Burst => {
                let phase = (progress * 8.0) as u64;
                if phase % 2 == 0 {
                    1.0 / 3.0
                } else {
                    3.0
                }
            }
        }
    }

    /// Name used in the JSON emission.
    pub fn name(self) -> &'static str {
        match self {
            ArrivalCurve::Uniform => "uniform",
            ArrivalCurve::Ramp => "ramp",
            ArrivalCurve::Burst => "burst",
        }
    }
}

/// What one scheduled request will do, independent of any concrete
/// `Service` (dataset ids are bound at submission time). `PartialEq` makes
/// whole schedules comparable — the seed-replay test's contract.
#[derive(Debug, Clone, PartialEq)]
pub enum TemplateKind {
    /// A roads ⋈ hydro join with the given algorithm.
    Join(Algo),
    /// A window selection over the roads dataset.
    Window(Rect),
    /// A point (stabbing) selection over the roads dataset.
    Point(Point),
}

/// One entry of the arrival schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTemplate {
    /// Arrival offset from the session start, in microseconds.
    pub arrival_us: u64,
    /// What to run.
    pub kind: TemplateKind,
    /// Admission priority.
    pub priority: u8,
    /// `LIMIT n`, when drawn.
    pub limit: Option<u64>,
    /// Whether the request arrives already cancelled (fired at submit, so
    /// it deterministically resolves `Cancelled(None)` without running —
    /// the client-gave-up-while-queued case).
    pub cancelled: bool,
}

/// Configuration of one load run.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Workload preset the catalog is built from.
    pub preset: Preset,
    /// Scale divisor for the dataset (same meaning as everywhere else).
    pub scale: u64,
    /// Schedule seed.
    pub seed: u64,
    /// Requests in the schedule.
    pub requests: usize,
    /// Mean offered arrival rate, requests per second.
    pub arrival_rate_hz: f64,
    /// Rate curve shape.
    pub curve: ArrivalCurve,
    /// Worker counts to sweep.
    pub worker_counts: Vec<usize>,
    /// Fraction of requests that are joins (the rest are selections).
    pub join_fraction: f64,
}

impl LoadSpec {
    /// The `repro load` configuration: LOAD_REQUESTS mixed requests at a
    /// ramping ~2 kHz offered rate over 2/4/8 workers.
    pub fn from_config(cfg: &ExperimentConfig) -> Self {
        LoadSpec {
            preset: cfg.presets.first().copied().unwrap_or(Preset::NJ),
            scale: cfg.scale,
            seed: cfg.seed,
            requests: LOAD_REQUESTS,
            arrival_rate_hz: 2000.0,
            curve: ArrivalCurve::Ramp,
            worker_counts: LOAD_WORKER_COUNTS.to_vec(),
            join_fraction: 0.15,
        }
    }
}

/// Generates the deterministic arrival schedule for `spec`: equal specs
/// produce bit-identical schedules on every platform.
///
/// Inter-arrival gaps are exponential (a Poisson process) with the
/// instantaneous rate shaped by the curve; request kinds, priorities,
/// limits and cancellations are drawn from fixed mix weights. Windows are
/// sized between 2 % and 25 % of the data region per axis, so selection
/// costs span two orders of magnitude — the "cheap query stuck behind a
/// heavy one" scenario the overtake policy exists for.
pub fn generate_schedule(spec: &LoadSpec, region: Rect) -> Vec<RequestTemplate> {
    // Domain-separate the schedule stream from the workload generator's.
    let mut rng = SmallRng::seed_from_u64(spec.seed ^ 0x4c4f_4144_4745_4e21);
    let mut arrival_us = 0u64;
    let join_algos = [Algo::Sssj, Algo::Pq, Algo::St];
    let mut joins = 0usize;
    (0..spec.requests)
        .map(|i| {
            let progress = i as f64 / spec.requests.max(1) as f64;
            let rate = (spec.arrival_rate_hz * spec.curve.multiplier(progress)).max(1e-3);
            // Exponential inter-arrival gap, clamped away from ln(0).
            let u = rng.gen_f64().min(1.0 - 1e-12);
            let gap_s = -(1.0f64 - u).ln() / rate;
            arrival_us += (gap_s * 1e6) as u64;

            let kind = if rng.gen_f64() < spec.join_fraction {
                let algo = join_algos[joins % join_algos.len()];
                joins += 1;
                TemplateKind::Join(algo)
            } else if rng.gen_f64() < 0.15 {
                let x = region.lo.x + rng.gen_f32() * region.width();
                let y = region.lo.y + rng.gen_f32() * region.height();
                TemplateKind::Point(Point::new(x, y))
            } else {
                let w = region.width() * rng.gen_range_f32(0.02, 0.25);
                let h = region.height() * rng.gen_range_f32(0.02, 0.25);
                let x = region.lo.x + rng.gen_f32() * (region.width() - w).max(0.0);
                let y = region.lo.y + rng.gen_f32() * (region.height() - h).max(0.0);
                TemplateKind::Window(Rect::from_coords(x, y, x + w, y + h))
            };
            let priority = if rng.gen_f64() < 0.2 {
                rng.gen_range_usize(1, 4) as u8
            } else {
                0
            };
            let limit = if rng.gen_f64() < 0.1 {
                Some(rng.gen_range_usize(1, 64) as u64)
            } else {
                None
            };
            let cancelled = rng.gen_f64() < 0.03;
            RequestTemplate {
                arrival_us,
                kind,
                priority,
                limit,
                cancelled,
            }
        })
        .collect()
}

/// Binds one template to concrete dataset ids.
fn instantiate(template: &RequestTemplate, roads: DatasetId, hydro: DatasetId) -> QueryRequest {
    let mut request = match &template.kind {
        TemplateKind::Join(algo) => QueryRequest::join(roads, hydro).with_algorithm(*algo),
        TemplateKind::Window(window) => QueryRequest::window(roads, *window),
        TemplateKind::Point(point) => QueryRequest::point(roads, *point),
    };
    request = request.with_priority(template.priority);
    if let Some(limit) = template.limit {
        request = request.with_limit(limit);
    }
    if template.cancelled {
        let token = CancelToken::new();
        token.cancel();
        request = request.with_cancel(token);
    }
    request
}

/// One measured worker-count configuration of the load harness.
#[derive(Debug, Clone)]
pub struct LoadRow {
    /// Worker threads of the service.
    pub workers: usize,
    /// Whether shared-scan batching was enabled.
    pub shared_scans_enabled: bool,
    /// Requests submitted / completed / cancelled / failed.
    pub requests: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests cancelled.
    pub cancelled: u64,
    /// Requests failed.
    pub failed: u64,
    /// Latency percentiles over completed requests (µs, from the shared
    /// `usj_obs` log-bucketed histogram: monotone, ≤ 1/16 + 1 µs above the
    /// exact nearest-rank value).
    pub p50_us: u64,
    /// 95th percentile latency (µs).
    pub p95_us: u64,
    /// 99th percentile latency (µs).
    pub p99_us: u64,
    /// Largest completed-request latency (µs).
    pub max_latency_us: u64,
    /// Deferral events per submitted request.
    pub deferral_rate: f64,
    /// Completed requests per second of wall clock.
    pub throughput_rps: f64,
    /// Mean of the queue-depth samples taken at each submission.
    pub mean_queue_depth: f64,
    /// Largest pending-queue length the service observed.
    pub max_queue_depth: usize,
    /// Shared scans executed / queries coalesced into them.
    pub shared_scans: u64,
    /// Queries serviced as shared-scan riders.
    pub coalesced: u64,
    /// Total pairs delivered.
    pub pairs: u64,
    /// Wall-clock time of the whole session (ms).
    pub wall_ms: f64,
    /// Interleaving-independent digest of the outcome
    /// ([`usj_service::ServiceStats::replay_digest`]).
    pub replay_digest: u64,
}

/// The queue-depth series sampled at each submission: `(offset_us, depth)`,
/// decimated to at most [`DEPTH_SAMPLES`] evenly spaced points.
pub type DepthSeries = Vec<(u64, usize)>;

/// Queue-depth samples kept per row in the JSON emission.
pub const DEPTH_SAMPLES: usize = 32;

/// Builds a fresh catalog + service for `spec` at `workers` and drives the
/// schedule open-loop through a session. Returns the report, the sampled
/// queue-depth series, the wall-clock seconds and the service itself (so
/// the caller can read its metrics registry or drain traces).
fn drive(
    spec: &LoadSpec,
    schedule: &[RequestTemplate],
    workers: usize,
    shared_scans: bool,
    traced: bool,
) -> (ServiceReport, DepthSeries, f64, Service) {
    let workload = WorkloadSpec::preset(spec.preset)
        .with_scale(spec.scale)
        .generate(spec.seed);
    let mut env = SimEnv::new(MachineConfig::machine3());
    let mut catalog = Catalog::new();
    let (roads, hydro) = env.unaccounted(|env| {
        (
            catalog.register(env, "roads", &workload.roads).expect("register roads"),
            catalog.register(env, "hydro", &workload.hydro).expect("register hydro"),
        )
    });
    let service = Service::new(
        env,
        catalog,
        ServiceConfig::default()
            .with_workers(workers)
            .with_memory_limit(LOAD_MEMORY_LIMIT)
            .with_shared_scans(shared_scans),
    );
    service.set_tracing(traced);
    let started = Instant::now();
    let (depths, report) = service.with_session(|session| {
        let mut depths: DepthSeries = Vec::with_capacity(schedule.len());
        for template in schedule {
            // Open loop: wait for the scheduled arrival instant (never for
            // the service), then submit. If the driver is behind schedule
            // the request goes in immediately — arrivals are never dropped
            // or delayed by backpressure.
            let target = Duration::from_micros(template.arrival_us);
            let elapsed = started.elapsed();
            if target > elapsed {
                std::thread::sleep(target - elapsed);
            }
            session.submit(instantiate(template, roads, hydro));
            depths.push((started.elapsed().as_micros() as u64, session.queue_depth()));
        }
        depths
    });
    let wall_s = started.elapsed().as_secs_f64();
    (report, depths, wall_s, service)
}

/// Decimates a full series to at most `keep` evenly spaced samples.
fn decimate(series: &[(u64, usize)], keep: usize) -> DepthSeries {
    if series.len() <= keep || keep == 0 {
        return series.to_vec();
    }
    (0..keep)
        .map(|i| series[i * (series.len() - 1) / (keep - 1).max(1)])
        .collect()
}

/// Folds one driven session into a [`LoadRow`].
fn summarize(
    workers: usize,
    shared_scans: bool,
    report: &ServiceReport,
    depths: &[(u64, usize)],
    wall_s: f64,
) -> LoadRow {
    let stats = &report.stats;
    // The shared log-bucketed histogram (≤ 1/16 relative quantile error,
    // property-tested in `usj_obs`) replaces the exact nearest-rank sort
    // this module used to hand-roll — same histogram the service's own
    // `query.latency_us` metric uses.
    let latencies = usj_obs::LogHistogram::new();
    for outcome in report.outcomes.iter().filter(|o| o.is_completed()) {
        latencies.record(outcome.stats.latency.as_micros() as u64);
    }
    let mean_depth = if depths.is_empty() {
        0.0
    } else {
        depths.iter().map(|&(_, d)| d as f64).sum::<f64>() / depths.len() as f64
    };
    LoadRow {
        workers,
        shared_scans_enabled: shared_scans,
        requests: stats.submitted,
        completed: stats.completed,
        cancelled: stats.cancelled,
        failed: stats.failed,
        p50_us: latencies.quantile(0.50),
        p95_us: latencies.quantile(0.95),
        p99_us: latencies.quantile(0.99),
        max_latency_us: latencies.max().unwrap_or(0),
        deferral_rate: stats.deferrals as f64 / stats.submitted.max(1) as f64,
        throughput_rps: stats.completed as f64 / wall_s.max(1e-9),
        mean_queue_depth: mean_depth,
        max_queue_depth: stats.max_queue_depth,
        shared_scans: stats.shared_scans,
        coalesced: stats.coalesced,
        pairs: stats.pairs,
        wall_ms: wall_s * 1000.0,
        replay_digest: stats.replay_digest(),
    }
}

/// The shared-scan A/B measurement: the same window-heavy schedule with
/// batching off, then on.
#[derive(Debug, Clone)]
pub struct BatchingComparison {
    /// Worker count both arms ran at.
    pub workers: usize,
    /// Per-query execution (the baseline).
    pub serial: LoadRow,
    /// Shared-scan batching enabled.
    pub batched: LoadRow,
}

impl BatchingComparison {
    /// Throughput ratio batched / serial.
    pub fn speedup(&self) -> f64 {
        self.batched.throughput_rps / self.serial.throughput_rps.max(1e-9)
    }
}

/// Everything one `repro load` run measures.
#[derive(Debug, Clone)]
pub struct LoadOutcome {
    /// One row per swept worker count (serial execution mode).
    pub rows: Vec<LoadRow>,
    /// Queue-depth series per row, decimated.
    pub depth_series: Vec<DepthSeries>,
    /// The shared-scan A/B on the window-heavy mix.
    pub comparison: BatchingComparison,
    /// [`usj_service::Service::metrics_snapshot`] of the reference row
    /// (largest swept worker count), rendered as a JSON object.
    pub metrics_json: String,
}

/// Runs the load harness: the mixed schedule over every worker count, then
/// the window-heavy shared-scan A/B. Prints one table row per
/// configuration and returns everything for JSON emission.
pub fn load_bench(spec: &LoadSpec) -> LoadOutcome {
    let workload = WorkloadSpec::preset(spec.preset)
        .with_scale(spec.scale)
        .generate(spec.seed);
    let schedule = generate_schedule(spec, workload.region);
    println!(
        "\n== Open-loop load: {} requests, ~{:.0} req/s ({}) on {}, seed {} ==",
        spec.requests,
        spec.arrival_rate_hz,
        spec.curve.name(),
        spec.preset.name(),
        spec.seed
    );
    println!(
        "{:>7} {:>6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8} {:>9}",
        "Workers", "Batch", "Complete", "p50 µs", "p95 µs", "p99 µs", "Thru r/s", "Defer/r", "MaxQ", "Wall ms"
    );
    let print_row = |row: &LoadRow| {
        println!(
            "{:>7} {:>6} {:>9} {:>9} {:>9} {:>9} {:>9.0} {:>8.2} {:>8} {:>9.1}",
            row.workers,
            if row.shared_scans_enabled { "on" } else { "off" },
            row.completed,
            row.p50_us,
            row.p95_us,
            row.p99_us,
            row.throughput_rps,
            row.deferral_rate,
            row.max_queue_depth,
            row.wall_ms
        );
    };

    let mut rows = Vec::new();
    let mut depth_series = Vec::new();
    let mut metrics_json = String::from("{}");
    for &workers in &spec.worker_counts {
        let (report, depths, wall_s, service) = drive(spec, &schedule, workers, false, false);
        let row = summarize(workers, false, &report, &depths, wall_s);
        print_row(&row);
        rows.push(row);
        depth_series.push(decimate(&depths, DEPTH_SAMPLES));
        // The reference row (last, i.e. largest worker count) contributes
        // the metrics snapshot the JSON emission embeds.
        metrics_json = service.metrics_snapshot().to_json(2);
    }

    // The A/B arm: a selection-only spec (shared scans never batch joins)
    // offered as one instantaneous burst, so wall clock measures service
    // capacity rather than the arrival schedule.
    let mut window_spec = spec.clone();
    window_spec.join_fraction = 0.0;
    window_spec.arrival_rate_hz = 1e9;
    let window_schedule = generate_schedule(&window_spec, workload.region);
    let ab_workers = spec.worker_counts.get(spec.worker_counts.len() / 2).copied().unwrap_or(4);
    let (serial_report, serial_depths, serial_wall, _) =
        drive(&window_spec, &window_schedule, ab_workers, false, false);
    let serial = summarize(ab_workers, false, &serial_report, &serial_depths, serial_wall);
    print_row(&serial);
    let (batched_report, batched_depths, batched_wall, _) =
        drive(&window_spec, &window_schedule, ab_workers, true, false);
    let batched = summarize(ab_workers, true, &batched_report, &batched_depths, batched_wall);
    print_row(&batched);
    assert_eq!(
        serial_report.stats.pairs, batched_report.stats.pairs,
        "shared scans must deliver identical pairs"
    );
    let comparison = BatchingComparison {
        workers: ab_workers,
        serial,
        batched,
    };
    println!(
        "(shared-scan batching: {:.2}x throughput on the window-heavy mix, identical pair sets)",
        comparison.speedup()
    );
    LoadOutcome {
        rows,
        depth_series,
        comparison,
        metrics_json,
    }
}

/// Replays the `spec` schedule once at the reference worker count with
/// tracing on and renders the whole run as a Chrome trace-event document:
/// thread 0 carries background maintenance, every admitted query runs on a
/// thread named by its admission sequence. The traced run is *separate*
/// from the measured sweep — tracing may only observe, but the benchmark
/// numbers should not even pay the ring-buffer cost.
pub fn load_trace_json(spec: &LoadSpec) -> String {
    let workload = WorkloadSpec::preset(spec.preset)
        .with_scale(spec.scale)
        .generate(spec.seed);
    let schedule = generate_schedule(spec, workload.region);
    let workers = spec.worker_counts.last().copied().unwrap_or(4);
    let (report, _, _, service) = drive(spec, &schedule, workers, false, true);
    let mut chrome = ChromeTrace::new();
    chrome.add_thread(0, "maintenance");
    chrome.add_trace(0, &service.drain_background_trace());
    for outcome in &report.outcomes {
        if let (Some(seq), Some(trace)) =
            (outcome.stats.admission_seq, outcome.stats.trace.as_ref())
        {
            chrome.add_thread(seq + 1, "query");
            chrome.add_trace(seq + 1, trace);
        }
    }
    chrome.finish()
}

fn row_json(row: &LoadRow, depths: Option<&DepthSeries>) -> String {
    let depth_json = depths.map_or(String::from("[]"), |series| {
        let samples: Vec<String> = series
            .iter()
            .map(|&(us, depth)| format!("[{us}, {depth}]"))
            .collect();
        format!("[{}]", samples.join(", "))
    });
    format!(
        "{{\"workers\": {}, \"shared_scans\": {}, \"requests\": {}, \"completed\": {}, \
         \"cancelled\": {}, \"failed\": {}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \
         \"max_latency_us\": {}, \"deferral_rate\": {:.4}, \"throughput_rps\": {:.1}, \
         \"mean_queue_depth\": {:.2}, \"max_queue_depth\": {}, \"shared_scan_count\": {}, \
         \"coalesced\": {}, \"pairs\": {}, \"wall_ms\": {:.3}, \"replay_digest\": {}, \
         \"queue_depth_series\": {}}}",
        row.workers,
        row.shared_scans_enabled,
        row.requests,
        row.completed,
        row.cancelled,
        row.failed,
        row.p50_us,
        row.p95_us,
        row.p99_us,
        row.max_latency_us,
        row.deferral_rate,
        row.throughput_rps,
        row.mean_queue_depth,
        row.max_queue_depth,
        row.shared_scans,
        row.coalesced,
        row.pairs,
        row.wall_ms,
        row.replay_digest,
        depth_json
    )
}

/// Renders the outcome as the `BENCH_service.json` document `repro load`
/// writes (hand-rolled JSON — the workspace is dependency-free).
pub fn load_bench_json(spec: &LoadSpec, outcome: &LoadOutcome) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"load\",\n");
    out.push_str(&format!("  \"preset\": \"{}\",\n", spec.preset.name()));
    out.push_str(&format!("  \"scale\": {},\n", spec.scale));
    out.push_str(&format!("  \"seed\": {},\n", spec.seed));
    out.push_str(&format!("  \"requests\": {},\n", spec.requests));
    out.push_str(&format!("  \"arrival_rate_hz\": {:.1},\n", spec.arrival_rate_hz));
    out.push_str(&format!("  \"curve\": \"{}\",\n", spec.curve.name()));
    out.push_str(&format!("  \"shared_memory_limit_bytes\": {},\n", LOAD_MEMORY_LIMIT));
    out.push_str("  \"rows\": [\n");
    for (i, row) in outcome.rows.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&row_json(row, outcome.depth_series.get(i)));
        out.push_str(if i + 1 == outcome.rows.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"batching\": {\n");
    out.push_str(&format!("    \"workers\": {},\n", outcome.comparison.workers));
    out.push_str(&format!("    \"serial\": {},\n", row_json(&outcome.comparison.serial, None)));
    out.push_str(&format!("    \"batched\": {},\n", row_json(&outcome.comparison.batched, None)));
    out.push_str(&format!("    \"speedup\": {:.3}\n", outcome.comparison.speedup()));
    out.push_str("  },\n");
    out.push_str(&format!("  \"metrics\": {}\n}}\n", outcome.metrics_json));
    out
}

/// Description stamped into a fresh `BENCH_trajectory.json`.
const TRAJECTORY_DESCRIPTION: &str =
    "usj load-harness tail-latency trajectory; repro load appends one point per run";

/// Footer every valid trajectory file ends with.
const TRAJECTORY_FOOTER: &str = "  ]\n}\n";

/// Renders one trajectory point for this outcome. `unix_time` is the
/// caller-provided wall-clock stamp (seconds since the epoch).
pub fn trajectory_point(spec: &LoadSpec, outcome: &LoadOutcome, unix_time: u64) -> String {
    // The reference row is the largest swept worker count — the
    // configuration the ROADMAP's tail-latency goal is about.
    let reference = outcome.rows.last().expect("at least one worker count");
    format!(
        "    {{\"unix_time\": {}, \"preset\": \"{}\", \"scale\": {}, \"seed\": {}, \
         \"requests\": {}, \"workers\": {}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \
         \"deferral_rate\": {:.4}, \"throughput_rps\": {:.1}, \"max_queue_depth\": {}, \
         \"shared_scan_speedup\": {:.3}, \"replay_digest\": {}}}\n",
        unix_time,
        spec.preset.name(),
        spec.scale,
        spec.seed,
        reference.requests,
        reference.workers,
        reference.p50_us,
        reference.p95_us,
        reference.p99_us,
        reference.deferral_rate,
        reference.throughput_rps,
        reference.max_queue_depth,
        outcome.comparison.speedup(),
        reference.replay_digest
    )
}

/// Appends `point` to an existing trajectory document, preserving every
/// earlier point; starts a fresh document when `existing` is `None`.
///
/// Returns `Err` (and touches nothing) when the existing content does not
/// look like a trajectory file — the tracked baseline must never be
/// silently clobbered.
pub fn append_trajectory(existing: Option<&str>, point: &str) -> Result<String, String> {
    append_trajectory_with(existing, point, TRAJECTORY_DESCRIPTION)
}

/// [`append_trajectory`] with a caller-chosen description for the fresh
/// document — the hotpath trajectory shares the file format but not the
/// load harness's header text.
pub fn append_trajectory_with(
    existing: Option<&str>,
    point: &str,
    description: &str,
) -> Result<String, String> {
    let Some(text) = existing else {
        return Ok(format!(
            "{{\n  \"description\": \"{description}\",\n  \"points\": [\n{point}{TRAJECTORY_FOOTER}"
        ));
    };
    if !text.contains("\"points\": [") || !text.ends_with(TRAJECTORY_FOOTER) {
        return Err(String::from(
            "existing BENCH_trajectory.json is not a trajectory document; refusing to overwrite",
        ));
    }
    let body = &text[..text.len() - TRAJECTORY_FOOTER.len()];
    let mut out = String::from(body);
    if out.trim_end().ends_with('}') {
        // A previous point is present: give it the separating comma.
        out.truncate(out.trim_end().len());
        out.push_str(",\n");
    }
    out.push_str(point);
    out.push_str(TRAJECTORY_FOOTER);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> LoadSpec {
        LoadSpec {
            preset: Preset::NJ,
            scale: 2_000,
            seed: 42,
            requests: 96,
            arrival_rate_hz: 4000.0,
            curve: ArrivalCurve::Ramp,
            worker_counts: vec![2],
            join_fraction: 0.15,
        }
    }

    #[test]
    fn schedules_replay_bit_identically_from_a_seed() {
        let spec = tiny_spec();
        let region = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
        let a = generate_schedule(&spec, region);
        let b = generate_schedule(&spec, region);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(a.windows(2).all(|w| w[0].arrival_us <= w[1].arrival_us));
        // The mix has some of everything.
        assert!(a.iter().any(|t| matches!(t.kind, TemplateKind::Join(_))));
        assert!(a.iter().any(|t| matches!(t.kind, TemplateKind::Window(_))));
        assert!(a.iter().any(|t| t.limit.is_some()));

        let mut other = spec;
        other.seed ^= 1;
        let c = generate_schedule(&other, region);
        assert_ne!(a, c, "different seed, different schedule");
    }

    #[test]
    fn identical_seeds_produce_identical_service_outcomes() {
        // The seed-replay satellite: two fresh services, same schedule —
        // the interleaving-independent digest must match exactly.
        let spec = tiny_spec();
        let first = load_bench(&spec);
        let second = load_bench(&spec);
        assert_eq!(
            first.rows[0].replay_digest, second.rows[0].replay_digest,
            "replay digest must be deterministic across runs"
        );
        assert_eq!(first.rows[0].requests, second.rows[0].requests);
        assert_eq!(first.rows[0].completed, second.rows[0].completed);
        assert_eq!(first.rows[0].cancelled, second.rows[0].cancelled);
        assert_eq!(first.rows[0].pairs, second.rows[0].pairs);
    }

    #[test]
    fn percentiles_are_monotone_and_batching_beats_serial() {
        let spec = tiny_spec();
        let outcome = load_bench(&spec);
        for row in &outcome.rows {
            assert_eq!(row.requests, 96);
            assert!(row.completed > 0);
            assert!(row.p50_us <= row.p95_us && row.p95_us <= row.p99_us);
            assert!(row.p99_us <= row.max_latency_us);
            assert!(row.throughput_rps > 0.0);
        }
        // The A/B arm coalesces aggressively on the window-only mix...
        assert!(outcome.comparison.batched.shared_scans > 0);
        assert!(outcome.comparison.batched.coalesced > 0);
        assert_eq!(outcome.comparison.serial.shared_scans, 0);
        // ...delivers identical output (asserted inside load_bench too)...
        assert_eq!(outcome.comparison.batched.pairs, outcome.comparison.serial.pairs);
        // ...and is measurably faster.
        assert!(
            outcome.comparison.speedup() > 1.0,
            "batched throughput must beat serial ({:.1} vs {:.1} r/s)",
            outcome.comparison.batched.throughput_rps,
            outcome.comparison.serial.throughput_rps
        );
    }

    #[test]
    fn load_json_is_structurally_sound() {
        let spec = tiny_spec();
        let outcome = load_bench(&spec);
        let json = load_bench_json(&spec, &outcome);
        assert!(json.contains("\"experiment\": \"load\""));
        assert!(json.contains("\"batching\""));
        assert!(json.contains("\"queue_depth_series\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn trajectory_appends_and_never_clobbers() {
        let spec = tiny_spec();
        let outcome = load_bench(&spec);
        let p1 = trajectory_point(&spec, &outcome, 1_700_000_000);
        let p2 = trajectory_point(&spec, &outcome, 1_700_000_600);

        let fresh = append_trajectory(None, &p1).unwrap();
        assert!(fresh.contains("\"points\": ["));
        assert_eq!(fresh.matches("\"unix_time\":").count(), 1);

        let appended = append_trajectory(Some(&fresh), &p2).unwrap();
        assert_eq!(appended.matches("\"unix_time\":").count(), 2, "append keeps the first point");
        assert!(appended.contains("1700000000") && appended.contains("1700000600"));
        assert_eq!(appended.matches('{').count(), appended.matches('}').count());

        let third = append_trajectory(Some(&appended), &p1).unwrap();
        assert_eq!(third.matches("\"unix_time\":").count(), 3);

        assert!(
            append_trajectory(Some("not a trajectory"), &p1).is_err(),
            "unknown content must be refused, not clobbered"
        );
    }
}

