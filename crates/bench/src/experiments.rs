//! The experiments: one function per table/figure of the paper.

use usj_core::{
    cost::crossover_fraction, Algo, JoinAlgorithm, JoinInput, JoinOperator, PbsmJoin, PqJoin,
    SpatialQuery, SssjJoin, StJoin,
};
use usj_datagen::{Preset, WorkloadSpec};
use usj_geom::Rect;
use usj_io::{MachineConfig, SimEnv};
use usj_rtree::{bulk::bulk_load, BulkLoadConfig, RTree};
use usj_sweep::{sweep_join, ForwardSweep, StripedSweep};

use crate::setup::{ExperimentConfig, PreparedWorkload};

fn mb(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

/// Table 2: object counts, data size and R-tree size of every preset, plus
/// the output size of the road–hydro join.
pub fn table2(cfg: &ExperimentConfig) {
    println!("\n== Table 2: data sets (scale divisor {}) ==", cfg.scale);
    println!(
        "{:<10} {:>12} {:>10} {:>10} | {:>12} {:>10} {:>10} | {:>12}",
        "Data set", "Road objs", "Data MB", "Rtree MB", "Hydro objs", "Data MB", "Rtree MB", "Output"
    );
    for &preset in &cfg.presets {
        let mut p = PreparedWorkload::build(preset, cfg, MachineConfig::machine3());
        let output = p.run_indexed(&PqJoin::default()).pairs;
        println!(
            "{:<10} {:>12} {:>10.2} {:>10.2} | {:>12} {:>10.2} {:>10.2} | {:>12}",
            preset.name(),
            p.workload.roads.len(),
            mb(p.workload.road_stats().data_bytes),
            mb(p.roads_tree.size_bytes()),
            p.workload.hydro.len(),
            mb(p.workload.hydro_stats().data_bytes),
            mb(p.hydro_tree.size_bytes()),
            output,
        );
    }
    println!(
        "(paper, unscaled: NJ 414,442/50,853 objects, output 130,756 … DISK1-6 29,088,173/7,413,353, output 17,938,533)"
    );
}

/// Table 3: maximal memory usage of the PQ join — the priority queues
/// (including staged leaf buffers) and the sweep-line structure.
pub fn table3(cfg: &ExperimentConfig) {
    println!("\n== Table 3: PQ memory usage in MB (scale divisor {}) ==", cfg.scale);
    println!(
        "{:<10} {:>16} {:>16} {:>10} {:>14}",
        "Data set", "Priority queue", "Sweep structure", "Total", "% of data"
    );
    for &preset in &cfg.presets {
        let mut p = PreparedWorkload::build(preset, cfg, MachineConfig::machine3());
        let res = p.run_indexed(&PqJoin::default());
        let data_bytes =
            p.workload.road_stats().data_bytes + p.workload.hydro_stats().data_bytes;
        let total = res.memory.priority_queue_bytes + res.memory.sweep_structure_bytes;
        println!(
            "{:<10} {:>16.3} {:>16.3} {:>10.3} {:>13.2}%",
            preset.name(),
            mb(res.memory.priority_queue_bytes as u64),
            mb(res.memory.sweep_structure_bytes as u64),
            mb(total as u64),
            100.0 * total as f64 / data_bytes as f64,
        );
    }
    println!("(paper: PQ total grows from 0.41 MB on NJ to 5.19 MB on DISK1-6, always < 1% of the data)");
}

/// Table 4: pages requested from disk by the two indexed joins, against the
/// lower bound of one request per index node.
pub fn table4(cfg: &ExperimentConfig) {
    println!("\n== Table 4: page requests during joining (scale divisor {}) ==", cfg.scale);
    println!(
        "{:<10} {:>12} {:>12} {:>8} {:>12} {:>8}",
        "Data set", "Lower bound", "PQ total", "PQ avg", "ST total", "ST avg"
    );
    for &preset in &cfg.presets {
        let mut p = PreparedWorkload::build(preset, cfg, MachineConfig::machine3());
        let lower = p.roads_tree.nodes() + p.hydro_tree.nodes();

        let pq = p.run_indexed(&PqJoin::default());
        p.reset();
        let st = p.run_indexed(&StJoin::default());

        println!(
            "{:<10} {:>12} {:>12} {:>8.2} {:>12} {:>8.2}",
            preset.name(),
            lower,
            pq.index_page_requests,
            pq.index_page_requests as f64 / lower as f64,
            st.index_page_requests,
            st.index_page_requests as f64 / lower as f64,
        );
    }
    println!("(paper: PQ always exactly 1.00x the lower bound; ST 1.00x on NJ/NY, 1.14-1.63x on the large sets)");
}

/// Figure 2: estimated (a–c) or observed (d–f) cost of the indexed joins on
/// the three machines.
pub fn fig2(cfg: &ExperimentConfig, observed: bool) {
    let label = if observed { "observed" } else { "estimated" };
    println!("\n== Figure 2 ({label}): PQ vs ST join cost in simulated seconds ==");
    for machine in MachineConfig::all() {
        println!("\n-- {} ({}) --", machine.name, machine.workstation);
        println!(
            "{:<10} {:>5} {:>10} {:>10} {:>10}   {:>5} {:>10} {:>10} {:>10}",
            "Data set", "", "PQ cpu", "PQ io", "PQ total", "", "ST cpu", "ST io", "ST total"
        );
        for &preset in &cfg.presets {
            let mut p = PreparedWorkload::build(preset, cfg, machine.clone());
            let pq = p.run_indexed(&PqJoin::default());
            p.reset();
            let st = p.run_indexed(&StJoin::default());
            let (pq_c, st_c) = if observed {
                (pq.observed_cost(&machine), st.observed_cost(&machine))
            } else {
                (pq.estimated_cost(&machine), st.estimated_cost(&machine))
            };
            println!(
                "{:<10} {:>5} {:>10.2} {:>10.2} {:>10.2}   {:>5} {:>10.2} {:>10.2} {:>10.2}",
                preset.name(),
                "PQ",
                pq_c.cpu_secs,
                pq_c.io_secs,
                pq_c.total_secs(),
                "ST",
                st_c.cpu_secs,
                st_c.io_secs,
                st_c.total_secs(),
            );
        }
    }
    if observed {
        println!("(paper: observed times diverge from the estimates — ST gains from the sequential layout of bulk-loaded trees, most visibly on Machine 3)");
    } else {
        println!("(paper: under the all-random estimate there is no clear winner between PQ and ST)");
    }
}

/// Figure 3: observed cost of all four algorithms on the three machines.
pub fn fig3(cfg: &ExperimentConfig) {
    println!("\n== Figure 3: observed join cost of SJ/PB/PQ/ST in simulated seconds ==");
    for machine in MachineConfig::all() {
        println!(
            "\n-- {} ({}, {:.1} ms avg read) --",
            machine.name, machine.workstation, machine.avg_read_ms
        );
        println!(
            "{:<10} {:>14} {:>14} {:>14} {:>14}",
            "Data set", "SJ (cpu+io)", "PB (cpu+io)", "PQ (cpu+io)", "ST (cpu+io)"
        );
        for &preset in &cfg.presets {
            let mut cells = Vec::new();
            for alg in JoinAlgorithm::all() {
                let mut p = PreparedWorkload::build(preset, cfg, machine.clone());
                let res = p.run_algorithm(alg);
                let c = res.observed_cost(&machine);
                cells.push(format!("{:.1}+{:.1}", c.cpu_secs, c.io_secs));
            }
            println!(
                "{:<10} {:>14} {:>14} {:>14} {:>14}",
                preset.name(),
                cells[0],
                cells[1],
                cells[2],
                cells[3]
            );
        }
    }
    println!("(paper: SSSJ wins almost everywhere on total time despite doing the most I/O, because its I/O is sequential; ST is closest on the slow-CPU Machine 1)");
}

/// Section 6.3: the cost-based decision between indexed and non-indexed
/// execution, on a localized join (hydrography of one "state" against the
/// roads of the whole country).
pub fn crossover(cfg: &ExperimentConfig) {
    println!("\n== Section 6.3: cost-based index/no-index decision ==");
    let machine = MachineConfig::machine3();
    println!(
        "machine 3 crossover fraction (paper's '~60%' under its 10x random/sequential assumption): {:.2}",
        crossover_fraction(&machine)
    );
    println!(
        "machine 1 crossover fraction: {:.2}",
        crossover_fraction(&MachineConfig::machine1())
    );
    let preset = *cfg.presets.last().unwrap_or(&Preset::Disk1);
    println!(
        "\nRoads: full {} data set; hydrography clipped to a shrinking window.",
        preset.name()
    );
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>12} | {:>12} {:>12}",
        "window", "touched", "est idx s", "est sort s", "plan", "PQ(pruned) s", "SSSJ s"
    );
    for window_frac in [1.0f32, 0.6, 0.4, 0.25, 0.1, 0.05] {
        let workload = WorkloadSpec::preset(preset)
            .with_scale(cfg.scale)
            .generate(cfg.seed);
        let region = workload.region;
        let side = region.width() * window_frac.sqrt();
        let window = Rect::from_coords(
            region.lo.x,
            region.lo.y,
            region.lo.x + side,
            region.lo.y + side,
        );
        let clipped: Vec<_> = workload
            .hydro
            .iter()
            .copied()
            .filter(|it| window.contains(&it.rect))
            .collect();
        let mut env = SimEnv::new(machine.clone());
        let (roads_tree, hydro_tree, roads_stream, hydro_stream) = env.unaccounted(|env| {
            (
                RTree::bulk_load(env, &workload.roads).unwrap(),
                RTree::bulk_load(env, &clipped).unwrap(),
                usj_io::ItemStream::from_items(env, &workload.roads).unwrap(),
                usj_io::ItemStream::from_items(env, &clipped).unwrap(),
            )
        });
        let _ = (&roads_stream, &hydro_stream);
        env.device.reset_stats();

        // The builder's Auto planner is the Section 6.3 selector.
        let plan = SpatialQuery::new(
            JoinInput::Indexed(&roads_tree),
            JoinInput::Indexed(&hydro_tree),
        )
        .algorithm(Algo::Auto)
        .plan(&mut env)
        .expect("query plan");
        let est = plan.cost.expect("auto plans carry the cost estimate");

        // Run both strategies to see what the right call was.
        env.device.reset_stats();
        env.cpu = usj_io::CpuCounter::new();
        let pq = PqJoin::default()
            .with_pruning()
            .run(
                &mut env,
                JoinInput::Indexed(&roads_tree),
                JoinInput::Indexed(&hydro_tree),
            )
            .expect("pq");
        let pq_secs = pq.observed_cost(&machine).total_secs();
        env.device.reset_stats();
        env.cpu = usj_io::CpuCounter::new();
        let sssj = SssjJoin::default()
            .run(
                &mut env,
                JoinInput::Indexed(&roads_tree),
                JoinInput::Indexed(&hydro_tree),
            )
            .expect("sssj");
        let sssj_secs = sssj.observed_cost(&machine).total_secs();
        assert_eq!(pq.pairs, sssj.pairs, "both strategies must agree");

        println!(
            "{:>7.0}% {:>9.2} {:>12.2} {:>12.2} {:>12} | {:>12.2} {:>12.2}",
            window_frac * 100.0,
            est.touched_fraction,
            est.indexed_secs,
            est.non_indexed_secs,
            format!("{:?}", est.plan()),
            pq_secs,
            sssj_secs,
        );
    }
    println!("(paper: index-based execution only pays off when the join touches a small fraction of the index)");
}

/// Ablation: Striped-Sweep vs Forward-Sweep inside the sweep-based joins.
pub fn ablation_sweep(cfg: &ExperimentConfig) {
    println!("\n== Ablation: Striped-Sweep vs Forward-Sweep (Sec. 3.1) ==");
    println!(
        "{:<10} {:>14} {:>16} {:>16} {:>8}",
        "Data set", "pairs", "Forward tests", "Striped tests", "ratio"
    );
    for &preset in &cfg.presets {
        let workload = WorkloadSpec::preset(preset)
            .with_scale(cfg.scale)
            .generate(cfg.seed);
        let f = sweep_join::<ForwardSweep, _>(&workload.roads, &workload.hydro, |_, _| {});
        let s = sweep_join::<StripedSweep, _>(&workload.roads, &workload.hydro, |_, _| {});
        assert_eq!(f.pairs, s.pairs);
        println!(
            "{:<10} {:>14} {:>16} {:>16} {:>7.1}x",
            preset.name(),
            f.pairs,
            f.rect_tests,
            s.rect_tests,
            f.rect_tests as f64 / s.rect_tests.max(1) as f64
        );
    }
    println!("(SSSJ paper: Striped-Sweep is 2-5x faster than Forward-Sweep on real data)");
}

/// Ablation: ST page requests as the buffer pool shrinks.
pub fn ablation_buffer(cfg: &ExperimentConfig) {
    println!("\n== Ablation: ST buffer-pool size (Sec. 6.2) ==");
    let preset = *cfg.presets.last().unwrap_or(&Preset::Disk1);
    println!("data set: {}", preset.name());
    println!("{:>12} {:>14} {:>14} {:>10}", "pool", "page requests", "lower bound", "ratio");
    for pool_mb in [22.0f64, 4.0, 1.0, 0.25, 0.0625] {
        let mut p = PreparedWorkload::build(preset, cfg, MachineConfig::machine3());
        let lower = p.roads_tree.nodes() + p.hydro_tree.nodes();
        let res = p.run_indexed(
            &StJoin::default().with_buffer_pool_bytes((pool_mb * 1024.0 * 1024.0) as usize),
        );
        println!(
            "{:>9.2} MB {:>14} {:>14} {:>9.2}x",
            pool_mb,
            res.index_page_requests,
            lower,
            res.index_page_requests as f64 / lower as f64
        );
    }
    println!("(paper: once the trees exceed the pool, every page is requested 1.14-1.63x on average)");
}

/// Ablation: PBSM tile-grid resolution (32x32 vs 128x128).
pub fn ablation_tiles(cfg: &ExperimentConfig) {
    println!("\n== Ablation: PBSM tile grid (Sec. 3.2) ==");
    let preset = *cfg.presets.last().unwrap_or(&Preset::Disk1);
    println!("data set: {}", preset.name());
    println!(
        "{:>8} {:>12} {:>18} {:>14}",
        "tiles", "pairs", "max partition MB", "pages written"
    );
    for tiles in [32usize, 64, 128] {
        let mut p = PreparedWorkload::build(preset, cfg, MachineConfig::machine3());
        let region = p.workload.region;
        let res = p.run_streams(
            &PbsmJoin::default().with_tiles_per_side(tiles).with_region(region),
        );
        println!(
            "{:>5}x{:<3} {:>12} {:>18.3} {:>14}",
            tiles,
            tiles,
            res.pairs,
            mb(res.memory.other_bytes as u64),
            res.io.pages_written
        );
    }
    println!("(paper: 32x32 tiles produced overfull partitions on TIGER data; 128x128 fixed it)");
}

/// Ablation: R-tree packing policy (75 % + 20 % area rule vs 100 % packing).
pub fn ablation_packing(cfg: &ExperimentConfig) {
    println!("\n== Ablation: R-tree packing policy (Sec. 3.3 / 7) ==");
    let preset = *cfg.presets.first().unwrap_or(&Preset::NJ);
    let workload = WorkloadSpec::preset(preset)
        .with_scale(cfg.scale)
        .generate(cfg.seed);
    println!("data set: {}", preset.name());
    println!(
        "{:>14} {:>10} {:>12} {:>16} {:>16}",
        "policy", "nodes", "leaf fill", "ST requests", "PQ requests"
    );
    for (name, bulk_cfg) in [
        ("75% + 20% area", BulkLoadConfig::default()),
        ("fully packed", BulkLoadConfig::fully_packed()),
    ] {
        let mut env = SimEnv::new(MachineConfig::machine3());
        let (rt, ht) = env.unaccounted(|env| {
            (
                bulk_load(env, &workload.roads, bulk_cfg).unwrap(),
                bulk_load(env, &workload.hydro, bulk_cfg).unwrap(),
            )
        });
        env.device.reset_stats();
        let st = StJoin::default()
            .run(&mut env, JoinInput::Indexed(&rt), JoinInput::Indexed(&ht))
            .expect("st");
        env.device.reset_stats();
        env.cpu = usj_io::CpuCounter::new();
        let pq = PqJoin::default()
            .run(&mut env, JoinInput::Indexed(&rt), JoinInput::Indexed(&ht))
            .expect("pq");
        assert_eq!(st.pairs, pq.pairs);
        println!(
            "{:>14} {:>10} {:>11.0}% {:>16} {:>16}",
            name,
            rt.nodes() + ht.nodes(),
            100.0 * rt.stats().avg_leaf_fill,
            st.index_page_requests,
            pq.index_page_requests
        );
    }
    println!("(paper: tightly packed, space-efficient structures perform better, at some risk of overlap)");
}

/// Memory-adaptivity experiment (not in the paper): every algorithm on every
/// preset at 4, 16 and 64 MB internal-memory limits, recording the measured
/// peak, the sweep spill volume and the total I/O. The pair counts must not
/// move — only the I/O may, which is exactly the "runs at any memory size"
/// degradation story of Sections 3.1–3.2.
pub fn low_memory(cfg: &ExperimentConfig) {
    println!(
        "\n== Low-memory sweep: spill I/O vs memory limit (scale divisor {}) ==",
        cfg.scale
    );
    println!(
        "{:<10} {:>6} {:>5} {:>10} {:>10} {:>9} {:>7} {:>10} {:>10}",
        "Data set", "Limit", "Alg", "Pairs", "Peak MB", "Spilled", "Splits", "Pages rd", "Pages wr"
    );
    for &preset in &cfg.presets {
        for limit_mb in [4usize, 16, 64] {
            let mut p = PreparedWorkload::build(preset, cfg, MachineConfig::machine3());
            p.env.set_memory_limit(limit_mb * 1024 * 1024);
            let mut pair_counts = Vec::new();
            for alg in JoinAlgorithm::all() {
                let res = p.run_algorithm(alg);
                assert!(
                    res.memory.peak_bytes <= p.env.memory_limit,
                    "{preset} {alg:?}: measured peak over the limit"
                );
                pair_counts.push(res.pairs);
                println!(
                    "{:<10} {:>4}MB {:>5} {:>10} {:>10.3} {:>9} {:>7} {:>10} {:>10}",
                    preset.name(),
                    limit_mb,
                    alg.short_name(),
                    res.pairs,
                    mb(res.memory.peak_bytes as u64),
                    res.sweep.spilled_items,
                    res.sweep.spill_runs,
                    res.io.pages_read,
                    res.io.pages_written,
                );
                p.reset();
            }
            pair_counts.dedup();
            assert_eq!(pair_counts.len(), 1, "{preset}: algorithms disagree at {limit_mb} MB");
        }
    }
    println!("(the memory governor guarantees Peak <= Limit; shrinking the limit may only add spill/repartition I/O, never change the pairs)");
}

/// Runs every experiment in sequence.
pub fn run_all(cfg: &ExperimentConfig) {
    table2(cfg);
    table3(cfg);
    table4(cfg);
    fig2(cfg, false);
    fig2(cfg, true);
    fig3(cfg);
    crossover(cfg);
    ablation_sweep(cfg);
    ablation_buffer(cfg);
    ablation_tiles(cfg);
    ablation_packing(cfg);
    low_memory(cfg);
    crate::service_exp::service_bench(cfg);
    crate::hotpath::hotpath(cfg);
    crate::live_exp::live_bench(cfg);
    crate::faults_exp::faults_bench(cfg);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The experiments must at least run end-to-end on a tiny configuration;
    /// their numeric claims are covered by the per-crate tests.
    #[test]
    fn all_experiments_run_on_a_tiny_configuration() {
        let cfg = ExperimentConfig {
            scale: 2_000,
            seed: 7,
            presets: vec![Preset::NJ, Preset::NY],
        };
        run_all(&cfg);
    }
}
