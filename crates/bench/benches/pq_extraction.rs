//! Extracting an R-tree in sorted order with the PQ index adapter versus
//! externally sorting the flat file (the two ways PQ/SSSJ can obtain a
//! sorted input).

use std::hint::black_box;
use usj_bench::QuickBench;
use usj_datagen::{Preset, WorkloadSpec};
use usj_io::{extsort, ItemStream, MachineConfig, SimEnv};
use usj_rtree::RTree;

fn main() {
    let workload = WorkloadSpec::preset(Preset::NJ).with_scale(400).generate(42);
    println!("sorted_access ({} road MBRs)", workload.roads.len());
    let harness = QuickBench::new();

    harness.bench("pq_index_adapter", || {
        let mut env = SimEnv::new(MachineConfig::machine3());
        let tree = env.unaccounted(|e| RTree::bulk_load(e, &workload.roads).unwrap());
        let mut ex = usj_core::pq::PqExtractor::new(&mut env, &tree, None);
        let mut n = 0u64;
        while ex.next(&mut env).unwrap().is_some() {
            n += 1;
        }
        black_box(n)
    });

    harness.bench("external_sort", || {
        let mut env = SimEnv::new(MachineConfig::machine3());
        let stream = env.unaccounted(|e| ItemStream::from_items(e, &workload.roads).unwrap());
        let sorted = extsort::external_sort_by_lower_y(&mut env, &stream).unwrap();
        black_box(sorted.len())
    });
}
