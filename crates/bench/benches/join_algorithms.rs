//! Wall-clock comparison of the four join algorithms on one TIGER-like data
//! set (the host-machine analogue of Figure 3).

use std::hint::black_box;
use usj_bench::{ExperimentConfig, PreparedWorkload, QuickBench};
use usj_core::JoinAlgorithm;
use usj_datagen::Preset;
use usj_io::MachineConfig;

fn main() {
    let cfg = ExperimentConfig {
        scale: 400,
        seed: 42,
        presets: vec![Preset::NJ],
    };
    println!("join_algorithms_nj (scale {})", cfg.scale);
    let harness = QuickBench::new();
    for alg in JoinAlgorithm::all() {
        harness.bench(alg.name(), || {
            let mut p = PreparedWorkload::build(Preset::NJ, &cfg, MachineConfig::machine3());
            let res = p.run_algorithm(alg);
            black_box(res.pairs)
        });
    }
}
