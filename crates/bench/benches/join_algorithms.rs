//! Criterion bench: wall-clock comparison of the four join algorithms on one
//! TIGER-like data set (the host-machine analogue of Figure 3).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use usj_bench::{ExperimentConfig, PreparedWorkload};
use usj_core::JoinAlgorithm;
use usj_datagen::Preset;
use usj_io::MachineConfig;

fn bench_join_algorithms(c: &mut Criterion) {
    let cfg = ExperimentConfig {
        scale: 400,
        seed: 42,
        presets: vec![Preset::NJ],
    };
    let mut group = c.benchmark_group("join_algorithms_nj");
    group.sample_size(10);
    for alg in JoinAlgorithm::all() {
        group.bench_function(alg.name(), |b| {
            b.iter(|| {
                let mut p = PreparedWorkload::build(Preset::NJ, &cfg, MachineConfig::machine3());
                let res = p.run_algorithm(alg);
                black_box(res.pairs)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_join_algorithms);
criterion_main!(benches);
