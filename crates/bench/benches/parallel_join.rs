//! Thread-scaling of the parallel partitioned executor: the same sharded
//! PQ join at 1, 2, 4 and 8 worker threads, against the serial baseline.
//!
//! The shard count is held fixed so every configuration does identical
//! work; only the fan-out across workers changes. Expect near-linear
//! scaling up to the physical core count, then a plateau.

use std::hint::black_box;
use usj_bench::QuickBench;
use usj_core::parallel::{HilbertPartitioner, ParallelJoin};
use usj_core::{JoinInput, JoinOperator, PqJoin};
use usj_datagen::{Preset, WorkloadSpec};
use usj_io::{ItemStream, MachineConfig, SimEnv};

fn main() {
    let workload = WorkloadSpec::preset(Preset::NJ).with_scale(50).generate(42);
    let mut env = SimEnv::new(MachineConfig::machine3());
    let (roads, hydro) = env.unaccounted(|e| {
        (
            ItemStream::from_items(e, &workload.roads).unwrap(),
            ItemStream::from_items(e, &workload.hydro).unwrap(),
        )
    });
    println!(
        "parallel_join_nj ({} x {} MBRs, 16 shards, host cores: {})",
        workload.roads.len(),
        workload.hydro.len(),
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
    let harness = QuickBench::new();

    let serial = harness.bench("serial_pq", || {
        let res = PqJoin::default()
            .run(
                &mut env,
                JoinInput::Stream(&roads),
                JoinInput::Stream(&hydro),
            )
            .unwrap();
        black_box(res.pairs)
    });

    let mut baseline = None;
    for threads in [1usize, 2, 4, 8] {
        let join = ParallelJoin::new(PqJoin::default(), HilbertPartitioner::default())
            .with_threads(threads)
            .with_shards(16);
        let report = harness.bench(&format!("parallel_pq_{threads}_threads"), || {
            let res = join
                .run(
                    &mut env,
                    JoinInput::Stream(&roads),
                    JoinInput::Stream(&hydro),
                )
                .unwrap();
            black_box(res.pairs)
        });
        let base = *baseline.get_or_insert(report.median_secs());
        println!(
            "    speedup vs 1 thread: {:.2}x   vs serial PQ: {:.2}x",
            base / report.median_secs(),
            serial.median_secs() / report.median_secs()
        );
    }
}
