//! Hilbert bulk loading under the two packing policies.

use std::hint::black_box;
use usj_bench::QuickBench;
use usj_datagen::{Preset, WorkloadSpec};
use usj_io::{MachineConfig, SimEnv};
use usj_rtree::{bulk::bulk_load, BulkLoadConfig};

fn main() {
    let workload = WorkloadSpec::preset(Preset::NJ).with_scale(400).generate(42);
    println!("rtree_bulk_load ({} MBRs)", workload.roads.len());
    let harness = QuickBench::new();
    for (name, cfg) in [
        ("packed_75_plus_20", BulkLoadConfig::default()),
        ("fully_packed", BulkLoadConfig::fully_packed()),
    ] {
        harness.bench(name, || {
            let mut env = SimEnv::new(MachineConfig::machine3());
            let tree = bulk_load(&mut env, black_box(&workload.roads), cfg).unwrap();
            black_box(tree.nodes())
        });
    }
}
