//! Criterion bench: Hilbert bulk loading under the two packing policies.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use usj_datagen::{Preset, WorkloadSpec};
use usj_io::{MachineConfig, SimEnv};
use usj_rtree::{bulk::bulk_load, BulkLoadConfig};

fn bench_bulk_load(c: &mut Criterion) {
    let workload = WorkloadSpec::preset(Preset::NJ).with_scale(400).generate(42);
    let mut group = c.benchmark_group("rtree_bulk_load");
    group.sample_size(10);
    for (name, cfg) in [
        ("packed_75_plus_20", BulkLoadConfig::default()),
        ("fully_packed", BulkLoadConfig::fully_packed()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut env = SimEnv::new(MachineConfig::machine3());
                let tree = bulk_load(&mut env, black_box(&workload.roads), cfg).unwrap();
                black_box(tree.nodes())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bulk_load);
criterion_main!(benches);
