//! The ST join with the paper's 22 MB buffer pool versus a starved pool
//! (the buffer-pool sensitivity discussed in Section 6.2).

use std::hint::black_box;
use usj_bench::{ExperimentConfig, PreparedWorkload, QuickBench};
use usj_core::StJoin;
use usj_datagen::Preset;
use usj_io::MachineConfig;

fn main() {
    let cfg = ExperimentConfig {
        scale: 400,
        seed: 42,
        presets: vec![Preset::NY],
    };
    println!("st_buffer_pool_ny (scale {})", cfg.scale);
    let harness = QuickBench::new();
    for (name, bytes) in [
        ("pool_22mb", 22usize * 1024 * 1024),
        ("pool_256kb", 256 * 1024),
        ("pool_64kb", 64 * 1024),
    ] {
        harness.bench(name, || {
            let mut p = PreparedWorkload::build(Preset::NY, &cfg, MachineConfig::machine3());
            let res = p.run_indexed(&StJoin::default().with_buffer_pool_bytes(bytes));
            black_box((res.pairs, res.index_page_requests))
        });
    }
}
