//! Criterion bench: the ST join with the paper's 22 MB buffer pool versus a
//! starved pool (the buffer-pool sensitivity discussed in Section 6.2).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use usj_bench::{ExperimentConfig, PreparedWorkload};
use usj_core::StJoin;
use usj_datagen::Preset;
use usj_io::MachineConfig;

fn bench_st_buffer_pool(c: &mut Criterion) {
    let cfg = ExperimentConfig {
        scale: 400,
        seed: 42,
        presets: vec![Preset::NY],
    };
    let mut group = c.benchmark_group("st_buffer_pool_ny");
    group.sample_size(10);
    for (name, bytes) in [
        ("pool_22mb", 22usize * 1024 * 1024),
        ("pool_256kb", 256 * 1024),
        ("pool_64kb", 64 * 1024),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut p = PreparedWorkload::build(Preset::NY, &cfg, MachineConfig::machine3());
                let res = p.run_indexed(&StJoin::default().with_buffer_pool_bytes(bytes));
                black_box((res.pairs, res.index_page_requests))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_st_buffer_pool);
criterion_main!(benches);
