//! Forward-Sweep vs Striped-Sweep on a TIGER-like workload (the
//! factor-2-to-5 claim of Section 3.1), plus the naive pre-optimization
//! list kernel as the wall-clock baseline.

use std::hint::black_box;
use usj_bench::QuickBench;
use usj_datagen::{Preset, WorkloadSpec};
use usj_sweep::{sweep_join, ForwardSweep, ListSweep, StripedSweep};

fn main() {
    let workload = WorkloadSpec::preset(Preset::NJ).with_scale(400).generate(42);
    println!(
        "sweep_structures ({} x {} MBRs)",
        workload.roads.len(),
        workload.hydro.len()
    );
    let harness = QuickBench::new();
    harness.bench("list_sweep_baseline", || {
        let stats = sweep_join::<ListSweep, _>(
            black_box(&workload.roads),
            black_box(&workload.hydro),
            |_, _| {},
        );
        black_box(stats.pairs)
    });
    harness.bench("forward_sweep", || {
        let stats = sweep_join::<ForwardSweep, _>(
            black_box(&workload.roads),
            black_box(&workload.hydro),
            |_, _| {},
        );
        black_box(stats.pairs)
    });
    harness.bench("striped_sweep", || {
        let stats = sweep_join::<StripedSweep, _>(
            black_box(&workload.roads),
            black_box(&workload.hydro),
            |_, _| {},
        );
        black_box(stats.pairs)
    });
}
