//! Criterion bench: Forward-Sweep vs Striped-Sweep on a TIGER-like workload
//! (the factor-2-to-5 claim of Section 3.1).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use usj_datagen::{Preset, WorkloadSpec};
use usj_sweep::{sweep_join, ForwardSweep, StripedSweep};

fn bench_sweep_structures(c: &mut Criterion) {
    let workload = WorkloadSpec::preset(Preset::NJ).with_scale(400).generate(42);
    let mut group = c.benchmark_group("sweep_structures");
    group.sample_size(10);
    group.bench_function("forward_sweep", |b| {
        b.iter(|| {
            let stats = sweep_join::<ForwardSweep, _>(
                black_box(&workload.roads),
                black_box(&workload.hydro),
                |_, _| {},
            );
            black_box(stats.pairs)
        })
    });
    group.bench_function("striped_sweep", |b| {
        b.iter(|| {
            let stats = sweep_join::<StripedSweep, _>(
                black_box(&workload.roads),
                black_box(&workload.hydro),
                |_, _| {},
            );
            black_box(stats.pairs)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sweep_structures);
criterion_main!(benches);
