//! Differential proof that shared-scan batching is invisible to clients.
//!
//! Every test runs the same request batch twice — once with
//! `shared_scans` off (each selection traverses the R-tree on its own) and
//! once with it on (compatible selections coalesce into one traversal fanned
//! through per-query sinks) — and asserts the delivered output is
//! **byte-identical**: the same pairs, in the same per-query order, under
//! `LIMIT` early termination and mid-batch cancellation too. The batched run
//! must also charge strictly less index I/O, which is the whole point.

use std::time::Duration;

use usj_datagen::rng::SmallRng;
use usj_datagen::{Preset, WorkloadSpec};
use usj_geom::{Point, Rect};
use usj_io::{MachineConfig, SimEnv};
use usj_service::{
    Catalog, CancelToken, DatasetId, QueryRequest, QueryStatus, Service, ServiceConfig,
    ServiceReport,
};

/// Builds a service over one registered NJ dataset pair.
fn build_service(
    shared_scans: bool,
    workers: usize,
    scale: u64,
    seed: u64,
) -> (Service, DatasetId, DatasetId, Rect) {
    let w = WorkloadSpec::preset(Preset::NJ).with_scale(scale).generate(seed);
    let mut env = SimEnv::new(MachineConfig::machine3());
    let mut catalog = Catalog::new();
    let (roads, hydro) = env.unaccounted(|env| {
        (
            catalog.register(env, "roads", &w.roads).unwrap(),
            catalog.register(env, "hydro", &w.hydro).unwrap(),
        )
    });
    let service = Service::new(
        env,
        catalog,
        ServiceConfig::default()
            .with_workers(workers)
            .with_shared_scans(shared_scans),
    );
    (service, roads, hydro, w.region)
}

/// A deterministic batch of collecting selections over `region`: windows of
/// wildly different sizes (including empty ones off the region's edge),
/// point stabs, and a sprinkling of `LIMIT`s.
fn selection_batch(region: Rect, roads: DatasetId, seed: u64, n: usize) -> Vec<QueryRequest> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let request = if i % 5 == 4 {
                let x = region.lo.x + rng.gen_f32() * region.width();
                let y = region.lo.y + rng.gen_f32() * region.height();
                QueryRequest::point(roads, Point::new(x, y))
            } else {
                let w = region.width() * rng.gen_range_f32(0.01, 0.6);
                let h = region.height() * rng.gen_range_f32(0.01, 0.6);
                let x = region.lo.x + rng.gen_f32() * region.width();
                let y = region.lo.y + rng.gen_f32() * region.height();
                QueryRequest::window(roads, Rect::from_coords(x, y, x + w, y + h))
            };
            let request = if i % 3 == 0 {
                request.with_limit(1 + (i as u64 * 7) % 40)
            } else {
                request
            };
            request.collecting()
        })
        .collect()
}

/// Asserts the two reports delivered byte-identical output per query.
fn assert_identical_output(serial: &ServiceReport, batched: &ServiceReport) {
    assert_eq!(serial.outcomes.len(), batched.outcomes.len());
    for (s, b) in serial.outcomes.iter().zip(&batched.outcomes) {
        assert_eq!(s.request, b.request);
        assert_eq!(
            s.is_completed(),
            b.is_completed(),
            "request #{} status diverged: {:?} vs {:?}",
            s.request,
            s.status,
            b.status
        );
        assert_eq!(
            s.pairs, b.pairs,
            "request #{}: batched pairs differ from serial",
            s.request
        );
    }
    assert_eq!(serial.stats.pairs, batched.stats.pairs);
}

#[test]
fn batched_selections_are_byte_identical_across_seeds() {
    for seed in [3, 17, 1999] {
        let batch = |svc: &(Service, DatasetId, DatasetId, Rect)| {
            selection_batch(svc.3, svc.1, seed * 31, 24)
        };
        let serial_svc = build_service(false, 1, 700, seed);
        let serial = serial_svc.0.run(batch(&serial_svc));
        let batched_svc = build_service(true, 1, 700, seed);
        let batched = batched_svc.0.run(batch(&batched_svc));

        assert_identical_output(&serial, &batched);
        assert_eq!(serial.stats.shared_scans, 0);
        assert!(
            batched.stats.shared_scans > 0 && batched.stats.coalesced > 0,
            "seed {seed}: a 24-selection single-worker batch must coalesce"
        );
        assert!(
            batched.stats.io.pages_read < serial.stats.io.pages_read,
            "seed {seed}: sharing the traversal must save index I/O \
             ({} vs {} pages)",
            batched.stats.io.pages_read,
            serial.stats.io.pages_read
        );
    }
}

#[test]
fn limit_early_termination_is_identical_under_batching() {
    // Every query carries a tight LIMIT, so each deactivates its slot of
    // the shared traversal early; the delivered prefix must still match the
    // solo traversal exactly, per query.
    let seed = 29;
    let make = |svc: &(Service, DatasetId, DatasetId, Rect)| -> Vec<QueryRequest> {
        let region = svc.3;
        (0..12u64)
            .map(|i| {
                let f = 0.1 + 0.07 * i as f32;
                QueryRequest::window(
                    svc.1,
                    Rect::from_coords(
                        region.lo.x,
                        region.lo.y,
                        region.lo.x + region.width() * f.min(1.0),
                        region.lo.y + region.height() * f.min(1.0),
                    ),
                )
                .with_limit(1 + i * 3)
                .collecting()
            })
            .collect()
    };
    let serial_svc = build_service(false, 1, 700, seed);
    let serial = serial_svc.0.run(make(&serial_svc));
    let batched_svc = build_service(true, 1, 700, seed);
    let batched = batched_svc.0.run(make(&batched_svc));

    assert_identical_output(&serial, &batched);
    assert!(batched.stats.coalesced > 0);
    // The limits actually bit: at least one query delivered exactly its cap.
    let capped = serial
        .outcomes
        .iter()
        .zip((0..12u64).map(|i| 1 + i * 3))
        .filter(|(o, cap)| o.pairs.as_ref().is_some_and(|p| p.len() as u64 == *cap))
        .count();
    assert!(capped > 0, "the test data must make some LIMIT bind");
}

#[test]
fn joins_never_coalesce_and_mixed_batches_stay_identical() {
    let seed = 5;
    let make = |svc: &(Service, DatasetId, DatasetId, Rect)| -> Vec<QueryRequest> {
        let mut requests = selection_batch(svc.3, svc.1, 77, 10);
        // Interleave joins: incompatible with scan sharing, but the batch
        // as a whole must still be answer-identical.
        requests.insert(0, QueryRequest::join(svc.1, svc.2).collecting());
        requests.insert(5, QueryRequest::join(svc.1, svc.2).collecting());
        requests
    };
    let serial_svc = build_service(false, 1, 900, seed);
    let serial = serial_svc.0.run(make(&serial_svc));
    let batched_svc = build_service(true, 1, 900, seed);
    let batched = batched_svc.0.run(make(&batched_svc));

    assert_identical_output(&serial, &batched);
    for idx in [0, 5] {
        assert!(
            !batched.outcomes[idx].stats.coalesced,
            "a join must never ride a shared scan"
        );
    }
}

#[test]
fn mid_batch_cancellation_yields_a_prefix_of_the_solo_answer() {
    // One query in the middle of the batch carries a token that fires from
    // the driving thread while the workers are busy. Wherever the
    // cancellation happens to land — before admission, mid-scan, or after
    // completion — the cancelled query's delivered pairs must be a prefix
    // of its solo answer, and every *other* query must stay byte-identical.
    let seed = 13;
    let (solo_svc, solo_roads, _, region) = build_service(false, 1, 700, seed);
    let everything = Rect::from_coords(
        region.lo.x,
        region.lo.y,
        region.lo.x + region.width(),
        region.lo.y + region.height(),
    );
    let solo = solo_svc.run(vec![QueryRequest::window(solo_roads, everything).collecting()]);
    let full_answer = solo.outcomes[0].pairs.clone().unwrap();
    assert!(!full_answer.is_empty());

    for delay_us in [0u64, 50, 400] {
        let (service, roads, _, _) = build_service(true, 2, 700, seed);
        let token = CancelToken::new();
        let mut requests = selection_batch(region, roads, 101, 12);
        requests.insert(
            6,
            QueryRequest::window(roads, everything)
                .collecting()
                .with_cancel(token.clone()),
        );
        let n = requests.len();
        let ((), report) = service.with_session(|session| {
            for request in requests {
                session.submit(request);
            }
            std::thread::sleep(Duration::from_micros(delay_us));
            token.cancel();
        });
        assert_eq!(report.outcomes.len(), n);

        let cancelled = &report.outcomes[6];
        let delivered = cancelled.pairs.clone().unwrap_or_default();
        assert!(
            delivered.len() <= full_answer.len()
                && delivered == full_answer[..delivered.len()],
            "delay {delay_us}µs: cancelled query's {} pairs are not a prefix \
             of the {}-pair solo answer",
            delivered.len(),
            full_answer.len()
        );
        if matches!(cancelled.status, QueryStatus::Failed(_)) {
            panic!("cancellation must never fail a query: {:?}", cancelled.status);
        }

        // Everyone else is unaffected: byte-identical to the serial run of
        // the same 12-selection batch.
        let reference_svc = build_service(false, 1, 700, seed);
        let reference = reference_svc.0.run(selection_batch(region, reference_svc.1, 101, 12));
        for (i, r) in reference.outcomes.iter().enumerate() {
            let b = &report.outcomes[if i < 6 { i } else { i + 1 }];
            assert_eq!(r.pairs, b.pairs, "bystander query #{i} diverged (delay {delay_us}µs)");
        }
    }
}
