//! End-to-end observability contract of the service layer.
//!
//! Three guarantees, each proved differentially:
//!
//! 1. **Tracing is invisible to execution**: the same request batch with
//!    tracing on and off delivers byte-identical pair sets, charged I/O and
//!    peak memory. Tracing may only *observe*.
//! 2. **Traces are complete**: a traced streaming/mixed-join run under
//!    background maintenance yields a span tree with the admission wait,
//!    the per-operator execute phases (probe, fix-up, spill marks) and the
//!    background flush/compaction spans — and the tree exports to a
//!    balanced Chrome trace-event document.
//! 3. **Traces are deterministic under a virtual clock**: with a
//!    [`VirtualClock`] installed, measured waits are exact and two
//!    identical single-worker runs produce identical trace shapes.

use std::sync::Arc;

use usj_geom::{Item, Rect, ITEM_BYTES};
use usj_io::{MachineConfig, SimEnv};
use usj_service::{
    Catalog, ChromeTrace, LiveConfig, LiveId, QueryRequest, Service, ServiceConfig, ServiceReport,
    VirtualClock,
};

fn grid(n: u32, cell: f32, offset: f32, id_base: u32) -> Vec<Item> {
    (0..n * n)
        .map(|i| {
            let x = (i % n) as f32 * cell + offset;
            let y = (i / n) as f32 * cell + offset;
            Item::new(Rect::from_coords(x, y, x + cell * 1.4, y + cell * 1.4), id_base + i)
        })
        .collect()
}

/// A service with one frozen dataset plus two fragmented live datasets
/// (small thresholds, chunked appends — flushes and compactions genuinely
/// run during setup).
fn live_service(config: ServiceConfig) -> (Service, LiveId, LiveId, usj_service::DatasetId) {
    let a = grid(12, 4.0, 0.0, 0);
    let b = grid(12, 4.0, 1.5, 100_000);
    let mut env = SimEnv::new(MachineConfig::machine3());
    let mut catalog = Catalog::new();
    let frozen = env.unaccounted(|env| catalog.register(env, "frozen", &b).unwrap());
    let service = Service::new(env, catalog, config);
    let live_config = LiveConfig {
        flush_threshold_bytes: 40 * ITEM_BYTES,
        compact_after_deltas: 2,
    };
    let la = service.register_live("live_a", &a[..60], live_config).unwrap();
    let lb = service.register_live("live_b", &b[..30], live_config).unwrap();
    for chunk in a[60..].chunks(37) {
        service.append_live("live_a", chunk).unwrap();
    }
    for chunk in b[30..].chunks(53) {
        service.append_live("live_b", chunk).unwrap();
    }
    (service, la, lb, frozen)
}

fn join_batch(la: LiveId, lb: LiveId, frozen: usj_service::DatasetId) -> Vec<QueryRequest> {
    vec![
        QueryRequest::streaming_join(la, lb).collecting(),
        QueryRequest::mixed_join(la, frozen).collecting(),
        QueryRequest::streaming_join(la, lb).with_limit(9).collecting(),
    ]
}

/// Pairs, charged read/write page counts and measured peak of one outcome.
type Fingerprint = (Option<Vec<(u32, u32)>>, u64, u64, usize);

/// The per-outcome fields that must not move when tracing flips on.
fn execution_fingerprint(report: &ServiceReport) -> Vec<Fingerprint> {
    report
        .outcomes
        .iter()
        .map(|o| {
            let r = o.result().expect("all queries complete in this suite");
            (o.pairs.clone(), r.io.pages_read, r.io.pages_written, r.memory.peak_bytes)
        })
        .collect()
}

#[test]
fn tracing_is_byte_invisible_to_execution() {
    let (plain_svc, la, lb, frozen) = live_service(ServiceConfig::default().with_workers(1));
    let plain = plain_svc.run(join_batch(la, lb, frozen));

    let (traced_svc, la, lb, frozen) = live_service(ServiceConfig::default().with_workers(1));
    traced_svc.set_tracing(true);
    let traced = traced_svc.run(join_batch(la, lb, frozen));

    assert_eq!(execution_fingerprint(&plain), execution_fingerprint(&traced));
    assert_eq!(plain.stats.replay_digest(), traced.stats.replay_digest());
    assert!(plain.outcomes.iter().all(|o| o.stats.trace.is_none()));
    assert!(traced.outcomes.iter().all(|o| o.stats.trace.is_some()));
}

#[test]
fn traced_joins_under_background_maintenance_yield_full_span_trees() {
    let (service, la, lb, frozen) = live_service(
        ServiceConfig::default()
            .with_workers(2)
            .with_background_maintenance(true),
    );
    service.set_tracing(true);
    // Traced appends so background flush/compaction spans land in the
    // maintenance ring; quiesce forces the backlog to actually drain.
    let extra = grid(6, 4.0, 7.0, 500_000);
    for chunk in extra.chunks(23) {
        service.append_live("live_a", chunk).unwrap();
    }
    service.quiesce_live("live_a").unwrap();

    let report = service.run(join_batch(la, lb, frozen));
    assert_eq!(report.stats.completed, 3);

    let mut chrome = ChromeTrace::new();
    chrome.add_thread(0, "maintenance");
    for outcome in &report.outcomes {
        let trace = outcome.stats.trace.as_ref().expect("tracing was on");
        // The scheduler wraps every execution under one `query` root with
        // the synthesised admission wait beside the recorded execute tree.
        assert_eq!(trace.roots.len(), 1, "shape: {}", trace.shape());
        assert_eq!(trace.roots[0].name, "query");
        assert!(trace.find("admission.wait").is_some(), "shape: {}", trace.shape());
        let execute = trace.find("execute").expect("recorded execute root");
        assert!(
            execute.find("stream.probe").is_some(),
            "operator phases missing: {}",
            trace.shape()
        );
        assert!(
            execute.io.pages_read > 0,
            "execute span carries the query's charged I/O"
        );
        let seq = outcome.stats.admission_seq.expect("admitted") + 1;
        chrome.add_thread(seq, "query");
        chrome.add_trace(seq, trace);
    }

    let maint = service.drain_background_trace();
    assert!(
        maint.find("live.flush").is_some(),
        "background maintenance must record flush spans: {}",
        maint.shape()
    );
    assert!(
        maint.find("live.compaction").is_some(),
        "compact_after_deltas=2 under chunked appends must compact: {}",
        maint.shape()
    );
    chrome.add_trace(0, &maint);

    let doc = chrome.finish();
    assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    assert!(doc.contains("\"name\": \"admission.wait\""));
    assert!(doc.contains("\"name\": \"live.flush\""));
}

#[test]
fn virtual_clock_makes_waits_and_trace_shapes_deterministic() {
    let run_once = || {
        let (service, la, lb, frozen) = live_service(ServiceConfig::default().with_workers(1));
        service.set_clock(Arc::new(VirtualClock::new()));
        service.set_tracing(true);
        let report = service.run(join_batch(la, lb, frozen));
        assert_eq!(report.stats.completed, 3);
        // The virtual clock never advances, so every measured wait and
        // latency is exactly zero — no host-timer noise.
        for outcome in &report.outcomes {
            assert_eq!(outcome.stats.queue_wait.as_micros(), 0);
            assert_eq!(outcome.stats.latency.as_micros(), 0);
        }
        report
            .outcomes
            .iter()
            .map(|o| o.stats.trace.as_ref().unwrap().shape())
            .collect::<Vec<String>>()
    };
    let first = run_once();
    let second = run_once();
    assert_eq!(first, second, "identical runs must produce identical trace shapes");
    assert!(first[0].starts_with("query(admission.wait,execute("), "{}", first[0]);
}

#[test]
fn metrics_snapshot_reports_admission_queue_and_maintenance_activity() {
    let (service, la, lb, frozen) = live_service(ServiceConfig::default().with_workers(2));
    let report = service.run(join_batch(la, lb, frozen));
    assert_eq!(report.stats.completed, 3);

    let snap = service.metrics_snapshot();
    assert_eq!(snap.counter("queries.submitted"), Some(3));
    assert_eq!(snap.counter("queries.completed"), Some(3));
    assert_eq!(snap.counter("admission.grants"), Some(3));
    assert!(snap.gauge("queue.depth") == Some(0), "drained batch leaves no queue");
    assert!(snap.gauge("queue.depth.peak").unwrap_or(0) >= 1);
    assert!(snap.gauge("live.backlog").unwrap_or(-1) >= 0);
    // Inline maintenance ran during the chunked appends.
    assert!(snap.counter("maintenance.flushes").unwrap_or(0) > 0);
    let waits = snap.histogram("queue.wait_us").expect("wait histogram");
    assert_eq!(waits.count, 3);
    let latency = snap.histogram("query.latency_us").expect("latency histogram");
    assert_eq!(latency.count, 3);
    assert!(latency.p50 <= latency.p95 && latency.p95 <= latency.p99);

    // The JSON dump is balanced and self-describing.
    let json = snap.to_json(2);
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert!(json.contains("queries.submitted"));
}
