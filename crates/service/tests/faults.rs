//! Chaos contract of the hardened service: deterministic fault injection
//! at the device layer must never corrupt answers, leak admission budget,
//! or take the service down.
//!
//! * **Transient faults are absorbed**: with retry-with-backoff enabled, a
//!   fault-plagued run delivers byte-identical pair sets to a fault-free
//!   one, and the retries are visible in the metrics.
//! * **Panics are isolated**: an injected panic deep inside an operator
//!   fails only its query (typed [`ServiceError::WorkerPanicked`]); the
//!   worker, the queue and later queries keep working.
//! * **No reservation leaks**: after any mix of failed, panicked,
//!   cancelled, deadline-exceeded and timed-out queries, the admission
//!   gauge reads zero and a full-budget query still admits.
//! * **Deadlines and admission timeouts are deterministic** under a
//!   [`VirtualClock`], including the exact replayed backoff schedule.

use std::sync::Arc;

use usj_geom::{Item, Rect};
use usj_io::{FaultConfig, MachineConfig, SimEnv};
use usj_service::{
    CancelToken, Catalog, Clock, QueryRequest, QueryStatus, Service, ServiceConfig, ServiceError,
    VirtualClock,
};

fn grid(n: u32, cell: f32, offset: f32, id_base: u32) -> Vec<Item> {
    (0..n * n)
        .map(|i| {
            let x = (i % n) as f32 * cell + offset;
            let y = (i / n) as f32 * cell + offset;
            Item::new(Rect::from_coords(x, y, x + cell * 1.4, y + cell * 1.4), id_base + i)
        })
        .collect()
}

fn service_over(config: ServiceConfig) -> (Service, usj_service::DatasetId, usj_service::DatasetId)
{
    let a = grid(14, 4.0, 0.0, 0);
    let b = grid(14, 4.0, 1.5, 100_000);
    let mut env = SimEnv::new(MachineConfig::machine3());
    let mut catalog = Catalog::new();
    let ia = env.unaccounted(|env| catalog.register(env, "a", &a).unwrap());
    let ib = env.unaccounted(|env| catalog.register(env, "b", &b).unwrap());
    (Service::new(env, catalog, config), ia, ib)
}

fn join_batch(ia: usj_service::DatasetId, ib: usj_service::DatasetId) -> Vec<QueryRequest> {
    vec![
        QueryRequest::join(ia, ib).collecting(),
        QueryRequest::window(ia, Rect::from_coords(0.0, 0.0, 30.0, 30.0)).collecting(),
        QueryRequest::join(ib, ia).collecting(),
        QueryRequest::window(ib, Rect::from_coords(10.0, 10.0, 40.0, 40.0)).collecting(),
    ]
}

fn pair_sets(report: &usj_service::ServiceReport) -> Vec<Option<Vec<(u32, u32)>>> {
    report
        .outcomes
        .iter()
        .map(|o| {
            o.pairs.clone().map(|mut p| {
                p.sort_unstable();
                p
            })
        })
        .collect()
}

#[test]
fn transient_faults_are_retried_to_byte_identical_answers() {
    let (clean_svc, ia, ib) = service_over(ServiceConfig::default().with_workers(1));
    let clean = clean_svc.run(join_batch(ia, ib));
    assert_eq!(clean.stats.completed, 4);

    let faults = FaultConfig {
        read_fault: 0.05,
        write_fault: 0.05,
        ..FaultConfig::quiet(0x5eed_f417)
    };
    let (chaos_svc, ia, ib) = service_over(
        ServiceConfig::default()
            .with_workers(1)
            .with_fault_plan(faults)
            .with_fault_retries(16, 100),
    );
    chaos_svc.set_clock(Arc::new(VirtualClock::new()));
    let chaos = chaos_svc.run(join_batch(ia, ib));

    assert_eq!(chaos.stats.completed, 4, "retries must absorb transient faults");
    assert_eq!(pair_sets(&clean), pair_sets(&chaos), "answers must be byte-identical");

    let snap = chaos_svc.metrics_snapshot();
    assert!(
        snap.counter("faults.injected").unwrap_or(0) > 0,
        "a 5% fault rate over the batch's device ops must fire"
    );
    assert_eq!(
        snap.counter("faults.injected"),
        snap.counter("faults.retries"),
        "every injected transient fault was absorbed by exactly one retry"
    );
}

#[test]
fn fault_schedules_and_backoff_replay_exactly_from_the_seed() {
    let run_once = || {
        let faults = FaultConfig {
            read_fault: 0.2,
            write_fault: 0.1,
            ..FaultConfig::quiet(0xd15c_0bee)
        };
        let (service, ia, ib) = service_over(
            ServiceConfig::default()
                .with_workers(1)
                .with_fault_plan(faults)
                .with_fault_retries(16, 250),
        );
        let clock = Arc::new(VirtualClock::new());
        service.set_clock(Arc::clone(&clock) as Arc<dyn usj_service::Clock>);
        let report = service.run(join_batch(ia, ib));
        assert_eq!(report.stats.completed, 4);
        let snap = service.metrics_snapshot();
        (
            pair_sets(&report),
            snap.counter("faults.injected"),
            snap.counter("faults.retries"),
            clock.now_us(),
        )
    };
    let first = run_once();
    let second = run_once();
    assert!(first.1.unwrap_or(0) > 0, "seed 0xd15c_0bee must inject at these rates");
    assert_eq!(first, second, "same seed ⇒ same faults, same retries, same total backoff");
}

#[test]
fn injected_panics_fail_only_their_query_and_the_service_survives() {
    let faults = FaultConfig {
        panic: 0.02,
        max_faults: 2,
        ..FaultConfig::quiet(0xdead_9090)
    };
    let (service, ia, ib) = service_over(
        ServiceConfig::default().with_workers(2).with_fault_plan(faults),
    );
    let report = service.run(join_batch(ia, ib));
    let panicked: Vec<usize> = report
        .outcomes
        .iter()
        .enumerate()
        .filter(|(_, o)| matches!(o.status, QueryStatus::Failed(ServiceError::WorkerPanicked(_))))
        .map(|(k, _)| k)
        .collect();
    let completed = report
        .outcomes
        .iter()
        .filter(|o| matches!(o.status, QueryStatus::Completed(_)))
        .count();
    assert!(!panicked.is_empty(), "seeded plan must inject at least one panic");
    assert_eq!(panicked.len() + completed, 4, "every query resolves, none hangs or vanishes");

    let snap = service.metrics_snapshot();
    assert_eq!(snap.counter("faults.panics"), Some(panicked.len() as u64));

    // The service keeps answering: the same batch resubmitted draws the
    // *same* derived fault streams (replay determinism), so the same
    // queries panic again and the rest complete — and those answers match
    // a fault-free service byte for byte.
    let after = service.run(join_batch(ia, ib));
    let statuses = |r: &usj_service::ServiceReport| {
        r.outcomes
            .iter()
            .map(|o| matches!(o.status, QueryStatus::Completed(_)))
            .collect::<Vec<bool>>()
    };
    assert_eq!(statuses(&report), statuses(&after), "fault schedules must replay exactly");
    let (clean_svc, ca, cb) = service_over(ServiceConfig::default().with_workers(1));
    let clean = clean_svc.run(join_batch(ca, cb));
    for (k, (chaotic, reference)) in pair_sets(&after).iter().zip(pair_sets(&clean)).enumerate() {
        if statuses(&after)[k] {
            assert_eq!(chaotic, &reference, "surviving query {k} must answer exactly");
        }
    }
}

#[test]
fn no_failure_mode_leaks_admission_gauge_bytes() {
    // Every per-query fault plan here panics on the first device operation,
    // so every executed query dies mid-operator with live allocations on
    // its gauge — the hardest case for reservation cleanup. Alongside them:
    // a pre-cancelled query and one already past its deadline.
    let faults = FaultConfig {
        panic: 1.0,
        ..FaultConfig::quiet(7)
    };
    let (service, ia, ib) =
        service_over(ServiceConfig::default().with_workers(2).with_fault_plan(faults));

    let cancelled_token = CancelToken::new();
    cancelled_token.cancel();
    let ((), report) = service.with_session(|session| {
        session.submit(QueryRequest::join(ia, ib));
        session.submit(QueryRequest::window(ia, Rect::from_coords(0.0, 0.0, 9.0, 9.0)));
        session.submit(QueryRequest::join(ib, ia).with_cancel(cancelled_token.clone()));
        session.submit(QueryRequest::join(ia, ib).with_deadline_us(0));
        // Wait for every submitted query to resolve, then read the gauge:
        // any failure path that kept its reservation shows up here.
        while session.queue_depth() > 0 || session.running() > 0 {
            std::thread::yield_now();
        }
        assert_eq!(
            session.admission_bytes_in_use(),
            0,
            "a failure path leaked admission gauge bytes"
        );
        // And the next query still admits with full headroom: its outcome
        // below must show the complete estimate granted, which is only
        // possible if the failures released every reserved byte.
        session.submit(QueryRequest::join(ia, ib));
    });
    let statuses: Vec<&QueryStatus> = report.outcomes.iter().map(|o| &o.status).collect();
    assert!(matches!(statuses[2], QueryStatus::Cancelled(_)), "{statuses:?}");
    assert!(matches!(
        statuses[3],
        QueryStatus::Failed(ServiceError::DeadlineExceeded { deadline_us: 0, .. })
    ));
    for k in [0, 1, 4] {
        assert!(
            matches!(statuses[k], QueryStatus::Failed(ServiceError::WorkerPanicked(_))),
            "query {k}: {statuses:?}"
        );
    }
    // The post-chaos probe was granted its full admission estimate.
    let probe = &report.outcomes[4];
    assert_eq!(
        probe.stats.admitted_bytes,
        service.admission_estimate(&QueryRequest::join(ia, ib)),
        "probe admitted with less than its full estimate — leaked gauge bytes"
    );
    let snap = service.metrics_snapshot();
    assert_eq!(snap.counter("faults.panics"), Some(3));
}

#[test]
fn an_expired_deadline_is_a_typed_deterministic_failure() {
    let (service, ia, ib) = service_over(ServiceConfig::default().with_workers(1));
    service.set_clock(Arc::new(VirtualClock::new()));
    let report = service.run(vec![
        QueryRequest::join(ia, ib).with_deadline_us(0).collecting(),
        QueryRequest::join(ia, ib).collecting(),
    ]);
    assert!(
        matches!(
            report.outcomes[0].status,
            QueryStatus::Failed(ServiceError::DeadlineExceeded { deadline_us: 0, .. })
        ),
        "virtual clock at 0 ⇒ deadline 0 has already passed: {:?}",
        report.outcomes[0].status
    );
    assert!(report.outcomes[0].pairs.is_none());
    assert!(matches!(report.outcomes[1].status, QueryStatus::Completed(_)));
    let snap = service.metrics_snapshot();
    assert!(snap.counter("faults.deadline_exceeded").unwrap_or(0) >= 1);
}

#[test]
fn an_inadmissible_request_times_out_of_the_queue_instead_of_wedging_it() {
    // A zero-byte admission budget can never grant a reservation (estimates
    // clamp to at least one byte), so the request is deferred forever; with
    // an admission timeout of zero, the very first deferred scan converts
    // it into a typed AdmissionTimeout instead of a memory error.
    let (service, ia, ib) = service_over(
        ServiceConfig::default()
            .with_workers(1)
            .with_memory_limit(0)
            .with_admission_timeout_us(0),
    );
    service.set_clock(Arc::new(VirtualClock::new()));
    let report = service.run(vec![QueryRequest::join(ia, ib)]);
    assert!(
        matches!(
            report.outcomes[0].status,
            QueryStatus::Failed(ServiceError::AdmissionTimeout { timeout_us: 0, .. })
        ),
        "{:?}",
        report.outcomes[0].status
    );
    let snap = service.metrics_snapshot();
    assert_eq!(snap.counter("faults.admission_timeouts"), Some(1));
    assert_eq!(snap.counter("queries.failed"), Some(1));
}

#[test]
fn maintenance_survives_storage_faults_and_loses_no_records() {
    // Transient write faults on the *storage* environment hit flushes and
    // compactions; the retry path must absorb them and the live dataset
    // must end up with exactly the appended records.
    let faults = FaultConfig {
        write_fault: 0.05,
        ..FaultConfig::quiet(0xf1a5_4b5e)
    };
    let (service, _ia, _ib) = service_over(
        ServiceConfig::default()
            .with_workers(1)
            .with_fault_plan(faults)
            .with_fault_retries(10, 50),
    );
    service.set_clock(Arc::new(VirtualClock::new()));
    let items = grid(12, 4.0, 0.0, 500_000);
    let live = service
        .register_live(
            "chaotic",
            &items[..40],
            usj_service::LiveConfig {
                flush_threshold_bytes: 24 * usj_geom::ITEM_BYTES,
                compact_after_deltas: 2,
            },
        )
        .unwrap();
    for chunk in items[40..].chunks(31) {
        service.append_live("chaotic", chunk).unwrap();
    }
    service.quiesce_live("chaotic").unwrap();

    let report = service.run(vec![QueryRequest::live_window(
        live,
        Rect::from_coords(-1000.0, -1000.0, 1000.0, 1000.0),
    )
    .collecting()]);
    let outcome = &report.outcomes[0];
    let pairs = outcome.pairs.as_ref().expect("collecting");
    assert!(
        matches!(outcome.status, QueryStatus::Completed(_)),
        "{:?}",
        outcome.status
    );
    assert_eq!(pairs.len(), items.len(), "maintenance under faults lost or duplicated records");
}
