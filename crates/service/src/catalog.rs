//! The dataset catalog: register once, query many.
//!
//! [`Catalog::register`] prepares a relation the way a production spatial
//! store would at load time, paying the preparation cost exactly once:
//!
//! 1. the records are externally sorted by lower y-coordinate and the sorted
//!    run is **persisted** on the device (SSSJ/PQ never re-sort),
//! 2. a packed R-tree is bulk-loaded over the sorted run and persisted (ST
//!    and the selection queries never rebuild; PQ's pruned traversal and the
//!    §6.3 cost estimator read its directory),
//! 3. a [`GridHistogram`] summary is recorded so selectivity estimation
//!    works without ever rescanning the data.
//!
//! A registered [`Dataset`] hands joins a [`JoinInput::Cataloged`], the
//! input variant every algorithm recognises as "already prepared". The whole
//! catalog serializes into an on-device directory ([`Catalog::save`]) and
//! reopens from it ([`Catalog::load`]) — including from a forked environment
//! layered over a snapshot of this device, which is how service workers see
//! the catalog.

use std::collections::HashMap;

use usj_core::{CatalogedInput, GridHistogram, JoinInput};
use usj_geom::{Item, Rect};
use usj_io::{extsort, IoSimError, ItemStream, PageId, SimEnv, PAGE_SIZE};
use usj_rtree::RTree;

use crate::{Result, ServiceError};

/// Default resolution of the per-dataset histogram summary (64×64 cells,
/// matching the parallel executor's shard grid).
pub const DEFAULT_HISTOGRAM_CELLS: usize = 64;

/// Magic number of the on-device catalog directory ("USJCAT" + version 01).
const CATALOG_MAGIC: u64 = 0x0155_534a_4341_5401;

/// Identifier of a dataset within one [`Catalog`] (its registration order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DatasetId(pub u32);

/// One registered relation: both prepared representations plus summaries.
#[derive(Debug, Clone)]
pub struct Dataset {
    name: String,
    sorted: ItemStream,
    tree: RTree,
    histogram: GridHistogram,
    bbox: Rect,
}

impl Dataset {
    /// The registration name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of records in the dataset.
    pub fn len(&self) -> u64 {
        self.sorted.len()
    }

    /// Returns `true` if the dataset holds no records.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Bounding box recorded at registration.
    pub fn bbox(&self) -> Rect {
        self.bbox
    }

    /// The persisted y-sorted run.
    pub fn sorted(&self) -> &ItemStream {
        &self.sorted
    }

    /// The persisted packed R-tree.
    pub fn tree(&self) -> &RTree {
        &self.tree
    }

    /// The grid-histogram summary recorded at registration.
    pub fn histogram(&self) -> &GridHistogram {
        &self.histogram
    }

    /// The dataset as a join input: every algorithm skips its preparation
    /// I/O (no re-sort, no index build, no bounding-box scan).
    pub fn input(&self) -> JoinInput<'_> {
        JoinInput::Cataloged(CatalogedInput {
            tree: &self.tree,
            sorted: &self.sorted,
            bbox: self.bbox,
        })
    }

    fn encode_into(&self, buf: &mut Vec<u8>) {
        let name = self.name.as_bytes();
        buf.extend_from_slice(&(name.len() as u16).to_le_bytes());
        buf.extend_from_slice(name);
        for v in [self.bbox.lo.x, self.bbox.lo.y, self.bbox.hi.x, self.bbox.hi.y] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        buf.extend_from_slice(&self.sorted.encode());
        buf.extend_from_slice(&self.tree.encode_meta());
        buf.extend_from_slice(&self.histogram.encode());
    }

    fn decode_from(buf: &[u8]) -> Result<(Dataset, usize)> {
        let truncated = || ServiceError::Io(IoSimError::CorruptRecord("catalog entry truncated"));
        let name_len = u16::from_le_bytes(
            buf.get(0..2).ok_or_else(truncated)?.try_into().expect("len"),
        ) as usize;
        let name_bytes = buf.get(2..2 + name_len).ok_or_else(truncated)?;
        let name = String::from_utf8(name_bytes.to_vec())
            .map_err(|_| ServiceError::Io(IoSimError::CorruptRecord("catalog name not UTF-8")))?;
        let mut off = 2 + name_len;
        let mut f32_at = || -> Result<f32> {
            let v = f32::from_le_bytes(
                buf.get(off..off + 4).ok_or_else(truncated)?.try_into().expect("len"),
            );
            off += 4;
            Ok(v)
        };
        let bbox = Rect::from_coords(f32_at()?, f32_at()?, f32_at()?, f32_at()?);
        let (sorted, n) = ItemStream::decode(buf.get(off..).ok_or_else(truncated)?)?;
        off += n;
        let (tree, n) = RTree::decode_meta(buf.get(off..).ok_or_else(truncated)?)?;
        off += n;
        let (histogram, n) = GridHistogram::decode(buf.get(off..).ok_or_else(truncated)?)?;
        off += n;
        Ok((
            Dataset {
                name,
                sorted,
                tree,
                histogram,
                bbox,
            },
            off,
        ))
    }
}

/// The dataset catalog of one simulated device.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    datasets: Vec<Dataset>,
    by_name: HashMap<String, u32>,
    histogram_cells: usize,
}

impl Catalog {
    /// Creates an empty catalog with the default histogram resolution.
    pub fn new() -> Self {
        Catalog {
            datasets: Vec::new(),
            by_name: HashMap::new(),
            histogram_cells: DEFAULT_HISTOGRAM_CELLS,
        }
    }

    /// Sets the per-dataset histogram resolution (builder style; applies to
    /// subsequent registrations). Clamped to the serializable range, so a
    /// saved catalog can always be loaded back.
    pub fn with_histogram_cells(mut self, cells_per_side: usize) -> Self {
        self.histogram_cells =
            cells_per_side.clamp(1, usj_core::histogram::MAX_HISTOGRAM_CELLS);
        self
    }

    /// Number of registered datasets.
    pub fn len(&self) -> usize {
        self.datasets.len()
    }

    /// Returns `true` if no dataset is registered.
    pub fn is_empty(&self) -> bool {
        self.datasets.is_empty()
    }

    /// Iterates over the registered datasets in registration order.
    pub fn datasets(&self) -> impl Iterator<Item = &Dataset> {
        self.datasets.iter()
    }

    /// Looks a dataset up by identifier.
    pub fn get(&self, id: DatasetId) -> Option<&Dataset> {
        self.datasets.get(id.0 as usize)
    }

    /// Looks a dataset up by name.
    pub fn lookup(&self, name: &str) -> Option<(DatasetId, &Dataset)> {
        let idx = *self.by_name.get(name)?;
        Some((DatasetId(idx), &self.datasets[idx as usize]))
    }

    /// Registers an in-memory slice of records under `name`, materialising
    /// it as a stream first (convenience wrapper around
    /// [`register_stream`](Catalog::register_stream)).
    pub fn register(&mut self, env: &mut SimEnv, name: &str, items: &[Item]) -> Result<DatasetId> {
        if self.by_name.contains_key(name) {
            return Err(ServiceError::DuplicateDataset(name.to_string()));
        }
        let stream = ItemStream::from_items(env, items)?;
        self.register_stream(env, name, &stream)
    }

    /// Registers a stream of records under `name`: sorts it, bulk-loads the
    /// R-tree, records the histogram summary, and persists all three.
    ///
    /// Registration I/O is charged to `env` like any other work — it is the
    /// one-time preparation cost the registered queries then never pay
    /// again. Callers that want it excluded from their measurements can wrap
    /// the call in [`SimEnv::unaccounted`].
    pub fn register_stream(
        &mut self,
        env: &mut SimEnv,
        name: &str,
        stream: &ItemStream,
    ) -> Result<DatasetId> {
        if self.by_name.contains_key(name) {
            return Err(ServiceError::DuplicateDataset(name.to_string()));
        }
        let (sorted, stats) =
            extsort::external_sort_by_key(env, stream, Item::sweep_key, Item::cmp_by_lower_y)?;
        let bbox = if stats.bbox.is_empty() {
            Rect::from_coords(0.0, 0.0, 1.0, 1.0)
        } else {
            stats.bbox
        };
        let tree = RTree::bulk_load_stream(env, &sorted)?;
        let histogram = GridHistogram::from_stream(env, bbox, self.histogram_cells, &sorted)?;
        let id = DatasetId(self.datasets.len() as u32);
        self.by_name.insert(name.to_string(), id.0);
        self.datasets.push(Dataset {
            name: name.to_string(),
            sorted,
            tree,
            histogram,
            bbox,
        });
        Ok(id)
    }

    /// Adopts an already-prepared dataset — a persisted y-sorted run and
    /// its bulk-loaded R-tree — building only the missing histogram
    /// summary.
    ///
    /// This is the promotion path from the live layer: a quiesced
    /// [`LiveDataset`](usj_live::LiveDataset) is exactly a sorted base run
    /// plus a packed R-tree (compaction runs the same pipeline as
    /// [`register_stream`](Catalog::register_stream)), so promotion only
    /// pays for the histogram scan instead of re-sorting and re-indexing.
    pub fn adopt(
        &mut self,
        env: &mut SimEnv,
        name: &str,
        sorted: ItemStream,
        tree: RTree,
        bbox: Rect,
    ) -> Result<DatasetId> {
        if self.by_name.contains_key(name) {
            return Err(ServiceError::DuplicateDataset(name.to_string()));
        }
        let histogram = GridHistogram::from_stream(env, bbox, self.histogram_cells, &sorted)?;
        let id = DatasetId(self.datasets.len() as u32);
        self.by_name.insert(name.to_string(), id.0);
        self.datasets.push(Dataset {
            name: name.to_string(),
            sorted,
            tree,
            histogram,
            bbox,
        });
        Ok(id)
    }

    /// Serializes the catalog directory onto the device, returning the root
    /// page of the saved directory.
    ///
    /// Only *descriptors* are written (names, bounding boxes, stream extent
    /// lists, tree handles, histograms) — the dataset pages themselves
    /// already live on the device.
    pub fn save(&self, env: &mut SimEnv) -> Result<PageId> {
        let mut blob = Vec::new();
        blob.extend_from_slice(&(self.datasets.len() as u32).to_le_bytes());
        blob.extend_from_slice(&(self.histogram_cells as u32).to_le_bytes());
        for ds in &self.datasets {
            ds.encode_into(&mut blob);
        }
        let pages = (blob.len() as u64).div_ceil(PAGE_SIZE as u64).max(1);
        let root = env.device.allocate(1 + pages);
        let mut header = Vec::with_capacity(16);
        header.extend_from_slice(&CATALOG_MAGIC.to_le_bytes());
        header.extend_from_slice(&(blob.len() as u64).to_le_bytes());
        env.device.write_page(root, &header)?;
        env.device.write_pages(root + 1, pages, &blob)?;
        Ok(root)
    }

    /// Reopens a catalog from the directory saved at `root` — typically on a
    /// forked environment layered over a snapshot of the device the catalog
    /// was built on.
    pub fn load(env: &mut SimEnv, root: PageId) -> Result<Catalog> {
        let header = env.device.read_page(root)?;
        let magic = u64::from_le_bytes(header[0..8].try_into().expect("page size"));
        if magic != CATALOG_MAGIC {
            return Err(ServiceError::Io(IoSimError::CorruptRecord(
                "not a catalog directory page",
            )));
        }
        let blob_len = u64::from_le_bytes(header[8..16].try_into().expect("page size")) as usize;
        let pages = (blob_len as u64).div_ceil(PAGE_SIZE as u64).max(1);
        let blob = env.device.read_pages(root + 1, pages)?;
        let blob = &blob[..blob_len];
        let truncated =
            || ServiceError::Io(IoSimError::CorruptRecord("catalog directory truncated"));
        let count = u32::from_le_bytes(blob.get(0..4).ok_or_else(truncated)?.try_into().expect("len"));
        let histogram_cells =
            u32::from_le_bytes(blob.get(4..8).ok_or_else(truncated)?.try_into().expect("len"))
                as usize;
        let mut catalog = Catalog::new().with_histogram_cells(histogram_cells);
        let mut off = 8;
        for _ in 0..count {
            let (ds, n) = Dataset::decode_from(blob.get(off..).ok_or_else(truncated)?)?;
            off += n;
            catalog.by_name.insert(ds.name.clone(), catalog.datasets.len() as u32);
            catalog.datasets.push(ds);
        }
        Ok(catalog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_core::{Algo, SpatialQuery};
    use usj_io::MachineConfig;

    fn env() -> SimEnv {
        SimEnv::new(MachineConfig::machine3())
    }

    fn grid(n: u32, cell: f32, offset: f32, id_base: u32) -> Vec<Item> {
        let mut out = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let x = offset + i as f32 * cell;
                let y = offset + j as f32 * cell;
                out.push(Item::new(
                    Rect::from_coords(x, y, x + cell * 0.7, y + cell * 0.7),
                    id_base + i * n + j,
                ));
            }
        }
        out
    }

    #[test]
    fn registration_prepares_both_representations() {
        let mut env = env();
        let items = grid(20, 3.0, 0.0, 0);
        let mut catalog = Catalog::new();
        let id = catalog.register(&mut env, "grid", &items).unwrap();
        let ds = catalog.get(id).unwrap();
        assert_eq!(ds.len(), 400);
        assert_eq!(ds.name(), "grid");
        assert_eq!(ds.tree().num_items(), 400);
        assert_eq!(ds.histogram().total(), 400);
        for it in &items {
            assert!(ds.bbox().contains(&it.rect));
        }
        // The sorted run really is sorted.
        let sorted = ds.sorted().read_all(&mut env).unwrap();
        assert!(sorted.windows(2).all(|w| w[0].rect.lo.y <= w[1].rect.lo.y));
        // Lookup by name resolves to the same dataset.
        let (lid, lds) = catalog.lookup("grid").unwrap();
        assert_eq!(lid, id);
        assert_eq!(lds.len(), 400);
        assert!(catalog.lookup("nope").is_none());
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut env = env();
        let items = grid(4, 2.0, 0.0, 0);
        let mut catalog = Catalog::new();
        catalog.register(&mut env, "a", &items).unwrap();
        assert!(matches!(
            catalog.register(&mut env, "a", &items),
            Err(ServiceError::DuplicateDataset(_))
        ));
    }

    #[test]
    fn cataloged_queries_agree_with_uncataloged_ones() {
        let mut env = env();
        let a = grid(18, 4.0, 0.0, 0);
        let b = grid(18, 4.0, 1.5, 100_000);
        let mut catalog = Catalog::new();
        let ia = catalog.register(&mut env, "a", &a).unwrap();
        let ib = catalog.register(&mut env, "b", &b).unwrap();
        let expected: u64 = a
            .iter()
            .map(|x| b.iter().filter(|y| x.rect.intersects(&y.rect)).count() as u64)
            .sum();
        for algo in [Algo::Auto, Algo::Sssj, Algo::Pbsm, Algo::Pq, Algo::St] {
            let left = catalog.get(ia).unwrap().input();
            let right = catalog.get(ib).unwrap().input();
            let n = SpatialQuery::new(left, right)
                .algorithm(algo)
                .count(&mut env)
                .unwrap();
            assert_eq!(n, expected, "{algo:?}");
        }
    }

    #[test]
    fn save_load_roundtrip_reopens_every_dataset() {
        let mut env = env();
        let a = grid(15, 3.0, 0.0, 0);
        let b = grid(9, 5.0, 2.0, 50_000);
        let mut catalog = Catalog::new();
        catalog.register(&mut env, "alpha", &a).unwrap();
        catalog.register(&mut env, "beta", &b).unwrap();
        let root = catalog.save(&mut env).unwrap();

        // Reopen on a forked worker environment over a device snapshot —
        // exactly how service workers see the catalog.
        let base = env.device.snapshot();
        let mut worker = env.fork_with_base(base);
        let reopened = Catalog::load(&mut worker, root).unwrap();
        assert_eq!(reopened.len(), 2);
        let (_, ds) = reopened.lookup("alpha").unwrap();
        assert_eq!(ds.len(), a.len() as u64);
        assert_eq!(ds.bbox(), catalog.lookup("alpha").unwrap().1.bbox());
        assert_eq!(
            ds.sorted().read_all(&mut worker).unwrap(),
            catalog.lookup("alpha").unwrap().1.sorted().read_all(&mut env).unwrap()
        );
        // The reopened tree traverses the snapshot pages.
        let items = ds
            .tree()
            .window_query(&mut worker, &ds.bbox())
            .unwrap();
        assert_eq!(items.len(), a.len());
        // Garbage roots are rejected.
        let junk = worker.device.allocate(1);
        assert!(Catalog::load(&mut worker, junk).is_err());
    }

    #[test]
    fn empty_dataset_registers_cleanly() {
        let mut env = env();
        let mut catalog = Catalog::new();
        let id = catalog.register(&mut env, "empty", &[]).unwrap();
        let ds = catalog.get(id).unwrap();
        assert!(ds.is_empty());
        assert!(!ds.bbox().is_empty());
        let n = SpatialQuery::new(ds.input(), ds.input())
            .algorithm(Algo::Sssj)
            .count(&mut env)
            .unwrap();
        assert_eq!(n, 0);
    }
}
