//! The query service: a stored-dataset catalog and a concurrent query
//! executor with gauge-based admission control.
//!
//! Everything below the service joins *ephemeral* inputs: the ST path
//! bulk-loads a throwaway R-tree per query, and every sort-based algorithm
//! re-sorts its input from scratch. A system serving many queries over the
//! same data wants the opposite — datasets registered **once**, their
//! prepared representations persisted on the simulated device, and many
//! concurrent queries admitted against one shared memory budget. This crate
//! provides the three layers:
//!
//! * [`catalog`] — [`Catalog::register`] persists a dataset as a y-sorted
//!   [`ItemStream`](usj_io::ItemStream) run *plus* a bulk-loaded R-tree
//!   *plus* a [`GridHistogram`](usj_core::GridHistogram) summary. Registered
//!   datasets feed joins through
//!   [`JoinInput::Cataloged`](usj_core::JoinInput::Cataloged), which skips
//!   re-sorting, index building and bounding-box scans; the whole catalog
//!   serializes onto the device ([`Catalog::save`] / [`Catalog::load`]).
//! * [`service`] — a [`Service`] owns a worker pool and a FIFO+priority
//!   admission queue. Each [`QueryRequest`] (a join over two cataloged
//!   datasets, or an index-backed window/point selection over one) is
//!   admitted only when the shared admission gauge has headroom for its
//!   memory estimate, then runs on a forked
//!   [`SimEnv`](usj_io::SimEnv) layered over a read-only snapshot of the
//!   catalog device — its own I/O accounting, its own hard per-query memory
//!   budget. Results stream through the existing
//!   [`PairSink`](usj_core::PairSink)/`ControlFlow` machinery with `LIMIT`
//!   and [`CancelToken`] cancellation, and per-query plus service-wide
//!   [`ServiceStats`] roll up like
//!   [`JoinResult`](usj_core::JoinResult).
//! * [`plan_cache`] — completed [`QueryPlan`](usj_core::QueryPlan)s are
//!   memoized by query fingerprint, so repeat queries skip the planner's
//!   cost-estimation I/O (the `Algo::Auto` directory probes). The cache
//!   also remembers each fingerprint's measured memory-gauge peak from
//!   completed runs, which replaces the size-based admission heuristic on
//!   repeat workloads ([`Service::admission_estimate`] adds a 25% safety
//!   margin) — so a service that has seen a query before admits it more
//!   densely the next time.
//!
//! The service also fronts the *live* layer ([`usj_live`]):
//! [`Service::register_live`] / [`Service::append_live`] mutate LSM-style
//! datasets between sessions, and [`QueryRequest::streaming_join`] runs the
//! incremental symmetric sweep over generation snapshots taken at execution
//! time — first pairs stream out before either input is fully read.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod catalog;
pub mod plan_cache;
pub mod service;

// Property-based tests on the vendored `usj_proptest` harness; opt-in
// behind the `proptest` feature like the rest of the workspace.
#[cfg(all(test, feature = "proptest"))]
mod proptests;

pub use catalog::{Catalog, Dataset, DatasetId};
pub use plan_cache::{PlanCache, PlanKey};
pub use service::{
    CancelToken, JoinSpec, QueryKind, QueryOutcome, QueryRequest, QueryStats, QueryStatus,
    Service, ServiceConfig, ServiceReport, ServiceStats, Session,
};
pub use usj_live::{LiveConfig, LiveId};
pub use usj_obs::{
    ChromeTrace, Clock, HostClock, MetricsSnapshot, QueryTrace, TraceSpan, VirtualClock,
};

use std::fmt;

use usj_io::IoSimError;

/// Errors produced by the catalog and the query service.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// An error bubbled up from the simulated I/O substrate (including
    /// `MemoryLimitExceeded` when a query outgrows its admitted budget).
    Io(IoSimError),
    /// A dataset name was registered twice.
    DuplicateDataset(String),
    /// A query referred to a dataset the catalog does not hold.
    UnknownDataset(String),
    /// Promotion was attempted on a live dataset still holding unpersisted
    /// or uncompacted tiers (memtable, frozen batches or delta runs).
    NotQuiesced(String),
    /// Durable state failed an integrity check (bubbled up from the live
    /// layer's manifest/checksum verification).
    Corrupted(String),
    /// A worker thread panicked while executing the query. The panic was
    /// contained: the worker kept running, the query's admission
    /// reservation was released, and the payload is carried here.
    WorkerPanicked(String),
    /// The query missed its [`deadline`](service::QueryRequest::deadline_us)
    /// — either while waiting in the admission queue or mid-execution.
    DeadlineExceeded {
        /// The deadline, microseconds on the service clock.
        deadline_us: u64,
        /// When the deadline was noticed, on the same clock.
        now_us: u64,
    },
    /// The query waited longer than the configured admission timeout
    /// without getting a reservation
    /// ([`ServiceConfig::with_admission_timeout_us`](service::ServiceConfig::with_admission_timeout_us)).
    AdmissionTimeout {
        /// The configured timeout, microseconds.
        timeout_us: u64,
        /// How long the query actually waited before giving up.
        waited_us: u64,
    },
    /// A shared lock was poisoned by a panic in another thread and the
    /// protected state cannot be trusted on this path. The payload names
    /// the lock.
    LockPoisoned(&'static str),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "i/o: {e}"),
            ServiceError::DuplicateDataset(name) => {
                write!(f, "dataset '{name}' is already registered")
            }
            ServiceError::UnknownDataset(name) => write!(f, "unknown dataset '{name}'"),
            ServiceError::NotQuiesced(name) => {
                write!(f, "live dataset '{name}' is not quiesced (pending tiers remain)")
            }
            ServiceError::Corrupted(what) => write!(f, "durable state corrupted: {what}"),
            ServiceError::WorkerPanicked(payload) => {
                write!(f, "worker panicked while executing the query: {payload}")
            }
            ServiceError::DeadlineExceeded { deadline_us, now_us } => {
                write!(f, "deadline exceeded: deadline {deadline_us}us, noticed at {now_us}us")
            }
            ServiceError::AdmissionTimeout { timeout_us, waited_us } => {
                write!(f, "admission timed out after {waited_us}us (timeout {timeout_us}us)")
            }
            ServiceError::LockPoisoned(which) => {
                write!(f, "lock '{which}' poisoned by a panic in another thread")
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IoSimError> for ServiceError {
    fn from(e: IoSimError) -> Self {
        ServiceError::Io(e)
    }
}

impl From<usj_live::LiveError> for ServiceError {
    fn from(e: usj_live::LiveError) -> Self {
        match e {
            usj_live::LiveError::Io(io) => ServiceError::Io(io),
            usj_live::LiveError::DuplicateDataset(name) => ServiceError::DuplicateDataset(name),
            usj_live::LiveError::UnknownDataset(name) => ServiceError::UnknownDataset(name),
            usj_live::LiveError::NotQuiesced(name) => ServiceError::NotQuiesced(name),
            usj_live::LiveError::Corrupted(what) => ServiceError::Corrupted(what),
        }
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ServiceError>;
