//! The plan cache: memoized [`QueryPlan`]s for repeat queries.
//!
//! Planning a query is not free: resolving `Algo::Auto` prices both
//! strategies (reading index directory levels), and planning a parallel
//! execution builds a shard map. A service seeing the same query shape many
//! times — the normal case for a catalog-backed store — should pay that
//! once. The cache keys on the *query fingerprint* ([`PlanKey`]): dataset
//! identifiers, algorithm, predicate and execution strategy. Hit plans are
//! replayed through
//! [`SpatialQuery::execute_planned`](usj_core::SpatialQuery::execute_planned),
//! which skips the re-estimation entirely.
//!
//! The fingerprint deliberately excludes the per-query memory budget and
//! `LIMIT`/cancellation state: those affect how far execution gets, not
//! which plan is correct.

use std::collections::HashMap;

use usj_core::{Algo, Execution, PartitionStrategy, Predicate, QueryPlan};

use crate::catalog::DatasetId;
use crate::service::JoinSpec;

/// The fingerprint of a join query: everything that determines its plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    left: u32,
    right: u32,
    algo: u8,
    predicate_kind: u8,
    epsilon_bits: u32,
    execution_kind: u8,
    partitioner: u8,
    threads: u64,
    shards: u64,
}

impl PlanKey {
    /// Fingerprints a join specification.
    pub fn new(spec: &JoinSpec) -> Self {
        let algo = match spec.algo {
            Algo::Auto => 0,
            Algo::Sssj => 1,
            Algo::Pbsm => 2,
            Algo::Pq => 3,
            Algo::St => 4,
        };
        let (predicate_kind, epsilon_bits) = match spec.predicate {
            Predicate::Intersects => (0, 0),
            Predicate::WithinDistance(eps) => (1, eps.max(0.0).to_bits()),
            Predicate::Contains => (2, 0),
        };
        let (execution_kind, partitioner, threads, shards) = match spec.execution {
            Execution::Serial => (0, 0, 0, 0),
            Execution::Parallel {
                partitioner,
                threads,
                shards,
            } => (
                1,
                match partitioner {
                    PartitionStrategy::Hilbert => 0,
                    PartitionStrategy::Tile => 1,
                },
                threads as u64,
                shards as u64,
            ),
        };
        PlanKey {
            left: spec.left.0,
            right: spec.right.0,
            algo,
            predicate_kind,
            epsilon_bits,
            execution_kind,
            partitioner,
            threads,
            shards,
        }
    }

    /// The left dataset of the fingerprinted query.
    pub fn left(&self) -> DatasetId {
        DatasetId(self.left)
    }

    /// The right dataset of the fingerprinted query.
    pub fn right(&self) -> DatasetId {
        DatasetId(self.right)
    }
}

/// A fingerprint-keyed store of completed query plans.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: HashMap<PlanKey, QueryPlan>,
    /// Highest memory-gauge peak observed for a completed, *untruncated* run
    /// of each fingerprint — feeds admission estimation on repeat workloads.
    peaks: HashMap<PlanKey, usize>,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Looks a plan up, counting a hit or a miss.
    pub fn lookup(&mut self, key: &PlanKey) -> Option<QueryPlan> {
        match self.plans.get(key) {
            Some(plan) => {
                self.hits += 1;
                Some(plan.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores the plan computed for `key`.
    pub fn insert(&mut self, key: PlanKey, plan: QueryPlan) {
        self.plans.insert(key, plan);
    }

    /// Records the memory-gauge peak of a completed run of `key`,
    /// max-merged with any earlier observation. Callers must only report
    /// runs that executed to completion with no `LIMIT` and no
    /// cancellation — a truncated run's peak under-states the query's real
    /// footprint and would poison admission estimates.
    pub fn record_peak(&mut self, key: PlanKey, peak_bytes: usize) {
        let slot = self.peaks.entry(key).or_insert(0);
        *slot = (*slot).max(peak_bytes);
    }

    /// The largest observed completed-run peak for `key`, if any.
    pub fn peak(&self, key: &PlanKey) -> Option<usize> {
        self.peaks.get(key).copied()
    }

    /// Number of distinct plans held.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Returns `true` if no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Lookups satisfied from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to plan from scratch.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(left: u32, right: u32, algo: Algo) -> JoinSpec {
        JoinSpec {
            left: DatasetId(left),
            right: DatasetId(right),
            algo,
            predicate: Predicate::Intersects,
            execution: Execution::Serial,
        }
    }

    #[test]
    fn fingerprints_distinguish_query_shapes() {
        let a = PlanKey::new(&spec(0, 1, Algo::Auto));
        let b = PlanKey::new(&spec(0, 1, Algo::Auto));
        assert_eq!(a, b);
        assert_ne!(a, PlanKey::new(&spec(1, 0, Algo::Auto)));
        assert_ne!(a, PlanKey::new(&spec(0, 1, Algo::Sssj)));
        let mut eps = spec(0, 1, Algo::Pq);
        eps.predicate = Predicate::WithinDistance(0.5);
        let mut eps2 = eps;
        eps2.predicate = Predicate::WithinDistance(0.25);
        assert_ne!(PlanKey::new(&eps), PlanKey::new(&eps2));
        let mut par = spec(0, 1, Algo::Pq);
        par.execution = Execution::parallel();
        assert_ne!(a, PlanKey::new(&par));
        assert_eq!(a.left(), DatasetId(0));
        assert_eq!(a.right(), DatasetId(1));
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let mut cache = PlanCache::new();
        let key = PlanKey::new(&spec(0, 1, Algo::Sssj));
        assert!(cache.lookup(&key).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        // A real QueryPlan requires an environment; structural behaviour is
        // covered by the service tests — here only the bookkeeping.
        assert!(cache.is_empty());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn peaks_max_merge_per_fingerprint() {
        let mut cache = PlanCache::new();
        let key = PlanKey::new(&spec(0, 1, Algo::Sssj));
        assert_eq!(cache.peak(&key), None);
        cache.record_peak(key, 1000);
        cache.record_peak(key, 400); // smaller later run never shrinks it
        assert_eq!(cache.peak(&key), Some(1000));
        cache.record_peak(key, 2500);
        assert_eq!(cache.peak(&key), Some(2500));
        let other = PlanKey::new(&spec(1, 0, Algo::Sssj));
        assert_eq!(cache.peak(&other), None);
    }
}
