//! Property-based tests for the admission queue on the in-tree
//! `usj_proptest` harness: scheduling invariants that must hold for *any*
//! request mix, worker count and memory limit —
//!
//! * grants never exceed the shared limit (individually or concurrently),
//! * overtaking is bounded by `max_overtakes` (no starvation),
//! * admission within one priority class is FIFO when nothing overtakes,
//! * every submitted request resolves to exactly one outcome,
//! * promoting a live dataset into the frozen catalog is indistinguishable
//!   from registering the same items directly.

use usj_geom::{Item, Rect};
use usj_io::{MachineConfig, SimEnv};
use usj_proptest::{forall, Gen};

use crate::service::{QueryRequest, Service, ServiceConfig};
use crate::Catalog;

/// A small fixed dataset pair: the properties under test are scheduling
/// invariants, so the *requests* vary per case, not the data.
fn tiny_service(config: ServiceConfig) -> (Service, crate::DatasetId, crate::DatasetId) {
    let mut env = SimEnv::new(MachineConfig::machine3());
    let items: Vec<Item> = (0..64)
        .map(|i| {
            let (x, y) = ((i % 8) as f32 * 5.0, (i / 8) as f32 * 5.0);
            Item::new(Rect::from_coords(x, y, x + 3.0, y + 3.0), i)
        })
        .collect();
    let mut catalog = Catalog::new();
    let a = catalog.register(&mut env, "a", &items).unwrap();
    let b = catalog.register(&mut env, "b", &items).unwrap();
    (Service::new(env, catalog, config), a, b)
}

/// An arbitrary request mix: joins and selections with random priorities,
/// random explicit budgets (some deliberately larger than any limit we
/// draw), limits and pre-fired cancellations.
fn arb_requests(
    g: &mut Gen,
    a: crate::DatasetId,
    b: crate::DatasetId,
    max_len: usize,
) -> Vec<QueryRequest> {
    g.vec(1, max_len, |g| {
        let mut request = if g.bool_with(0.4) {
            QueryRequest::join(a, b).with_algorithm(usj_core::Algo::Sssj)
        } else {
            let x = g.f32_in(0.0, 30.0);
            let y = g.f32_in(0.0, 30.0);
            QueryRequest::window(a, Rect::from_coords(x, y, x + g.f32_in(1.0, 15.0), y + 5.0))
        };
        if g.bool_with(0.5) {
            request = request.with_priority(g.u32_in(0, 4) as u8);
        }
        if g.bool_with(0.4) {
            request = request.with_memory_budget(g.usize_in(256 * 1024, 8 * 1024 * 1024));
        }
        if g.bool_with(0.3) {
            request = request.with_limit(g.u64_in(0, 20));
        }
        if g.bool_with(0.15) {
            let token = crate::CancelToken::new();
            token.cancel();
            request = request.with_cancel(token);
        }
        request
    })
}

#[test]
fn grants_never_exceed_the_shared_limit_under_random_mixes() {
    forall!(16, |g| {
        let limit = g.usize_in(1024 * 1024, 12 * 1024 * 1024);
        let workers = g.usize_in(1, 5);
        let config = ServiceConfig::default()
            .with_workers(workers)
            .with_memory_limit(limit)
            .with_max_overtakes(g.u64_in(0, 6))
            .with_shared_scans(g.bool_with(0.5));
        let (service, a, b) = tiny_service(config);
        let requests = arb_requests(g, a, b, 24);
        let n = requests.len();
        let report = service.run(requests);

        // Every request resolves to exactly one outcome, in order.
        assert_eq!(report.outcomes.len(), n);
        for (i, outcome) in report.outcomes.iter().enumerate() {
            assert_eq!(outcome.request, i);
        }
        assert_eq!(
            report.stats.completed + report.stats.failed + report.stats.cancelled,
            n as u64
        );
        // No single grant, nor the concurrent sum of grants, exceeds the
        // shared limit; measured peaks stay within each grant.
        assert!(report.stats.peak_admitted_bytes <= limit);
        for outcome in &report.outcomes {
            assert!(outcome.stats.admitted_bytes <= limit);
            if outcome.stats.admitted_bytes > 0 {
                if let Some(result) = outcome.result() {
                    assert!(
                        result.memory.peak_bytes <= outcome.stats.admitted_bytes,
                        "request #{}: peak {} exceeds its grant {}",
                        outcome.request,
                        result.memory.peak_bytes,
                        outcome.stats.admitted_bytes
                    );
                }
            }
        }
    });
}

#[test]
fn overtaking_is_bounded_so_nothing_starves() {
    forall!(16, |g| {
        let max_overtakes = g.u64_in(0, 5);
        let config = ServiceConfig::default()
            .with_workers(g.usize_in(2, 5))
            .with_memory_limit(g.usize_in(2 * 1024 * 1024, 6 * 1024 * 1024))
            .with_max_overtakes(max_overtakes);
        let (service, a, b) = tiny_service(config);
        let requests = arb_requests(g, a, b, 24);
        let report = service.run(requests);
        for outcome in &report.outcomes {
            assert!(
                outcome.stats.overtaken <= max_overtakes,
                "request #{} overtaken {} > max {}",
                outcome.request,
                outcome.stats.overtaken,
                max_overtakes
            );
        }
    });
}

#[test]
fn admission_is_fifo_within_a_priority_class_without_overtaking() {
    forall!(16, |g| {
        // One worker, equal budgets, overtaking disabled: admission order
        // must be exactly (priority desc, submission asc) over the
        // requests that were admitted.
        let config = ServiceConfig::default()
            .with_workers(1)
            .with_memory_limit(8 * 1024 * 1024)
            .with_max_overtakes(0);
        let (service, a, b) = tiny_service(config);
        let n = g.usize_in(2, 16);
        let requests: Vec<QueryRequest> = (0..n)
            .map(|_| {
                let mut r = if g.bool_with(0.5) {
                    QueryRequest::join(a, b).with_algorithm(usj_core::Algo::Sssj)
                } else {
                    QueryRequest::window(a, Rect::from_coords(0.0, 0.0, 20.0, 20.0))
                };
                if g.bool_with(0.6) {
                    r = r.with_priority(g.u32_in(0, 3) as u8);
                }
                r.with_memory_budget(1024 * 1024)
            })
            .collect();
        let priorities: Vec<u8> = requests.iter().map(|r| r.priority).collect();
        let report = service.run(requests);
        let mut admitted: Vec<(u64, u8, usize)> = report
            .outcomes
            .iter()
            .filter_map(|o| o.stats.admission_seq.map(|s| (s, priorities[o.request], o.request)))
            .collect();
        admitted.sort_unstable();
        for pair in admitted.windows(2) {
            let (_, p1, i1) = pair[0];
            let (_, p2, i2) = pair[1];
            assert!(
                p1 > p2 || (p1 == p2 && i1 < i2),
                "admission order violated: #{i1} (priority {p1}) before #{i2} (priority {p2})"
            );
        }
    });
}

#[test]
fn promotion_roundtrip_is_indistinguishable_from_fresh_registration() {
    forall!(8, |g| {
        // A random item set, grown through live ingestion with a random
        // history (split point, chunk sizes, maintenance mode, thresholds),
        // then promoted into the frozen catalog. Every query answer must be
        // identical to a catalog that registered the same items directly —
        // promotion may not lose, duplicate or distort anything, and the
        // histogram it builds must drive the same planner decisions.
        let n = g.usize_in(40, 160);
        let items: Vec<Item> = (0..n as u32)
            .map(|i| {
                let x = g.f32_in(0.0, 80.0);
                let y = g.f32_in(0.0, 80.0);
                Item::new(
                    Rect::from_coords(x, y, x + g.f32_in(0.2, 9.0), y + g.f32_in(0.2, 9.0)),
                    i,
                )
            })
            .collect();
        let peer: Vec<Item> = (0..48u32)
            .map(|i| {
                let (x, y) = ((i % 8) as f32 * 9.0, (i / 8) as f32 * 11.0);
                Item::new(Rect::from_coords(x, y, x + 7.0, y + 8.0), 500_000 + i)
            })
            .collect();

        // Grown path: part of the items as the registration base, the rest
        // appended in random chunks; random maintenance mode; promote.
        let mut env = SimEnv::new(MachineConfig::machine3());
        let mut catalog = Catalog::new();
        let peer_grown = catalog.register(&mut env, "peer", &peer).unwrap();
        let mut service = Service::new(
            env,
            catalog,
            ServiceConfig::default()
                .with_workers(2)
                .with_background_maintenance(g.bool_with(0.5)),
        );
        let split = g.usize_in(1, n);
        let config = crate::LiveConfig {
            flush_threshold_bytes: g.usize_in(8, 64) * usj_geom::ITEM_BYTES,
            compact_after_deltas: g.usize_in(0, 4),
        };
        service.register_live("grown", &items[..split], config).unwrap();
        let mut rest = &items[split..];
        while !rest.is_empty() {
            let take = g.usize_in(1, rest.len() + 1).min(rest.len());
            service.append_live("grown", &rest[..take]).unwrap();
            rest = &rest[take..];
        }
        let promoted = service.promote_live("grown").unwrap();

        // Oracle path: the same set registered directly (promotion sorts by
        // sweep key, so identity is set-level, not order-level).
        let mut env2 = SimEnv::new(MachineConfig::machine3());
        let mut catalog2 = Catalog::new();
        let peer_fresh = catalog2.register(&mut env2, "peer", &peer).unwrap();
        let fresh = catalog2.register(&mut env2, "fresh", &items).unwrap();
        let oracle = Service::new(env2, catalog2, ServiceConfig::default().with_workers(2));

        let wx = g.f32_in(-5.0, 60.0);
        let wy = g.f32_in(-5.0, 60.0);
        let window = Rect::from_coords(wx, wy, wx + g.f32_in(2.0, 40.0), wy + g.f32_in(2.0, 40.0));
        let requests = |ds: crate::DatasetId, peer: crate::DatasetId| {
            vec![
                QueryRequest::join(ds, peer)
                    .with_algorithm(usj_core::Algo::Sssj)
                    .collecting(),
                QueryRequest::join(ds, peer).collecting(), // Algo::Auto → planner on the histogram
                QueryRequest::window(ds, window).collecting(),
            ]
        };
        let got = service.run(requests(promoted, peer_grown));
        let want = oracle.run(requests(fresh, peer_fresh));
        for k in 0..3 {
            let mut g_pairs = got.outcomes[k].pairs.clone().expect("promoted query collected");
            let mut w_pairs = want.outcomes[k].pairs.clone().expect("oracle query collected");
            g_pairs.sort_unstable();
            w_pairs.sort_unstable();
            assert_eq!(g_pairs, w_pairs, "query #{k} diverged after promotion");
        }
        // Histogram parity: same cells, same totals — the summary the live
        // side never maintained was rebuilt faithfully at promotion.
        let gh = service.catalog().get(promoted).unwrap().histogram();
        let wh = oracle.catalog().get(fresh).unwrap().histogram();
        assert_eq!(gh.total(), wh.total(), "histogram totals diverged");
    });
}
