//! Property-based tests for the admission queue on the in-tree
//! `usj_proptest` harness: scheduling invariants that must hold for *any*
//! request mix, worker count and memory limit —
//!
//! * grants never exceed the shared limit (individually or concurrently),
//! * overtaking is bounded by `max_overtakes` (no starvation),
//! * admission within one priority class is FIFO when nothing overtakes,
//! * every submitted request resolves to exactly one outcome.

use usj_geom::{Item, Rect};
use usj_io::{MachineConfig, SimEnv};
use usj_proptest::{forall, Gen};

use crate::service::{QueryRequest, Service, ServiceConfig};
use crate::Catalog;

/// A small fixed dataset pair: the properties under test are scheduling
/// invariants, so the *requests* vary per case, not the data.
fn tiny_service(config: ServiceConfig) -> (Service, crate::DatasetId, crate::DatasetId) {
    let mut env = SimEnv::new(MachineConfig::machine3());
    let items: Vec<Item> = (0..64)
        .map(|i| {
            let (x, y) = ((i % 8) as f32 * 5.0, (i / 8) as f32 * 5.0);
            Item::new(Rect::from_coords(x, y, x + 3.0, y + 3.0), i)
        })
        .collect();
    let mut catalog = Catalog::new();
    let a = catalog.register(&mut env, "a", &items).unwrap();
    let b = catalog.register(&mut env, "b", &items).unwrap();
    (Service::new(env, catalog, config), a, b)
}

/// An arbitrary request mix: joins and selections with random priorities,
/// random explicit budgets (some deliberately larger than any limit we
/// draw), limits and pre-fired cancellations.
fn arb_requests(
    g: &mut Gen,
    a: crate::DatasetId,
    b: crate::DatasetId,
    max_len: usize,
) -> Vec<QueryRequest> {
    g.vec(1, max_len, |g| {
        let mut request = if g.bool_with(0.4) {
            QueryRequest::join(a, b).with_algorithm(usj_core::Algo::Sssj)
        } else {
            let x = g.f32_in(0.0, 30.0);
            let y = g.f32_in(0.0, 30.0);
            QueryRequest::window(a, Rect::from_coords(x, y, x + g.f32_in(1.0, 15.0), y + 5.0))
        };
        if g.bool_with(0.5) {
            request = request.with_priority(g.u32_in(0, 4) as u8);
        }
        if g.bool_with(0.4) {
            request = request.with_memory_budget(g.usize_in(256 * 1024, 8 * 1024 * 1024));
        }
        if g.bool_with(0.3) {
            request = request.with_limit(g.u64_in(0, 20));
        }
        if g.bool_with(0.15) {
            let token = crate::CancelToken::new();
            token.cancel();
            request = request.with_cancel(token);
        }
        request
    })
}

#[test]
fn grants_never_exceed_the_shared_limit_under_random_mixes() {
    forall!(16, |g| {
        let limit = g.usize_in(1024 * 1024, 12 * 1024 * 1024);
        let workers = g.usize_in(1, 5);
        let config = ServiceConfig::default()
            .with_workers(workers)
            .with_memory_limit(limit)
            .with_max_overtakes(g.u64_in(0, 6))
            .with_shared_scans(g.bool_with(0.5));
        let (service, a, b) = tiny_service(config);
        let requests = arb_requests(g, a, b, 24);
        let n = requests.len();
        let report = service.run(requests);

        // Every request resolves to exactly one outcome, in order.
        assert_eq!(report.outcomes.len(), n);
        for (i, outcome) in report.outcomes.iter().enumerate() {
            assert_eq!(outcome.request, i);
        }
        assert_eq!(
            report.stats.completed + report.stats.failed + report.stats.cancelled,
            n as u64
        );
        // No single grant, nor the concurrent sum of grants, exceeds the
        // shared limit; measured peaks stay within each grant.
        assert!(report.stats.peak_admitted_bytes <= limit);
        for outcome in &report.outcomes {
            assert!(outcome.stats.admitted_bytes <= limit);
            if outcome.stats.admitted_bytes > 0 {
                if let Some(result) = outcome.result() {
                    assert!(
                        result.memory.peak_bytes <= outcome.stats.admitted_bytes,
                        "request #{}: peak {} exceeds its grant {}",
                        outcome.request,
                        result.memory.peak_bytes,
                        outcome.stats.admitted_bytes
                    );
                }
            }
        }
    });
}

#[test]
fn overtaking_is_bounded_so_nothing_starves() {
    forall!(16, |g| {
        let max_overtakes = g.u64_in(0, 5);
        let config = ServiceConfig::default()
            .with_workers(g.usize_in(2, 5))
            .with_memory_limit(g.usize_in(2 * 1024 * 1024, 6 * 1024 * 1024))
            .with_max_overtakes(max_overtakes);
        let (service, a, b) = tiny_service(config);
        let requests = arb_requests(g, a, b, 24);
        let report = service.run(requests);
        for outcome in &report.outcomes {
            assert!(
                outcome.stats.overtaken <= max_overtakes,
                "request #{} overtaken {} > max {}",
                outcome.request,
                outcome.stats.overtaken,
                max_overtakes
            );
        }
    });
}

#[test]
fn admission_is_fifo_within_a_priority_class_without_overtaking() {
    forall!(16, |g| {
        // One worker, equal budgets, overtaking disabled: admission order
        // must be exactly (priority desc, submission asc) over the
        // requests that were admitted.
        let config = ServiceConfig::default()
            .with_workers(1)
            .with_memory_limit(8 * 1024 * 1024)
            .with_max_overtakes(0);
        let (service, a, b) = tiny_service(config);
        let n = g.usize_in(2, 16);
        let requests: Vec<QueryRequest> = (0..n)
            .map(|_| {
                let mut r = if g.bool_with(0.5) {
                    QueryRequest::join(a, b).with_algorithm(usj_core::Algo::Sssj)
                } else {
                    QueryRequest::window(a, Rect::from_coords(0.0, 0.0, 20.0, 20.0))
                };
                if g.bool_with(0.6) {
                    r = r.with_priority(g.u32_in(0, 3) as u8);
                }
                r.with_memory_budget(1024 * 1024)
            })
            .collect();
        let priorities: Vec<u8> = requests.iter().map(|r| r.priority).collect();
        let report = service.run(requests);
        let mut admitted: Vec<(u64, u8, usize)> = report
            .outcomes
            .iter()
            .filter_map(|o| o.stats.admission_seq.map(|s| (s, priorities[o.request], o.request)))
            .collect();
        admitted.sort_unstable();
        for pair in admitted.windows(2) {
            let (_, p1, i1) = pair[0];
            let (_, p2, i2) = pair[1];
            assert!(
                p1 > p2 || (p1 == p2 && i1 < i2),
                "admission order violated: #{i1} (priority {p1}) before #{i2} (priority {p2})"
            );
        }
    });
}
