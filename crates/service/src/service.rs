//! The concurrent query service: worker pool, FIFO+priority admission
//! queue, gauge-based admission control.
//!
//! A [`Service`] freezes a registered [`Catalog`] behind a read-only device
//! snapshot and executes batches of [`QueryRequest`]s on a pool of worker
//! threads. The scheduling contract:
//!
//! * **Admission order** is priority-then-FIFO: higher
//!   [`priority`](QueryRequest::priority) first, submission order within a
//!   priority.
//! * **Admission control** is *gauge-based*: every request carries a memory
//!   estimate (its [`admission_estimate`](Service::admission_estimate), or an
//!   explicit [`memory_budget`](QueryRequest::memory_budget)), and is
//!   admitted only when the service-wide admission
//!   [`MemoryGauge`] — whose limit is the shared
//!   [`ServiceConfig::memory_limit`] — can reserve that many bytes. A free
//!   worker that cannot admit a request records a **deferral** and either
//!   admits a later (smaller or lower-priority) request or sleeps until a
//!   running query releases its reservation. The admitted bytes become the
//!   worker environment's *hard* memory limit, so the measured per-query
//!   `peak_bytes` can never exceed the granted budget, and the sum of
//!   concurrently granted budgets can never exceed the shared limit —
//!   admission control *bounds the aggregate footprint by construction*.
//! * **Isolation**: every admitted query runs on
//!   [`SimEnv::fork_with_base`] over the catalog snapshot — its own I/O
//!   statistics and disk head, its own scratch pages, its own memory gauge.
//! * **Results** stream through the `PairSink`/`ControlFlow` machinery:
//!   `LIMIT` and [`CancelToken`] cancellation genuinely stop the producing
//!   traversal, saving I/O.
//! * **Open-loop sessions**: [`Service::with_session`] keeps the worker
//!   pool alive while a driver thread [`submit`](Session::submit)s requests
//!   on its own schedule — the load-generator mode. [`Service::run`] is the
//!   batch special case (everything submitted up front, session closed
//!   immediately). Queue waits are anchored at each request's *first
//!   enqueue*, so a deferred request's re-admission attempts never reset
//!   its measured wait.
//! * **Bounded overtake**: a free worker may admit a later (smaller or
//!   cheaper) request over a blocked head-of-line one, but only
//!   [`ServiceConfig::max_overtakes`] times per queue entry — after that
//!   the entry becomes a barrier no admission scan passes, so heavy
//!   requests cannot starve.
//! * **Shared-scan batching** (opt-in via
//!   [`ServiceConfig::with_shared_scans`]): when a window/point selection
//!   is admitted, compatible pending selections over the same dataset are
//!   coalesced into one R-tree traversal
//!   ([`RTree::multi_window_query`](usj_rtree::RTree::multi_window_query))
//!   fanned out through per-query sinks ([`usj_core::FanoutSink`]). Every
//!   member observes exactly the item sequence its solo traversal would
//!   have produced; the scan's I/O is accounted once, on the batch leader.

use std::fmt;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use usj_core::{
    Algo, Execution, FanoutSink, JoinResult, MemoryStats, PairSink, Predicate, SpatialQuery,
};
use usj_geom::{Item, Point, Rect, ITEM_BYTES};
use usj_io::{CpuCounter, CpuOp, IoSimError, IoStats, MemoryGauge, Page, SimEnv, PAGE_SIZE};
use usj_live::{LiveCatalog, LiveConfig, LiveDataset, LiveId, StreamingJoin};
use usj_rtree::NodeStore;

use crate::catalog::{Catalog, Dataset, DatasetId};
use crate::plan_cache::{PlanCache, PlanKey};
use crate::{Result, ServiceError};

/// Smallest budget any query is granted (stream block buffers plus sweep
/// floors make smaller grants fail immediately).
pub const MIN_QUERY_BUDGET: usize = 512 * 1024;

/// Default admission floor for join queries: two 512 KiB stream read
/// buffers plus sweep/partition working sets.
pub const JOIN_BUDGET_FLOOR: usize = 2 * 1024 * 1024;

/// Default admission estimate for window/point selections (node-store pool
/// plus traversal state).
pub const SELECTION_BUDGET: usize = 1024 * 1024;

/// Configuration of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing admitted queries (at least 1; default 4).
    pub workers: usize,
    /// The shared admission budget in bytes: the sum of the budgets of all
    /// concurrently running queries never exceeds it (default: the paper's
    /// 24 MB free-memory figure).
    pub memory_limit: usize,
    /// Whether completed query plans are memoized by fingerprint
    /// (default: on).
    pub use_plan_cache: bool,
    /// How many times a pending request may be overtaken by later
    /// admissions before it becomes a barrier the admission scan will not
    /// pass (default 8). `0` disables overtaking entirely (strict
    /// priority/FIFO admission).
    pub max_overtakes: u64,
    /// Whether compatible pending window/point selections are coalesced
    /// into one shared R-tree scan when one of them is admitted
    /// (default: off — per-query execution, the measurement baseline).
    pub shared_scans: bool,
    /// Largest number of selections one shared scan services, the admitted
    /// leader included (default 16).
    pub max_scan_batch: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            memory_limit: usj_io::sim::DEFAULT_MEMORY_LIMIT,
            use_plan_cache: true,
            max_overtakes: 8,
            shared_scans: false,
            max_scan_batch: 16,
        }
    }
}

impl ServiceConfig {
    /// Sets the worker count (builder style).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the shared admission budget in bytes (builder style).
    pub fn with_memory_limit(mut self, bytes: usize) -> Self {
        self.memory_limit = bytes;
        self
    }

    /// Disables the plan cache (builder style).
    pub fn without_plan_cache(mut self) -> Self {
        self.use_plan_cache = false;
        self
    }

    /// Sets the per-entry overtake bound (builder style).
    pub fn with_max_overtakes(mut self, max: u64) -> Self {
        self.max_overtakes = max;
        self
    }

    /// Enables or disables shared-scan batching (builder style).
    pub fn with_shared_scans(mut self, enabled: bool) -> Self {
        self.shared_scans = enabled;
        self
    }

    /// Sets the largest shared-scan batch size (builder style; clamped to
    /// at least 1, i.e. the leader alone).
    pub fn with_max_scan_batch(mut self, size: usize) -> Self {
        self.max_scan_batch = size.max(1);
        self
    }
}

/// A shared cancellation flag for one or more queries.
///
/// Setting it makes queued queries resolve to
/// [`QueryStatus::Cancelled`] without running, and makes running queries
/// stop at their next emitted pair (the sink breaks the producing join or
/// traversal, so the remaining I/O is genuinely saved).
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a token in the not-cancelled state.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// The join form of a [`QueryRequest`]: which cataloged datasets, which
/// algorithm, predicate and execution strategy.
#[derive(Debug, Clone, Copy)]
pub struct JoinSpec {
    /// Left input dataset.
    pub left: DatasetId,
    /// Right input dataset.
    pub right: DatasetId,
    /// Join algorithm (default [`Algo::Auto`]).
    pub algo: Algo,
    /// Pair predicate (default intersection).
    pub predicate: Predicate,
    /// Execution strategy (default serial).
    pub execution: Execution,
}

impl JoinSpec {
    /// A default (Auto, intersects, serial) join of `left` against `right`.
    pub fn new(left: DatasetId, right: DatasetId) -> Self {
        JoinSpec {
            left,
            right,
            algo: Algo::default(),
            predicate: Predicate::default(),
            execution: Execution::default(),
        }
    }
}

/// What a [`QueryRequest`] asks for.
#[derive(Debug, Clone, Copy)]
pub enum QueryKind {
    /// A spatial join of two cataloged datasets.
    Join(JoinSpec),
    /// An index-backed window selection: every item of `dataset`
    /// intersecting `window`, streamed as `(id, 0)` pairs.
    Window {
        /// The cataloged dataset to select from.
        dataset: DatasetId,
        /// The query window.
        window: Rect,
    },
    /// An index-backed point (stabbing) selection: every item of `dataset`
    /// containing `point`, streamed as `(id, 0)` pairs.
    Point {
        /// The cataloged dataset to select from.
        dataset: DatasetId,
        /// The query point.
        point: Point,
    },
    /// A streaming symmetric join over two *live* datasets
    /// ([`Service::register_live`]): executed over generation snapshots
    /// taken when the query starts running, emitting pairs while the
    /// snapshot runs are still being scanned (no blocking pre-sort).
    StreamingJoin {
        /// Left live dataset.
        left: LiveId,
        /// Right live dataset.
        right: LiveId,
        /// Pair predicate (default intersection).
        predicate: Predicate,
    },
}

/// One query submitted to the service.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// What to run.
    pub kind: QueryKind,
    /// Admission priority: higher priorities are admitted first; submission
    /// order breaks ties (FIFO within a priority).
    pub priority: u8,
    /// Stop after this many delivered pairs (`LIMIT n`).
    pub limit: Option<u64>,
    /// Whether to collect the delivered pairs into the outcome (off by
    /// default — the paper's measurement mode discards output).
    pub collect: bool,
    /// Explicit per-query memory budget in bytes, overriding the service's
    /// admission estimate (clamped to `[MIN_QUERY_BUDGET, memory_limit]`).
    pub memory_budget: Option<usize>,
    /// Cooperative cancellation flag.
    pub cancel: Option<CancelToken>,
}

impl QueryRequest {
    fn with_kind(kind: QueryKind) -> Self {
        QueryRequest {
            kind,
            priority: 0,
            limit: None,
            collect: false,
            memory_budget: None,
            cancel: None,
        }
    }

    /// A default join request of `left` against `right`.
    pub fn join(left: DatasetId, right: DatasetId) -> Self {
        Self::with_kind(QueryKind::Join(JoinSpec::new(left, right)))
    }

    /// A join request with an explicit specification.
    pub fn from_spec(spec: JoinSpec) -> Self {
        Self::with_kind(QueryKind::Join(spec))
    }

    /// A window-selection request.
    pub fn window(dataset: DatasetId, window: Rect) -> Self {
        Self::with_kind(QueryKind::Window { dataset, window })
    }

    /// A point-selection request.
    pub fn point(dataset: DatasetId, point: Point) -> Self {
        Self::with_kind(QueryKind::Point { dataset, point })
    }

    /// A streaming-join request over two live datasets.
    pub fn streaming_join(left: LiveId, right: LiveId) -> Self {
        Self::with_kind(QueryKind::StreamingJoin {
            left,
            right,
            predicate: Predicate::default(),
        })
    }

    /// Selects the join algorithm (builder style; no-op for selections).
    pub fn with_algorithm(mut self, algo: Algo) -> Self {
        if let QueryKind::Join(spec) = &mut self.kind {
            spec.algo = algo;
        }
        self
    }

    /// Selects the join predicate (builder style; no-op for selections).
    pub fn with_predicate(mut self, predicate: Predicate) -> Self {
        match &mut self.kind {
            QueryKind::Join(spec) => spec.predicate = predicate,
            QueryKind::StreamingJoin { predicate: p, .. } => *p = predicate,
            QueryKind::Window { .. } | QueryKind::Point { .. } => {}
        }
        self
    }

    /// Selects the join execution strategy (builder style; no-op for
    /// selections).
    pub fn with_execution(mut self, execution: Execution) -> Self {
        if let QueryKind::Join(spec) = &mut self.kind {
            spec.execution = execution;
        }
        self
    }

    /// Sets the admission priority (builder style).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Sets a `LIMIT` on delivered pairs (builder style).
    pub fn with_limit(mut self, limit: u64) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Collects the delivered pairs into the outcome (builder style).
    pub fn collecting(mut self) -> Self {
        self.collect = true;
        self
    }

    /// Sets an explicit per-query memory budget (builder style).
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Attaches a cancellation token (builder style).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }
}

/// How one query ended.
#[derive(Debug, Clone)]
pub enum QueryStatus {
    /// The query ran to completion (or to its `LIMIT`); the accounting
    /// summary covers exactly the work its forked environment performed.
    Completed(JoinResult),
    /// The query was cancelled: `None` if it never ran, `Some(partial)` with
    /// the accounting of the work done before the cancellation stopped it.
    Cancelled(Option<JoinResult>),
    /// The query failed (unknown dataset, or its admitted memory budget was
    /// genuinely insufficient).
    Failed(ServiceError),
}

/// Per-query scheduling statistics.
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// Bytes reserved on the admission gauge for this query (zero if it was
    /// never admitted). The worker environment's hard memory limit.
    pub admitted_bytes: usize,
    /// Times a free worker examined this request and could not admit it for
    /// lack of gauge headroom.
    pub deferrals: u64,
    /// Wall-clock time from this request's *first enqueue* to its admission
    /// (or to resolution, for queries that never ran). Deferrals and
    /// re-admission attempts do not reset the anchor.
    pub queue_wait: Duration,
    /// Wall-clock time from first enqueue to resolution (queue wait plus
    /// execution) — the client-observed latency the load harness
    /// aggregates into percentiles.
    pub latency: Duration,
    /// Position in the service's admission order (`None` if the request
    /// was never admitted). Within one priority class, un-overtaken
    /// admissions happen in submission order — the FIFO property the
    /// admission-queue property tests check.
    pub admission_seq: Option<u64>,
    /// Times a later request was admitted over this one while it waited.
    /// Bounded by [`ServiceConfig::max_overtakes`] by construction.
    pub overtaken: u64,
    /// Whether this query was serviced as a shared-scan *rider*: coalesced
    /// into another admitted selection's traversal. Riders reserve no
    /// admission budget of their own ([`admitted_bytes`] stays 0) and
    /// report zero I/O — the scan is accounted once, on the leader.
    ///
    /// [`admitted_bytes`]: QueryStats::admitted_bytes
    pub coalesced: bool,
}

/// The outcome of one submitted query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Index of the request in the submitted batch.
    pub request: usize,
    /// How the query ended.
    pub status: QueryStatus,
    /// The delivered pairs, when the request asked to
    /// [`collect`](QueryRequest::collect) them.
    pub pairs: Option<Vec<(u32, u32)>>,
    /// Scheduling statistics.
    pub stats: QueryStats,
}

impl QueryOutcome {
    /// The accounting summary, if the query produced one (completed, or
    /// cancelled after it started running).
    pub fn result(&self) -> Option<&JoinResult> {
        match &self.status {
            QueryStatus::Completed(r) => Some(r),
            QueryStatus::Cancelled(r) => r.as_ref(),
            QueryStatus::Failed(_) => None,
        }
    }

    /// Returns `true` if the query completed.
    pub fn is_completed(&self) -> bool {
        matches!(self.status, QueryStatus::Completed(_))
    }
}

/// Service-wide statistics of one [`Service::run`] batch. Counters sum and
/// peaks take maxima — the same roll-up discipline as
/// [`JoinResult::merge`].
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// The shared admission budget the batch ran under.
    pub memory_limit: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Requests submitted.
    pub submitted: u64,
    /// Requests admitted (their budget was reserved and they ran).
    pub admitted: u64,
    /// Requests that completed.
    pub completed: u64,
    /// Requests that failed.
    pub failed: u64,
    /// Requests cancelled (before or during execution).
    pub cancelled: u64,
    /// Admission deferral events: a free worker examined a request and could
    /// not reserve its budget.
    pub deferrals: u64,
    /// Plan-cache lookups satisfied from the cache during this batch.
    pub plan_cache_hits: u64,
    /// Plan-cache lookups that planned from scratch during this batch.
    pub plan_cache_misses: u64,
    /// High-water mark of the admission gauge: the largest sum of
    /// concurrently granted budgets (never exceeds
    /// [`memory_limit`](ServiceStats::memory_limit) by construction).
    pub peak_admitted_bytes: usize,
    /// Largest *measured* per-query `peak_bytes`.
    pub peak_query_bytes: usize,
    /// Total pairs delivered across all queries.
    pub pairs: u64,
    /// Aggregate I/O of every query's forked environment.
    pub io: IoStats,
    /// Aggregate CPU work of every query's forked environment.
    pub cpu: CpuCounter,
    /// Longest queue wait of any request.
    pub max_queue_wait: Duration,
    /// Sum of all queue waits.
    pub total_queue_wait: Duration,
    /// Shared scans executed (traversals that serviced ≥ 2 queries).
    pub shared_scans: u64,
    /// Queries serviced as shared-scan riders.
    pub coalesced: u64,
    /// High-water mark of the pending queue length.
    pub max_queue_depth: usize,
}

impl fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} submitted / {} completed / {} failed / {} cancelled on {} workers; \
             {} deferrals under {:.1} MB shared budget (peak admitted {:.1} MB, \
             peak query {:.2} MB); {} pairs, {} pages read, {} pages written; \
             plan cache {}/{} hits",
            self.submitted,
            self.completed,
            self.failed,
            self.cancelled,
            self.workers,
            self.deferrals,
            self.memory_limit as f64 / (1024.0 * 1024.0),
            self.peak_admitted_bytes as f64 / (1024.0 * 1024.0),
            self.peak_query_bytes as f64 / (1024.0 * 1024.0),
            self.pairs,
            self.io.pages_read,
            self.io.pages_written,
            self.plan_cache_hits,
            self.plan_cache_hits + self.plan_cache_misses,
        )
    }
}

impl ServiceStats {
    /// A digest over the *interleaving-independent* fields: request
    /// resolution counts, delivered pairs, aggregate page I/O, and
    /// plan-cache misses. Two runs of the same request schedule against the
    /// same catalog produce equal digests regardless of worker scheduling —
    /// the seed-replay determinism contract of the load harness.
    ///
    /// Timing-dependent fields (waits, deferrals, overtakes, plan-cache
    /// hit/miss *split* per query, queue depth) are deliberately excluded;
    /// aggregate I/O is included because with the plan cache on, each join
    /// shape is planned exactly once per batch no matter which query pays
    /// for it. Shared-scan mode trims rider I/O by a timing-dependent
    /// amount, so compare digests with [`shared_scans`] disabled.
    ///
    /// [`shared_scans`]: ServiceConfig::shared_scans
    pub fn replay_digest(&self) -> u64 {
        // FNV-1a over the stable fields, dependency-free.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.submitted);
        eat(self.admitted);
        eat(self.completed);
        eat(self.failed);
        eat(self.cancelled);
        eat(self.pairs);
        eat(self.io.pages_read);
        eat(self.io.pages_written);
        eat(self.plan_cache_misses);
        h
    }
}

/// Everything one [`Service::run`] batch produced.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// One outcome per submitted request, in submission order.
    pub outcomes: Vec<QueryOutcome>,
    /// The batch-wide roll-up.
    pub stats: ServiceStats,
}

/// The concurrent query service over one frozen catalog.
///
/// # Example
///
/// ```
/// use usj_core::Algo;
/// use usj_geom::{Item, Rect};
/// use usj_io::{MachineConfig, SimEnv};
/// use usj_service::{Catalog, QueryRequest, Service, ServiceConfig};
///
/// let mut env = SimEnv::new(MachineConfig::machine3());
/// let boxes: Vec<Item> = (0..400)
///     .map(|i| {
///         let (x, y) = ((i % 20) as f32, (i / 20) as f32);
///         Item::new(Rect::from_coords(x, y, x + 0.9, y + 0.9), i)
///     })
///     .collect();
/// let mut catalog = Catalog::new();
/// let a = catalog.register(&mut env, "boxes", &boxes).unwrap();
///
/// let service = Service::new(env, catalog, ServiceConfig::default().with_workers(2));
/// let report = service.run(vec![
///     QueryRequest::join(a, a).with_algorithm(Algo::Pq),
///     QueryRequest::window(a, Rect::from_coords(0.0, 0.0, 5.0, 5.0)),
/// ]);
/// assert_eq!(report.stats.completed, 2);
/// assert!(report.stats.pairs > 0);
/// ```
#[derive(Debug)]
pub struct Service {
    env: SimEnv,
    catalog: Catalog,
    /// Live (LSM) datasets. Ingestion ([`Service::register_live`],
    /// [`Service::append_live`]) requires `&mut self`, so it happens
    /// strictly *between* sessions; during a session the live catalog is
    /// frozen and queries read generation snapshots of it.
    live: LiveCatalog,
    config: ServiceConfig,
    plan_cache: Mutex<PlanCache>,
    /// The frozen catalog storage, snapshotted at construction and
    /// re-snapshotted after every live-catalog mutation, shared by every
    /// batch's worker forks.
    base: Arc<Vec<Page>>,
}

/// One submitted request's scheduler-side record, alive from submission to
/// report assembly.
struct Entry {
    /// The request itself; taken (moved out) when the entry is claimed for
    /// execution, so the worker runs it without holding the queue lock.
    request: Option<QueryRequest>,
    /// Admission-gauge estimate, computed once at submission.
    estimate: usize,
    /// First-enqueue instant — the queue-wait and latency anchor. Deferrals
    /// and re-admission attempts never reset it.
    submitted_at: Instant,
    deferrals: u64,
    overtaken: u64,
    admission_seq: Option<u64>,
    queue_wait: Option<Duration>,
    coalesced: bool,
    outcome: Option<QueryOutcome>,
}

/// Aggregate totals folded in as queries finish.
#[derive(Default)]
struct AggTotals {
    admitted: u64,
    completed: u64,
    failed: u64,
    cancelled: u64,
    pairs: u64,
    io: IoStats,
    cpu: CpuCounter,
    peak_query_bytes: usize,
    max_wait: Duration,
    total_wait: Duration,
    deferrals: u64,
    shared_scans: u64,
    coalesced: u64,
}

/// Scheduler state shared by the workers of one batch or session.
struct SessionState {
    /// One entry per submitted request, in submission order.
    entries: Vec<Entry>,
    /// Indices into `entries` awaiting admission, sorted by
    /// (priority desc, submission order asc).
    pending: Vec<usize>,
    /// Queries (or shared-scan batches) currently holding a reservation.
    running: usize,
    /// Set when the submitting side is done; workers drain and exit.
    closed: bool,
    next_admission_seq: u64,
    max_queue_depth: usize,
    agg: AggTotals,
}

/// The synchronization bundle shared by the workers and the submitter.
struct SessionShared {
    state: Mutex<SessionState>,
    cv: Condvar,
    gauge: MemoryGauge,
}

/// What a worker decided to do with a scanned request.
enum Job {
    Run {
        lead: (usize, QueryRequest),
        riders: Vec<(usize, QueryRequest)>,
        reservation: usj_io::MemoryReservation,
    },
    Cancel(usize),
    Fail(usize, ServiceError),
}

/// An open submission handle into a running [`Service::with_session`]
/// scope: the load harness's way of driving the worker pool open-loop.
///
/// Requests submitted here enter the same priority/FIFO admission queue as
/// a batch's; outcomes are collected into the session's final
/// [`ServiceReport`] in submission order. The handle also exposes the
/// instantaneous queue depth so an open-loop driver can record backlog
/// growth over time.
pub struct Session<'a> {
    service: &'a Service,
    shared: &'a SessionShared,
}

impl Session<'_> {
    /// Enqueues one request and wakes the workers. Returns the request's
    /// index in the session's final report.
    pub fn submit(&self, request: QueryRequest) -> usize {
        let estimate = self.service.admission_estimate(&request);
        let priority = request.priority;
        let mut guard = self.shared.state.lock().expect("queue poisoned");
        let state = &mut *guard;
        let idx = state.entries.len();
        state.entries.push(Entry {
            request: Some(request),
            estimate,
            submitted_at: Instant::now(),
            deferrals: 0,
            overtaken: 0,
            admission_seq: None,
            queue_wait: None,
            coalesced: false,
            outcome: None,
        });
        let entries = &state.entries;
        let pos = state.pending.partition_point(|&e| {
            let queued = entries[e].request.as_ref().expect("pending entries own their request");
            queued.priority >= priority
        });
        state.pending.insert(pos, idx);
        state.max_queue_depth = state.max_queue_depth.max(state.pending.len());
        drop(guard);
        self.shared.cv.notify_all();
        idx
    }

    /// Requests currently awaiting admission.
    pub fn queue_depth(&self) -> usize {
        self.shared.state.lock().expect("queue poisoned").pending.len()
    }

    /// Queries (or shared-scan batches) currently executing.
    pub fn running(&self) -> usize {
        self.shared.state.lock().expect("queue poisoned").running
    }

    /// Requests submitted so far.
    pub fn submitted(&self) -> usize {
        self.shared.state.lock().expect("queue poisoned").entries.len()
    }
}

impl Service {
    /// Creates a service over `catalog`, whose datasets live on `env`'s
    /// device. The device is snapshotted *once* here — the catalog is
    /// frozen for the service's lifetime and queries never mutate it —
    /// and every batch's worker forks share that snapshot.
    pub fn new(env: SimEnv, catalog: Catalog, config: ServiceConfig) -> Self {
        let base = env.device.snapshot();
        Service {
            env,
            catalog,
            live: LiveCatalog::new(),
            config,
            plan_cache: Mutex::new(PlanCache::new()),
            base,
        }
    }

    /// The frozen catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The live (LSM-style) side of the catalog.
    pub fn live(&self) -> &LiveCatalog {
        &self.live
    }

    /// Registers a live dataset with an initial base batch, re-snapshotting
    /// the device so subsequent queries' worker forks can read its runs.
    ///
    /// Takes `&mut self`: ingestion interleaves with query *sessions*, not
    /// with individual queries — submit a batch, append, submit the next.
    pub fn register_live(
        &mut self,
        name: &str,
        base_items: &[Item],
        config: LiveConfig,
    ) -> Result<LiveId> {
        let id = self.live.register(&mut self.env, name, base_items, config)?;
        self.base = self.env.device.snapshot();
        Ok(id)
    }

    /// Appends records to a registered live dataset (buffered in its
    /// memtable; flushes and compactions run as configured), then
    /// re-snapshots the device so new delta runs are visible to queries.
    pub fn append_live(&mut self, name: &str, items: &[Item]) -> Result<()> {
        self.live.append(&mut self.env, name, items)?;
        self.base = self.env.device.snapshot();
        Ok(())
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Dissolves the service, returning the environment and catalog (e.g. to
    /// register more datasets and build a new service).
    pub fn into_parts(self) -> (SimEnv, Catalog) {
        (self.env, self.catalog)
    }

    /// The memory estimate admission control will reserve for `request`: an
    /// explicit [`memory_budget`](QueryRequest::memory_budget) clamped to
    /// `[MIN_QUERY_BUDGET, memory_limit]`, or a size-based heuristic
    /// (3× the input bytes with a [`JOIN_BUDGET_FLOOR`] floor for joins,
    /// 1× for streaming joins — the symmetric operator spills instead of
    /// growing — and [`SELECTION_BUDGET`] for selections).
    ///
    /// When the plan cache holds a *measured* peak for a join's fingerprint
    /// (recorded from earlier uncancelled, unlimited runs of the same query
    /// shape), the estimate is that peak plus a 25 % safety margin instead
    /// of the size heuristic — repeat workloads are admitted against what
    /// the query actually used, so more of them fit the shared budget
    /// concurrently.
    pub fn admission_estimate(&self, request: &QueryRequest) -> usize {
        let limit = self.config.memory_limit;
        if let Some(bytes) = request.memory_budget {
            return bytes.max(MIN_QUERY_BUDGET).min(limit.max(1));
        }
        let want = match &request.kind {
            QueryKind::Join(spec) => {
                let measured = self.config.use_plan_cache.then(|| {
                    let cache = self.plan_cache.lock().expect("plan cache poisoned");
                    cache.peak(&PlanKey::new(spec))
                });
                match measured.flatten() {
                    Some(peak) => (peak + peak / 4).max(MIN_QUERY_BUDGET),
                    None => {
                        let len = |id: DatasetId| self.catalog.get(id).map_or(0, |d| d.len());
                        let bytes = (len(spec.left) + len(spec.right)) as usize * ITEM_BYTES;
                        (3 * bytes).max(JOIN_BUDGET_FLOOR)
                    }
                }
            }
            QueryKind::StreamingJoin { left, right, .. } => {
                let len = |id: LiveId| self.live.get(id).map_or(0, |d| d.len());
                let bytes = (len(*left) + len(*right)) as usize * ITEM_BYTES;
                bytes.max(JOIN_BUDGET_FLOOR)
            }
            QueryKind::Window { .. } | QueryKind::Point { .. } => SELECTION_BUDGET,
        };
        want.min(limit.max(1))
    }

    /// Executes a batch of requests on the worker pool and returns every
    /// outcome plus the service-wide roll-up.
    ///
    /// This is the closed session special case: everything is enqueued up
    /// front and the session closes immediately, so the workers drain the
    /// queue and exit.
    pub fn run(&self, requests: Vec<QueryRequest>) -> ServiceReport {
        let workers = self.config.workers.max(1).min(requests.len().max(1));
        self.session_core(requests, workers, |_| {}).1
    }

    /// Runs an *open* session: spawns the worker pool, hands the caller a
    /// [`Session`] submission handle, and keeps the workers alive until the
    /// closure returns — the open-loop load-generation mode, where arrival
    /// times follow the driver's schedule rather than the batch boundary.
    ///
    /// Returns the closure's value and the report over every request
    /// submitted during the session, in submission order.
    pub fn with_session<T>(&self, f: impl FnOnce(&Session<'_>) -> T) -> (T, ServiceReport) {
        self.session_core(Vec::new(), self.config.workers.max(1), f)
    }

    /// The shared engine under [`run`](Service::run) and
    /// [`with_session`](Service::with_session): enqueue `initial`, spawn
    /// `workers`, let `f` drive the session, close, drain, report.
    fn session_core<T>(
        &self,
        initial: Vec<QueryRequest>,
        workers: usize,
        f: impl FnOnce(&Session<'_>) -> T,
    ) -> (T, ServiceReport) {
        let shared = SessionShared {
            state: Mutex::new(SessionState {
                entries: Vec::new(),
                pending: Vec::new(),
                running: 0,
                closed: false,
                next_admission_seq: 0,
                max_queue_depth: 0,
                agg: AggTotals::default(),
            }),
            cv: Condvar::new(),
            gauge: MemoryGauge::new(self.config.memory_limit),
        };
        let session = Session {
            service: self,
            shared: &shared,
        };
        for request in initial {
            session.submit(request);
        }
        let (cache_hits_before, cache_misses_before) = {
            let cache = self.plan_cache.lock().expect("plan cache poisoned");
            (cache.hits(), cache.misses())
        };

        let value = std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| self.worker_loop(&shared));
            }
            let value = f(&session);
            shared.state.lock().expect("queue poisoned").closed = true;
            shared.cv.notify_all();
            value
        });

        let state = shared.state.into_inner().expect("queue poisoned");
        let agg = state.agg;
        let n = state.entries.len();
        let outcomes: Vec<QueryOutcome> = state
            .entries
            .into_iter()
            .map(|e| e.outcome.expect("every request resolves to an outcome"))
            .collect();
        let cache = self.plan_cache.lock().expect("plan cache poisoned");
        let stats = ServiceStats {
            memory_limit: self.config.memory_limit,
            workers,
            submitted: n as u64,
            admitted: agg.admitted,
            completed: agg.completed,
            failed: agg.failed,
            cancelled: agg.cancelled,
            deferrals: agg.deferrals,
            plan_cache_hits: cache.hits() - cache_hits_before,
            plan_cache_misses: cache.misses() - cache_misses_before,
            peak_admitted_bytes: shared.gauge.peak(),
            peak_query_bytes: agg.peak_query_bytes,
            pairs: agg.pairs,
            io: agg.io,
            cpu: agg.cpu,
            max_queue_wait: agg.max_wait,
            total_queue_wait: agg.total_wait,
            shared_scans: agg.shared_scans,
            coalesced: agg.coalesced,
            max_queue_depth: state.max_queue_depth,
        };
        (value, ServiceReport { outcomes, stats })
    }

    /// One worker: repeatedly claim the first admissible pending request (in
    /// priority/FIFO order, bounded overtake allowed), run it — together
    /// with any coalesced shared-scan riders — on a forked environment,
    /// release its budget, until the session closes and the queue drains.
    fn worker_loop(&self, shared: &SessionShared) {
        while let Some(job) = self.claim(shared) {
            match job {
                Job::Run {
                    lead,
                    riders,
                    reservation,
                } => {
                    let granted = reservation.bytes();
                    let rider_count = riders.len() as u64;
                    let outcomes = if riders.is_empty() {
                        vec![self.execute_one(lead.0, &lead.1, granted)]
                    } else {
                        self.execute_shared_scan(&lead, &riders, granted)
                    };
                    drop(reservation);
                    let mut state = shared.state.lock().expect("queue poisoned");
                    for outcome in outcomes {
                        Self::finish(&mut state, outcome, true);
                    }
                    if rider_count > 0 {
                        state.agg.shared_scans += 1;
                        state.agg.coalesced += rider_count;
                    }
                    state.running -= 1;
                    drop(state);
                    shared.cv.notify_all();
                }
                Job::Cancel(idx) => {
                    let outcome = QueryOutcome {
                        request: idx,
                        status: QueryStatus::Cancelled(None),
                        pairs: None,
                        stats: QueryStats::default(),
                    };
                    let mut state = shared.state.lock().expect("queue poisoned");
                    Self::finish(&mut state, outcome, false);
                    drop(state);
                    shared.cv.notify_all();
                }
                Job::Fail(idx, err) => {
                    let outcome = QueryOutcome {
                        request: idx,
                        status: QueryStatus::Failed(err),
                        pairs: None,
                        stats: QueryStats::default(),
                    };
                    let mut state = shared.state.lock().expect("queue poisoned");
                    Self::finish(&mut state, outcome, false);
                    drop(state);
                    shared.cv.notify_all();
                }
            }
        }
    }

    /// Scans the pending queue under the lock for the next piece of work,
    /// blocking on the condvar while nothing is actionable. Returns `None`
    /// when the session is closed and the queue has drained.
    ///
    /// The scan honors the overtake bound: trying an entry that fails
    /// admission records a deferral, and once that entry has been overtaken
    /// [`ServiceConfig::max_overtakes`] times it becomes a barrier — the
    /// scan stops there instead of admitting anything behind it, so a heavy
    /// request's wait is bounded by K admissions rather than unbounded.
    fn claim(&self, shared: &SessionShared) -> Option<Job> {
        enum Picked {
            Run(usj_io::MemoryReservation),
            Cancel,
        }
        let mut guard = shared.state.lock().expect("queue poisoned");
        loop {
            let state = &mut *guard;
            if state.pending.is_empty() {
                if state.closed {
                    return None;
                }
                guard = shared.cv.wait(guard).expect("queue poisoned");
                continue;
            }
            let mut picked = None;
            for pos in 0..state.pending.len() {
                let idx = state.pending[pos];
                let entry = &mut state.entries[idx];
                let request = entry.request.as_ref().expect("pending entries own their request");
                if request.cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
                    picked = Some((pos, Picked::Cancel));
                    break;
                }
                match shared.gauge.try_reserve(entry.estimate) {
                    Ok(reservation) => {
                        picked = Some((pos, Picked::Run(reservation)));
                        break;
                    }
                    Err(_) => {
                        entry.deferrals += 1;
                        if entry.overtaken >= self.config.max_overtakes {
                            // Barrier: this entry has been overtaken its
                            // full allowance — nothing behind it may be
                            // admitted before it runs.
                            break;
                        }
                    }
                }
            }
            match picked {
                Some((pos, Picked::Cancel)) => {
                    let idx = state.pending.remove(pos);
                    let entry = &mut state.entries[idx];
                    entry.queue_wait = Some(entry.submitted_at.elapsed());
                    return Some(Job::Cancel(idx));
                }
                Some((pos, Picked::Run(reservation))) => {
                    // Everything the admitted entry jumped over was
                    // overtaken once more.
                    for p in 0..pos {
                        let overtaken = state.pending[p];
                        state.entries[overtaken].overtaken += 1;
                    }
                    let idx = state.pending.remove(pos);
                    let rider_idxs = self.collect_riders(state, idx);
                    let lead = Self::claim_entry(state, idx, false);
                    let riders: Vec<(usize, QueryRequest)> = rider_idxs
                        .into_iter()
                        .map(|i| Self::claim_entry(state, i, true))
                        .collect();
                    state.running += 1;
                    // This admission may have exhausted the shared budget
                    // for the next request in line: record that
                    // head-of-queue deferral at admission time, so the
                    // count reflects the queue's oversubscription rather
                    // than scan timing.
                    if let Some(&next) = state.pending.first() {
                        if state.entries[next].estimate > shared.gauge.headroom() {
                            state.entries[next].deferrals += 1;
                        }
                    }
                    return Some(Job::Run {
                        lead,
                        riders,
                        reservation,
                    });
                }
                None if state.running == 0 => {
                    // Nothing is running, so no reservation will ever be
                    // released: the head request's budget simply does not
                    // fit the shared limit. Fail it loudly to keep the
                    // queue moving.
                    let idx = state.pending.remove(0);
                    let entry = &mut state.entries[idx];
                    entry.queue_wait = Some(entry.submitted_at.elapsed());
                    let required = entry.estimate;
                    return Some(Job::Fail(
                        idx,
                        ServiceError::Io(IoSimError::MemoryLimitExceeded {
                            required,
                            limit: self.config.memory_limit,
                        }),
                    ));
                }
                None => {
                    guard = shared.cv.wait(guard).expect("queue poisoned");
                }
            }
        }
    }

    /// Marks `idx` admitted (stamping its admission order and queue wait)
    /// and moves its request out for execution off-lock.
    fn claim_entry(state: &mut SessionState, idx: usize, coalesced: bool) -> (usize, QueryRequest) {
        let seq = state.next_admission_seq;
        state.next_admission_seq += 1;
        let entry = &mut state.entries[idx];
        entry.admission_seq = Some(seq);
        entry.queue_wait = Some(entry.submitted_at.elapsed());
        entry.coalesced = coalesced;
        let request = entry.request.take().expect("pending entries own their request");
        (idx, request)
    }

    /// Pulls pending selections compatible with the just-admitted `lead`
    /// out of the queue to ride its scan: same dataset, window/point kind,
    /// not cancelled, up to [`ServiceConfig::max_scan_batch`] members.
    ///
    /// Riders reserve no extra admission budget — the batch shares the
    /// leader's grant and its single `NodeStore` — so coalescing never
    /// increases the aggregate footprint, and pulling a rider from the
    /// middle of the queue delays no one (the scan happens regardless);
    /// riders therefore don't count toward anyone's overtake allowance and
    /// may be collected from behind a starvation barrier.
    fn collect_riders(&self, state: &mut SessionState, lead: usize) -> Vec<usize> {
        if !self.config.shared_scans {
            return Vec::new();
        }
        let lead_dataset = match state.entries[lead].request.as_ref().map(|r| &r.kind) {
            Some(QueryKind::Window { dataset, .. }) | Some(QueryKind::Point { dataset, .. }) => {
                *dataset
            }
            _ => return Vec::new(),
        };
        let cap = self.config.max_scan_batch.max(1) - 1;
        let mut riders = Vec::new();
        let mut pos = 0;
        while pos < state.pending.len() && riders.len() < cap {
            let idx = state.pending[pos];
            let request = state.entries[idx]
                .request
                .as_ref()
                .expect("pending entries own their request");
            let compatible = matches!(
                request.kind,
                QueryKind::Window { dataset, .. } | QueryKind::Point { dataset, .. }
                    if dataset == lead_dataset
            );
            let live = !request.cancel.as_ref().is_some_and(|t| t.is_cancelled());
            if compatible && live {
                riders.push(idx);
                state.pending.remove(pos);
            } else {
                pos += 1;
            }
        }
        riders
    }

    /// Folds one finished outcome into the aggregate totals, stamps the
    /// entry's scheduling stats onto it, and stores it.
    fn finish(state: &mut SessionState, mut outcome: QueryOutcome, admitted: bool) {
        let idx = outcome.request;
        {
            let entry = &state.entries[idx];
            outcome.stats.deferrals = entry.deferrals;
            outcome.stats.overtaken = entry.overtaken;
            outcome.stats.queue_wait = entry.queue_wait.unwrap_or_default();
            outcome.stats.latency = entry.submitted_at.elapsed();
            outcome.stats.admission_seq = entry.admission_seq;
            outcome.stats.coalesced = entry.coalesced;
        }
        let agg = &mut state.agg;
        if admitted {
            agg.admitted += 1;
        }
        match &outcome.status {
            QueryStatus::Completed(_) => agg.completed += 1,
            QueryStatus::Cancelled(_) => agg.cancelled += 1,
            QueryStatus::Failed(_) => agg.failed += 1,
        }
        if let Some(result) = outcome.result() {
            agg.pairs += result.pairs;
            agg.io.merge(&result.io);
            agg.cpu.merge(&result.cpu);
            agg.peak_query_bytes = agg.peak_query_bytes.max(result.memory.peak_bytes);
        }
        agg.max_wait = agg.max_wait.max(outcome.stats.queue_wait);
        agg.total_wait += outcome.stats.queue_wait;
        agg.deferrals += outcome.stats.deferrals;
        state.entries[idx].outcome = Some(outcome);
    }

    /// Runs one admitted query on a fresh forked environment whose hard
    /// memory limit is the granted budget.
    fn execute_one(&self, idx: usize, request: &QueryRequest, granted: usize) -> QueryOutcome {
        let mut wenv = self.env.fork_with_base(Arc::clone(&self.base));
        wenv.set_memory_limit(granted);
        let mut sink = ServiceSink::new(request);
        let ran = match &request.kind {
            QueryKind::Join(spec) => self.run_join(&mut wenv, spec, &mut sink),
            QueryKind::StreamingJoin {
                left,
                right,
                predicate,
            } => self.run_streaming_join(&mut wenv, *left, *right, *predicate, &mut sink),
            QueryKind::Window { dataset, window } => {
                self.run_selection(&mut wenv, *dataset, *window, granted, &mut sink)
            }
            QueryKind::Point { dataset, point } => self.run_selection(
                &mut wenv,
                *dataset,
                Rect::from_coords(point.x, point.y, point.x, point.y),
                granted,
                &mut sink,
            ),
        };
        let status = match ran {
            Ok(result) if sink.cancelled => QueryStatus::Cancelled(Some(result)),
            Ok(result) => QueryStatus::Completed(result),
            Err(e) => QueryStatus::Failed(e),
        };
        QueryOutcome {
            request: idx,
            status,
            pairs: sink.collected,
            stats: QueryStats {
                admitted_bytes: granted,
                ..QueryStats::default()
            },
        }
    }

    /// Runs the leader and its riders as one R-tree traversal fanned out
    /// through per-query sinks. Each member observes exactly the item
    /// sequence its solo traversal would produce (the differential tests'
    /// byte-identity contract); a member's `LIMIT` or cancellation
    /// deactivates only its fan-out slot, and the traversal stops entirely
    /// once every member has broken. The scan's I/O, CPU and peak memory
    /// are accounted once, on the leader — riders report pair counts only.
    fn execute_shared_scan(
        &self,
        lead: &(usize, QueryRequest),
        riders: &[(usize, QueryRequest)],
        granted: usize,
    ) -> Vec<QueryOutcome> {
        let members: Vec<&(usize, QueryRequest)> =
            std::iter::once(lead).chain(riders.iter()).collect();
        let fail_all = |err: ServiceError| -> Vec<QueryOutcome> {
            members
                .iter()
                .enumerate()
                .map(|(k, (idx, _))| QueryOutcome {
                    request: *idx,
                    status: QueryStatus::Failed(err.clone()),
                    pairs: None,
                    stats: QueryStats {
                        admitted_bytes: if k == 0 { granted } else { 0 },
                        ..QueryStats::default()
                    },
                })
                .collect()
        };
        let dataset_id = match &lead.1.kind {
            QueryKind::Window { dataset, .. } | QueryKind::Point { dataset, .. } => *dataset,
            _ => unreachable!("shared scans coalesce selections only"),
        };
        let windows: Vec<Rect> = members
            .iter()
            .map(|(_, request)| match &request.kind {
                QueryKind::Window { window, .. } => *window,
                QueryKind::Point { point, .. } => {
                    Rect::from_coords(point.x, point.y, point.x, point.y)
                }
                _ => unreachable!("shared scans coalesce selections only"),
            })
            .collect();
        let ds = match self.dataset(dataset_id) {
            Ok(ds) => ds,
            Err(e) => return fail_all(e),
        };

        let mut wenv = self.env.fork_with_base(Arc::clone(&self.base));
        wenv.set_memory_limit(granted);
        let mut sinks: Vec<ServiceSink> =
            members.iter().map(|(_, request)| ServiceSink::new(request)).collect();
        let measurement = wenv.begin();
        wenv.memory.begin_phase();
        let mut store = NodeStore::with_capacity_bytes_gauged(granted, &wenv.memory);
        let scanned = {
            let slots: Vec<&mut dyn PairSink> =
                sinks.iter_mut().map(|s| s as &mut dyn PairSink).collect();
            let mut fanout = FanoutSink::new(slots);
            ds.tree()
                .multi_window_query(&mut wenv, &mut store, &windows, &mut |i, item| {
                    fanout.emit_to(i, item.id, 0)
                })
        };
        let delivered: u64 = sinks.iter().map(|s| s.delivered).sum();
        wenv.charge(CpuOp::OutputPair, delivered);
        let (io, cpu) = wenv.since(&measurement);
        if let Err(e) = scanned {
            return fail_all(ServiceError::Io(e));
        }

        let misses = store.stats().misses;
        let resident = store.resident_pages() * PAGE_SIZE;
        let peak = wenv.memory.peak();
        members
            .iter()
            .zip(sinks)
            .enumerate()
            .map(|(k, ((idx, _), sink))| {
                let leader = k == 0;
                let result = JoinResult {
                    pairs: sink.delivered,
                    io: if leader { io } else { IoStats::default() },
                    cpu: if leader { cpu } else { CpuCounter::default() },
                    index_page_requests: if leader { misses } else { 0 },
                    sweep: Default::default(),
                    memory: MemoryStats {
                        priority_queue_bytes: 0,
                        sweep_structure_bytes: 0,
                        other_bytes: if leader { resident } else { 0 },
                        peak_bytes: if leader { peak } else { 0 },
                    },
                };
                let status = if sink.cancelled {
                    QueryStatus::Cancelled(Some(result))
                } else {
                    QueryStatus::Completed(result)
                };
                QueryOutcome {
                    request: *idx,
                    status,
                    pairs: sink.collected,
                    stats: QueryStats {
                        admitted_bytes: if leader { granted } else { 0 },
                        ..QueryStats::default()
                    },
                }
            })
            .collect()
    }

    fn dataset(&self, id: DatasetId) -> Result<&Dataset> {
        self.catalog
            .get(id)
            .ok_or_else(|| ServiceError::UnknownDataset(format!("#{}", id.0)))
    }

    fn live_dataset(&self, id: LiveId) -> Result<&LiveDataset> {
        self.live
            .get(id)
            .ok_or_else(|| ServiceError::UnknownDataset(format!("live#{}", id.0)))
    }

    /// Runs a streaming symmetric join on the worker fork, over generation
    /// snapshots taken now — consistent views that stay valid however far
    /// ingestion advances between sessions. Streaming joins bypass the plan
    /// cache: there is nothing to plan (one operator, no algorithm choice),
    /// and the fingerprint space of a mutating dataset is unbounded.
    fn run_streaming_join(
        &self,
        wenv: &mut SimEnv,
        left: LiveId,
        right: LiveId,
        predicate: Predicate,
        sink: &mut ServiceSink,
    ) -> Result<JoinResult> {
        let snap_l = self.live_dataset(left)?.snapshot();
        let snap_r = self.live_dataset(right)?.snapshot();
        StreamingJoin::default()
            .with_predicate(predicate)
            .run(wenv, &snap_l, &snap_r, sink)
            .map_err(ServiceError::from)
    }

    fn run_join(
        &self,
        wenv: &mut SimEnv,
        spec: &JoinSpec,
        sink: &mut ServiceSink,
    ) -> Result<JoinResult> {
        let left = self.dataset(spec.left)?.input();
        let right = self.dataset(spec.right)?.input();
        let query = SpatialQuery::new(left, right)
            .algorithm(spec.algo)
            .predicate(spec.predicate)
            .execution(spec.execution);
        // The reported accounting covers the query end to end on its forked
        // environment — planning included. This is what makes the plan
        // cache's saving visible: a cache hit skips the planner's
        // cost-estimation I/O, so the repeat query's `JoinResult.io` is
        // strictly smaller.
        let measurement = wenv.begin();
        let plan = if self.config.use_plan_cache {
            let key = PlanKey::new(spec);
            // Get-or-insert under one guard: concurrent identical queries
            // must not both miss and plan twice (each shape is planned
            // exactly once per service lifetime). Planning while holding
            // the cache lock briefly serializes concurrent *planning* —
            // execution, the expensive part, stays fully concurrent.
            let mut cache = self.plan_cache.lock().expect("plan cache poisoned");
            match cache.lookup(&key) {
                Some(plan) => plan,
                None => {
                    let plan = query.plan(wenv)?;
                    cache.insert(key, plan.clone());
                    plan
                }
            }
        } else {
            query.plan(wenv)?
        };
        let mut result = query.execute_planned(wenv, &plan, sink)?;
        let (io, cpu) = wenv.since(&measurement);
        result.io = io;
        result.cpu = cpu;
        // Feed the admission estimator: remember the gauge peak of this
        // fingerprint, but only from runs that went to completion —
        // LIMIT-truncated or cancelled runs stop early and under-state the
        // query's true footprint.
        if self.config.use_plan_cache && sink.limit.is_none() && !sink.cancelled {
            self.plan_cache
                .lock()
                .expect("plan cache poisoned")
                .record_peak(PlanKey::new(spec), result.memory.peak_bytes);
        }
        Ok(result)
    }

    fn run_selection(
        &self,
        wenv: &mut SimEnv,
        dataset: DatasetId,
        window: Rect,
        granted: usize,
        sink: &mut ServiceSink,
    ) -> Result<JoinResult> {
        let ds = self.dataset(dataset)?;
        let measurement = wenv.begin();
        wenv.memory.begin_phase();
        let mut store = NodeStore::with_capacity_bytes_gauged(granted, &wenv.memory);
        ds.tree()
            .window_query_via(wenv, &mut store, &window, &mut |item| {
                sink.emit(item.id, 0)
            })?;
        wenv.charge(CpuOp::OutputPair, sink.delivered);
        let (io, cpu) = wenv.since(&measurement);
        Ok(JoinResult {
            pairs: sink.delivered,
            io,
            cpu,
            index_page_requests: store.stats().misses,
            sweep: Default::default(),
            memory: MemoryStats {
                priority_queue_bytes: 0,
                sweep_structure_bytes: 0,
                other_bytes: store.resident_pages() * PAGE_SIZE,
                peak_bytes: wenv.memory.peak(),
            },
        })
    }
}

/// The sink every service query streams through: counts, optionally
/// collects, enforces `LIMIT`, and observes the cancellation token — all by
/// steering the producer with `ControlFlow`, so a stopped query stops
/// *reading*, not just reporting.
struct ServiceSink {
    collected: Option<Vec<(u32, u32)>>,
    delivered: u64,
    limit: Option<u64>,
    cancel: Option<CancelToken>,
    cancelled: bool,
}

impl ServiceSink {
    fn new(request: &QueryRequest) -> Self {
        ServiceSink {
            collected: request.collect.then(Vec::new),
            delivered: 0,
            limit: request.limit,
            cancel: request.cancel.clone(),
            cancelled: false,
        }
    }
}

impl PairSink for ServiceSink {
    fn emit(&mut self, left: u32, right: u32) -> ControlFlow<()> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                self.cancelled = true;
                return ControlFlow::Break(());
            }
        }
        if self.limit.is_some_and(|l| self.delivered >= l) {
            return ControlFlow::Break(());
        }
        if let Some(pairs) = &mut self.collected {
            pairs.push((left, right));
        }
        self.delivered += 1;
        ControlFlow::Continue(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_geom::Item;
    use usj_io::MachineConfig;

    fn grid(n: u32, cell: f32, offset: f32, id_base: u32) -> Vec<Item> {
        let mut out = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let x = offset + i as f32 * cell;
                let y = offset + j as f32 * cell;
                out.push(Item::new(
                    Rect::from_coords(x, y, x + cell * 0.7, y + cell * 0.7),
                    id_base + i * n + j,
                ));
            }
        }
        out
    }

    fn service_over(
        a: &[Item],
        b: &[Item],
        config: ServiceConfig,
    ) -> (Service, DatasetId, DatasetId) {
        let mut env = SimEnv::new(MachineConfig::machine3());
        let mut catalog = Catalog::new();
        let ia = catalog.register(&mut env, "a", a).unwrap();
        let ib = catalog.register(&mut env, "b", b).unwrap();
        (Service::new(env, catalog, config), ia, ib)
    }

    #[test]
    fn joins_and_selections_complete_with_correct_counts() {
        let a = grid(15, 4.0, 0.0, 0);
        let b = grid(15, 4.0, 1.5, 100_000);
        let expected: u64 = a
            .iter()
            .map(|x| b.iter().filter(|y| x.rect.intersects(&y.rect)).count() as u64)
            .sum();
        let window = Rect::from_coords(0.0, 0.0, 20.0, 20.0);
        let in_window = a.iter().filter(|it| it.rect.intersects(&window)).count() as u64;

        let (service, ia, ib) = service_over(&a, &b, ServiceConfig::default().with_workers(3));
        let report = service.run(vec![
            QueryRequest::join(ia, ib).with_algorithm(Algo::Pq),
            QueryRequest::join(ia, ib).with_algorithm(Algo::Sssj),
            QueryRequest::join(ia, ib).with_algorithm(Algo::St),
            QueryRequest::window(ia, window),
        ]);
        assert_eq!(report.stats.completed, 4);
        assert_eq!(report.stats.failed, 0);
        for outcome in &report.outcomes[..3] {
            assert_eq!(outcome.result().unwrap().pairs, expected, "join #{}", outcome.request);
        }
        assert_eq!(report.outcomes[3].result().unwrap().pairs, in_window);
        assert!(report.outcomes[3].result().unwrap().index_page_requests > 0);
        assert_eq!(report.stats.pairs, expected * 3 + in_window);
    }

    #[test]
    fn collected_pairs_match_count_only_runs() {
        let a = grid(10, 4.0, 0.0, 0);
        let (service, ia, _) = service_over(&a, &a, ServiceConfig::default());
        let report = service.run(vec![
            QueryRequest::join(ia, ia).with_algorithm(Algo::Pq).collecting(),
            QueryRequest::join(ia, ia).with_algorithm(Algo::Pq),
        ]);
        let collected = report.outcomes[0].pairs.as_ref().unwrap();
        assert_eq!(collected.len() as u64, report.outcomes[1].result().unwrap().pairs);
        assert!(report.outcomes[1].pairs.is_none());
    }

    #[test]
    fn limits_stop_selection_io_early() {
        let a = grid(60, 4.0, 0.0, 0);
        let (service, ia, _) = service_over(&a, &a, ServiceConfig::default().with_workers(1));
        let window = Rect::from_coords(0.0, 0.0, 240.0, 240.0);
        let report = service.run(vec![
            QueryRequest::window(ia, window),
            QueryRequest::window(ia, window).with_limit(3).collecting(),
        ]);
        let full = report.outcomes[0].result().unwrap();
        let limited = report.outcomes[1].result().unwrap();
        assert_eq!(limited.pairs, 3);
        assert_eq!(report.outcomes[1].pairs.as_ref().unwrap().len(), 3);
        assert!(
            limited.io.pages_read < full.io.pages_read,
            "LIMIT must stop the traversal early ({} vs {})",
            limited.io.pages_read,
            full.io.pages_read
        );
    }

    #[test]
    fn pre_cancelled_requests_never_run() {
        let a = grid(8, 4.0, 0.0, 0);
        let (service, ia, _) = service_over(&a, &a, ServiceConfig::default());
        let token = CancelToken::new();
        token.cancel();
        let report = service.run(vec![
            QueryRequest::join(ia, ia).with_cancel(token.clone()),
            QueryRequest::join(ia, ia),
        ]);
        assert!(matches!(report.outcomes[0].status, QueryStatus::Cancelled(None)));
        assert!(report.outcomes[1].is_completed());
        assert_eq!(report.stats.cancelled, 1);
        assert_eq!(report.stats.completed, 1);
        assert_eq!(report.stats.admitted, 1);
    }

    #[test]
    fn unknown_datasets_fail_cleanly() {
        let a = grid(6, 4.0, 0.0, 0);
        let (service, ia, _) = service_over(&a, &a, ServiceConfig::default());
        let report = service.run(vec![
            QueryRequest::join(ia, DatasetId(99)),
            QueryRequest::window(DatasetId(42), Rect::from_coords(0.0, 0.0, 1.0, 1.0)),
        ]);
        for outcome in &report.outcomes {
            assert!(
                matches!(&outcome.status, QueryStatus::Failed(ServiceError::UnknownDataset(_))),
                "{:?}",
                outcome.status
            );
        }
        assert_eq!(report.stats.failed, 2);
    }

    #[test]
    fn priorities_admit_before_fifo_order() {
        let a = grid(10, 4.0, 0.0, 0);
        // One worker: execution order equals admission order.
        let (service, ia, _) = service_over(&a, &a, ServiceConfig::default().with_workers(1));
        let report = service.run(vec![
            QueryRequest::join(ia, ia).with_algorithm(Algo::Sssj),
            QueryRequest::join(ia, ia).with_algorithm(Algo::Sssj).with_priority(5),
            QueryRequest::join(ia, ia).with_algorithm(Algo::Sssj).with_priority(5),
        ]);
        // The priority-5 requests waited less than the priority-0 one which
        // was submitted first but admitted last.
        let w0 = report.outcomes[0].stats.queue_wait;
        let w1 = report.outcomes[1].stats.queue_wait;
        let w2 = report.outcomes[2].stats.queue_wait;
        assert!(w1 <= w0 && w2 <= w0, "{w0:?} {w1:?} {w2:?}");
        assert!(w1 <= w2, "FIFO within a priority");
    }

    #[test]
    fn admission_respects_the_shared_budget_and_records_deferrals() {
        let a = grid(12, 4.0, 0.0, 0);
        let limit = 4 * 1024 * 1024;
        let (service, ia, ib) = service_over(
            &a,
            &a,
            ServiceConfig::default().with_workers(4).with_memory_limit(limit),
        );
        // Each request demands 3 MB of the 4 MB budget: only one runs at a
        // time even though four workers are free.
        let requests: Vec<QueryRequest> = (0..6)
            .map(|_| {
                QueryRequest::join(ia, ib)
                    .with_algorithm(Algo::Sssj)
                    .with_memory_budget(3 * 1024 * 1024)
            })
            .collect();
        let report = service.run(requests);
        assert_eq!(report.stats.completed, 6);
        assert!(report.stats.deferrals > 0, "free workers must have deferred");
        assert!(report.stats.peak_admitted_bytes <= limit);
        for outcome in &report.outcomes {
            assert_eq!(outcome.stats.admitted_bytes, 3 * 1024 * 1024);
            let result = outcome.result().unwrap();
            assert!(result.memory.peak_bytes <= outcome.stats.admitted_bytes);
        }
    }

    #[test]
    fn unadmittable_requests_fail_instead_of_deadlocking() {
        let a = grid(6, 4.0, 0.0, 0);
        // A zero shared budget can never admit anything: the scheduler must
        // fail the requests loudly rather than park its workers forever.
        let (service, ia, _) = service_over(
            &a,
            &a,
            ServiceConfig::default().with_workers(2).with_memory_limit(0),
        );
        let report = service.run(vec![
            QueryRequest::join(ia, ia),
            QueryRequest::window(ia, Rect::from_coords(0.0, 0.0, 1.0, 1.0)),
        ]);
        for outcome in &report.outcomes {
            assert!(
                matches!(
                    outcome.status,
                    QueryStatus::Failed(ServiceError::Io(IoSimError::MemoryLimitExceeded { .. }))
                ),
                "{:?}",
                outcome.status
            );
        }
        assert_eq!(report.stats.failed, 2);
        assert_eq!(report.stats.admitted, 0);

        // A query whose *granted* budget is too small for its working set
        // fails at run time with the same error, reported per query.
        let b = grid(40, 4.0, 0.0, 0);
        let (tight, ib, _) = service_over(
            &b,
            &b,
            ServiceConfig::default().with_workers(1).with_memory_limit(8 * 1024),
        );
        let report = tight.run(vec![QueryRequest::join(ib, ib).with_algorithm(Algo::Sssj)]);
        assert!(
            matches!(
                report.outcomes[0].status,
                QueryStatus::Failed(ServiceError::Io(IoSimError::MemoryLimitExceeded { .. }))
            ),
            "{:?}",
            report.outcomes[0].status
        );
    }

    #[test]
    fn plan_cache_reuses_plans_across_identical_queries() {
        // Large enough that the trees have internal levels: the Auto
        // estimate's directory probes then cost real, measurable I/O.
        let a = grid(40, 4.0, 0.0, 0);
        let b = grid(40, 4.0, 1.5, 100_000);
        let (service, ia, ib) = service_over(&a, &b, ServiceConfig::default().with_workers(1));
        let request = || QueryRequest::join(ia, ib).with_algorithm(Algo::Auto);
        let report = service.run(vec![request(), request(), request()]);
        assert_eq!(report.stats.completed, 3);
        assert_eq!(report.stats.plan_cache_misses, 1);
        assert_eq!(report.stats.plan_cache_hits, 2);
        // All three deliver identical pair counts...
        let pairs: Vec<u64> = report
            .outcomes
            .iter()
            .map(|o| o.result().unwrap().pairs)
            .collect();
        assert_eq!(pairs[0], pairs[1]);
        assert_eq!(pairs[1], pairs[2]);
        // ...and the cached repeats skip the Auto estimate's directory
        // probes, so they charge strictly less I/O.
        let first = report.outcomes[0].result().unwrap().io.pages_read;
        let repeat = report.outcomes[1].result().unwrap().io.pages_read;
        assert!(repeat < first, "cached plan must save I/O ({repeat} vs {first})");
    }

    #[test]
    fn parallel_execution_runs_inside_a_worker() {
        let a = grid(14, 4.0, 0.0, 0);
        let b = grid(14, 4.0, 1.0, 100_000);
        let (service, ia, ib) = service_over(&a, &b, ServiceConfig::default().with_workers(2));
        let report = service.run(vec![
            QueryRequest::join(ia, ib).with_algorithm(Algo::Pbsm),
            QueryRequest::join(ia, ib)
                .with_algorithm(Algo::Pbsm)
                .with_execution(Execution::parallel()),
        ]);
        assert_eq!(report.stats.completed, 2);
        assert_eq!(
            report.outcomes[0].result().unwrap().pairs,
            report.outcomes[1].result().unwrap().pairs
        );
    }

    #[test]
    fn point_selection_matches_brute_force() {
        let a = grid(12, 5.0, 0.0, 0);
        let (service, ia, _) = service_over(&a, &a, ServiceConfig::default());
        let p = Point::new(17.0, 22.0);
        let expected = a
            .iter()
            .filter(|it| {
                it.rect.contains(&Rect::from_coords(p.x, p.y, p.x, p.y))
            })
            .count() as u64;
        let report = service.run(vec![QueryRequest::point(ia, p).collecting()]);
        let outcome = &report.outcomes[0];
        assert_eq!(outcome.result().unwrap().pairs, expected);
        assert_eq!(outcome.pairs.as_ref().unwrap().len() as u64, expected);
    }

    #[test]
    fn session_accepts_submissions_while_workers_run() {
        let a = grid(10, 4.0, 0.0, 0);
        let (service, ia, _) = service_over(&a, &a, ServiceConfig::default().with_workers(2));
        let window = Rect::from_coords(0.0, 0.0, 20.0, 20.0);
        let ((), report) = service.with_session(|session| {
            for k in 0..6 {
                let idx = session.submit(if k % 2 == 0 {
                    QueryRequest::join(ia, ia).with_algorithm(Algo::Sssj)
                } else {
                    QueryRequest::window(ia, window)
                });
                assert_eq!(idx, k);
            }
            assert_eq!(session.submitted(), 6);
            // Depth and running are sampled live; both are bounded by what
            // was submitted.
            assert!(session.queue_depth() <= 6);
        });
        assert_eq!(report.stats.submitted, 6);
        assert_eq!(report.stats.completed, 6);
        for (i, outcome) in report.outcomes.iter().enumerate() {
            assert_eq!(outcome.request, i, "outcomes stay in submission order");
            assert!(outcome.stats.latency >= outcome.stats.queue_wait);
            assert!(outcome.stats.admission_seq.is_some());
        }
    }

    fn selection_mix(ia: DatasetId) -> Vec<QueryRequest> {
        vec![
            QueryRequest::window(ia, Rect::from_coords(0.0, 0.0, 30.0, 30.0)).collecting(),
            QueryRequest::window(ia, Rect::from_coords(10.0, 10.0, 80.0, 80.0)).collecting(),
            QueryRequest::window(ia, Rect::from_coords(0.0, 0.0, 80.0, 80.0))
                .with_limit(5)
                .collecting(),
            QueryRequest::point(ia, Point::new(17.0, 22.0)).collecting(),
            QueryRequest::window(ia, Rect::from_coords(-5.0, -5.0, -1.0, -1.0)).collecting(),
        ]
    }

    #[test]
    fn shared_scans_match_serial_execution_byte_for_byte() {
        let a = grid(20, 4.0, 0.0, 0);
        let (serial, ia, _) = service_over(&a, &a, ServiceConfig::default().with_workers(1));
        let (batched, ib, _) = service_over(
            &a,
            &a,
            ServiceConfig::default().with_workers(1).with_shared_scans(true),
        );
        assert_eq!(ia, ib, "identical registration order gives identical ids");
        let serial_report = serial.run(selection_mix(ia));
        let batched_report = batched.run(selection_mix(ib));

        // One worker, everything queued up front: the whole mix rides one
        // scan.
        assert_eq!(batched_report.stats.shared_scans, 1);
        assert_eq!(batched_report.stats.coalesced, 4);
        assert_eq!(serial_report.stats.shared_scans, 0);

        for (s, b) in serial_report.outcomes.iter().zip(&batched_report.outcomes) {
            assert!(s.is_completed() && b.is_completed());
            assert_eq!(
                s.result().unwrap().pairs,
                b.result().unwrap().pairs,
                "request #{}",
                s.request
            );
            assert_eq!(s.pairs, b.pairs, "request #{}: byte-identical pair lists", s.request);
        }
        assert_eq!(serial_report.stats.pairs, batched_report.stats.pairs);
        // The shared scan reads the tree once instead of five times.
        assert!(
            batched_report.stats.io.pages_read < serial_report.stats.io.pages_read,
            "coalescing must save I/O ({} vs {})",
            batched_report.stats.io.pages_read,
            serial_report.stats.io.pages_read
        );
        // Riders hold no budget of their own.
        for outcome in &batched_report.outcomes {
            if outcome.stats.coalesced {
                assert_eq!(outcome.stats.admitted_bytes, 0);
            }
        }
    }

    #[test]
    fn shared_scans_do_not_coalesce_across_datasets_or_joins() {
        let a = grid(12, 4.0, 0.0, 0);
        let b = grid(12, 4.0, 1.0, 50_000);
        let (service, ia, ib) = service_over(
            &a,
            &b,
            ServiceConfig::default().with_workers(1).with_shared_scans(true),
        );
        let window = Rect::from_coords(0.0, 0.0, 30.0, 30.0);
        let report = service.run(vec![
            QueryRequest::window(ia, window),
            QueryRequest::join(ia, ib).with_algorithm(Algo::Sssj),
            QueryRequest::window(ib, window),
        ]);
        assert_eq!(report.stats.completed, 3);
        // Nothing compatible to coalesce: different datasets, and the join
        // never batches.
        assert_eq!(report.stats.shared_scans, 0);
        assert_eq!(report.stats.coalesced, 0);
    }

    #[test]
    fn overtakes_are_bounded_and_stamped() {
        let a = grid(30, 4.0, 0.0, 0);
        let limit = 4 * 1024 * 1024;
        let (service, ia, _) = service_over(
            &a,
            &a,
            ServiceConfig::default()
                .with_workers(2)
                .with_memory_limit(limit)
                .with_max_overtakes(2),
        );
        // A long heavy join runs first; a second heavy join blocks on the
        // gauge while cheap selections are free to overtake it — but no
        // more than max_overtakes times.
        let heavy = || {
            QueryRequest::join(ia, ia)
                .with_algorithm(Algo::Sssj)
                .with_memory_budget(3 * 1024 * 1024)
        };
        let mut requests = vec![heavy(), heavy()];
        for _ in 0..6 {
            requests.push(QueryRequest::window(ia, Rect::from_coords(0.0, 0.0, 10.0, 10.0)));
        }
        let report = service.run(requests);
        assert_eq!(report.stats.completed, 8);
        for outcome in &report.outcomes {
            assert!(
                outcome.stats.overtaken <= 2,
                "request #{} overtaken {} times (> max_overtakes)",
                outcome.request,
                outcome.stats.overtaken
            );
        }
    }

    #[test]
    fn queue_wait_is_anchored_at_first_enqueue() {
        // Regression test for the deferred-wait accounting fix: a request
        // that sits behind a running query must report the full span from
        // its first enqueue to its admission, not the residue since its
        // last failed admission attempt.
        let a = grid(30, 4.0, 0.0, 0);
        let limit = 4 * 1024 * 1024;
        let (service, ia, _) = service_over(
            &a,
            &a,
            ServiceConfig::default().with_workers(2).with_memory_limit(limit),
        );
        // Both demand 3 of the 4 MB: strictly serialized by the gauge even
        // though two workers are free, so the second's queue wait covers
        // the first's entire execution.
        let heavy = || {
            QueryRequest::join(ia, ia)
                .with_algorithm(Algo::Sssj)
                .with_memory_budget(3 * 1024 * 1024)
        };
        let report = service.run(vec![heavy(), heavy()]);
        assert_eq!(report.stats.completed, 2);
        let first = &report.outcomes[0].stats;
        let second = &report.outcomes[1].stats;
        assert!(second.deferrals > 0, "the second must have been deferred");
        let first_execution = first.latency.saturating_sub(first.queue_wait);
        assert!(
            second.queue_wait >= first_execution / 2,
            "deferred wait must cover the blocking query's execution \
             ({:?} vs execution {:?})",
            second.queue_wait,
            first_execution
        );
        assert!(second.latency >= second.queue_wait);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let a = grid(4, 4.0, 0.0, 0);
        let (service, _, _) = service_over(&a, &a, ServiceConfig::default());
        let report = service.run(Vec::new());
        assert!(report.outcomes.is_empty());
        assert_eq!(report.stats.submitted, 0);
        let text = format!("{}", report.stats);
        assert!(text.contains("0 submitted"), "{text}");
    }

    fn brute_pairs(a: &[Item], b: &[Item]) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for x in a {
            for y in b {
                if x.rect.intersects(&y.rect) {
                    out.push((x.id, y.id));
                }
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn streaming_joins_run_over_live_datasets_through_the_service() {
        let a = grid(12, 4.0, 0.0, 0);
        let b = grid(12, 4.0, 1.5, 100_000);
        let (mut service, _, _) = service_over(&a, &b, ServiceConfig::default().with_workers(2));
        // Register with part of each dataset, then ingest the rest through
        // appends — flushes and compactions happen behind the thresholds.
        let config = LiveConfig {
            flush_threshold_bytes: 40 * ITEM_BYTES,
            compact_after_deltas: 2,
        };
        let la = service.register_live("live_a", &a[..60], config).unwrap();
        let lb = service.register_live("live_b", &b[..30], config).unwrap();
        for chunk in a[60..].chunks(37) {
            service.append_live("live_a", chunk).unwrap();
        }
        for chunk in b[30..].chunks(53) {
            service.append_live("live_b", chunk).unwrap();
        }
        assert_eq!(service.live().lookup("live_a").map(|(id, _)| id), Some(la));

        let expected = brute_pairs(&a, &b);
        let report = service.run(vec![
            QueryRequest::streaming_join(la, lb).collecting(),
            QueryRequest::streaming_join(la, lb),
            QueryRequest::streaming_join(la, lb).with_limit(7).collecting(),
        ]);
        assert_eq!(report.stats.completed, 3);
        let mut collected = report.outcomes[0].pairs.clone().unwrap();
        collected.sort_unstable();
        assert_eq!(collected, expected);
        assert_eq!(report.outcomes[1].result().unwrap().pairs, expected.len() as u64);
        // LIMIT truncates the stream to an exact prefix of true pairs.
        let limited = report.outcomes[2].pairs.as_ref().unwrap();
        assert_eq!(limited.len(), 7.min(expected.len()));
        for p in limited {
            assert!(expected.binary_search(p).is_ok(), "{p:?} not a result pair");
        }
    }

    #[test]
    fn live_registration_rejects_duplicates_and_unknown_ids_fail_cleanly() {
        let a = grid(6, 4.0, 0.0, 0);
        let (mut service, _, _) = service_over(&a, &a, ServiceConfig::default());
        let la = service
            .register_live("points", &a, LiveConfig::default())
            .unwrap();
        assert!(matches!(
            service.register_live("points", &a, LiveConfig::default()),
            Err(ServiceError::DuplicateDataset(_))
        ));
        assert!(matches!(
            service.append_live("nowhere", &a),
            Err(ServiceError::UnknownDataset(_))
        ));
        let report = service.run(vec![QueryRequest::streaming_join(la, LiveId(99))]);
        assert!(
            matches!(
                &report.outcomes[0].status,
                QueryStatus::Failed(ServiceError::UnknownDataset(_))
            ),
            "{:?}",
            report.outcomes[0].status
        );
    }

    #[test]
    fn measured_peaks_tighten_repeat_admission() {
        // First run of a fingerprint is admitted on the 3x-input-size
        // heuristic; once a completed run has recorded its real gauge peak,
        // repeats are admitted on peak + 25% — a strictly smaller claim
        // here, so the same shared budget packs more concurrent queries.
        let a = grid(20, 4.0, 0.0, 0);
        let b = grid(20, 4.0, 1.5, 100_000);
        let (service, ia, ib) = service_over(&a, &b, ServiceConfig::default().with_workers(1));
        let request = || QueryRequest::join(ia, ib).with_algorithm(Algo::Sssj);

        let first = service.run(vec![request()]);
        let second = service.run(vec![request()]);
        let (o1, o2) = (&first.outcomes[0], &second.outcomes[0]);
        assert!(o1.is_completed() && o2.is_completed());
        assert_eq!(o1.result().unwrap().pairs, o2.result().unwrap().pairs);
        assert!(
            o2.stats.admitted_bytes < o1.stats.admitted_bytes,
            "measured-peak admission must be denser than the heuristic \
             ({} vs {})",
            o2.stats.admitted_bytes,
            o1.stats.admitted_bytes
        );
        // The margin really covers the run: the repeat finished inside its
        // tighter budget.
        assert!(o2.result().unwrap().memory.peak_bytes <= o2.stats.admitted_bytes);
    }

    #[test]
    fn truncated_runs_never_poison_admission_estimates() {
        // A LIMIT-stopped run's peak under-states the query's footprint; it
        // must not be recorded, so the repeat is still admitted on the
        // conservative heuristic.
        let a = grid(20, 4.0, 0.0, 0);
        let b = grid(20, 4.0, 1.5, 100_000);
        let (service, ia, ib) = service_over(&a, &b, ServiceConfig::default().with_workers(1));
        let limited = service.run(vec![QueryRequest::join(ia, ib)
            .with_algorithm(Algo::Sssj)
            .with_limit(1)]);
        assert!(limited.outcomes[0].is_completed());
        let repeat = service.run(vec![QueryRequest::join(ia, ib).with_algorithm(Algo::Sssj)]);
        assert_eq!(
            repeat.outcomes[0].stats.admitted_bytes,
            limited.outcomes[0].stats.admitted_bytes,
            "a truncated run must not shrink the next admission"
        );
    }
}
