//! The concurrent query service: worker pool, FIFO+priority admission
//! queue, gauge-based admission control.
//!
//! A [`Service`] freezes a registered [`Catalog`] behind a read-only device
//! snapshot and executes batches of [`QueryRequest`]s on a pool of worker
//! threads. The scheduling contract:
//!
//! * **Admission order** is priority-then-FIFO: higher
//!   [`priority`](QueryRequest::priority) first, submission order within a
//!   priority.
//! * **Admission control** is *gauge-based*: every request carries a memory
//!   estimate (its [`admission_estimate`](Service::admission_estimate), or an
//!   explicit [`memory_budget`](QueryRequest::memory_budget)), and is
//!   admitted only when the service-wide admission
//!   [`MemoryGauge`] — whose limit is the shared
//!   [`ServiceConfig::memory_limit`] — can reserve that many bytes. A free
//!   worker that cannot admit a request records a **deferral** and either
//!   admits a later (smaller or lower-priority) request or sleeps until a
//!   running query releases its reservation. The admitted bytes become the
//!   worker environment's *hard* memory limit, so the measured per-query
//!   `peak_bytes` can never exceed the granted budget, and the sum of
//!   concurrently granted budgets can never exceed the shared limit —
//!   admission control *bounds the aggregate footprint by construction*.
//! * **Isolation**: every admitted query runs on
//!   [`SimEnv::fork_with_base`] over the catalog snapshot — its own I/O
//!   statistics and disk head, its own scratch pages, its own memory gauge.
//! * **Results** stream through the `PairSink`/`ControlFlow` machinery:
//!   `LIMIT` and [`CancelToken`] cancellation genuinely stop the producing
//!   traversal, saving I/O.

use std::cmp::Reverse;
use std::fmt;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use usj_core::{
    Algo, Execution, JoinResult, MemoryStats, PairSink, Predicate, SpatialQuery,
};
use usj_geom::{Point, Rect, ITEM_BYTES};
use usj_io::{CpuCounter, CpuOp, IoSimError, IoStats, MemoryGauge, Page, SimEnv, PAGE_SIZE};
use usj_rtree::NodeStore;

use crate::catalog::{Catalog, Dataset, DatasetId};
use crate::plan_cache::{PlanCache, PlanKey};
use crate::{Result, ServiceError};

/// Smallest budget any query is granted (stream block buffers plus sweep
/// floors make smaller grants fail immediately).
pub const MIN_QUERY_BUDGET: usize = 512 * 1024;

/// Default admission floor for join queries: two 512 KiB stream read
/// buffers plus sweep/partition working sets.
pub const JOIN_BUDGET_FLOOR: usize = 2 * 1024 * 1024;

/// Default admission estimate for window/point selections (node-store pool
/// plus traversal state).
pub const SELECTION_BUDGET: usize = 1024 * 1024;

/// Configuration of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing admitted queries (at least 1; default 4).
    pub workers: usize,
    /// The shared admission budget in bytes: the sum of the budgets of all
    /// concurrently running queries never exceeds it (default: the paper's
    /// 24 MB free-memory figure).
    pub memory_limit: usize,
    /// Whether completed query plans are memoized by fingerprint
    /// (default: on).
    pub use_plan_cache: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            memory_limit: usj_io::sim::DEFAULT_MEMORY_LIMIT,
            use_plan_cache: true,
        }
    }
}

impl ServiceConfig {
    /// Sets the worker count (builder style).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the shared admission budget in bytes (builder style).
    pub fn with_memory_limit(mut self, bytes: usize) -> Self {
        self.memory_limit = bytes;
        self
    }

    /// Disables the plan cache (builder style).
    pub fn without_plan_cache(mut self) -> Self {
        self.use_plan_cache = false;
        self
    }
}

/// A shared cancellation flag for one or more queries.
///
/// Setting it makes queued queries resolve to
/// [`QueryStatus::Cancelled`] without running, and makes running queries
/// stop at their next emitted pair (the sink breaks the producing join or
/// traversal, so the remaining I/O is genuinely saved).
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a token in the not-cancelled state.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// The join form of a [`QueryRequest`]: which cataloged datasets, which
/// algorithm, predicate and execution strategy.
#[derive(Debug, Clone, Copy)]
pub struct JoinSpec {
    /// Left input dataset.
    pub left: DatasetId,
    /// Right input dataset.
    pub right: DatasetId,
    /// Join algorithm (default [`Algo::Auto`]).
    pub algo: Algo,
    /// Pair predicate (default intersection).
    pub predicate: Predicate,
    /// Execution strategy (default serial).
    pub execution: Execution,
}

impl JoinSpec {
    /// A default (Auto, intersects, serial) join of `left` against `right`.
    pub fn new(left: DatasetId, right: DatasetId) -> Self {
        JoinSpec {
            left,
            right,
            algo: Algo::default(),
            predicate: Predicate::default(),
            execution: Execution::default(),
        }
    }
}

/// What a [`QueryRequest`] asks for.
#[derive(Debug, Clone, Copy)]
pub enum QueryKind {
    /// A spatial join of two cataloged datasets.
    Join(JoinSpec),
    /// An index-backed window selection: every item of `dataset`
    /// intersecting `window`, streamed as `(id, 0)` pairs.
    Window {
        /// The cataloged dataset to select from.
        dataset: DatasetId,
        /// The query window.
        window: Rect,
    },
    /// An index-backed point (stabbing) selection: every item of `dataset`
    /// containing `point`, streamed as `(id, 0)` pairs.
    Point {
        /// The cataloged dataset to select from.
        dataset: DatasetId,
        /// The query point.
        point: Point,
    },
}

/// One query submitted to the service.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// What to run.
    pub kind: QueryKind,
    /// Admission priority: higher priorities are admitted first; submission
    /// order breaks ties (FIFO within a priority).
    pub priority: u8,
    /// Stop after this many delivered pairs (`LIMIT n`).
    pub limit: Option<u64>,
    /// Whether to collect the delivered pairs into the outcome (off by
    /// default — the paper's measurement mode discards output).
    pub collect: bool,
    /// Explicit per-query memory budget in bytes, overriding the service's
    /// admission estimate (clamped to `[MIN_QUERY_BUDGET, memory_limit]`).
    pub memory_budget: Option<usize>,
    /// Cooperative cancellation flag.
    pub cancel: Option<CancelToken>,
}

impl QueryRequest {
    fn with_kind(kind: QueryKind) -> Self {
        QueryRequest {
            kind,
            priority: 0,
            limit: None,
            collect: false,
            memory_budget: None,
            cancel: None,
        }
    }

    /// A default join request of `left` against `right`.
    pub fn join(left: DatasetId, right: DatasetId) -> Self {
        Self::with_kind(QueryKind::Join(JoinSpec::new(left, right)))
    }

    /// A join request with an explicit specification.
    pub fn from_spec(spec: JoinSpec) -> Self {
        Self::with_kind(QueryKind::Join(spec))
    }

    /// A window-selection request.
    pub fn window(dataset: DatasetId, window: Rect) -> Self {
        Self::with_kind(QueryKind::Window { dataset, window })
    }

    /// A point-selection request.
    pub fn point(dataset: DatasetId, point: Point) -> Self {
        Self::with_kind(QueryKind::Point { dataset, point })
    }

    /// Selects the join algorithm (builder style; no-op for selections).
    pub fn with_algorithm(mut self, algo: Algo) -> Self {
        if let QueryKind::Join(spec) = &mut self.kind {
            spec.algo = algo;
        }
        self
    }

    /// Selects the join predicate (builder style; no-op for selections).
    pub fn with_predicate(mut self, predicate: Predicate) -> Self {
        if let QueryKind::Join(spec) = &mut self.kind {
            spec.predicate = predicate;
        }
        self
    }

    /// Selects the join execution strategy (builder style; no-op for
    /// selections).
    pub fn with_execution(mut self, execution: Execution) -> Self {
        if let QueryKind::Join(spec) = &mut self.kind {
            spec.execution = execution;
        }
        self
    }

    /// Sets the admission priority (builder style).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Sets a `LIMIT` on delivered pairs (builder style).
    pub fn with_limit(mut self, limit: u64) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Collects the delivered pairs into the outcome (builder style).
    pub fn collecting(mut self) -> Self {
        self.collect = true;
        self
    }

    /// Sets an explicit per-query memory budget (builder style).
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Attaches a cancellation token (builder style).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }
}

/// How one query ended.
#[derive(Debug, Clone)]
pub enum QueryStatus {
    /// The query ran to completion (or to its `LIMIT`); the accounting
    /// summary covers exactly the work its forked environment performed.
    Completed(JoinResult),
    /// The query was cancelled: `None` if it never ran, `Some(partial)` with
    /// the accounting of the work done before the cancellation stopped it.
    Cancelled(Option<JoinResult>),
    /// The query failed (unknown dataset, or its admitted memory budget was
    /// genuinely insufficient).
    Failed(ServiceError),
}

/// Per-query scheduling statistics.
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// Bytes reserved on the admission gauge for this query (zero if it was
    /// never admitted). The worker environment's hard memory limit.
    pub admitted_bytes: usize,
    /// Times a free worker examined this request and could not admit it for
    /// lack of gauge headroom.
    pub deferrals: u64,
    /// Wall-clock time from submission to admission (or to resolution, for
    /// queries that never ran).
    pub queue_wait: Duration,
}

/// The outcome of one submitted query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Index of the request in the submitted batch.
    pub request: usize,
    /// How the query ended.
    pub status: QueryStatus,
    /// The delivered pairs, when the request asked to
    /// [`collect`](QueryRequest::collect) them.
    pub pairs: Option<Vec<(u32, u32)>>,
    /// Scheduling statistics.
    pub stats: QueryStats,
}

impl QueryOutcome {
    /// The accounting summary, if the query produced one (completed, or
    /// cancelled after it started running).
    pub fn result(&self) -> Option<&JoinResult> {
        match &self.status {
            QueryStatus::Completed(r) => Some(r),
            QueryStatus::Cancelled(r) => r.as_ref(),
            QueryStatus::Failed(_) => None,
        }
    }

    /// Returns `true` if the query completed.
    pub fn is_completed(&self) -> bool {
        matches!(self.status, QueryStatus::Completed(_))
    }
}

/// Service-wide statistics of one [`Service::run`] batch. Counters sum and
/// peaks take maxima — the same roll-up discipline as
/// [`JoinResult::merge`].
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// The shared admission budget the batch ran under.
    pub memory_limit: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Requests submitted.
    pub submitted: u64,
    /// Requests admitted (their budget was reserved and they ran).
    pub admitted: u64,
    /// Requests that completed.
    pub completed: u64,
    /// Requests that failed.
    pub failed: u64,
    /// Requests cancelled (before or during execution).
    pub cancelled: u64,
    /// Admission deferral events: a free worker examined a request and could
    /// not reserve its budget.
    pub deferrals: u64,
    /// Plan-cache lookups satisfied from the cache during this batch.
    pub plan_cache_hits: u64,
    /// Plan-cache lookups that planned from scratch during this batch.
    pub plan_cache_misses: u64,
    /// High-water mark of the admission gauge: the largest sum of
    /// concurrently granted budgets (never exceeds
    /// [`memory_limit`](ServiceStats::memory_limit) by construction).
    pub peak_admitted_bytes: usize,
    /// Largest *measured* per-query `peak_bytes`.
    pub peak_query_bytes: usize,
    /// Total pairs delivered across all queries.
    pub pairs: u64,
    /// Aggregate I/O of every query's forked environment.
    pub io: IoStats,
    /// Aggregate CPU work of every query's forked environment.
    pub cpu: CpuCounter,
    /// Longest queue wait of any request.
    pub max_queue_wait: Duration,
    /// Sum of all queue waits.
    pub total_queue_wait: Duration,
}

impl fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} submitted / {} completed / {} failed / {} cancelled on {} workers; \
             {} deferrals under {:.1} MB shared budget (peak admitted {:.1} MB, \
             peak query {:.2} MB); {} pairs, {} pages read, {} pages written; \
             plan cache {}/{} hits",
            self.submitted,
            self.completed,
            self.failed,
            self.cancelled,
            self.workers,
            self.deferrals,
            self.memory_limit as f64 / (1024.0 * 1024.0),
            self.peak_admitted_bytes as f64 / (1024.0 * 1024.0),
            self.peak_query_bytes as f64 / (1024.0 * 1024.0),
            self.pairs,
            self.io.pages_read,
            self.io.pages_written,
            self.plan_cache_hits,
            self.plan_cache_hits + self.plan_cache_misses,
        )
    }
}

/// Everything one [`Service::run`] batch produced.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// One outcome per submitted request, in submission order.
    pub outcomes: Vec<QueryOutcome>,
    /// The batch-wide roll-up.
    pub stats: ServiceStats,
}

/// The concurrent query service over one frozen catalog.
///
/// # Example
///
/// ```
/// use usj_core::Algo;
/// use usj_geom::{Item, Rect};
/// use usj_io::{MachineConfig, SimEnv};
/// use usj_service::{Catalog, QueryRequest, Service, ServiceConfig};
///
/// let mut env = SimEnv::new(MachineConfig::machine3());
/// let boxes: Vec<Item> = (0..400)
///     .map(|i| {
///         let (x, y) = ((i % 20) as f32, (i / 20) as f32);
///         Item::new(Rect::from_coords(x, y, x + 0.9, y + 0.9), i)
///     })
///     .collect();
/// let mut catalog = Catalog::new();
/// let a = catalog.register(&mut env, "boxes", &boxes).unwrap();
///
/// let service = Service::new(env, catalog, ServiceConfig::default().with_workers(2));
/// let report = service.run(vec![
///     QueryRequest::join(a, a).with_algorithm(Algo::Pq),
///     QueryRequest::window(a, Rect::from_coords(0.0, 0.0, 5.0, 5.0)),
/// ]);
/// assert_eq!(report.stats.completed, 2);
/// assert!(report.stats.pairs > 0);
/// ```
#[derive(Debug)]
pub struct Service {
    env: SimEnv,
    catalog: Catalog,
    config: ServiceConfig,
    plan_cache: Mutex<PlanCache>,
    /// The frozen catalog storage, snapshotted once at construction and
    /// shared by every batch's worker forks.
    base: Arc<Vec<Page>>,
}

/// Scheduler queue shared by the workers.
struct QueueState {
    /// Request indices still awaiting admission, sorted by
    /// (priority desc, submission order asc).
    pending: Vec<usize>,
    /// Queries currently running.
    running: usize,
    /// Per-request deferral counts.
    deferrals: Vec<u64>,
}

/// Aggregate totals folded in as queries finish.
#[derive(Default)]
struct AggTotals {
    admitted: u64,
    completed: u64,
    failed: u64,
    cancelled: u64,
    pairs: u64,
    io: IoStats,
    cpu: CpuCounter,
    peak_query_bytes: usize,
    max_wait: Duration,
    total_wait: Duration,
}

/// Borrow bundle handed to every worker.
struct RunCtx<'a> {
    requests: &'a [QueryRequest],
    estimates: &'a [usize],
    state: &'a Mutex<QueueState>,
    cv: &'a Condvar,
    gauge: &'a MemoryGauge,
    base: &'a Arc<Vec<Page>>,
    slots: &'a [Mutex<Option<QueryOutcome>>],
    agg: &'a Mutex<AggTotals>,
    started: Instant,
}

/// What a worker decided to do with a scanned request.
enum Job {
    Run(usize, usj_io::MemoryReservation),
    Cancel(usize),
    Fail(usize, ServiceError),
}

impl Service {
    /// Creates a service over `catalog`, whose datasets live on `env`'s
    /// device. The device is snapshotted *once* here — the catalog is
    /// frozen for the service's lifetime and queries never mutate it —
    /// and every batch's worker forks share that snapshot.
    pub fn new(env: SimEnv, catalog: Catalog, config: ServiceConfig) -> Self {
        let base = env.device.snapshot();
        Service {
            env,
            catalog,
            config,
            plan_cache: Mutex::new(PlanCache::new()),
            base,
        }
    }

    /// The frozen catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Dissolves the service, returning the environment and catalog (e.g. to
    /// register more datasets and build a new service).
    pub fn into_parts(self) -> (SimEnv, Catalog) {
        (self.env, self.catalog)
    }

    /// The memory estimate admission control will reserve for `request`: an
    /// explicit [`memory_budget`](QueryRequest::memory_budget) clamped to
    /// `[MIN_QUERY_BUDGET, memory_limit]`, or a size-based heuristic
    /// (3× the input bytes with a [`JOIN_BUDGET_FLOOR`] floor for joins,
    /// [`SELECTION_BUDGET`] for selections).
    pub fn admission_estimate(&self, request: &QueryRequest) -> usize {
        let limit = self.config.memory_limit;
        if let Some(bytes) = request.memory_budget {
            return bytes.max(MIN_QUERY_BUDGET).min(limit.max(1));
        }
        let want = match &request.kind {
            QueryKind::Join(spec) => {
                let len = |id: DatasetId| self.catalog.get(id).map_or(0, |d| d.len());
                let bytes = (len(spec.left) + len(spec.right)) as usize * ITEM_BYTES;
                (3 * bytes).max(JOIN_BUDGET_FLOOR)
            }
            QueryKind::Window { .. } | QueryKind::Point { .. } => SELECTION_BUDGET,
        };
        want.min(limit.max(1))
    }

    /// Executes a batch of requests on the worker pool and returns every
    /// outcome plus the service-wide roll-up.
    pub fn run(&self, requests: Vec<QueryRequest>) -> ServiceReport {
        let n = requests.len();
        let started = Instant::now();
        let base = Arc::clone(&self.base);
        let gauge = MemoryGauge::new(self.config.memory_limit);
        let estimates: Vec<usize> = requests.iter().map(|r| self.admission_estimate(r)).collect();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (Reverse(requests[i].priority), i));
        let state = Mutex::new(QueueState {
            pending: order,
            running: 0,
            deferrals: vec![0; n],
        });
        let cv = Condvar::new();
        let slots: Vec<Mutex<Option<QueryOutcome>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let agg = Mutex::new(AggTotals::default());
        let (cache_hits_before, cache_misses_before) = {
            let cache = self.plan_cache.lock().expect("plan cache poisoned");
            (cache.hits(), cache.misses())
        };

        let ctx = RunCtx {
            requests: &requests,
            estimates: &estimates,
            state: &state,
            cv: &cv,
            gauge: &gauge,
            base: &base,
            slots: &slots,
            agg: &agg,
            started,
        };
        let workers = self.config.workers.max(1).min(n.max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| self.worker_loop(&ctx));
            }
        });

        let state = state.into_inner().expect("queue poisoned");
        let agg = agg.into_inner().expect("totals poisoned");
        let mut outcomes = Vec::with_capacity(n);
        for (i, slot) in slots.into_iter().enumerate() {
            let mut outcome = slot
                .into_inner()
                .expect("slot poisoned")
                .expect("every request resolves to an outcome");
            outcome.stats.deferrals = state.deferrals[i];
            outcomes.push(outcome);
        }
        let cache = self.plan_cache.lock().expect("plan cache poisoned");
        let stats = ServiceStats {
            memory_limit: self.config.memory_limit,
            workers,
            submitted: n as u64,
            admitted: agg.admitted,
            completed: agg.completed,
            failed: agg.failed,
            cancelled: agg.cancelled,
            deferrals: state.deferrals.iter().sum(),
            plan_cache_hits: cache.hits() - cache_hits_before,
            plan_cache_misses: cache.misses() - cache_misses_before,
            peak_admitted_bytes: gauge.peak(),
            peak_query_bytes: agg.peak_query_bytes,
            pairs: agg.pairs,
            io: agg.io,
            cpu: agg.cpu,
            max_queue_wait: agg.max_wait,
            total_queue_wait: agg.total_wait,
        };
        ServiceReport { outcomes, stats }
    }

    /// One worker: repeatedly claim the first admissible pending request (in
    /// priority/FIFO order), run it on a forked environment, release its
    /// budget, until the queue drains.
    fn worker_loop(&self, ctx: &RunCtx<'_>) {
        loop {
            let job = {
                let mut q = ctx.state.lock().expect("queue poisoned");
                loop {
                    if q.pending.is_empty() {
                        return;
                    }
                    let mut picked = None;
                    for pos in 0..q.pending.len() {
                        let idx = q.pending[pos];
                        let request = &ctx.requests[idx];
                        if request.cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
                            picked = Some((pos, Job::Cancel(idx)));
                            break;
                        }
                        match ctx.gauge.try_reserve(ctx.estimates[idx]) {
                            Ok(reservation) => {
                                picked = Some((pos, Job::Run(idx, reservation)));
                                break;
                            }
                            Err(_) => q.deferrals[idx] += 1,
                        }
                    }
                    match picked {
                        Some((pos, job)) => {
                            q.pending.remove(pos);
                            if matches!(job, Job::Run(..)) {
                                q.running += 1;
                                // This admission may have exhausted the
                                // shared budget for the next request in
                                // line: record that head-of-queue deferral
                                // at admission time, so the count reflects
                                // the queue's oversubscription rather than
                                // scan timing.
                                if let Some(&next) = q.pending.first() {
                                    if ctx.estimates[next] > ctx.gauge.headroom() {
                                        q.deferrals[next] += 1;
                                    }
                                }
                            }
                            break job;
                        }
                        None if q.running == 0 => {
                            // Nothing is running, so no reservation will ever
                            // be released: the head request's budget simply
                            // does not fit the shared limit. Fail it loudly
                            // to keep the queue moving.
                            let idx = q.pending.remove(0);
                            break Job::Fail(
                                idx,
                                ServiceError::Io(IoSimError::MemoryLimitExceeded {
                                    required: ctx.estimates[idx],
                                    limit: self.config.memory_limit,
                                }),
                            );
                        }
                        None => {
                            q = ctx.cv.wait(q).expect("queue poisoned");
                        }
                    }
                }
            };
            match job {
                Job::Run(idx, reservation) => {
                    let granted = reservation.bytes();
                    let wait = ctx.started.elapsed();
                    let outcome = self.execute(idx, granted, wait, ctx);
                    self.finish(ctx, idx, outcome, wait, true);
                    drop(reservation);
                    let mut q = ctx.state.lock().expect("queue poisoned");
                    q.running -= 1;
                    drop(q);
                    ctx.cv.notify_all();
                }
                Job::Cancel(idx) => {
                    let wait = ctx.started.elapsed();
                    let outcome = QueryOutcome {
                        request: idx,
                        status: QueryStatus::Cancelled(None),
                        pairs: None,
                        stats: QueryStats {
                            admitted_bytes: 0,
                            deferrals: 0,
                            queue_wait: wait,
                        },
                    };
                    self.finish(ctx, idx, outcome, wait, false);
                    ctx.cv.notify_all();
                }
                Job::Fail(idx, err) => {
                    let wait = ctx.started.elapsed();
                    let outcome = QueryOutcome {
                        request: idx,
                        status: QueryStatus::Failed(err),
                        pairs: None,
                        stats: QueryStats {
                            admitted_bytes: 0,
                            deferrals: 0,
                            queue_wait: wait,
                        },
                    };
                    self.finish(ctx, idx, outcome, wait, false);
                    ctx.cv.notify_all();
                }
            }
        }
    }

    /// Folds one finished outcome into the aggregate totals and stores it.
    fn finish(
        &self,
        ctx: &RunCtx<'_>,
        idx: usize,
        outcome: QueryOutcome,
        wait: Duration,
        admitted: bool,
    ) {
        let mut agg = ctx.agg.lock().expect("totals poisoned");
        if admitted {
            agg.admitted += 1;
        }
        match &outcome.status {
            QueryStatus::Completed(_) => agg.completed += 1,
            QueryStatus::Cancelled(_) => agg.cancelled += 1,
            QueryStatus::Failed(_) => agg.failed += 1,
        }
        if let Some(result) = outcome.result() {
            agg.pairs += result.pairs;
            agg.io.merge(&result.io);
            agg.cpu.merge(&result.cpu);
            agg.peak_query_bytes = agg.peak_query_bytes.max(result.memory.peak_bytes);
        }
        agg.max_wait = agg.max_wait.max(wait);
        agg.total_wait += wait;
        drop(agg);
        *ctx.slots[idx].lock().expect("slot poisoned") = Some(outcome);
    }

    /// Runs one admitted query on a fresh forked environment whose hard
    /// memory limit is the granted budget.
    fn execute(
        &self,
        idx: usize,
        granted: usize,
        wait: Duration,
        ctx: &RunCtx<'_>,
    ) -> QueryOutcome {
        let request = &ctx.requests[idx];
        let mut wenv = self.env.fork_with_base(Arc::clone(ctx.base));
        wenv.set_memory_limit(granted);
        let mut sink = ServiceSink::new(request);
        let ran = match &request.kind {
            QueryKind::Join(spec) => self.run_join(&mut wenv, spec, &mut sink),
            QueryKind::Window { dataset, window } => {
                self.run_selection(&mut wenv, *dataset, *window, granted, &mut sink)
            }
            QueryKind::Point { dataset, point } => self.run_selection(
                &mut wenv,
                *dataset,
                Rect::from_coords(point.x, point.y, point.x, point.y),
                granted,
                &mut sink,
            ),
        };
        let status = match ran {
            Ok(result) if sink.cancelled => QueryStatus::Cancelled(Some(result)),
            Ok(result) => QueryStatus::Completed(result),
            Err(e) => QueryStatus::Failed(e),
        };
        QueryOutcome {
            request: idx,
            status,
            pairs: sink.collected,
            stats: QueryStats {
                admitted_bytes: granted,
                deferrals: 0,
                queue_wait: wait,
            },
        }
    }

    fn dataset(&self, id: DatasetId) -> Result<&Dataset> {
        self.catalog
            .get(id)
            .ok_or_else(|| ServiceError::UnknownDataset(format!("#{}", id.0)))
    }

    fn run_join(
        &self,
        wenv: &mut SimEnv,
        spec: &JoinSpec,
        sink: &mut ServiceSink,
    ) -> Result<JoinResult> {
        let left = self.dataset(spec.left)?.input();
        let right = self.dataset(spec.right)?.input();
        let query = SpatialQuery::new(left, right)
            .algorithm(spec.algo)
            .predicate(spec.predicate)
            .execution(spec.execution);
        // The reported accounting covers the query end to end on its forked
        // environment — planning included. This is what makes the plan
        // cache's saving visible: a cache hit skips the planner's
        // cost-estimation I/O, so the repeat query's `JoinResult.io` is
        // strictly smaller.
        let measurement = wenv.begin();
        let plan = if self.config.use_plan_cache {
            let key = PlanKey::new(spec);
            // Get-or-insert under one guard: concurrent identical queries
            // must not both miss and plan twice (each shape is planned
            // exactly once per service lifetime). Planning while holding
            // the cache lock briefly serializes concurrent *planning* —
            // execution, the expensive part, stays fully concurrent.
            let mut cache = self.plan_cache.lock().expect("plan cache poisoned");
            match cache.lookup(&key) {
                Some(plan) => plan,
                None => {
                    let plan = query.plan(wenv)?;
                    cache.insert(key, plan.clone());
                    plan
                }
            }
        } else {
            query.plan(wenv)?
        };
        let mut result = query.execute_planned(wenv, &plan, sink)?;
        let (io, cpu) = wenv.since(&measurement);
        result.io = io;
        result.cpu = cpu;
        Ok(result)
    }

    fn run_selection(
        &self,
        wenv: &mut SimEnv,
        dataset: DatasetId,
        window: Rect,
        granted: usize,
        sink: &mut ServiceSink,
    ) -> Result<JoinResult> {
        let ds = self.dataset(dataset)?;
        let measurement = wenv.begin();
        wenv.memory.begin_phase();
        let mut store = NodeStore::with_capacity_bytes_gauged(granted, &wenv.memory);
        ds.tree()
            .window_query_via(wenv, &mut store, &window, &mut |item| {
                sink.emit(item.id, 0)
            })?;
        wenv.charge(CpuOp::OutputPair, sink.delivered);
        let (io, cpu) = wenv.since(&measurement);
        Ok(JoinResult {
            pairs: sink.delivered,
            io,
            cpu,
            index_page_requests: store.stats().misses,
            sweep: Default::default(),
            memory: MemoryStats {
                priority_queue_bytes: 0,
                sweep_structure_bytes: 0,
                other_bytes: store.resident_pages() * PAGE_SIZE,
                peak_bytes: wenv.memory.peak(),
            },
        })
    }
}

/// The sink every service query streams through: counts, optionally
/// collects, enforces `LIMIT`, and observes the cancellation token — all by
/// steering the producer with `ControlFlow`, so a stopped query stops
/// *reading*, not just reporting.
struct ServiceSink {
    collected: Option<Vec<(u32, u32)>>,
    delivered: u64,
    limit: Option<u64>,
    cancel: Option<CancelToken>,
    cancelled: bool,
}

impl ServiceSink {
    fn new(request: &QueryRequest) -> Self {
        ServiceSink {
            collected: request.collect.then(Vec::new),
            delivered: 0,
            limit: request.limit,
            cancel: request.cancel.clone(),
            cancelled: false,
        }
    }
}

impl PairSink for ServiceSink {
    fn emit(&mut self, left: u32, right: u32) -> ControlFlow<()> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                self.cancelled = true;
                return ControlFlow::Break(());
            }
        }
        if self.limit.is_some_and(|l| self.delivered >= l) {
            return ControlFlow::Break(());
        }
        if let Some(pairs) = &mut self.collected {
            pairs.push((left, right));
        }
        self.delivered += 1;
        ControlFlow::Continue(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_geom::Item;
    use usj_io::MachineConfig;

    fn grid(n: u32, cell: f32, offset: f32, id_base: u32) -> Vec<Item> {
        let mut out = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let x = offset + i as f32 * cell;
                let y = offset + j as f32 * cell;
                out.push(Item::new(
                    Rect::from_coords(x, y, x + cell * 0.7, y + cell * 0.7),
                    id_base + i * n + j,
                ));
            }
        }
        out
    }

    fn service_over(
        a: &[Item],
        b: &[Item],
        config: ServiceConfig,
    ) -> (Service, DatasetId, DatasetId) {
        let mut env = SimEnv::new(MachineConfig::machine3());
        let mut catalog = Catalog::new();
        let ia = catalog.register(&mut env, "a", a).unwrap();
        let ib = catalog.register(&mut env, "b", b).unwrap();
        (Service::new(env, catalog, config), ia, ib)
    }

    #[test]
    fn joins_and_selections_complete_with_correct_counts() {
        let a = grid(15, 4.0, 0.0, 0);
        let b = grid(15, 4.0, 1.5, 100_000);
        let expected: u64 = a
            .iter()
            .map(|x| b.iter().filter(|y| x.rect.intersects(&y.rect)).count() as u64)
            .sum();
        let window = Rect::from_coords(0.0, 0.0, 20.0, 20.0);
        let in_window = a.iter().filter(|it| it.rect.intersects(&window)).count() as u64;

        let (service, ia, ib) = service_over(&a, &b, ServiceConfig::default().with_workers(3));
        let report = service.run(vec![
            QueryRequest::join(ia, ib).with_algorithm(Algo::Pq),
            QueryRequest::join(ia, ib).with_algorithm(Algo::Sssj),
            QueryRequest::join(ia, ib).with_algorithm(Algo::St),
            QueryRequest::window(ia, window),
        ]);
        assert_eq!(report.stats.completed, 4);
        assert_eq!(report.stats.failed, 0);
        for outcome in &report.outcomes[..3] {
            assert_eq!(outcome.result().unwrap().pairs, expected, "join #{}", outcome.request);
        }
        assert_eq!(report.outcomes[3].result().unwrap().pairs, in_window);
        assert!(report.outcomes[3].result().unwrap().index_page_requests > 0);
        assert_eq!(report.stats.pairs, expected * 3 + in_window);
    }

    #[test]
    fn collected_pairs_match_count_only_runs() {
        let a = grid(10, 4.0, 0.0, 0);
        let (service, ia, _) = service_over(&a, &a, ServiceConfig::default());
        let report = service.run(vec![
            QueryRequest::join(ia, ia).with_algorithm(Algo::Pq).collecting(),
            QueryRequest::join(ia, ia).with_algorithm(Algo::Pq),
        ]);
        let collected = report.outcomes[0].pairs.as_ref().unwrap();
        assert_eq!(collected.len() as u64, report.outcomes[1].result().unwrap().pairs);
        assert!(report.outcomes[1].pairs.is_none());
    }

    #[test]
    fn limits_stop_selection_io_early() {
        let a = grid(60, 4.0, 0.0, 0);
        let (service, ia, _) = service_over(&a, &a, ServiceConfig::default().with_workers(1));
        let window = Rect::from_coords(0.0, 0.0, 240.0, 240.0);
        let report = service.run(vec![
            QueryRequest::window(ia, window),
            QueryRequest::window(ia, window).with_limit(3).collecting(),
        ]);
        let full = report.outcomes[0].result().unwrap();
        let limited = report.outcomes[1].result().unwrap();
        assert_eq!(limited.pairs, 3);
        assert_eq!(report.outcomes[1].pairs.as_ref().unwrap().len(), 3);
        assert!(
            limited.io.pages_read < full.io.pages_read,
            "LIMIT must stop the traversal early ({} vs {})",
            limited.io.pages_read,
            full.io.pages_read
        );
    }

    #[test]
    fn pre_cancelled_requests_never_run() {
        let a = grid(8, 4.0, 0.0, 0);
        let (service, ia, _) = service_over(&a, &a, ServiceConfig::default());
        let token = CancelToken::new();
        token.cancel();
        let report = service.run(vec![
            QueryRequest::join(ia, ia).with_cancel(token.clone()),
            QueryRequest::join(ia, ia),
        ]);
        assert!(matches!(report.outcomes[0].status, QueryStatus::Cancelled(None)));
        assert!(report.outcomes[1].is_completed());
        assert_eq!(report.stats.cancelled, 1);
        assert_eq!(report.stats.completed, 1);
        assert_eq!(report.stats.admitted, 1);
    }

    #[test]
    fn unknown_datasets_fail_cleanly() {
        let a = grid(6, 4.0, 0.0, 0);
        let (service, ia, _) = service_over(&a, &a, ServiceConfig::default());
        let report = service.run(vec![
            QueryRequest::join(ia, DatasetId(99)),
            QueryRequest::window(DatasetId(42), Rect::from_coords(0.0, 0.0, 1.0, 1.0)),
        ]);
        for outcome in &report.outcomes {
            assert!(
                matches!(&outcome.status, QueryStatus::Failed(ServiceError::UnknownDataset(_))),
                "{:?}",
                outcome.status
            );
        }
        assert_eq!(report.stats.failed, 2);
    }

    #[test]
    fn priorities_admit_before_fifo_order() {
        let a = grid(10, 4.0, 0.0, 0);
        // One worker: execution order equals admission order.
        let (service, ia, _) = service_over(&a, &a, ServiceConfig::default().with_workers(1));
        let report = service.run(vec![
            QueryRequest::join(ia, ia).with_algorithm(Algo::Sssj),
            QueryRequest::join(ia, ia).with_algorithm(Algo::Sssj).with_priority(5),
            QueryRequest::join(ia, ia).with_algorithm(Algo::Sssj).with_priority(5),
        ]);
        // The priority-5 requests waited less than the priority-0 one which
        // was submitted first but admitted last.
        let w0 = report.outcomes[0].stats.queue_wait;
        let w1 = report.outcomes[1].stats.queue_wait;
        let w2 = report.outcomes[2].stats.queue_wait;
        assert!(w1 <= w0 && w2 <= w0, "{w0:?} {w1:?} {w2:?}");
        assert!(w1 <= w2, "FIFO within a priority");
    }

    #[test]
    fn admission_respects_the_shared_budget_and_records_deferrals() {
        let a = grid(12, 4.0, 0.0, 0);
        let limit = 4 * 1024 * 1024;
        let (service, ia, ib) = service_over(
            &a,
            &a,
            ServiceConfig::default().with_workers(4).with_memory_limit(limit),
        );
        // Each request demands 3 MB of the 4 MB budget: only one runs at a
        // time even though four workers are free.
        let requests: Vec<QueryRequest> = (0..6)
            .map(|_| {
                QueryRequest::join(ia, ib)
                    .with_algorithm(Algo::Sssj)
                    .with_memory_budget(3 * 1024 * 1024)
            })
            .collect();
        let report = service.run(requests);
        assert_eq!(report.stats.completed, 6);
        assert!(report.stats.deferrals > 0, "free workers must have deferred");
        assert!(report.stats.peak_admitted_bytes <= limit);
        for outcome in &report.outcomes {
            assert_eq!(outcome.stats.admitted_bytes, 3 * 1024 * 1024);
            let result = outcome.result().unwrap();
            assert!(result.memory.peak_bytes <= outcome.stats.admitted_bytes);
        }
    }

    #[test]
    fn unadmittable_requests_fail_instead_of_deadlocking() {
        let a = grid(6, 4.0, 0.0, 0);
        // A zero shared budget can never admit anything: the scheduler must
        // fail the requests loudly rather than park its workers forever.
        let (service, ia, _) = service_over(
            &a,
            &a,
            ServiceConfig::default().with_workers(2).with_memory_limit(0),
        );
        let report = service.run(vec![
            QueryRequest::join(ia, ia),
            QueryRequest::window(ia, Rect::from_coords(0.0, 0.0, 1.0, 1.0)),
        ]);
        for outcome in &report.outcomes {
            assert!(
                matches!(
                    outcome.status,
                    QueryStatus::Failed(ServiceError::Io(IoSimError::MemoryLimitExceeded { .. }))
                ),
                "{:?}",
                outcome.status
            );
        }
        assert_eq!(report.stats.failed, 2);
        assert_eq!(report.stats.admitted, 0);

        // A query whose *granted* budget is too small for its working set
        // fails at run time with the same error, reported per query.
        let b = grid(40, 4.0, 0.0, 0);
        let (tight, ib, _) = service_over(
            &b,
            &b,
            ServiceConfig::default().with_workers(1).with_memory_limit(8 * 1024),
        );
        let report = tight.run(vec![QueryRequest::join(ib, ib).with_algorithm(Algo::Sssj)]);
        assert!(
            matches!(
                report.outcomes[0].status,
                QueryStatus::Failed(ServiceError::Io(IoSimError::MemoryLimitExceeded { .. }))
            ),
            "{:?}",
            report.outcomes[0].status
        );
    }

    #[test]
    fn plan_cache_reuses_plans_across_identical_queries() {
        // Large enough that the trees have internal levels: the Auto
        // estimate's directory probes then cost real, measurable I/O.
        let a = grid(40, 4.0, 0.0, 0);
        let b = grid(40, 4.0, 1.5, 100_000);
        let (service, ia, ib) = service_over(&a, &b, ServiceConfig::default().with_workers(1));
        let request = || QueryRequest::join(ia, ib).with_algorithm(Algo::Auto);
        let report = service.run(vec![request(), request(), request()]);
        assert_eq!(report.stats.completed, 3);
        assert_eq!(report.stats.plan_cache_misses, 1);
        assert_eq!(report.stats.plan_cache_hits, 2);
        // All three deliver identical pair counts...
        let pairs: Vec<u64> = report
            .outcomes
            .iter()
            .map(|o| o.result().unwrap().pairs)
            .collect();
        assert_eq!(pairs[0], pairs[1]);
        assert_eq!(pairs[1], pairs[2]);
        // ...and the cached repeats skip the Auto estimate's directory
        // probes, so they charge strictly less I/O.
        let first = report.outcomes[0].result().unwrap().io.pages_read;
        let repeat = report.outcomes[1].result().unwrap().io.pages_read;
        assert!(repeat < first, "cached plan must save I/O ({repeat} vs {first})");
    }

    #[test]
    fn parallel_execution_runs_inside_a_worker() {
        let a = grid(14, 4.0, 0.0, 0);
        let b = grid(14, 4.0, 1.0, 100_000);
        let (service, ia, ib) = service_over(&a, &b, ServiceConfig::default().with_workers(2));
        let report = service.run(vec![
            QueryRequest::join(ia, ib).with_algorithm(Algo::Pbsm),
            QueryRequest::join(ia, ib)
                .with_algorithm(Algo::Pbsm)
                .with_execution(Execution::parallel()),
        ]);
        assert_eq!(report.stats.completed, 2);
        assert_eq!(
            report.outcomes[0].result().unwrap().pairs,
            report.outcomes[1].result().unwrap().pairs
        );
    }

    #[test]
    fn point_selection_matches_brute_force() {
        let a = grid(12, 5.0, 0.0, 0);
        let (service, ia, _) = service_over(&a, &a, ServiceConfig::default());
        let p = Point::new(17.0, 22.0);
        let expected = a
            .iter()
            .filter(|it| {
                it.rect.contains(&Rect::from_coords(p.x, p.y, p.x, p.y))
            })
            .count() as u64;
        let report = service.run(vec![QueryRequest::point(ia, p).collecting()]);
        let outcome = &report.outcomes[0];
        assert_eq!(outcome.result().unwrap().pairs, expected);
        assert_eq!(outcome.pairs.as_ref().unwrap().len() as u64, expected);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let a = grid(4, 4.0, 0.0, 0);
        let (service, _, _) = service_over(&a, &a, ServiceConfig::default());
        let report = service.run(Vec::new());
        assert!(report.outcomes.is_empty());
        assert_eq!(report.stats.submitted, 0);
        let text = format!("{}", report.stats);
        assert!(text.contains("0 submitted"), "{text}");
    }
}
