//! The concurrent query service: worker pool, FIFO+priority admission
//! queue, gauge-based admission control.
//!
//! A [`Service`] freezes a registered [`Catalog`] behind a read-only device
//! snapshot and executes batches of [`QueryRequest`]s on a pool of worker
//! threads. The scheduling contract:
//!
//! * **Admission order** is priority-then-FIFO: higher
//!   [`priority`](QueryRequest::priority) first, submission order within a
//!   priority.
//! * **Admission control** is *gauge-based*: every request carries a memory
//!   estimate (its [`admission_estimate`](Service::admission_estimate), or an
//!   explicit [`memory_budget`](QueryRequest::memory_budget)), and is
//!   admitted only when the service-wide admission
//!   [`MemoryGauge`] — whose limit is the shared
//!   [`ServiceConfig::memory_limit`] — can reserve that many bytes. A free
//!   worker that cannot admit a request records a **deferral** and either
//!   admits a later (smaller or lower-priority) request or sleeps until a
//!   running query releases its reservation. The admitted bytes become the
//!   worker environment's *hard* memory limit, so the measured per-query
//!   `peak_bytes` can never exceed the granted budget, and the sum of
//!   concurrently granted budgets can never exceed the shared limit —
//!   admission control *bounds the aggregate footprint by construction*.
//! * **Isolation**: every admitted query runs on
//!   [`SimEnv::fork_with_base`] over the catalog snapshot — its own I/O
//!   statistics and disk head, its own scratch pages, its own memory gauge.
//! * **Results** stream through the `PairSink`/`ControlFlow` machinery:
//!   `LIMIT` and [`CancelToken`] cancellation genuinely stop the producing
//!   traversal, saving I/O.
//! * **Open-loop sessions**: [`Service::with_session`] keeps the worker
//!   pool alive while a driver thread [`submit`](Session::submit)s requests
//!   on its own schedule — the load-generator mode. [`Service::run`] is the
//!   batch special case (everything submitted up front, session closed
//!   immediately). Queue waits are anchored at each request's *first
//!   enqueue*, so a deferred request's re-admission attempts never reset
//!   its measured wait.
//! * **Bounded overtake**: a free worker may admit a later (smaller or
//!   cheaper) request over a blocked head-of-line one, but only
//!   [`ServiceConfig::max_overtakes`] times per queue entry — after that
//!   the entry becomes a barrier no admission scan passes, so heavy
//!   requests cannot starve.
//! * **Shared-scan batching** (opt-in via
//!   [`ServiceConfig::with_shared_scans`]): when a window/point selection
//!   is admitted, compatible pending selections over the same dataset are
//!   coalesced into one R-tree traversal
//!   ([`RTree::multi_window_query`](usj_rtree::RTree::multi_window_query))
//!   fanned out through per-query sinks ([`usj_core::FanoutSink`]). Every
//!   member observes exactly the item sequence its solo traversal would
//!   have produced; the scan's I/O is accounted once, on the batch leader.
//! * **Background maintenance** (opt-in via
//!   [`ServiceConfig::with_background_maintenance`]): live-dataset flushes
//!   and merge compactions run on a dedicated worker thread instead of
//!   inside [`Service::append_live`]. Appends return after the memtable
//!   insert (plus an O(1) freeze past the threshold); the worker runs the
//!   same split maintenance phases the inline path composes, against
//!   immutable run handles, under a scoped
//!   [`maintenance budget`](ServiceConfig::maintenance_budget_bytes), and
//!   publishes each new generation through the snapshot mechanism. The
//!   publication order — base page snapshot first, then the run handle —
//!   paired with the read order — run handles first, then the base — keeps
//!   every visible run readable from every worker fork by construction.

use std::fmt;
use std::ops::ControlFlow;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use usj_core::{
    Algo, Execution, FanoutSink, JoinResult, MemoryStats, PairSink, Predicate, SpatialQuery,
};
use usj_geom::{Item, Point, Rect, ITEM_BYTES};
use usj_io::{
    fault::derive_seed, BlockDevice, CpuCounter, CpuOp, FaultConfig, FaultPlan, IoSimError,
    IoStats, MachineConfig, MemoryGauge, Page, SimEnv, PAGE_SIZE,
};
use usj_live::{
    CompactionPlan, FlushJob, JoinSide, LiveCatalog, LiveConfig, LiveDataset, LiveId, LiveSnapshot,
    LiveStats, StreamingJoin,
};
use usj_obs::{
    Clock, HostClock, MetricsRegistry, MetricsSnapshot, QueryTrace, Recorder, RingCollector,
    TraceSpan,
};
use usj_rtree::NodeStore;

use crate::catalog::{Catalog, Dataset, DatasetId};
use crate::plan_cache::{PlanCache, PlanKey};
use crate::{Result, ServiceError};

/// Smallest budget any query is granted (stream block buffers plus sweep
/// floors make smaller grants fail immediately).
pub const MIN_QUERY_BUDGET: usize = 512 * 1024;

/// Default admission floor for join queries: two 512 KiB stream read
/// buffers plus sweep/partition working sets.
pub const JOIN_BUDGET_FLOOR: usize = 2 * 1024 * 1024;

/// Default admission estimate for window/point selections (node-store pool
/// plus traversal state).
pub const SELECTION_BUDGET: usize = 1024 * 1024;

/// Per-query trace ring capacity, in events. A bounded trace drops its
/// *oldest* events (and says how many) instead of growing without limit.
const QUERY_TRACE_EVENTS: usize = 16 * 1024;

/// Background-maintenance trace ring capacity, in events. Shared by every
/// flush and compaction until [`Service::drain_background_trace`] empties it.
const MAINT_TRACE_EVENTS: usize = 16 * 1024;

/// Configuration of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing admitted queries (at least 1; default 4).
    pub workers: usize,
    /// The shared admission budget in bytes: the sum of the budgets of all
    /// concurrently running queries never exceeds it (default: the paper's
    /// 24 MB free-memory figure).
    pub memory_limit: usize,
    /// Whether completed query plans are memoized by fingerprint
    /// (default: on).
    pub use_plan_cache: bool,
    /// How many times a pending request may be overtaken by later
    /// admissions before it becomes a barrier the admission scan will not
    /// pass (default 8). `0` disables overtaking entirely (strict
    /// priority/FIFO admission).
    pub max_overtakes: u64,
    /// Whether compatible pending window/point selections are coalesced
    /// into one shared R-tree scan when one of them is admitted
    /// (default: off — per-query execution, the measurement baseline).
    pub shared_scans: bool,
    /// Largest number of selections one shared scan services, the admitted
    /// leader included (default 16).
    pub max_scan_batch: usize,
    /// Whether live-dataset maintenance (flushes, merge compactions) runs
    /// on a dedicated background worker thread instead of inside
    /// [`Service::append_live`] (default: off — the inline baseline the
    /// interference benchmark compares against). Both modes compose the
    /// same split maintenance phases, so they produce identical runs.
    pub background_maintenance: bool,
    /// Scoped memory budget (bytes) for each maintenance step's transient
    /// working set — flush writes and compaction merges run under
    /// [`SimEnv::with_budget`] of this size, so background merges degrade
    /// (spill) at a bounded footprint instead of competing unboundedly
    /// with query admission (default 4 MiB).
    pub maintenance_budget_bytes: usize,
    /// Bounded retries for transient device faults
    /// ([`IoSimError::DeviceFault`]` { transient: true }`): a failed query
    /// or maintenance step is re-run up to this many times with
    /// exponential backoff before the error surfaces (default 3).
    pub fault_retries: u32,
    /// Base backoff between transient-fault retries, microseconds on the
    /// observability clock — attempt *n* waits `base << (n-1)`. Driven
    /// through [`Clock::wait_us`], so a
    /// [`VirtualClock`](usj_obs::VirtualClock) replays the schedule
    /// exactly without host sleeps (default 1000 µs).
    pub fault_backoff_us: u64,
    /// Longest a request may wait in the admission queue without getting a
    /// reservation before it fails with [`ServiceError::AdmissionTimeout`]
    /// (default `None` — wait indefinitely). Only deferred requests time
    /// out; a request the gauge can admit is never failed by this knob.
    pub admission_timeout_us: Option<u64>,
    /// Deterministic fault injection (default `None` — zero cost, no fault
    /// machinery touched). When set, every query's forked environment and
    /// the storage environment get [`FaultPlan`]s derived from this
    /// config's seed via domain-separated streams, so a seed replays the
    /// exact same fault schedule while distinct queries see independent
    /// faults.
    pub fault_plan: Option<FaultConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            memory_limit: usj_io::sim::DEFAULT_MEMORY_LIMIT,
            use_plan_cache: true,
            max_overtakes: 8,
            shared_scans: false,
            max_scan_batch: 16,
            background_maintenance: false,
            maintenance_budget_bytes: 4 * 1024 * 1024,
            fault_retries: 3,
            fault_backoff_us: 1_000,
            admission_timeout_us: None,
            fault_plan: None,
        }
    }
}

impl ServiceConfig {
    /// Sets the worker count (builder style).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the shared admission budget in bytes (builder style).
    pub fn with_memory_limit(mut self, bytes: usize) -> Self {
        self.memory_limit = bytes;
        self
    }

    /// Disables the plan cache (builder style).
    pub fn without_plan_cache(mut self) -> Self {
        self.use_plan_cache = false;
        self
    }

    /// Sets the per-entry overtake bound (builder style).
    pub fn with_max_overtakes(mut self, max: u64) -> Self {
        self.max_overtakes = max;
        self
    }

    /// Enables or disables shared-scan batching (builder style).
    pub fn with_shared_scans(mut self, enabled: bool) -> Self {
        self.shared_scans = enabled;
        self
    }

    /// Sets the largest shared-scan batch size (builder style; clamped to
    /// at least 1, i.e. the leader alone).
    pub fn with_max_scan_batch(mut self, size: usize) -> Self {
        self.max_scan_batch = size.max(1);
        self
    }

    /// Enables or disables the background maintenance worker (builder
    /// style).
    pub fn with_background_maintenance(mut self, enabled: bool) -> Self {
        self.background_maintenance = enabled;
        self
    }

    /// Sets the scoped per-step maintenance memory budget (builder style;
    /// clamped to at least one stream block so flush writers always fit).
    pub fn with_maintenance_budget(mut self, bytes: usize) -> Self {
        self.maintenance_budget_bytes = bytes.max(64 * 1024);
        self
    }

    /// Sets the transient-fault retry policy (builder style): up to
    /// `retries` re-runs, attempt *n* backing off `backoff_base_us << (n-1)`
    /// microseconds on the observability clock.
    pub fn with_fault_retries(mut self, retries: u32, backoff_base_us: u64) -> Self {
        self.fault_retries = retries;
        self.fault_backoff_us = backoff_base_us;
        self
    }

    /// Sets the admission-wait timeout (builder style).
    pub fn with_admission_timeout_us(mut self, timeout_us: u64) -> Self {
        self.admission_timeout_us = Some(timeout_us);
        self
    }

    /// Installs deterministic fault injection (builder style).
    pub fn with_fault_plan(mut self, faults: FaultConfig) -> Self {
        self.fault_plan = Some(faults);
        self
    }
}

/// A shared cancellation flag for one or more queries.
///
/// Setting it makes queued queries resolve to
/// [`QueryStatus::Cancelled`] without running, and makes running queries
/// stop at their next emitted pair (the sink breaks the producing join or
/// traversal, so the remaining I/O is genuinely saved).
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a token in the not-cancelled state.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// The join form of a [`QueryRequest`]: which cataloged datasets, which
/// algorithm, predicate and execution strategy.
#[derive(Debug, Clone, Copy)]
pub struct JoinSpec {
    /// Left input dataset.
    pub left: DatasetId,
    /// Right input dataset.
    pub right: DatasetId,
    /// Join algorithm (default [`Algo::Auto`]).
    pub algo: Algo,
    /// Pair predicate (default intersection).
    pub predicate: Predicate,
    /// Execution strategy (default serial).
    pub execution: Execution,
}

impl JoinSpec {
    /// A default (Auto, intersects, serial) join of `left` against `right`.
    pub fn new(left: DatasetId, right: DatasetId) -> Self {
        JoinSpec {
            left,
            right,
            algo: Algo::default(),
            predicate: Predicate::default(),
            execution: Execution::default(),
        }
    }
}

/// What a [`QueryRequest`] asks for.
#[derive(Debug, Clone, Copy)]
pub enum QueryKind {
    /// A spatial join of two cataloged datasets.
    Join(JoinSpec),
    /// An index-backed window selection: every item of `dataset`
    /// intersecting `window`, streamed as `(id, 0)` pairs.
    Window {
        /// The cataloged dataset to select from.
        dataset: DatasetId,
        /// The query window.
        window: Rect,
    },
    /// An index-backed point (stabbing) selection: every item of `dataset`
    /// containing `point`, streamed as `(id, 0)` pairs.
    Point {
        /// The cataloged dataset to select from.
        dataset: DatasetId,
        /// The query point.
        point: Point,
    },
    /// A streaming symmetric join over two *live* datasets
    /// ([`Service::register_live`]): executed over generation snapshots
    /// taken when the query starts running, emitting pairs while the
    /// snapshot runs are still being scanned (no blocking pre-sort).
    StreamingJoin {
        /// Left live dataset.
        left: LiveId,
        /// Right live dataset.
        right: LiveId,
        /// Pair predicate (default intersection).
        predicate: Predicate,
    },
    /// A mixed streaming join: a *live* dataset's generation snapshot
    /// against a *cataloged* dataset's persisted y-sorted run, through the
    /// same symmetric sweep — the cataloged run is already in sweep-key
    /// order, so it feeds the driver directly without materialising
    /// anything. Pairs are emitted `(live_id, cataloged_id)`.
    MixedJoin {
        /// The live side.
        live: LiveId,
        /// The cataloged side.
        dataset: DatasetId,
        /// Pair predicate (default intersection).
        predicate: Predicate,
    },
    /// A window selection over a live dataset's snapshot: the base run goes
    /// through its R-tree while delta and in-memory runs are scanned
    /// linearly behind their bounding boxes. Streams `(id, 0)` pairs.
    LiveWindow {
        /// The live dataset to select from.
        dataset: LiveId,
        /// The query window.
        window: Rect,
    },
    /// A point (stabbing) selection over a live dataset's snapshot.
    /// Streams `(id, 0)` pairs.
    LivePoint {
        /// The live dataset to select from.
        dataset: LiveId,
        /// The query point.
        point: Point,
    },
}

/// One query submitted to the service.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// What to run.
    pub kind: QueryKind,
    /// Admission priority: higher priorities are admitted first; submission
    /// order breaks ties (FIFO within a priority).
    pub priority: u8,
    /// Stop after this many delivered pairs (`LIMIT n`).
    pub limit: Option<u64>,
    /// Whether to collect the delivered pairs into the outcome (off by
    /// default — the paper's measurement mode discards output).
    pub collect: bool,
    /// Explicit per-query memory budget in bytes, overriding the service's
    /// admission estimate (clamped to `[MIN_QUERY_BUDGET, memory_limit]`).
    pub memory_budget: Option<usize>,
    /// Cooperative cancellation flag.
    pub cancel: Option<CancelToken>,
    /// Absolute deadline, microseconds on the service's observability
    /// clock. A request past its deadline fails with
    /// [`ServiceError::DeadlineExceeded`] — noticed in the admission queue
    /// before it runs, and at emission checkpoints while it runs (firing
    /// the attached [`CancelToken`], if any, so the producing traversal
    /// genuinely stops).
    pub deadline_us: Option<u64>,
}

impl QueryRequest {
    fn with_kind(kind: QueryKind) -> Self {
        QueryRequest {
            kind,
            priority: 0,
            limit: None,
            collect: false,
            memory_budget: None,
            cancel: None,
            deadline_us: None,
        }
    }

    /// A default join request of `left` against `right`.
    pub fn join(left: DatasetId, right: DatasetId) -> Self {
        Self::with_kind(QueryKind::Join(JoinSpec::new(left, right)))
    }

    /// A join request with an explicit specification.
    pub fn from_spec(spec: JoinSpec) -> Self {
        Self::with_kind(QueryKind::Join(spec))
    }

    /// A window-selection request.
    pub fn window(dataset: DatasetId, window: Rect) -> Self {
        Self::with_kind(QueryKind::Window { dataset, window })
    }

    /// A point-selection request.
    pub fn point(dataset: DatasetId, point: Point) -> Self {
        Self::with_kind(QueryKind::Point { dataset, point })
    }

    /// A streaming-join request over two live datasets.
    pub fn streaming_join(left: LiveId, right: LiveId) -> Self {
        Self::with_kind(QueryKind::StreamingJoin {
            left,
            right,
            predicate: Predicate::default(),
        })
    }

    /// A mixed streaming-join request: a live dataset against a cataloged
    /// one.
    pub fn mixed_join(live: LiveId, dataset: DatasetId) -> Self {
        Self::with_kind(QueryKind::MixedJoin {
            live,
            dataset,
            predicate: Predicate::default(),
        })
    }

    /// A window-selection request over a live dataset.
    pub fn live_window(dataset: LiveId, window: Rect) -> Self {
        Self::with_kind(QueryKind::LiveWindow { dataset, window })
    }

    /// A point-selection request over a live dataset.
    pub fn live_point(dataset: LiveId, point: Point) -> Self {
        Self::with_kind(QueryKind::LivePoint { dataset, point })
    }

    /// Selects the join algorithm (builder style; no-op for selections).
    pub fn with_algorithm(mut self, algo: Algo) -> Self {
        if let QueryKind::Join(spec) = &mut self.kind {
            spec.algo = algo;
        }
        self
    }

    /// Selects the join predicate (builder style; no-op for selections).
    pub fn with_predicate(mut self, predicate: Predicate) -> Self {
        match &mut self.kind {
            QueryKind::Join(spec) => spec.predicate = predicate,
            QueryKind::StreamingJoin { predicate: p, .. }
            | QueryKind::MixedJoin { predicate: p, .. } => *p = predicate,
            QueryKind::Window { .. }
            | QueryKind::Point { .. }
            | QueryKind::LiveWindow { .. }
            | QueryKind::LivePoint { .. } => {}
        }
        self
    }

    /// Selects the join execution strategy (builder style; no-op for
    /// selections).
    pub fn with_execution(mut self, execution: Execution) -> Self {
        if let QueryKind::Join(spec) = &mut self.kind {
            spec.execution = execution;
        }
        self
    }

    /// Sets the admission priority (builder style).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Sets a `LIMIT` on delivered pairs (builder style).
    pub fn with_limit(mut self, limit: u64) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Collects the delivered pairs into the outcome (builder style).
    pub fn collecting(mut self) -> Self {
        self.collect = true;
        self
    }

    /// Sets an explicit per-query memory budget (builder style).
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Attaches a cancellation token (builder style).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Sets an absolute deadline on the observability clock (builder
    /// style). `0` means "already expired": the request resolves to
    /// [`ServiceError::DeadlineExceeded`] without running — the
    /// deterministic smoke case.
    pub fn with_deadline_us(mut self, deadline_us: u64) -> Self {
        self.deadline_us = Some(deadline_us);
        self
    }
}

/// How one query ended.
#[derive(Debug, Clone)]
pub enum QueryStatus {
    /// The query ran to completion (or to its `LIMIT`); the accounting
    /// summary covers exactly the work its forked environment performed.
    Completed(JoinResult),
    /// The query was cancelled: `None` if it never ran, `Some(partial)` with
    /// the accounting of the work done before the cancellation stopped it.
    Cancelled(Option<JoinResult>),
    /// The query failed (unknown dataset, or its admitted memory budget was
    /// genuinely insufficient).
    Failed(ServiceError),
}

/// Per-query scheduling statistics.
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// Bytes reserved on the admission gauge for this query (zero if it was
    /// never admitted). The worker environment's hard memory limit.
    pub admitted_bytes: usize,
    /// Times a free worker examined this request and could not admit it for
    /// lack of gauge headroom.
    pub deferrals: u64,
    /// Wall-clock time from this request's *first enqueue* to its admission
    /// (or to resolution, for queries that never ran). Deferrals and
    /// re-admission attempts do not reset the anchor.
    pub queue_wait: Duration,
    /// Wall-clock time from first enqueue to resolution (queue wait plus
    /// execution) — the client-observed latency the load harness
    /// aggregates into percentiles.
    pub latency: Duration,
    /// Position in the service's admission order (`None` if the request
    /// was never admitted). Within one priority class, un-overtaken
    /// admissions happen in submission order — the FIFO property the
    /// admission-queue property tests check.
    pub admission_seq: Option<u64>,
    /// Times a later request was admitted over this one while it waited.
    /// Bounded by [`ServiceConfig::max_overtakes`] by construction.
    pub overtaken: u64,
    /// Whether this query was serviced as a shared-scan *rider*: coalesced
    /// into another admitted selection's traversal. Riders reserve no
    /// admission budget of their own ([`admitted_bytes`] stays 0) and
    /// report zero I/O — the scan is accounted once, on the leader.
    ///
    /// [`admitted_bytes`]: QueryStats::admitted_bytes
    pub coalesced: bool,
    /// The per-query operator trace, when [`Service::set_tracing`] was on
    /// while this query executed: a `query` root holding the synthesised
    /// `admission.wait` leaf and the recorded `execute` span tree
    /// (operator phases with attributed charged I/O, spill/expiry marks).
    /// `None` whenever tracing is off — and the executed work is
    /// byte-identical either way (the differential suite's contract).
    pub trace: Option<QueryTrace>,
}

/// The outcome of one submitted query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Index of the request in the submitted batch.
    pub request: usize,
    /// How the query ended.
    pub status: QueryStatus,
    /// The delivered pairs, when the request asked to
    /// [`collect`](QueryRequest::collect) them.
    pub pairs: Option<Vec<(u32, u32)>>,
    /// Scheduling statistics.
    pub stats: QueryStats,
}

impl QueryOutcome {
    /// The accounting summary, if the query produced one (completed, or
    /// cancelled after it started running).
    pub fn result(&self) -> Option<&JoinResult> {
        match &self.status {
            QueryStatus::Completed(r) => Some(r),
            QueryStatus::Cancelled(r) => r.as_ref(),
            QueryStatus::Failed(_) => None,
        }
    }

    /// Returns `true` if the query completed.
    pub fn is_completed(&self) -> bool {
        matches!(self.status, QueryStatus::Completed(_))
    }
}

/// Service-wide statistics of one [`Service::run`] batch. Counters sum and
/// peaks take maxima — the same roll-up discipline as
/// [`JoinResult::merge`].
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// The shared admission budget the batch ran under.
    pub memory_limit: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Requests submitted.
    pub submitted: u64,
    /// Requests admitted (their budget was reserved and they ran).
    pub admitted: u64,
    /// Requests that completed.
    pub completed: u64,
    /// Requests that failed.
    pub failed: u64,
    /// Requests cancelled (before or during execution).
    pub cancelled: u64,
    /// Admission deferral events: a free worker examined a request and could
    /// not reserve its budget.
    pub deferrals: u64,
    /// Plan-cache lookups satisfied from the cache during this batch.
    pub plan_cache_hits: u64,
    /// Plan-cache lookups that planned from scratch during this batch.
    pub plan_cache_misses: u64,
    /// High-water mark of the admission gauge: the largest sum of
    /// concurrently granted budgets (never exceeds
    /// [`memory_limit`](ServiceStats::memory_limit) by construction).
    pub peak_admitted_bytes: usize,
    /// Largest *measured* per-query `peak_bytes`.
    pub peak_query_bytes: usize,
    /// Total pairs delivered across all queries.
    pub pairs: u64,
    /// Aggregate I/O of every query's forked environment.
    pub io: IoStats,
    /// Aggregate CPU work of every query's forked environment.
    pub cpu: CpuCounter,
    /// Longest queue wait of any request.
    pub max_queue_wait: Duration,
    /// Sum of all queue waits.
    pub total_queue_wait: Duration,
    /// Shared scans executed (traversals that serviced ≥ 2 queries).
    pub shared_scans: u64,
    /// Queries serviced as shared-scan riders.
    pub coalesced: u64,
    /// High-water mark of the pending queue length.
    pub max_queue_depth: usize,
}

impl fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} submitted / {} completed / {} failed / {} cancelled on {} workers; \
             {} deferrals under {:.1} MB shared budget (peak admitted {:.1} MB, \
             peak query {:.2} MB); {} pairs, {} pages read, {} pages written; \
             plan cache {}/{} hits",
            self.submitted,
            self.completed,
            self.failed,
            self.cancelled,
            self.workers,
            self.deferrals,
            self.memory_limit as f64 / (1024.0 * 1024.0),
            self.peak_admitted_bytes as f64 / (1024.0 * 1024.0),
            self.peak_query_bytes as f64 / (1024.0 * 1024.0),
            self.pairs,
            self.io.pages_read,
            self.io.pages_written,
            self.plan_cache_hits,
            self.plan_cache_hits + self.plan_cache_misses,
        )
    }
}

impl ServiceStats {
    /// A digest over the *interleaving-independent* fields: request
    /// resolution counts, delivered pairs, aggregate page I/O, and
    /// plan-cache misses. Two runs of the same request schedule against the
    /// same catalog produce equal digests regardless of worker scheduling —
    /// the seed-replay determinism contract of the load harness.
    ///
    /// Timing-dependent fields (waits, deferrals, overtakes, plan-cache
    /// hit/miss *split* per query, queue depth) are deliberately excluded;
    /// aggregate I/O is included because with the plan cache on, each join
    /// shape is planned exactly once per batch no matter which query pays
    /// for it. Shared-scan mode trims rider I/O by a timing-dependent
    /// amount, so compare digests with [`shared_scans`] disabled.
    ///
    /// [`shared_scans`]: ServiceConfig::shared_scans
    pub fn replay_digest(&self) -> u64 {
        // FNV-1a over the stable fields, dependency-free.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.submitted);
        eat(self.admitted);
        eat(self.completed);
        eat(self.failed);
        eat(self.cancelled);
        eat(self.pairs);
        eat(self.io.pages_read);
        eat(self.io.pages_written);
        eat(self.plan_cache_misses);
        h
    }
}

/// Everything one [`Service::run`] batch produced.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// One outcome per submitted request, in submission order.
    pub outcomes: Vec<QueryOutcome>,
    /// The batch-wide roll-up.
    pub stats: ServiceStats,
}

/// The concurrent query service over one frozen catalog.
///
/// # Example
///
/// ```
/// use usj_core::Algo;
/// use usj_geom::{Item, Rect};
/// use usj_io::{MachineConfig, SimEnv};
/// use usj_service::{Catalog, QueryRequest, Service, ServiceConfig};
///
/// let mut env = SimEnv::new(MachineConfig::machine3());
/// let boxes: Vec<Item> = (0..400)
///     .map(|i| {
///         let (x, y) = ((i % 20) as f32, (i / 20) as f32);
///         Item::new(Rect::from_coords(x, y, x + 0.9, y + 0.9), i)
///     })
///     .collect();
/// let mut catalog = Catalog::new();
/// let a = catalog.register(&mut env, "boxes", &boxes).unwrap();
///
/// let service = Service::new(env, catalog, ServiceConfig::default().with_workers(2));
/// let report = service.run(vec![
///     QueryRequest::join(a, a).with_algorithm(Algo::Pq),
///     QueryRequest::window(a, Rect::from_coords(0.0, 0.0, 5.0, 5.0)),
/// ]);
/// assert_eq!(report.stats.completed, 2);
/// assert!(report.stats.pairs > 0);
/// ```
#[derive(Debug)]
pub struct Service {
    /// The shared mutable state of the live (LSM) side, behind three
    /// independent locks — see [`LiveStore`]. Shared with the background
    /// maintenance worker when one is running.
    store: Arc<LiveStore>,
    catalog: Catalog,
    config: ServiceConfig,
    /// The machine model, copied out of the storage environment so query
    /// worker forks can be built without touching the storage lock.
    machine: MachineConfig,
    plan_cache: Mutex<PlanCache>,
    /// The background maintenance worker, when
    /// [`ServiceConfig::background_maintenance`] is on. Dropped (shut down
    /// and joined) before the store is dissolved.
    maintenance: Option<Maintenance>,
    /// The observability hub: metric registry, trace clock, tracing switch
    /// and the background-maintenance event ring. Shared with the
    /// maintenance worker.
    obs: Arc<ServiceObs>,
}

/// The service's observability state, shared between the scheduler, the
/// query workers and the background maintenance worker.
///
/// Metrics are always on (lock-free counters and log-bucketed histograms —
/// cheap enough to never gate). Tracing is the expensive half (per-event
/// allocation and ring pushes) and is off by default; flipping
/// [`Service::set_tracing`] installs per-query [`RingCollector`]s in the
/// execute path and routes maintenance spans into [`ServiceObs::maint`].
#[derive(Debug)]
struct ServiceObs {
    /// Timestamp source for queue waits, latencies and trace spans. The
    /// host monotonic clock in production; tests swap in a
    /// [`usj_obs::VirtualClock`] via [`Service::set_clock`] to make waits
    /// and trace bounds deterministic.
    clock: Mutex<Arc<dyn Clock>>,
    /// Whether per-query and maintenance span tracing is enabled.
    tracing: AtomicBool,
    /// Event ring for background maintenance spans (flush/compaction),
    /// drained by [`Service::drain_background_trace`].
    maint: Arc<RingCollector>,
    /// Counters, gauges and histograms, snapshot via
    /// [`Service::metrics_snapshot`].
    registry: MetricsRegistry,
}

impl ServiceObs {
    fn new() -> Self {
        ServiceObs {
            clock: Mutex::new(Arc::new(HostClock::new())),
            tracing: AtomicBool::new(false),
            maint: Arc::new(RingCollector::new(MAINT_TRACE_EVENTS)),
            registry: MetricsRegistry::new(),
        }
    }

    /// The current trace/wait clock.
    fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&*relock(self.clock.lock()))
    }

    /// Current clock reading, microseconds.
    fn now_us(&self) -> u64 {
        self.clock().now_us()
    }

    fn tracing(&self) -> bool {
        self.tracing.load(Ordering::Relaxed)
    }

    /// Installs the maintenance ring on the calling thread while tracing is
    /// on; a no-op (`None`) otherwise.
    fn install_maint(&self) -> Option<usj_obs::ObsGuard> {
        self.tracing()
            .then(|| usj_obs::install(Arc::clone(&self.maint) as Arc<dyn Recorder>, self.clock()))
    }
}

/// Microseconds elapsed between two clock readings, as a [`Duration`]
/// (clamped at zero — a swapped virtual clock never yields negative waits).
fn us_between(from_us: u64, to_us: u64) -> Duration {
    Duration::from_micros(to_us.saturating_sub(from_us))
}

/// Recovers a poisoned lock guard.
///
/// The service's lock-poisoning policy, from the `unwrap()` audit: worker
/// and maintenance panics are contained with `catch_unwind` *before* they
/// reach scheduler state, and every structure these locks protect keeps its
/// invariants across a panic (the device is append-only, catalog and queue
/// mutations are not interleaved with faultable I/O). Refusing service
/// forever because some earlier thread panicked would turn one contained
/// fault into a total outage — so scheduler, storage and observability
/// locks *recover*, while query-path lookups whose callers return `Result`
/// propagate [`ServiceError::LockPoisoned`] instead (see
/// [`Service::live_snapshot`]).
fn relock<T>(result: std::sync::LockResult<T>) -> T {
    result.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Transient-fault retry policy: how many re-runs, and the base backoff.
#[derive(Debug, Clone, Copy)]
struct FaultRetry {
    retries: u32,
    backoff_us: u64,
}

impl FaultRetry {
    fn of(config: &ServiceConfig) -> Self {
        FaultRetry {
            retries: config.fault_retries,
            backoff_us: config.fault_backoff_us,
        }
    }

    /// Backoff before retry attempt `n` (1-based): `base << (n-1)`,
    /// shift-capped so a misconfigured retry count cannot overflow.
    fn backoff_for(&self, attempt: u32) -> u64 {
        self.backoff_us.saturating_mul(1u64 << attempt.saturating_sub(1).min(16))
    }
}

/// Runs `f`, retrying transient device faults per `retry` with
/// clock-driven exponential backoff. Every observed device fault bumps
/// `faults.injected`; every re-run bumps `faults.retries`. Non-transient
/// errors (torn writes included) surface immediately.
fn retry_transient<T>(
    obs: &ServiceObs,
    retry: FaultRetry,
    mut f: impl FnMut() -> Result<T>,
) -> Result<T> {
    let mut attempt = 0u32;
    loop {
        match f() {
            Err(ServiceError::Io(IoSimError::DeviceFault { transient: true }))
                if attempt < retry.retries =>
            {
                attempt += 1;
                obs.registry.counter("faults.injected").inc();
                obs.registry.counter("faults.retries").inc();
                obs.clock().wait_us(retry.backoff_for(attempt));
            }
            Err(e) => {
                if matches!(&e, ServiceError::Io(IoSimError::DeviceFault { .. })) {
                    obs.registry.counter("faults.injected").inc();
                }
                return Err(e);
            }
            ok => return ok,
        }
    }
}

/// Best-effort text of a caught panic payload.
fn panic_payload(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Fault stream id for one query attempt: request index in the low half,
/// retry attempt in the high half — every (query, attempt) pair draws an
/// independent, replayable fault schedule, so a retry is not doomed to hit
/// the very fault decision that failed it.
fn query_fault_stream(idx: usize, attempt: u32) -> u64 {
    (idx as u64 & 0xffff_ffff) | (u64::from(attempt) << 32)
}

/// Reserved fault stream for the storage environment (flushes, compactions,
/// promotions) — far outside the per-query space.
const STORAGE_FAULT_STREAM: u64 = u64::MAX;

/// Static label for a query kind, used as trace span detail.
fn kind_label(kind: &QueryKind) -> &'static str {
    match kind {
        QueryKind::Join(_) => "join",
        QueryKind::StreamingJoin { .. } => "streaming_join",
        QueryKind::MixedJoin { .. } => "mixed_join",
        QueryKind::Window { .. } => "window",
        QueryKind::Point { .. } => "point",
        QueryKind::LiveWindow { .. } => "live_window",
        QueryKind::LivePoint { .. } => "live_point",
    }
}

/// The live side's shared state. Three locks, deliberately independent:
///
/// * `storage` — the device-owning environment. All persisted-run I/O
///   (registration, flush writes, compaction merges, promotion) happens
///   here. Appends, snapshot-taking and query execution never touch it, so
///   a long merge never blocks them.
/// * `live` — the catalog of [`LiveDataset`] handles: memtables, run
///   handles, generations. Held only for O(in-memory) operations (inserts,
///   claims, publications, snapshot clones) — never across device I/O.
/// * `base` — the latest device page snapshot, forked by query workers.
///
/// **Publication ordering invariant**: a maintenance actor makes new pages
/// readable *before* making the run that references them visible — it
/// snapshots the device (under `storage`), advances `base`, and only then
/// publishes the run handle (under `live`). Readers do the reverse: clone
/// run handles first (a snapshot, under `live`), then fork the base. Since
/// device pages are append-only (snapshots are prefixes of later
/// snapshots), every run a reader can see has its pages in the base it
/// forks. Lock order, where nesting is needed at all, is
/// `live` → `storage` → `base`; the maintenance loop itself holds at most
/// one of the three at a time.
#[derive(Debug)]
struct LiveStore {
    storage: Mutex<SimEnv>,
    live: Mutex<LiveCatalog>,
    base: Mutex<Arc<Vec<Page>>>,
}

impl LiveStore {
    /// Advances the base snapshot slot — monotonically, so two actors
    /// racing their publications can never move readers *backwards* onto a
    /// snapshot that lacks already-visible pages.
    fn publish_base(&self, snap: Arc<Vec<Page>>) {
        let mut base = relock(self.base.lock());
        if snap.len() > base.len() {
            *base = snap;
        }
    }

    /// The current base snapshot for a worker fork.
    fn fork_base(&self) -> Arc<Vec<Page>> {
        Arc::clone(&*relock(self.base.lock()))
    }
}

/// One step of live maintenance, claimed under the `live` lock and executed
/// against immutable handles on the storage environment.
enum MaintStep {
    Flush(FlushJob),
    Compact(CompactionPlan),
}

/// Drives one dataset's maintenance to completion: claim a step under the
/// `live` lock, run its I/O on the storage environment under the scoped
/// maintenance budget, publish base-then-run, repeat until nothing is
/// pending. `full` forces a terminal freeze + compaction regardless of the
/// configured thresholds (the quiesce path); otherwise the dataset's own
/// thresholds decide.
///
/// This one function *is* live maintenance for both modes: the inline path
/// calls it on the appending thread, the background worker calls it on its
/// own — so the two modes produce identical runs by construction.
fn tend_live(
    store: &LiveStore,
    obs: &ServiceObs,
    name: &str,
    budget: usize,
    full: bool,
    retry: FaultRetry,
) -> Result<()> {
    // While tracing, route the `live.flush` / `live.compaction` spans the
    // split-phase runners emit into the shared maintenance ring. Metric
    // durations below are recorded unconditionally.
    let _trace = obs.install_maint();
    loop {
        // Claim: O(in-memory) work only under the live lock.
        let step = {
            let mut live = relock(store.live.lock());
            let Some(ds) = live.get_mut_by_name(name) else {
                // Taken (promoted) with a tend still queued — nothing to do.
                return Ok(());
            };
            if (full && ds.memtable_len() > 0) || ds.wants_freeze() {
                ds.freeze();
            }
            if let Some(job) = ds.begin_flush() {
                MaintStep::Flush(job)
            } else if full && !ds.delta_runs().is_empty() || ds.wants_compaction() {
                match ds.begin_compaction() {
                    Some(plan) => MaintStep::Compact(plan),
                    None => return Ok(()),
                }
            } else {
                return Ok(());
            }
        };
        // Execute: device I/O on the storage environment, inside the scoped
        // maintenance budget; then snapshot *under the same lock hold*, so
        // the snapshot is guaranteed to contain the step's pages.
        match step {
            MaintStep::Flush(job) => {
                let t0 = obs.now_us();
                // Transient device faults re-run the whole flush: `begin_flush`
                // only *peeked* the batch, so a failed attempt leaves it queued
                // and a re-run writes a fresh run from the same records.
                let (run, snap) = retry_transient(obs, retry, || {
                    let mut storage = relock(store.storage.lock());
                    let run =
                        storage.with_budget(budget, |env| LiveDataset::run_flush(env, &job))?;
                    let snap = storage.device.snapshot();
                    Ok((run, snap))
                })?;
                obs.registry.counter("maintenance.flushes").inc();
                obs.registry
                    .histogram("maintenance.flush_us")
                    .record(obs.now_us().saturating_sub(t0));
                // Publish: base pages first, then the run handle.
                store.publish_base(snap);
                let mut live = relock(store.live.lock());
                if let Some(ds) = live.get_mut_by_name(name) {
                    ds.publish_flush(job, run);
                }
            }
            MaintStep::Compact(plan) => {
                let t0 = obs.now_us();
                let ran = retry_transient(obs, retry, || {
                    let mut storage = relock(store.storage.lock());
                    storage
                        .with_budget(budget, |env| LiveDataset::run_compaction(env, &plan))
                        .map(|out| (out, storage.device.snapshot()))
                        .map_err(ServiceError::from)
                });
                obs.registry.counter("maintenance.compactions").inc();
                obs.registry
                    .histogram("maintenance.compaction_us")
                    .record(obs.now_us().saturating_sub(t0));
                match ran {
                    Ok((out, snap)) => {
                        store.publish_base(snap);
                        let mut live = relock(store.live.lock());
                        if let Some(ds) = live.get_mut_by_name(name) {
                            ds.publish_compaction(out);
                        }
                    }
                    Err(e) => {
                        let mut live = relock(store.live.lock());
                        if let Some(ds) = live.get_mut_by_name(name) {
                            ds.abort_compaction();
                        }
                        return Err(e);
                    }
                }
            }
        }
    }
}

/// A queued unit of background maintenance.
#[derive(Debug)]
enum MaintJob {
    /// Run [`tend_live`] for the named dataset until nothing is pending.
    Tend(String),
    /// Exit the worker loop.
    Shutdown,
}

/// The background maintenance worker: one thread, an mpsc job queue, and an
/// in-flight counter so [`Service::quiesce_live`] can wait for the queue to
/// drain. Dropping it sends `Shutdown` and joins the thread — the
/// shutdown/join discipline that keeps [`Service::into_parts`] sound.
#[derive(Debug)]
struct Maintenance {
    tx: mpsc::Sender<MaintJob>,
    /// Jobs enqueued but not yet finished, with a condvar for waiters.
    inflight: Arc<(Mutex<u64>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

impl Maintenance {
    fn spawn(store: Arc<LiveStore>, obs: Arc<ServiceObs>, budget: usize, retry: FaultRetry) -> Self {
        let (tx, rx) = mpsc::channel::<MaintJob>();
        let inflight = Arc::new((Mutex::new(0u64), Condvar::new()));
        let worker_inflight = Arc::clone(&inflight);
        let handle = std::thread::spawn(move || {
            while let Ok(job) = rx.recv() {
                match job {
                    MaintJob::Shutdown => break,
                    MaintJob::Tend(name) => {
                        // A maintenance error (e.g. device full) leaves the
                        // dataset consistent with the work still pending;
                        // the next append's tend retries it. Queries and
                        // appends keep working off the last published
                        // generation either way. A *panic* inside the tend
                        // is contained the same way: the claimed step is
                        // abandoned (its records stay in the queued tiers),
                        // the poisoned locks recover via `relock`, and —
                        // crucially — the in-flight count still drops, so
                        // `wait_idle` never hangs on a dead job.
                        let tended = catch_unwind(AssertUnwindSafe(|| {
                            let _ = tend_live(&store, &obs, &name, budget, false, retry);
                        }));
                        if tended.is_err() {
                            obs.registry.counter("faults.panics").inc();
                            obs.registry.counter("faults.injected").inc();
                        }
                        let (count, cv) = &*worker_inflight;
                        let mut n = relock(count.lock());
                        *n -= 1;
                        cv.notify_all();
                    }
                }
            }
        });
        Maintenance {
            tx,
            inflight,
            handle: Some(handle),
        }
    }

    /// Queues a tend for `name`; the worker coalesces naturally (a tend
    /// drains *everything* pending, so later queued tends for the same
    /// dataset fall through as no-ops).
    fn enqueue(&self, name: &str) {
        let (count, cv) = &*self.inflight;
        *relock(count.lock()) += 1;
        if self.tx.send(MaintJob::Tend(name.to_string())).is_err() {
            // Worker already shut down (only happens mid-drop).
            *relock(count.lock()) -= 1;
            cv.notify_all();
        }
    }

    /// Blocks until every queued job has finished.
    fn wait_idle(&self) {
        let (count, cv) = &*self.inflight;
        let mut n = relock(count.lock());
        while *n > 0 {
            n = relock(cv.wait(n));
        }
    }
}

impl Drop for Maintenance {
    fn drop(&mut self) {
        let _ = self.tx.send(MaintJob::Shutdown);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// One submitted request's scheduler-side record, alive from submission to
/// report assembly.
struct Entry {
    /// The request itself; taken (moved out) when the entry is claimed for
    /// execution, so the worker runs it without holding the queue lock.
    request: Option<QueryRequest>,
    /// Admission-gauge estimate, computed once at submission.
    estimate: usize,
    /// First-enqueue reading of the service's observability clock
    /// (microseconds) — the queue-wait and latency anchor. Deferrals and
    /// re-admission attempts never reset it. Reading the pluggable clock
    /// (rather than `Instant::now`) is what lets tests swap in a
    /// [`usj_obs::VirtualClock`] and assert exact waits.
    submitted_us: u64,
    deferrals: u64,
    overtaken: u64,
    admission_seq: Option<u64>,
    queue_wait: Option<Duration>,
    coalesced: bool,
    outcome: Option<QueryOutcome>,
}

/// Aggregate totals folded in as queries finish.
#[derive(Default)]
struct AggTotals {
    admitted: u64,
    completed: u64,
    failed: u64,
    cancelled: u64,
    pairs: u64,
    io: IoStats,
    cpu: CpuCounter,
    peak_query_bytes: usize,
    max_wait: Duration,
    total_wait: Duration,
    deferrals: u64,
    shared_scans: u64,
    coalesced: u64,
}

/// Scheduler state shared by the workers of one batch or session.
struct SessionState {
    /// One entry per submitted request, in submission order.
    entries: Vec<Entry>,
    /// Indices into `entries` awaiting admission, sorted by
    /// (priority desc, submission order asc).
    pending: Vec<usize>,
    /// Queries (or shared-scan batches) currently holding a reservation.
    running: usize,
    /// Set when the submitting side is done; workers drain and exit.
    closed: bool,
    next_admission_seq: u64,
    max_queue_depth: usize,
    agg: AggTotals,
}

/// The synchronization bundle shared by the workers and the submitter.
struct SessionShared {
    state: Mutex<SessionState>,
    cv: Condvar,
    gauge: MemoryGauge,
}

/// What a worker decided to do with a scanned request.
enum Job {
    Run {
        lead: (usize, QueryRequest),
        riders: Vec<(usize, QueryRequest)>,
        reservation: usj_io::MemoryReservation,
    },
    Cancel(usize),
    Fail(usize, ServiceError),
}

/// An open submission handle into a running [`Service::with_session`]
/// scope: the load harness's way of driving the worker pool open-loop.
///
/// Requests submitted here enter the same priority/FIFO admission queue as
/// a batch's; outcomes are collected into the session's final
/// [`ServiceReport`] in submission order. The handle also exposes the
/// instantaneous queue depth so an open-loop driver can record backlog
/// growth over time.
pub struct Session<'a> {
    service: &'a Service,
    shared: &'a SessionShared,
}

impl Session<'_> {
    /// Enqueues one request and wakes the workers. Returns the request's
    /// index in the session's final report.
    pub fn submit(&self, request: QueryRequest) -> usize {
        let estimate = self.service.admission_estimate(&request);
        let priority = request.priority;
        let obs = &self.service.obs;
        let submitted_us = obs.now_us();
        let mut guard = relock(self.shared.state.lock());
        let state = &mut *guard;
        let idx = state.entries.len();
        state.entries.push(Entry {
            request: Some(request),
            estimate,
            submitted_us,
            deferrals: 0,
            overtaken: 0,
            admission_seq: None,
            queue_wait: None,
            coalesced: false,
            outcome: None,
        });
        let entries = &state.entries;
        let pos = state.pending.partition_point(|&e| {
            let queued = entries[e].request.as_ref().expect("pending entries own their request");
            queued.priority >= priority
        });
        state.pending.insert(pos, idx);
        state.max_queue_depth = state.max_queue_depth.max(state.pending.len());
        let depth = state.pending.len() as i64;
        drop(guard);
        obs.registry.counter("queries.submitted").inc();
        obs.registry.gauge("queue.depth").set(depth);
        obs.registry.gauge("queue.depth.peak").set_max(depth);
        self.shared.cv.notify_all();
        idx
    }

    /// Requests currently awaiting admission.
    pub fn queue_depth(&self) -> usize {
        relock(self.shared.state.lock()).pending.len()
    }

    /// Queries (or shared-scan batches) currently executing.
    pub fn running(&self) -> usize {
        relock(self.shared.state.lock()).running
    }

    /// Requests submitted so far.
    pub fn submitted(&self) -> usize {
        relock(self.shared.state.lock()).entries.len()
    }

    /// Bytes currently held on the session's admission gauge. The leak
    /// oracle for the chaos suite: once every submitted query has resolved
    /// — completed, failed, panicked, cancelled or timed out — this must
    /// read zero, or some failure path kept its reservation.
    pub fn admission_bytes_in_use(&self) -> usize {
        self.shared.gauge.current()
    }
}

impl Service {
    /// Creates a service over `catalog`, whose datasets live on `env`'s
    /// device. The device is snapshotted *once* here — the catalog is
    /// frozen for the service's lifetime and queries never mutate it —
    /// and every batch's worker forks share that snapshot.
    pub fn new(mut env: SimEnv, catalog: Catalog, config: ServiceConfig) -> Self {
        // Under a fault plan, the *storage* environment (flushes,
        // compactions, promotions) draws from its own reserved stream —
        // independent of every per-query schedule and replayable on its own.
        if let Some(faults) = config.fault_plan {
            let mut storage_faults = faults;
            storage_faults.seed = derive_seed(faults.seed, STORAGE_FAULT_STREAM);
            env.install_faults(FaultPlan::new(storage_faults));
        }
        let base = env.device.snapshot();
        let machine = env.machine.clone();
        let store = Arc::new(LiveStore {
            storage: Mutex::new(env),
            live: Mutex::new(LiveCatalog::new()),
            base: Mutex::new(base),
        });
        let obs = Arc::new(ServiceObs::new());
        let maintenance = config.background_maintenance.then(|| {
            Maintenance::spawn(
                Arc::clone(&store),
                Arc::clone(&obs),
                config.maintenance_budget_bytes,
                FaultRetry::of(&config),
            )
        });
        Service {
            store,
            catalog,
            config,
            machine,
            plan_cache: Mutex::new(PlanCache::new()),
            maintenance,
            obs,
        }
    }

    /// Swaps the observability clock used for queue waits, latencies and
    /// trace timestamps. Production keeps the default host monotonic clock;
    /// tests install a [`usj_obs::VirtualClock`] to make every measured
    /// wait and trace bound deterministic.
    ///
    /// Swap before submitting work: waits anchor at submission, so a
    /// mid-flight swap mixes time bases (negative deltas clamp to zero).
    pub fn set_clock(&self, clock: Arc<dyn Clock>) {
        *relock(self.obs.clock.lock()) = clock;
    }

    /// Enables or disables span tracing. Off (the default), queries carry
    /// no [`QueryStats::trace`] and the execute path never touches the
    /// span machinery beyond one thread-local probe; on, every query
    /// drains its operator spans into a bounded per-query ring and
    /// background maintenance records into the shared maintenance ring.
    /// Executed work is byte-identical either way.
    pub fn set_tracing(&self, on: bool) {
        self.obs.tracing.store(on, Ordering::Relaxed);
    }

    /// A point-in-time snapshot of every service metric: admission
    /// counters, queue-depth gauges, wait/latency and maintenance-duration
    /// histograms. The `live.backlog` gauge is refreshed here (delta runs
    /// plus frozen batches summed over every live dataset).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let backlog: usize = self.with_live(|live| {
            live.iter()
                .map(|(_, ds)| ds.delta_runs().len() + ds.pending_flush_batches())
                .sum()
        });
        self.obs.registry.gauge("live.backlog").set(backlog as i64);
        self.obs.registry.snapshot()
    }

    /// Drains the background-maintenance event ring into a span tree of
    /// the `live.flush` / `live.compaction` work recorded since the last
    /// drain (empty unless [`set_tracing`](Service::set_tracing) was on).
    pub fn drain_background_trace(&self) -> QueryTrace {
        let (events, dropped) = self.obs.maint.drain();
        QueryTrace::from_events(&events, dropped)
    }

    /// The frozen catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Runs `f` against the live (LSM-style) side of the catalog, under its
    /// lock. With background maintenance on, the view is a consistent point
    /// in time but maintenance may publish a new generation the moment the
    /// closure returns — don't cache tier shapes across calls.
    pub fn with_live<T>(&self, f: impl FnOnce(&LiveCatalog) -> T) -> T {
        // The deref is load-bearing: without it, inference unifies
        // `relock`'s T with `LiveCatalog` instead of the guard.
        #[allow(clippy::explicit_auto_deref)]
        f(&*relock(self.store.live.lock()))
    }

    /// Lifetime counters for the named live dataset, if it exists.
    pub fn live_stats(&self, name: &str) -> Option<LiveStats> {
        self.with_live(|live| live.lookup(name).map(|(_, ds)| ds.stats()))
    }

    /// The named live dataset's *observed maintenance backlog*: delta runs
    /// awaiting compaction plus frozen batches awaiting flush, at this
    /// instant. Under background maintenance this is the number a submitter
    /// actually races against — the load the worker has not yet retired —
    /// which makes it the right bucketing key for interference experiments
    /// (post-hoc stats deltas can't tell "ran during compaction" from "ran
    /// just after").
    pub fn live_backlog(&self, name: &str) -> Option<usize> {
        self.with_live(|live| {
            live.lookup(name)
                .map(|(_, ds)| ds.delta_runs().len() + ds.pending_flush_batches())
        })
    }

    /// Registers a live dataset with an initial base batch, publishing the
    /// new device pages so queries' worker forks can read its base run.
    pub fn register_live(&self, name: &str, base_items: &[Item], config: LiveConfig) -> Result<LiveId> {
        // Hold the live lock across creation so two racing registrations of
        // the same name can't both pass the duplicate check (lock order:
        // live → storage).
        let mut live = self
            .store
            .live
            .lock()
            .map_err(|_| ServiceError::LockPoisoned("live catalog"))?;
        if live.lookup(name).is_some() {
            return Err(ServiceError::DuplicateDataset(name.to_string()));
        }
        let (dataset, snap) = retry_transient(&self.obs, FaultRetry::of(&self.config), || {
            let mut storage = relock(self.store.storage.lock());
            let dataset = LiveDataset::create(&mut storage, name, base_items, config)?;
            let snap = storage.device.snapshot();
            Ok((dataset, snap))
        })?;
        self.store.publish_base(snap);
        Ok(live.insert(dataset)?)
    }

    /// Appends records to a registered live dataset. The records land in the
    /// dataset's memtable and are immediately visible to queries; flushes
    /// and compactions the append makes due either run here inline or are
    /// handed to the background maintenance worker, per
    /// [`ServiceConfig::background_maintenance`].
    pub fn append_live(&self, name: &str, items: &[Item]) -> Result<()> {
        let pending = {
            let mut live = self
                .store
                .live
                .lock()
                .map_err(|_| ServiceError::LockPoisoned("live catalog"))?;
            let Some(ds) = live.get_mut_by_name(name) else {
                return Err(ServiceError::UnknownDataset(name.to_string()));
            };
            ds.append_buffered(items)?
        };
        if pending {
            match &self.maintenance {
                Some(worker) => worker.enqueue(name),
                None => tend_live(
                    &self.store,
                    &self.obs,
                    name,
                    self.config.maintenance_budget_bytes,
                    false,
                    FaultRetry::of(&self.config),
                )?,
            }
        }
        Ok(())
    }

    /// Drains the named live dataset's maintenance backlog to *nothing*:
    /// waits out any queued background work, then flushes the memtable and
    /// folds every delta into the base run. Afterwards the dataset is a
    /// single sorted run + R-tree — the shape
    /// [`promote_live`](Service::promote_live) requires, and the shape that makes
    /// benchmark pair-checks deterministic.
    pub fn quiesce_live(&self, name: &str) -> Result<()> {
        if self.with_live(|live| live.lookup(name).is_none()) {
            return Err(ServiceError::UnknownDataset(name.to_string()));
        }
        if let Some(worker) = &self.maintenance {
            worker.wait_idle();
        }
        tend_live(
            &self.store,
            &self.obs,
            name,
            self.config.maintenance_budget_bytes,
            true,
            FaultRetry::of(&self.config),
        )
    }

    /// Promotes a quiesced live dataset into the frozen catalog: quiesces
    /// it, removes it from the live side, builds the grid histogram its
    /// frozen peers carry (the one summary the live path never maintains),
    /// and registers the already-sorted run + R-tree under the same name.
    /// Returns the new frozen [`DatasetId`]; subsequent queries address it
    /// via [`QueryKind::Join`] / [`QueryKind::Window`] like any cataloged
    /// dataset.
    pub fn promote_live(&mut self, name: &str) -> Result<DatasetId> {
        if self.with_live(|live| live.lookup(name).is_none()) {
            return Err(ServiceError::UnknownDataset(name.to_string()));
        }
        // Refuse before touching the live side: a failed adoption after
        // `take` would drop the dataset on the floor.
        if self.catalog.lookup(name).is_some() {
            return Err(ServiceError::DuplicateDataset(name.to_string()));
        }
        self.quiesce_live(name)?;
        let (_, dataset) = {
            let mut live = relock(self.store.live.lock());
            live.take(name)
                .ok_or_else(|| ServiceError::UnknownDataset(name.to_string()))?
        };
        let (sorted, tree, bbox) = dataset.into_frozen_parts()?;
        let (id, snap) = {
            let mut storage = relock(self.store.storage.lock());
            let id = self.catalog.adopt(&mut storage, name, sorted, tree, bbox)?;
            let snap = storage.device.snapshot();
            (id, snap)
        };
        self.store.publish_base(snap);
        Ok(id)
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Dissolves the service, returning the environment and catalog (e.g. to
    /// register more datasets and build a new service). Shuts down and joins
    /// the background maintenance worker first, so the store has exactly one
    /// owner left.
    pub fn into_parts(mut self) -> (SimEnv, Catalog) {
        drop(self.maintenance.take());
        let store = Arc::try_unwrap(self.store)
            .unwrap_or_else(|_| panic!("maintenance worker joined; no other store owners remain"));
        let env = relock(store.storage.into_inner());
        (env, self.catalog)
    }

    /// The memory estimate admission control will reserve for `request`: an
    /// explicit [`memory_budget`](QueryRequest::memory_budget) clamped to
    /// `[MIN_QUERY_BUDGET, memory_limit]`, or a size-based heuristic
    /// (3× the input bytes with a [`JOIN_BUDGET_FLOOR`] floor for joins,
    /// 1× for streaming joins — the symmetric operator spills instead of
    /// growing — and [`SELECTION_BUDGET`] for selections).
    ///
    /// When the plan cache holds a *measured* peak for a join's fingerprint
    /// (recorded from earlier uncancelled, unlimited runs of the same query
    /// shape), the estimate is that peak plus a 25 % safety margin instead
    /// of the size heuristic — repeat workloads are admitted against what
    /// the query actually used, so more of them fit the shared budget
    /// concurrently.
    pub fn admission_estimate(&self, request: &QueryRequest) -> usize {
        let limit = self.config.memory_limit;
        if let Some(bytes) = request.memory_budget {
            return bytes.max(MIN_QUERY_BUDGET).min(limit.max(1));
        }
        let want = match &request.kind {
            QueryKind::Join(spec) => {
                let measured = self.config.use_plan_cache.then(|| {
                    let cache = relock(self.plan_cache.lock());
                    cache.peak(&PlanKey::new(spec))
                });
                match measured.flatten() {
                    Some(peak) => (peak + peak / 4).max(MIN_QUERY_BUDGET),
                    None => {
                        let len = |id: DatasetId| self.catalog.get(id).map_or(0, |d| d.len());
                        let bytes = (len(spec.left) + len(spec.right)) as usize * ITEM_BYTES;
                        (3 * bytes).max(JOIN_BUDGET_FLOOR)
                    }
                }
            }
            QueryKind::StreamingJoin { left, right, .. } => {
                let live = relock(self.store.live.lock());
                let len = |id: LiveId| live.get(id).map_or(0, |d| d.len());
                let bytes = (len(*left) + len(*right)) as usize * ITEM_BYTES;
                bytes.max(JOIN_BUDGET_FLOOR)
            }
            QueryKind::MixedJoin { live, dataset, .. } => {
                let live_len = {
                    let catalog = relock(self.store.live.lock());
                    catalog.get(*live).map_or(0, |d| d.len())
                };
                let ds_len = self.catalog.get(*dataset).map_or(0, |d| d.len());
                let bytes = (live_len + ds_len) as usize * ITEM_BYTES;
                bytes.max(JOIN_BUDGET_FLOOR)
            }
            QueryKind::Window { .. }
            | QueryKind::Point { .. }
            | QueryKind::LiveWindow { .. }
            | QueryKind::LivePoint { .. } => SELECTION_BUDGET,
        };
        want.min(limit.max(1))
    }

    /// Executes a batch of requests on the worker pool and returns every
    /// outcome plus the service-wide roll-up.
    ///
    /// This is the closed session special case: everything is enqueued up
    /// front and the session closes immediately, so the workers drain the
    /// queue and exit.
    pub fn run(&self, requests: Vec<QueryRequest>) -> ServiceReport {
        let workers = self.config.workers.max(1).min(requests.len().max(1));
        self.session_core(requests, workers, |_| {}).1
    }

    /// Runs an *open* session: spawns the worker pool, hands the caller a
    /// [`Session`] submission handle, and keeps the workers alive until the
    /// closure returns — the open-loop load-generation mode, where arrival
    /// times follow the driver's schedule rather than the batch boundary.
    ///
    /// Returns the closure's value and the report over every request
    /// submitted during the session, in submission order.
    pub fn with_session<T>(&self, f: impl FnOnce(&Session<'_>) -> T) -> (T, ServiceReport) {
        self.session_core(Vec::new(), self.config.workers.max(1), f)
    }

    /// The shared engine under [`run`](Service::run) and
    /// [`with_session`](Service::with_session): enqueue `initial`, spawn
    /// `workers`, let `f` drive the session, close, drain, report.
    fn session_core<T>(
        &self,
        initial: Vec<QueryRequest>,
        workers: usize,
        f: impl FnOnce(&Session<'_>) -> T,
    ) -> (T, ServiceReport) {
        let shared = SessionShared {
            state: Mutex::new(SessionState {
                entries: Vec::new(),
                pending: Vec::new(),
                running: 0,
                closed: false,
                next_admission_seq: 0,
                max_queue_depth: 0,
                agg: AggTotals::default(),
            }),
            cv: Condvar::new(),
            gauge: MemoryGauge::new(self.config.memory_limit),
        };
        let session = Session {
            service: self,
            shared: &shared,
        };
        for request in initial {
            session.submit(request);
        }
        let (cache_hits_before, cache_misses_before) = {
            let cache = relock(self.plan_cache.lock());
            (cache.hits(), cache.misses())
        };

        let value = std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| self.worker_loop(&shared));
            }
            let value = f(&session);
            relock(shared.state.lock()).closed = true;
            shared.cv.notify_all();
            value
        });

        let state = relock(shared.state.into_inner());
        let agg = state.agg;
        let n = state.entries.len();
        let outcomes: Vec<QueryOutcome> = state
            .entries
            .into_iter()
            .map(|e| e.outcome.expect("every request resolves to an outcome"))
            .collect();
        let cache = relock(self.plan_cache.lock());
        let stats = ServiceStats {
            memory_limit: self.config.memory_limit,
            workers,
            submitted: n as u64,
            admitted: agg.admitted,
            completed: agg.completed,
            failed: agg.failed,
            cancelled: agg.cancelled,
            deferrals: agg.deferrals,
            plan_cache_hits: cache.hits() - cache_hits_before,
            plan_cache_misses: cache.misses() - cache_misses_before,
            peak_admitted_bytes: shared.gauge.peak(),
            peak_query_bytes: agg.peak_query_bytes,
            pairs: agg.pairs,
            io: agg.io,
            cpu: agg.cpu,
            max_queue_wait: agg.max_wait,
            total_queue_wait: agg.total_wait,
            shared_scans: agg.shared_scans,
            coalesced: agg.coalesced,
            max_queue_depth: state.max_queue_depth,
        };
        (value, ServiceReport { outcomes, stats })
    }

    /// One worker: repeatedly claim the first admissible pending request (in
    /// priority/FIFO order, bounded overtake allowed), run it — together
    /// with any coalesced shared-scan riders — on a forked environment,
    /// release its budget, until the session closes and the queue drains.
    fn worker_loop(&self, shared: &SessionShared) {
        while let Some(job) = self.claim(shared) {
            match job {
                Job::Run {
                    lead,
                    riders,
                    reservation,
                } => {
                    let granted = reservation.bytes();
                    let rider_count = riders.len() as u64;
                    let outcomes = if riders.is_empty() {
                        vec![self.execute_one(lead.0, &lead.1, granted)]
                    } else {
                        // Contain a panic anywhere in the shared traversal:
                        // every member fails with the payload, the leader
                        // keeps the grant accounting, and the reservation
                        // drop below still runs.
                        catch_unwind(AssertUnwindSafe(|| {
                            self.execute_shared_scan(&lead, &riders, granted)
                        }))
                        .unwrap_or_else(|payload| {
                            self.obs.registry.counter("faults.panics").inc();
                            self.obs.registry.counter("faults.injected").inc();
                            let err = ServiceError::WorkerPanicked(panic_payload(payload.as_ref()));
                            std::iter::once(&lead)
                                .chain(riders.iter())
                                .enumerate()
                                .map(|(k, (idx, _))| QueryOutcome {
                                    request: *idx,
                                    status: QueryStatus::Failed(err.clone()),
                                    pairs: None,
                                    stats: QueryStats {
                                        admitted_bytes: if k == 0 { granted } else { 0 },
                                        ..QueryStats::default()
                                    },
                                })
                                .collect()
                        })
                    };
                    drop(reservation);
                    let mut state = relock(shared.state.lock());
                    for outcome in outcomes {
                        self.finish(&mut state, outcome, true);
                    }
                    if rider_count > 0 {
                        state.agg.shared_scans += 1;
                        state.agg.coalesced += rider_count;
                        self.obs.registry.counter("sharedscan.batches").inc();
                        self.obs.registry.counter("sharedscan.riders").add(rider_count);
                    }
                    state.running -= 1;
                    drop(state);
                    shared.cv.notify_all();
                }
                Job::Cancel(idx) => {
                    let outcome = QueryOutcome {
                        request: idx,
                        status: QueryStatus::Cancelled(None),
                        pairs: None,
                        stats: QueryStats::default(),
                    };
                    let mut state = relock(shared.state.lock());
                    self.finish(&mut state, outcome, false);
                    drop(state);
                    shared.cv.notify_all();
                }
                Job::Fail(idx, err) => {
                    let outcome = QueryOutcome {
                        request: idx,
                        status: QueryStatus::Failed(err),
                        pairs: None,
                        stats: QueryStats::default(),
                    };
                    let mut state = relock(shared.state.lock());
                    self.finish(&mut state, outcome, false);
                    drop(state);
                    shared.cv.notify_all();
                }
            }
        }
    }

    /// Scans the pending queue under the lock for the next piece of work,
    /// blocking on the condvar while nothing is actionable. Returns `None`
    /// when the session is closed and the queue has drained.
    ///
    /// The scan honors the overtake bound: trying an entry that fails
    /// admission records a deferral, and once that entry has been overtaken
    /// [`ServiceConfig::max_overtakes`] times it becomes a barrier — the
    /// scan stops there instead of admitting anything behind it, so a heavy
    /// request's wait is bounded by K admissions rather than unbounded.
    fn claim(&self, shared: &SessionShared) -> Option<Job> {
        enum Picked {
            Run(usj_io::MemoryReservation),
            Cancel,
            Deadline { deadline_us: u64, now_us: u64 },
            AdmissionTimeout { waited_us: u64 },
        }
        let mut guard = relock(shared.state.lock());
        loop {
            let state = &mut *guard;
            if state.pending.is_empty() {
                if state.closed {
                    return None;
                }
                guard = relock(shared.cv.wait(guard));
                continue;
            }
            // Read the clock once per scan pass, and only when some pending
            // request can actually time out — the common no-deadline,
            // no-timeout configuration never touches the clock here.
            let timed = self.config.admission_timeout_us.is_some();
            let need_clock = timed
                || state.pending.iter().any(|&i| {
                    state.entries[i].request.as_ref().is_some_and(|r| r.deadline_us.is_some())
                });
            let scan_now = if need_clock { self.obs.now_us() } else { 0 };
            let mut picked = None;
            for pos in 0..state.pending.len() {
                let idx = state.pending[pos];
                let entry = &mut state.entries[idx];
                let request = entry.request.as_ref().expect("pending entries own their request");
                if request.cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
                    picked = Some((pos, Picked::Cancel));
                    break;
                }
                if let Some(deadline_us) = request.deadline_us {
                    if scan_now >= deadline_us {
                        picked = Some((pos, Picked::Deadline { deadline_us, now_us: scan_now }));
                        break;
                    }
                }
                match shared.gauge.try_reserve(entry.estimate) {
                    Ok(reservation) => {
                        picked = Some((pos, Picked::Run(reservation)));
                        break;
                    }
                    Err(_) => {
                        entry.deferrals += 1;
                        self.obs.registry.counter("admission.deferrals").inc();
                        if let Some(timeout_us) = self.config.admission_timeout_us {
                            // Only requests the gauge actually deferred can
                            // time out — an admissible request is admitted
                            // on this very scan regardless of its age.
                            let waited_us = scan_now.saturating_sub(entry.submitted_us);
                            if waited_us >= timeout_us {
                                picked = Some((pos, Picked::AdmissionTimeout { waited_us }));
                                break;
                            }
                        }
                        if entry.overtaken >= self.config.max_overtakes {
                            // Barrier: this entry has been overtaken its
                            // full allowance — nothing behind it may be
                            // admitted before it runs.
                            break;
                        }
                    }
                }
            }
            match picked {
                Some((pos, Picked::Cancel)) => {
                    let idx = state.pending.remove(pos);
                    let now_us = self.obs.now_us();
                    let entry = &mut state.entries[idx];
                    entry.queue_wait = Some(us_between(entry.submitted_us, now_us));
                    self.obs.registry.gauge("queue.depth").set(state.pending.len() as i64);
                    return Some(Job::Cancel(idx));
                }
                Some((pos, Picked::Deadline { deadline_us, now_us })) => {
                    let idx = state.pending.remove(pos);
                    let entry = &mut state.entries[idx];
                    entry.queue_wait = Some(us_between(entry.submitted_us, now_us));
                    // Fire the request's own token too, so a shared
                    // external handle observes the expiry.
                    if let Some(request) = entry.request.as_ref() {
                        if let Some(token) = &request.cancel {
                            token.cancel();
                        }
                    }
                    self.obs.registry.gauge("queue.depth").set(state.pending.len() as i64);
                    self.obs.registry.counter("faults.deadline_exceeded").inc();
                    return Some(Job::Fail(
                        idx,
                        ServiceError::DeadlineExceeded { deadline_us, now_us },
                    ));
                }
                Some((pos, Picked::AdmissionTimeout { waited_us })) => {
                    let timeout_us = self.config.admission_timeout_us.unwrap_or(0);
                    let idx = state.pending.remove(pos);
                    let entry = &mut state.entries[idx];
                    entry.queue_wait = Some(Duration::from_micros(waited_us));
                    self.obs.registry.gauge("queue.depth").set(state.pending.len() as i64);
                    self.obs.registry.counter("faults.admission_timeouts").inc();
                    return Some(Job::Fail(
                        idx,
                        ServiceError::AdmissionTimeout { timeout_us, waited_us },
                    ));
                }
                Some((pos, Picked::Run(reservation))) => {
                    // Everything the admitted entry jumped over was
                    // overtaken once more.
                    for p in 0..pos {
                        let overtaken = state.pending[p];
                        state.entries[overtaken].overtaken += 1;
                    }
                    if pos > 0 {
                        self.obs.registry.counter("admission.overtakes").add(pos as u64);
                    }
                    let idx = state.pending.remove(pos);
                    let rider_idxs = self.collect_riders(state, idx);
                    let now_us = self.obs.now_us();
                    let lead = Self::claim_entry(state, idx, false, now_us);
                    let riders: Vec<(usize, QueryRequest)> = rider_idxs
                        .into_iter()
                        .map(|i| Self::claim_entry(state, i, true, now_us))
                        .collect();
                    state.running += 1;
                    self.obs.registry.counter("admission.grants").inc();
                    self.obs.registry.gauge("queue.depth").set(state.pending.len() as i64);
                    // This admission may have exhausted the shared budget
                    // for the next request in line: record that
                    // head-of-queue deferral at admission time, so the
                    // count reflects the queue's oversubscription rather
                    // than scan timing.
                    if let Some(&next) = state.pending.first() {
                        if state.entries[next].estimate > shared.gauge.headroom() {
                            state.entries[next].deferrals += 1;
                            self.obs.registry.counter("admission.deferrals").inc();
                        }
                    }
                    return Some(Job::Run {
                        lead,
                        riders,
                        reservation,
                    });
                }
                None if state.running == 0 => {
                    // Nothing is running, so no reservation will ever be
                    // released: the head request's budget simply does not
                    // fit the shared limit. Fail it loudly to keep the
                    // queue moving.
                    let idx = state.pending.remove(0);
                    let now_us = self.obs.now_us();
                    let entry = &mut state.entries[idx];
                    entry.queue_wait = Some(us_between(entry.submitted_us, now_us));
                    self.obs.registry.gauge("queue.depth").set(state.pending.len() as i64);
                    let required = entry.estimate;
                    return Some(Job::Fail(
                        idx,
                        ServiceError::Io(IoSimError::MemoryLimitExceeded {
                            required,
                            limit: self.config.memory_limit,
                        }),
                    ));
                }
                None => {
                    if need_clock {
                        // A deadline or admission timeout can expire with no
                        // accompanying notify (time passes, no reservation is
                        // released) — poll with a short timed wait so expiry
                        // is noticed promptly even on an otherwise idle queue.
                        guard = relock(shared.cv.wait_timeout(guard, Duration::from_millis(5))).0;
                    } else {
                        guard = relock(shared.cv.wait(guard));
                    }
                }
            }
        }
    }

    /// Marks `idx` admitted (stamping its admission order and queue wait
    /// against the clock reading `now_us`) and moves its request out for
    /// execution off-lock.
    fn claim_entry(
        state: &mut SessionState,
        idx: usize,
        coalesced: bool,
        now_us: u64,
    ) -> (usize, QueryRequest) {
        let seq = state.next_admission_seq;
        state.next_admission_seq += 1;
        let entry = &mut state.entries[idx];
        entry.admission_seq = Some(seq);
        entry.queue_wait = Some(us_between(entry.submitted_us, now_us));
        entry.coalesced = coalesced;
        let request = entry.request.take().expect("pending entries own their request");
        (idx, request)
    }

    /// Pulls pending selections compatible with the just-admitted `lead`
    /// out of the queue to ride its scan: same dataset, window/point kind,
    /// not cancelled, up to [`ServiceConfig::max_scan_batch`] members.
    ///
    /// Riders reserve no extra admission budget — the batch shares the
    /// leader's grant and its single `NodeStore` — so coalescing never
    /// increases the aggregate footprint, and pulling a rider from the
    /// middle of the queue delays no one (the scan happens regardless);
    /// riders therefore don't count toward anyone's overtake allowance and
    /// may be collected from behind a starvation barrier.
    fn collect_riders(&self, state: &mut SessionState, lead: usize) -> Vec<usize> {
        if !self.config.shared_scans {
            return Vec::new();
        }
        let lead_dataset = match state.entries[lead].request.as_ref().map(|r| &r.kind) {
            Some(QueryKind::Window { dataset, .. }) | Some(QueryKind::Point { dataset, .. }) => {
                *dataset
            }
            _ => return Vec::new(),
        };
        let cap = self.config.max_scan_batch.max(1) - 1;
        let mut riders = Vec::new();
        let mut pos = 0;
        while pos < state.pending.len() && riders.len() < cap {
            let idx = state.pending[pos];
            let request = state.entries[idx]
                .request
                .as_ref()
                .expect("pending entries own their request");
            let compatible = matches!(
                request.kind,
                QueryKind::Window { dataset, .. } | QueryKind::Point { dataset, .. }
                    if dataset == lead_dataset
            );
            let live = !request.cancel.as_ref().is_some_and(|t| t.is_cancelled());
            if compatible && live {
                riders.push(idx);
                state.pending.remove(pos);
            } else {
                pos += 1;
            }
        }
        riders
    }

    /// Folds one finished outcome into the aggregate totals, stamps the
    /// entry's scheduling stats onto it, records the terminal metrics, and
    /// stores it.
    fn finish(&self, state: &mut SessionState, mut outcome: QueryOutcome, admitted: bool) {
        let idx = outcome.request;
        {
            let entry = &state.entries[idx];
            outcome.stats.deferrals = entry.deferrals;
            outcome.stats.overtaken = entry.overtaken;
            outcome.stats.queue_wait = entry.queue_wait.unwrap_or_default();
            outcome.stats.latency = us_between(entry.submitted_us, self.obs.now_us());
            outcome.stats.admission_seq = entry.admission_seq;
            outcome.stats.coalesced = entry.coalesced;
        }
        // Wrap the recorded execute tree (if this query was traced) under a
        // `query` root alongside the admission wait, synthesised from the
        // scheduler's own measurement — the wait predates the execute
        // context, so it cannot be a recorded span.
        if let Some(trace) = outcome.stats.trace.take() {
            let wait_us = u64::try_from(outcome.stats.queue_wait.as_micros()).unwrap_or(u64::MAX);
            let exec_start = trace.roots.first().map_or(0, |r| r.start_us);
            let end = trace.roots.iter().map(|r| r.end_us).max().unwrap_or(exec_start);
            let start = exec_start.saturating_sub(wait_us);
            let mut root = TraceSpan::leaf("query", start, end);
            root.children.push(TraceSpan::leaf("admission.wait", start, exec_start));
            root.children.extend(trace.roots);
            outcome.stats.trace = Some(QueryTrace {
                roots: vec![root],
                orphan_marks: trace.orphan_marks,
                dropped_events: trace.dropped_events,
            });
        }
        let metrics = &self.obs.registry;
        match &outcome.status {
            QueryStatus::Completed(_) => metrics.counter("queries.completed").inc(),
            QueryStatus::Cancelled(_) => metrics.counter("queries.cancelled").inc(),
            QueryStatus::Failed(_) => metrics.counter("queries.failed").inc(),
        }
        let wait = &outcome.stats.queue_wait;
        metrics
            .histogram("queue.wait_us")
            .record(u64::try_from(wait.as_micros()).unwrap_or(u64::MAX));
        metrics
            .histogram("query.latency_us")
            .record(u64::try_from(outcome.stats.latency.as_micros()).unwrap_or(u64::MAX));
        let agg = &mut state.agg;
        if admitted {
            agg.admitted += 1;
        }
        match &outcome.status {
            QueryStatus::Completed(_) => agg.completed += 1,
            QueryStatus::Cancelled(_) => agg.cancelled += 1,
            QueryStatus::Failed(_) => agg.failed += 1,
        }
        if let Some(result) = outcome.result() {
            agg.pairs += result.pairs;
            agg.io.merge(&result.io);
            agg.cpu.merge(&result.cpu);
            agg.peak_query_bytes = agg.peak_query_bytes.max(result.memory.peak_bytes);
        }
        agg.max_wait = agg.max_wait.max(outcome.stats.queue_wait);
        agg.total_wait += outcome.stats.queue_wait;
        agg.deferrals += outcome.stats.deferrals;
        state.entries[idx].outcome = Some(outcome);
    }

    /// Runs one admitted query on a fresh forked environment whose hard
    /// memory limit is the granted budget.
    fn execute_one(&self, idx: usize, request: &QueryRequest, granted: usize) -> QueryOutcome {
        let metrics = &self.obs.registry;
        let outcome = |status, pairs, trace| QueryOutcome {
            request: idx,
            status,
            pairs,
            stats: QueryStats {
                admitted_bytes: granted,
                trace,
                ..QueryStats::default()
            },
        };
        // Deadline already blown at admission-to-execution handoff: report
        // it without building an environment (deadline 0 takes this path
        // deterministically).
        if let Some(deadline_us) = request.deadline_us {
            let now_us = self.obs.now_us();
            if now_us >= deadline_us {
                metrics.counter("faults.deadline_exceeded").inc();
                return outcome(
                    QueryStatus::Failed(ServiceError::DeadlineExceeded { deadline_us, now_us }),
                    None,
                    None,
                );
            }
        }
        let retry = FaultRetry::of(&self.config);
        let clock = self.obs.clock();
        let mut attempt = 0u32;
        loop {
            // A fresh sink per attempt: a retried query re-emits from pair
            // zero, so partial output from the failed attempt never leaks.
            let mut sink = ServiceSink::new(request, &clock);
            let dispatched = catch_unwind(AssertUnwindSafe(|| {
                self.dispatch_traced(&request.kind, granted, query_fault_stream(idx, attempt), &mut sink)
            }));
            let (ran, trace) = match dispatched {
                Ok(ran) => ran,
                Err(payload) => {
                    // The worker thread survives; the panicking attempt's
                    // forked environment (and its gauge bytes) died with the
                    // unwind, and the reservation is released by the caller.
                    metrics.counter("faults.panics").inc();
                    metrics.counter("faults.injected").inc();
                    return outcome(
                        QueryStatus::Failed(ServiceError::WorkerPanicked(panic_payload(
                            payload.as_ref(),
                        ))),
                        None,
                        None,
                    );
                }
            };
            match ran {
                Err(ServiceError::Io(IoSimError::DeviceFault { transient: true }))
                    if attempt < retry.retries =>
                {
                    attempt += 1;
                    metrics.counter("faults.injected").inc();
                    metrics.counter("faults.retries").inc();
                    clock.wait_us(retry.backoff_for(attempt));
                    continue;
                }
                ran => {
                    if matches!(
                        &ran,
                        Err(ServiceError::Io(IoSimError::DeviceFault { .. }))
                    ) {
                        metrics.counter("faults.injected").inc();
                    }
                    let status = match ran {
                        _ if sink.deadline_hit => {
                            metrics.counter("faults.deadline_exceeded").inc();
                            QueryStatus::Failed(ServiceError::DeadlineExceeded {
                                deadline_us: request.deadline_us.unwrap_or(0),
                                now_us: clock.now_us(),
                            })
                        }
                        Ok(result) if sink.cancelled => QueryStatus::Cancelled(Some(result)),
                        Ok(result) => QueryStatus::Completed(result),
                        Err(e) => QueryStatus::Failed(e),
                    };
                    return outcome(status, sink.collected, trace);
                }
            }
        }
    }

    /// [`dispatch`](Service::dispatch), wrapped in a per-query span context
    /// while tracing is on: a fresh bounded ring collects the `execute`
    /// root and every operator phase the layers below emit, and the
    /// drained events come back as the raw execute-side [`QueryTrace`]
    /// ([`finish`](Service::finish) adds the admission wait). With tracing
    /// off this is exactly `dispatch` — no ring, no spans, no extra work.
    fn dispatch_traced(
        &self,
        kind: &QueryKind,
        granted: usize,
        fault_stream: u64,
        sink: &mut ServiceSink,
    ) -> (Result<JoinResult>, Option<QueryTrace>) {
        if !self.obs.tracing() {
            return (self.dispatch(kind, granted, fault_stream, sink), None);
        }
        let collector = Arc::new(RingCollector::new(QUERY_TRACE_EVENTS));
        let guard =
            usj_obs::install(Arc::clone(&collector) as Arc<dyn Recorder>, self.obs.clock());
        let ran = {
            let mut root = usj_obs::span_detail("execute", || kind_label(kind).to_string());
            let ran = self.dispatch(kind, granted, fault_stream, sink);
            if let Ok(result) = &ran {
                root.add_io(result.io.span_io());
            }
            ran
        };
        drop(guard);
        let (events, dropped) = collector.drain();
        (ran, Some(QueryTrace::from_events(&events, dropped)))
    }

    /// Runs the leader and its riders as one R-tree traversal fanned out
    /// through per-query sinks. Each member observes exactly the item
    /// sequence its solo traversal would produce (the differential tests'
    /// byte-identity contract); a member's `LIMIT` or cancellation
    /// deactivates only its fan-out slot, and the traversal stops entirely
    /// once every member has broken. The scan's I/O, CPU and peak memory
    /// are accounted once, on the leader — riders report pair counts only.
    fn execute_shared_scan(
        &self,
        lead: &(usize, QueryRequest),
        riders: &[(usize, QueryRequest)],
        granted: usize,
    ) -> Vec<QueryOutcome> {
        let members: Vec<&(usize, QueryRequest)> =
            std::iter::once(lead).chain(riders.iter()).collect();
        let fail_all = |err: ServiceError| -> Vec<QueryOutcome> {
            members
                .iter()
                .enumerate()
                .map(|(k, (idx, _))| QueryOutcome {
                    request: *idx,
                    status: QueryStatus::Failed(err.clone()),
                    pairs: None,
                    stats: QueryStats {
                        admitted_bytes: if k == 0 { granted } else { 0 },
                        ..QueryStats::default()
                    },
                })
                .collect()
        };
        let dataset_id = match &lead.1.kind {
            QueryKind::Window { dataset, .. } | QueryKind::Point { dataset, .. } => *dataset,
            _ => unreachable!("shared scans coalesce selections only"),
        };
        let windows: Vec<Rect> = members
            .iter()
            .map(|(_, request)| match &request.kind {
                QueryKind::Window { window, .. } => *window,
                QueryKind::Point { point, .. } => {
                    Rect::from_coords(point.x, point.y, point.x, point.y)
                }
                _ => unreachable!("shared scans coalesce selections only"),
            })
            .collect();
        let ds = match self.dataset(dataset_id) {
            Ok(ds) => ds,
            Err(e) => return fail_all(e),
        };

        // The batch shares one traversal, so it draws one fault schedule —
        // keyed by the leader's index, attempt 0 (shared scans are not
        // retried: a transient fault fails the whole batch, and each member
        // resubmits solo if it cares).
        let fault_stream = query_fault_stream(lead.0, 0);
        let clock = self.obs.clock();
        let mut wenv = self.worker_env(granted, fault_stream);
        let mut sinks: Vec<ServiceSink> =
            members.iter().map(|(_, request)| ServiceSink::new(request, &clock)).collect();
        // While tracing, the whole batch records one `execute` span (the
        // traversal happens once); the trace lands on the leader's stats,
        // mirroring the I/O accounting.
        let collector = self
            .obs
            .tracing()
            .then(|| Arc::new(RingCollector::new(QUERY_TRACE_EVENTS)));
        let guard = collector
            .as_ref()
            .map(|c| usj_obs::install(Arc::clone(c) as Arc<dyn Recorder>, self.obs.clock()));
        let mut root = collector
            .is_some()
            .then(|| usj_obs::span_detail("execute", || format!("shared_scan x{}", members.len())));
        let measurement = wenv.begin();
        wenv.memory.begin_phase();
        let mut store = NodeStore::with_capacity_bytes_gauged(granted, &wenv.memory);
        let scanned = {
            let slots: Vec<&mut dyn PairSink> =
                sinks.iter_mut().map(|s| s as &mut dyn PairSink).collect();
            let mut fanout = FanoutSink::new(slots);
            ds.tree()
                .multi_window_query(&mut wenv, &mut store, &windows, &mut |i, item| {
                    fanout.emit_to(i, item.id, 0)
                })
        };
        let delivered: u64 = sinks.iter().map(|s| s.delivered).sum();
        wenv.charge(CpuOp::OutputPair, delivered);
        let (io, cpu) = wenv.since(&measurement);
        if let Some(span) = root.as_mut() {
            span.add_io(io.span_io());
        }
        drop(root);
        drop(guard);
        let mut trace = collector.map(|c| {
            let (events, dropped) = c.drain();
            QueryTrace::from_events(&events, dropped)
        });
        if let Err(e) = scanned {
            if matches!(e, IoSimError::DeviceFault { .. }) {
                self.obs.registry.counter("faults.injected").inc();
            }
            return fail_all(ServiceError::Io(e));
        }

        let misses = store.stats().misses;
        let resident = store.resident_pages() * PAGE_SIZE;
        let peak = wenv.memory.peak();
        members
            .iter()
            .zip(sinks)
            .enumerate()
            .map(|(k, ((idx, _), sink))| {
                let leader = k == 0;
                let result = JoinResult {
                    pairs: sink.delivered,
                    io: if leader { io } else { IoStats::default() },
                    cpu: if leader { cpu } else { CpuCounter::default() },
                    index_page_requests: if leader { misses } else { 0 },
                    sweep: Default::default(),
                    memory: MemoryStats {
                        priority_queue_bytes: 0,
                        sweep_structure_bytes: 0,
                        other_bytes: if leader { resident } else { 0 },
                        peak_bytes: if leader { peak } else { 0 },
                    },
                };
                let status = if sink.deadline_hit {
                    self.obs.registry.counter("faults.deadline_exceeded").inc();
                    QueryStatus::Failed(ServiceError::DeadlineExceeded {
                        deadline_us: sink.deadline_us.unwrap_or(0),
                        now_us: clock.now_us(),
                    })
                } else if sink.cancelled {
                    QueryStatus::Cancelled(Some(result))
                } else {
                    QueryStatus::Completed(result)
                };
                QueryOutcome {
                    request: *idx,
                    status,
                    pairs: sink.collected,
                    stats: QueryStats {
                        admitted_bytes: if leader { granted } else { 0 },
                        trace: if leader { trace.take() } else { None },
                        ..QueryStats::default()
                    },
                }
            })
            .collect()
    }

    /// Routes an admitted query to its operator. Live-reading kinds take
    /// their generation snapshots **before** the worker environment is
    /// built: snapshots clone run handles under the `live` lock, the
    /// environment forks the base page slot afterwards — the reader half of
    /// the [`LiveStore`] publication-ordering invariant, guaranteeing every
    /// visible run's pages exist in the forked base even while background
    /// maintenance publishes concurrently.
    fn dispatch(
        &self,
        kind: &QueryKind,
        granted: usize,
        fault_stream: u64,
        sink: &mut ServiceSink,
    ) -> Result<JoinResult> {
        match kind {
            QueryKind::Join(spec) => {
                let mut wenv = self.worker_env(granted, fault_stream);
                self.run_join(&mut wenv, spec, sink)
            }
            // Streaming joins bypass the plan cache: there is nothing to
            // plan (one operator, no algorithm choice), and the fingerprint
            // space of a mutating dataset is unbounded.
            QueryKind::StreamingJoin {
                left,
                right,
                predicate,
            } => {
                let snap_l = self.live_snapshot(*left)?;
                let snap_r = self.live_snapshot(*right)?;
                let mut wenv = self.worker_env(granted, fault_stream);
                StreamingJoin::default()
                    .with_predicate(*predicate)
                    .run(&mut wenv, &snap_l, &snap_r, sink)
                    .map_err(ServiceError::from)
            }
            QueryKind::MixedJoin {
                live,
                dataset,
                predicate,
            } => {
                let snap = self.live_snapshot(*live)?;
                let ds = self.dataset(*dataset)?;
                let mut wenv = self.worker_env(granted, fault_stream);
                StreamingJoin::default()
                    .with_predicate(*predicate)
                    .run_mixed(
                        &mut wenv,
                        JoinSide::Live(&snap),
                        JoinSide::Run {
                            sorted: ds.sorted(),
                            bbox: ds.bbox(),
                        },
                        sink,
                    )
                    .map_err(ServiceError::from)
            }
            QueryKind::Window { dataset, window } => {
                let mut wenv = self.worker_env(granted, fault_stream);
                self.run_selection(&mut wenv, *dataset, *window, granted, sink)
            }
            QueryKind::Point { dataset, point } => {
                let mut wenv = self.worker_env(granted, fault_stream);
                self.run_selection(
                    &mut wenv,
                    *dataset,
                    Rect::from_coords(point.x, point.y, point.x, point.y),
                    granted,
                    sink,
                )
            }
            QueryKind::LiveWindow { dataset, window } => {
                let snap = self.live_snapshot(*dataset)?;
                let mut wenv = self.worker_env(granted, fault_stream);
                self.run_live_selection(&mut wenv, &snap, *window, granted, sink)
            }
            QueryKind::LivePoint { dataset, point } => {
                let snap = self.live_snapshot(*dataset)?;
                let mut wenv = self.worker_env(granted, fault_stream);
                self.run_live_selection(
                    &mut wenv,
                    &snap,
                    Rect::from_coords(point.x, point.y, point.x, point.y),
                    granted,
                    sink,
                )
            }
        }
    }

    /// A fresh execution environment for one admitted query: its own I/O
    /// accounting, a hard memory limit of the granted budget, and a device
    /// layered over the *current* published base snapshot. Under a
    /// configured fault plan the device also draws a fault schedule seeded
    /// by `fault_stream` — unique per (query, retry attempt), so every
    /// attempt sees an independent, replayable schedule. With no plan
    /// configured this is byte-identical to the fault-free build.
    fn worker_env(&self, granted: usize, fault_stream: u64) -> SimEnv {
        let mut device = BlockDevice::with_base(self.store.fork_base());
        if let Some(faults) = self.config.fault_plan {
            let mut query_faults = faults;
            query_faults.seed = derive_seed(faults.seed, fault_stream);
            device.install_faults(FaultPlan::new(query_faults));
        }
        SimEnv {
            device,
            machine: self.machine.clone(),
            cpu: CpuCounter::new(),
            memory_limit: granted,
            memory: MemoryGauge::new(granted),
        }
    }

    fn dataset(&self, id: DatasetId) -> Result<&Dataset> {
        self.catalog
            .get(id)
            .ok_or_else(|| ServiceError::UnknownDataset(format!("#{}", id.0)))
    }

    /// A generation snapshot of a live dataset — a consistent view that
    /// stays valid however far ingestion and maintenance advance while the
    /// query runs. This lookup is *on the query path* and returns
    /// `Result`, so a poisoned catalog propagates as a typed
    /// [`ServiceError::LockPoisoned`] instead of panicking the worker.
    fn live_snapshot(&self, id: LiveId) -> Result<LiveSnapshot> {
        let live = self
            .store
            .live
            .lock()
            .map_err(|_| ServiceError::LockPoisoned("live catalog"))?;
        live.get(id)
            .map(|ds| ds.snapshot())
            .ok_or_else(|| ServiceError::UnknownDataset(format!("live#{}", id.0)))
    }

    /// Index-backed selection over a live snapshot, tier by tier: the base
    /// run through its R-tree, then each delta run and in-memory run
    /// linear-scanned *only* when its bounding box intersects the window.
    /// Emission order — base-tree order, deltas oldest-first, memory runs
    /// last — is deterministic for a given generation, which is what the
    /// differential tests pin down.
    fn run_live_selection(
        &self,
        wenv: &mut SimEnv,
        snap: &LiveSnapshot,
        window: Rect,
        granted: usize,
        sink: &mut ServiceSink,
    ) -> Result<JoinResult> {
        let measurement = wenv.begin();
        wenv.memory.begin_phase();
        let mut store = NodeStore::with_capacity_bytes_gauged(granted, &wenv.memory);
        let mut alive = snap
            .tree()
            .window_query_via(wenv, &mut store, &window, &mut |item| {
                sink.emit(item.id, 0)
            })?;
        // Delta runs (runs[0] is the base the tree already covered).
        for run in snap.runs().iter().skip(1) {
            if !alive {
                break;
            }
            if !run.bbox().intersects(&window) {
                continue;
            }
            let mut reader = run.stream().reader();
            while let Some(item) = reader.next(wenv)? {
                if item.rect.intersects(&window) && sink.emit(item.id, 0).is_break() {
                    alive = false;
                    break;
                }
            }
        }
        for mem in snap.mem_runs() {
            if !alive {
                break;
            }
            if !mem.bbox().intersects(&window) {
                continue;
            }
            for item in mem.items() {
                if item.rect.intersects(&window) && sink.emit(item.id, 0).is_break() {
                    alive = false;
                    break;
                }
            }
        }
        wenv.charge(CpuOp::OutputPair, sink.delivered);
        let (io, cpu) = wenv.since(&measurement);
        Ok(JoinResult {
            pairs: sink.delivered,
            io,
            cpu,
            index_page_requests: store.stats().misses,
            sweep: Default::default(),
            memory: MemoryStats {
                priority_queue_bytes: 0,
                sweep_structure_bytes: 0,
                other_bytes: store.resident_pages() * PAGE_SIZE,
                peak_bytes: wenv.memory.peak(),
            },
        })
    }

    fn run_join(
        &self,
        wenv: &mut SimEnv,
        spec: &JoinSpec,
        sink: &mut ServiceSink,
    ) -> Result<JoinResult> {
        let left = self.dataset(spec.left)?.input();
        let right = self.dataset(spec.right)?.input();
        let query = SpatialQuery::new(left, right)
            .algorithm(spec.algo)
            .predicate(spec.predicate)
            .execution(spec.execution);
        // The reported accounting covers the query end to end on its forked
        // environment — planning included. This is what makes the plan
        // cache's saving visible: a cache hit skips the planner's
        // cost-estimation I/O, so the repeat query's `JoinResult.io` is
        // strictly smaller.
        let measurement = wenv.begin();
        let plan = if self.config.use_plan_cache {
            let key = PlanKey::new(spec);
            // Get-or-insert under one guard: concurrent identical queries
            // must not both miss and plan twice (each shape is planned
            // exactly once per service lifetime). Planning while holding
            // the cache lock briefly serializes concurrent *planning* —
            // execution, the expensive part, stays fully concurrent.
            let mut cache = relock(self.plan_cache.lock());
            match cache.lookup(&key) {
                Some(plan) => plan,
                None => {
                    let plan = query.plan(wenv)?;
                    cache.insert(key, plan.clone());
                    plan
                }
            }
        } else {
            query.plan(wenv)?
        };
        let mut result = query.execute_planned(wenv, &plan, sink)?;
        let (io, cpu) = wenv.since(&measurement);
        result.io = io;
        result.cpu = cpu;
        // Feed the admission estimator: remember the gauge peak of this
        // fingerprint, but only from runs that went to completion —
        // LIMIT-truncated or cancelled runs stop early and under-state the
        // query's true footprint.
        if self.config.use_plan_cache && sink.limit.is_none() && !sink.cancelled {
            relock(self.plan_cache.lock()).record_peak(PlanKey::new(spec), result.memory.peak_bytes);
        }
        Ok(result)
    }

    fn run_selection(
        &self,
        wenv: &mut SimEnv,
        dataset: DatasetId,
        window: Rect,
        granted: usize,
        sink: &mut ServiceSink,
    ) -> Result<JoinResult> {
        let ds = self.dataset(dataset)?;
        let measurement = wenv.begin();
        wenv.memory.begin_phase();
        let mut store = NodeStore::with_capacity_bytes_gauged(granted, &wenv.memory);
        ds.tree()
            .window_query_via(wenv, &mut store, &window, &mut |item| {
                sink.emit(item.id, 0)
            })?;
        wenv.charge(CpuOp::OutputPair, sink.delivered);
        let (io, cpu) = wenv.since(&measurement);
        Ok(JoinResult {
            pairs: sink.delivered,
            io,
            cpu,
            index_page_requests: store.stats().misses,
            sweep: Default::default(),
            memory: MemoryStats {
                priority_queue_bytes: 0,
                sweep_structure_bytes: 0,
                other_bytes: store.resident_pages() * PAGE_SIZE,
                peak_bytes: wenv.memory.peak(),
            },
        })
    }
}

/// The sink every service query streams through: counts, optionally
/// collects, enforces `LIMIT`, and observes the cancellation token — all by
/// steering the producer with `ControlFlow`, so a stopped query stops
/// *reading*, not just reporting.
struct ServiceSink {
    collected: Option<Vec<(u32, u32)>>,
    delivered: u64,
    limit: Option<u64>,
    cancel: Option<CancelToken>,
    cancelled: bool,
    /// Absolute execution deadline on the service clock, if the request
    /// carries one; checked every [`ServiceSink::DEADLINE_CHECK_EVERY`]
    /// emissions so a deadline-free query pays nothing per pair.
    deadline_us: Option<u64>,
    clock: Option<Arc<dyn Clock>>,
    deadline_hit: bool,
    since_check: u32,
}

impl ServiceSink {
    /// Emissions between deadline probes: a mid-stream deadline is noticed
    /// at worst this many pairs late, and the clock is read 64× less often.
    const DEADLINE_CHECK_EVERY: u32 = 64;

    fn new(request: &QueryRequest, clock: &Arc<dyn Clock>) -> Self {
        ServiceSink {
            collected: request.collect.then(Vec::new),
            delivered: 0,
            limit: request.limit,
            cancel: request.cancel.clone(),
            cancelled: false,
            deadline_us: request.deadline_us,
            clock: request.deadline_us.map(|_| Arc::clone(clock)),
            deadline_hit: false,
            since_check: 0,
        }
    }
}

impl PairSink for ServiceSink {
    fn emit(&mut self, left: u32, right: u32) -> ControlFlow<()> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                self.cancelled = true;
                return ControlFlow::Break(());
            }
        }
        if let (Some(deadline_us), Some(clock)) = (self.deadline_us, self.clock.as_ref()) {
            if self.since_check == 0 && clock.now_us() >= deadline_us {
                self.deadline_hit = true;
                // Fire the token too: the break stops this operator, the
                // token stops any cooperating producer upstream.
                if let Some(token) = &self.cancel {
                    token.cancel();
                }
                return ControlFlow::Break(());
            }
            self.since_check = (self.since_check + 1) % Self::DEADLINE_CHECK_EVERY;
        }
        if self.limit.is_some_and(|l| self.delivered >= l) {
            return ControlFlow::Break(());
        }
        if let Some(pairs) = &mut self.collected {
            pairs.push((left, right));
        }
        self.delivered += 1;
        ControlFlow::Continue(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_geom::Item;
    use usj_io::MachineConfig;

    fn grid(n: u32, cell: f32, offset: f32, id_base: u32) -> Vec<Item> {
        let mut out = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let x = offset + i as f32 * cell;
                let y = offset + j as f32 * cell;
                out.push(Item::new(
                    Rect::from_coords(x, y, x + cell * 0.7, y + cell * 0.7),
                    id_base + i * n + j,
                ));
            }
        }
        out
    }

    fn service_over(
        a: &[Item],
        b: &[Item],
        config: ServiceConfig,
    ) -> (Service, DatasetId, DatasetId) {
        let mut env = SimEnv::new(MachineConfig::machine3());
        let mut catalog = Catalog::new();
        let ia = catalog.register(&mut env, "a", a).unwrap();
        let ib = catalog.register(&mut env, "b", b).unwrap();
        (Service::new(env, catalog, config), ia, ib)
    }

    #[test]
    fn joins_and_selections_complete_with_correct_counts() {
        let a = grid(15, 4.0, 0.0, 0);
        let b = grid(15, 4.0, 1.5, 100_000);
        let expected: u64 = a
            .iter()
            .map(|x| b.iter().filter(|y| x.rect.intersects(&y.rect)).count() as u64)
            .sum();
        let window = Rect::from_coords(0.0, 0.0, 20.0, 20.0);
        let in_window = a.iter().filter(|it| it.rect.intersects(&window)).count() as u64;

        let (service, ia, ib) = service_over(&a, &b, ServiceConfig::default().with_workers(3));
        let report = service.run(vec![
            QueryRequest::join(ia, ib).with_algorithm(Algo::Pq),
            QueryRequest::join(ia, ib).with_algorithm(Algo::Sssj),
            QueryRequest::join(ia, ib).with_algorithm(Algo::St),
            QueryRequest::window(ia, window),
        ]);
        assert_eq!(report.stats.completed, 4);
        assert_eq!(report.stats.failed, 0);
        for outcome in &report.outcomes[..3] {
            assert_eq!(outcome.result().unwrap().pairs, expected, "join #{}", outcome.request);
        }
        assert_eq!(report.outcomes[3].result().unwrap().pairs, in_window);
        assert!(report.outcomes[3].result().unwrap().index_page_requests > 0);
        assert_eq!(report.stats.pairs, expected * 3 + in_window);
    }

    #[test]
    fn collected_pairs_match_count_only_runs() {
        let a = grid(10, 4.0, 0.0, 0);
        let (service, ia, _) = service_over(&a, &a, ServiceConfig::default());
        let report = service.run(vec![
            QueryRequest::join(ia, ia).with_algorithm(Algo::Pq).collecting(),
            QueryRequest::join(ia, ia).with_algorithm(Algo::Pq),
        ]);
        let collected = report.outcomes[0].pairs.as_ref().unwrap();
        assert_eq!(collected.len() as u64, report.outcomes[1].result().unwrap().pairs);
        assert!(report.outcomes[1].pairs.is_none());
    }

    #[test]
    fn limits_stop_selection_io_early() {
        let a = grid(60, 4.0, 0.0, 0);
        let (service, ia, _) = service_over(&a, &a, ServiceConfig::default().with_workers(1));
        let window = Rect::from_coords(0.0, 0.0, 240.0, 240.0);
        let report = service.run(vec![
            QueryRequest::window(ia, window),
            QueryRequest::window(ia, window).with_limit(3).collecting(),
        ]);
        let full = report.outcomes[0].result().unwrap();
        let limited = report.outcomes[1].result().unwrap();
        assert_eq!(limited.pairs, 3);
        assert_eq!(report.outcomes[1].pairs.as_ref().unwrap().len(), 3);
        assert!(
            limited.io.pages_read < full.io.pages_read,
            "LIMIT must stop the traversal early ({} vs {})",
            limited.io.pages_read,
            full.io.pages_read
        );
    }

    #[test]
    fn pre_cancelled_requests_never_run() {
        let a = grid(8, 4.0, 0.0, 0);
        let (service, ia, _) = service_over(&a, &a, ServiceConfig::default());
        let token = CancelToken::new();
        token.cancel();
        let report = service.run(vec![
            QueryRequest::join(ia, ia).with_cancel(token.clone()),
            QueryRequest::join(ia, ia),
        ]);
        assert!(matches!(report.outcomes[0].status, QueryStatus::Cancelled(None)));
        assert!(report.outcomes[1].is_completed());
        assert_eq!(report.stats.cancelled, 1);
        assert_eq!(report.stats.completed, 1);
        assert_eq!(report.stats.admitted, 1);
    }

    #[test]
    fn unknown_datasets_fail_cleanly() {
        let a = grid(6, 4.0, 0.0, 0);
        let (service, ia, _) = service_over(&a, &a, ServiceConfig::default());
        let report = service.run(vec![
            QueryRequest::join(ia, DatasetId(99)),
            QueryRequest::window(DatasetId(42), Rect::from_coords(0.0, 0.0, 1.0, 1.0)),
        ]);
        for outcome in &report.outcomes {
            assert!(
                matches!(&outcome.status, QueryStatus::Failed(ServiceError::UnknownDataset(_))),
                "{:?}",
                outcome.status
            );
        }
        assert_eq!(report.stats.failed, 2);
    }

    #[test]
    fn priorities_admit_before_fifo_order() {
        let a = grid(10, 4.0, 0.0, 0);
        // One worker: execution order equals admission order.
        let (service, ia, _) = service_over(&a, &a, ServiceConfig::default().with_workers(1));
        let report = service.run(vec![
            QueryRequest::join(ia, ia).with_algorithm(Algo::Sssj),
            QueryRequest::join(ia, ia).with_algorithm(Algo::Sssj).with_priority(5),
            QueryRequest::join(ia, ia).with_algorithm(Algo::Sssj).with_priority(5),
        ]);
        // The priority-5 requests waited less than the priority-0 one which
        // was submitted first but admitted last.
        let w0 = report.outcomes[0].stats.queue_wait;
        let w1 = report.outcomes[1].stats.queue_wait;
        let w2 = report.outcomes[2].stats.queue_wait;
        assert!(w1 <= w0 && w2 <= w0, "{w0:?} {w1:?} {w2:?}");
        assert!(w1 <= w2, "FIFO within a priority");
    }

    #[test]
    fn admission_respects_the_shared_budget_and_records_deferrals() {
        let a = grid(12, 4.0, 0.0, 0);
        let limit = 4 * 1024 * 1024;
        let (service, ia, ib) = service_over(
            &a,
            &a,
            ServiceConfig::default().with_workers(4).with_memory_limit(limit),
        );
        // Each request demands 3 MB of the 4 MB budget: only one runs at a
        // time even though four workers are free.
        let requests: Vec<QueryRequest> = (0..6)
            .map(|_| {
                QueryRequest::join(ia, ib)
                    .with_algorithm(Algo::Sssj)
                    .with_memory_budget(3 * 1024 * 1024)
            })
            .collect();
        let report = service.run(requests);
        assert_eq!(report.stats.completed, 6);
        assert!(report.stats.deferrals > 0, "free workers must have deferred");
        assert!(report.stats.peak_admitted_bytes <= limit);
        for outcome in &report.outcomes {
            assert_eq!(outcome.stats.admitted_bytes, 3 * 1024 * 1024);
            let result = outcome.result().unwrap();
            assert!(result.memory.peak_bytes <= outcome.stats.admitted_bytes);
        }
    }

    #[test]
    fn unadmittable_requests_fail_instead_of_deadlocking() {
        let a = grid(6, 4.0, 0.0, 0);
        // A zero shared budget can never admit anything: the scheduler must
        // fail the requests loudly rather than park its workers forever.
        let (service, ia, _) = service_over(
            &a,
            &a,
            ServiceConfig::default().with_workers(2).with_memory_limit(0),
        );
        let report = service.run(vec![
            QueryRequest::join(ia, ia),
            QueryRequest::window(ia, Rect::from_coords(0.0, 0.0, 1.0, 1.0)),
        ]);
        for outcome in &report.outcomes {
            assert!(
                matches!(
                    outcome.status,
                    QueryStatus::Failed(ServiceError::Io(IoSimError::MemoryLimitExceeded { .. }))
                ),
                "{:?}",
                outcome.status
            );
        }
        assert_eq!(report.stats.failed, 2);
        assert_eq!(report.stats.admitted, 0);

        // A query whose *granted* budget is too small for its working set
        // fails at run time with the same error, reported per query.
        let b = grid(40, 4.0, 0.0, 0);
        let (tight, ib, _) = service_over(
            &b,
            &b,
            ServiceConfig::default().with_workers(1).with_memory_limit(8 * 1024),
        );
        let report = tight.run(vec![QueryRequest::join(ib, ib).with_algorithm(Algo::Sssj)]);
        assert!(
            matches!(
                report.outcomes[0].status,
                QueryStatus::Failed(ServiceError::Io(IoSimError::MemoryLimitExceeded { .. }))
            ),
            "{:?}",
            report.outcomes[0].status
        );
    }

    #[test]
    fn plan_cache_reuses_plans_across_identical_queries() {
        // Large enough that the trees have internal levels: the Auto
        // estimate's directory probes then cost real, measurable I/O.
        let a = grid(40, 4.0, 0.0, 0);
        let b = grid(40, 4.0, 1.5, 100_000);
        let (service, ia, ib) = service_over(&a, &b, ServiceConfig::default().with_workers(1));
        let request = || QueryRequest::join(ia, ib).with_algorithm(Algo::Auto);
        let report = service.run(vec![request(), request(), request()]);
        assert_eq!(report.stats.completed, 3);
        assert_eq!(report.stats.plan_cache_misses, 1);
        assert_eq!(report.stats.plan_cache_hits, 2);
        // All three deliver identical pair counts...
        let pairs: Vec<u64> = report
            .outcomes
            .iter()
            .map(|o| o.result().unwrap().pairs)
            .collect();
        assert_eq!(pairs[0], pairs[1]);
        assert_eq!(pairs[1], pairs[2]);
        // ...and the cached repeats skip the Auto estimate's directory
        // probes, so they charge strictly less I/O.
        let first = report.outcomes[0].result().unwrap().io.pages_read;
        let repeat = report.outcomes[1].result().unwrap().io.pages_read;
        assert!(repeat < first, "cached plan must save I/O ({repeat} vs {first})");
    }

    #[test]
    fn parallel_execution_runs_inside_a_worker() {
        let a = grid(14, 4.0, 0.0, 0);
        let b = grid(14, 4.0, 1.0, 100_000);
        let (service, ia, ib) = service_over(&a, &b, ServiceConfig::default().with_workers(2));
        let report = service.run(vec![
            QueryRequest::join(ia, ib).with_algorithm(Algo::Pbsm),
            QueryRequest::join(ia, ib)
                .with_algorithm(Algo::Pbsm)
                .with_execution(Execution::parallel()),
        ]);
        assert_eq!(report.stats.completed, 2);
        assert_eq!(
            report.outcomes[0].result().unwrap().pairs,
            report.outcomes[1].result().unwrap().pairs
        );
    }

    #[test]
    fn point_selection_matches_brute_force() {
        let a = grid(12, 5.0, 0.0, 0);
        let (service, ia, _) = service_over(&a, &a, ServiceConfig::default());
        let p = Point::new(17.0, 22.0);
        let expected = a
            .iter()
            .filter(|it| {
                it.rect.contains(&Rect::from_coords(p.x, p.y, p.x, p.y))
            })
            .count() as u64;
        let report = service.run(vec![QueryRequest::point(ia, p).collecting()]);
        let outcome = &report.outcomes[0];
        assert_eq!(outcome.result().unwrap().pairs, expected);
        assert_eq!(outcome.pairs.as_ref().unwrap().len() as u64, expected);
    }

    #[test]
    fn session_accepts_submissions_while_workers_run() {
        let a = grid(10, 4.0, 0.0, 0);
        let (service, ia, _) = service_over(&a, &a, ServiceConfig::default().with_workers(2));
        let window = Rect::from_coords(0.0, 0.0, 20.0, 20.0);
        let ((), report) = service.with_session(|session| {
            for k in 0..6 {
                let idx = session.submit(if k % 2 == 0 {
                    QueryRequest::join(ia, ia).with_algorithm(Algo::Sssj)
                } else {
                    QueryRequest::window(ia, window)
                });
                assert_eq!(idx, k);
            }
            assert_eq!(session.submitted(), 6);
            // Depth and running are sampled live; both are bounded by what
            // was submitted.
            assert!(session.queue_depth() <= 6);
        });
        assert_eq!(report.stats.submitted, 6);
        assert_eq!(report.stats.completed, 6);
        for (i, outcome) in report.outcomes.iter().enumerate() {
            assert_eq!(outcome.request, i, "outcomes stay in submission order");
            assert!(outcome.stats.latency >= outcome.stats.queue_wait);
            assert!(outcome.stats.admission_seq.is_some());
        }
    }

    fn selection_mix(ia: DatasetId) -> Vec<QueryRequest> {
        vec![
            QueryRequest::window(ia, Rect::from_coords(0.0, 0.0, 30.0, 30.0)).collecting(),
            QueryRequest::window(ia, Rect::from_coords(10.0, 10.0, 80.0, 80.0)).collecting(),
            QueryRequest::window(ia, Rect::from_coords(0.0, 0.0, 80.0, 80.0))
                .with_limit(5)
                .collecting(),
            QueryRequest::point(ia, Point::new(17.0, 22.0)).collecting(),
            QueryRequest::window(ia, Rect::from_coords(-5.0, -5.0, -1.0, -1.0)).collecting(),
        ]
    }

    #[test]
    fn shared_scans_match_serial_execution_byte_for_byte() {
        let a = grid(20, 4.0, 0.0, 0);
        let (serial, ia, _) = service_over(&a, &a, ServiceConfig::default().with_workers(1));
        let (batched, ib, _) = service_over(
            &a,
            &a,
            ServiceConfig::default().with_workers(1).with_shared_scans(true),
        );
        assert_eq!(ia, ib, "identical registration order gives identical ids");
        let serial_report = serial.run(selection_mix(ia));
        let batched_report = batched.run(selection_mix(ib));

        // One worker, everything queued up front: the whole mix rides one
        // scan.
        assert_eq!(batched_report.stats.shared_scans, 1);
        assert_eq!(batched_report.stats.coalesced, 4);
        assert_eq!(serial_report.stats.shared_scans, 0);

        for (s, b) in serial_report.outcomes.iter().zip(&batched_report.outcomes) {
            assert!(s.is_completed() && b.is_completed());
            assert_eq!(
                s.result().unwrap().pairs,
                b.result().unwrap().pairs,
                "request #{}",
                s.request
            );
            assert_eq!(s.pairs, b.pairs, "request #{}: byte-identical pair lists", s.request);
        }
        assert_eq!(serial_report.stats.pairs, batched_report.stats.pairs);
        // The shared scan reads the tree once instead of five times.
        assert!(
            batched_report.stats.io.pages_read < serial_report.stats.io.pages_read,
            "coalescing must save I/O ({} vs {})",
            batched_report.stats.io.pages_read,
            serial_report.stats.io.pages_read
        );
        // Riders hold no budget of their own.
        for outcome in &batched_report.outcomes {
            if outcome.stats.coalesced {
                assert_eq!(outcome.stats.admitted_bytes, 0);
            }
        }
    }

    #[test]
    fn shared_scans_do_not_coalesce_across_datasets_or_joins() {
        let a = grid(12, 4.0, 0.0, 0);
        let b = grid(12, 4.0, 1.0, 50_000);
        let (service, ia, ib) = service_over(
            &a,
            &b,
            ServiceConfig::default().with_workers(1).with_shared_scans(true),
        );
        let window = Rect::from_coords(0.0, 0.0, 30.0, 30.0);
        let report = service.run(vec![
            QueryRequest::window(ia, window),
            QueryRequest::join(ia, ib).with_algorithm(Algo::Sssj),
            QueryRequest::window(ib, window),
        ]);
        assert_eq!(report.stats.completed, 3);
        // Nothing compatible to coalesce: different datasets, and the join
        // never batches.
        assert_eq!(report.stats.shared_scans, 0);
        assert_eq!(report.stats.coalesced, 0);
    }

    #[test]
    fn overtakes_are_bounded_and_stamped() {
        let a = grid(30, 4.0, 0.0, 0);
        let limit = 4 * 1024 * 1024;
        let (service, ia, _) = service_over(
            &a,
            &a,
            ServiceConfig::default()
                .with_workers(2)
                .with_memory_limit(limit)
                .with_max_overtakes(2),
        );
        // A long heavy join runs first; a second heavy join blocks on the
        // gauge while cheap selections are free to overtake it — but no
        // more than max_overtakes times.
        let heavy = || {
            QueryRequest::join(ia, ia)
                .with_algorithm(Algo::Sssj)
                .with_memory_budget(3 * 1024 * 1024)
        };
        let mut requests = vec![heavy(), heavy()];
        for _ in 0..6 {
            requests.push(QueryRequest::window(ia, Rect::from_coords(0.0, 0.0, 10.0, 10.0)));
        }
        let report = service.run(requests);
        assert_eq!(report.stats.completed, 8);
        for outcome in &report.outcomes {
            assert!(
                outcome.stats.overtaken <= 2,
                "request #{} overtaken {} times (> max_overtakes)",
                outcome.request,
                outcome.stats.overtaken
            );
        }
    }

    #[test]
    fn queue_wait_is_anchored_at_first_enqueue() {
        // Regression test for the deferred-wait accounting fix: a request
        // that sits behind a running query must report the full span from
        // its first enqueue to its admission, not the residue since its
        // last failed admission attempt.
        let a = grid(30, 4.0, 0.0, 0);
        let limit = 4 * 1024 * 1024;
        let (service, ia, _) = service_over(
            &a,
            &a,
            ServiceConfig::default().with_workers(2).with_memory_limit(limit),
        );
        // Both demand 3 of the 4 MB: strictly serialized by the gauge even
        // though two workers are free, so the second's queue wait covers
        // the first's entire execution.
        let heavy = || {
            QueryRequest::join(ia, ia)
                .with_algorithm(Algo::Sssj)
                .with_memory_budget(3 * 1024 * 1024)
        };
        let report = service.run(vec![heavy(), heavy()]);
        assert_eq!(report.stats.completed, 2);
        let first = &report.outcomes[0].stats;
        let second = &report.outcomes[1].stats;
        assert!(second.deferrals > 0, "the second must have been deferred");
        let first_execution = first.latency.saturating_sub(first.queue_wait);
        assert!(
            second.queue_wait >= first_execution / 2,
            "deferred wait must cover the blocking query's execution \
             ({:?} vs execution {:?})",
            second.queue_wait,
            first_execution
        );
        assert!(second.latency >= second.queue_wait);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let a = grid(4, 4.0, 0.0, 0);
        let (service, _, _) = service_over(&a, &a, ServiceConfig::default());
        let report = service.run(Vec::new());
        assert!(report.outcomes.is_empty());
        assert_eq!(report.stats.submitted, 0);
        let text = format!("{}", report.stats);
        assert!(text.contains("0 submitted"), "{text}");
    }

    fn brute_pairs(a: &[Item], b: &[Item]) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for x in a {
            for y in b {
                if x.rect.intersects(&y.rect) {
                    out.push((x.id, y.id));
                }
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn streaming_joins_run_over_live_datasets_through_the_service() {
        let a = grid(12, 4.0, 0.0, 0);
        let b = grid(12, 4.0, 1.5, 100_000);
        let (service, _, _) = service_over(&a, &b, ServiceConfig::default().with_workers(2));
        // Register with part of each dataset, then ingest the rest through
        // appends — flushes and compactions happen behind the thresholds.
        let config = LiveConfig {
            flush_threshold_bytes: 40 * ITEM_BYTES,
            compact_after_deltas: 2,
        };
        let la = service.register_live("live_a", &a[..60], config).unwrap();
        let lb = service.register_live("live_b", &b[..30], config).unwrap();
        for chunk in a[60..].chunks(37) {
            service.append_live("live_a", chunk).unwrap();
        }
        for chunk in b[30..].chunks(53) {
            service.append_live("live_b", chunk).unwrap();
        }
        assert_eq!(
            service.with_live(|live| live.lookup("live_a").map(|(id, _)| id)),
            Some(la)
        );

        let expected = brute_pairs(&a, &b);
        let report = service.run(vec![
            QueryRequest::streaming_join(la, lb).collecting(),
            QueryRequest::streaming_join(la, lb),
            QueryRequest::streaming_join(la, lb).with_limit(7).collecting(),
        ]);
        assert_eq!(report.stats.completed, 3);
        let mut collected = report.outcomes[0].pairs.clone().unwrap();
        collected.sort_unstable();
        assert_eq!(collected, expected);
        assert_eq!(report.outcomes[1].result().unwrap().pairs, expected.len() as u64);
        // LIMIT truncates the stream to an exact prefix of true pairs.
        let limited = report.outcomes[2].pairs.as_ref().unwrap();
        assert_eq!(limited.len(), 7.min(expected.len()));
        for p in limited {
            assert!(expected.binary_search(p).is_ok(), "{p:?} not a result pair");
        }
    }

    #[test]
    fn live_registration_rejects_duplicates_and_unknown_ids_fail_cleanly() {
        let a = grid(6, 4.0, 0.0, 0);
        let (service, _, _) = service_over(&a, &a, ServiceConfig::default());
        let la = service
            .register_live("points", &a, LiveConfig::default())
            .unwrap();
        assert!(matches!(
            service.register_live("points", &a, LiveConfig::default()),
            Err(ServiceError::DuplicateDataset(_))
        ));
        assert!(matches!(
            service.append_live("nowhere", &a),
            Err(ServiceError::UnknownDataset(_))
        ));
        let report = service.run(vec![QueryRequest::streaming_join(la, LiveId(99))]);
        assert!(
            matches!(
                &report.outcomes[0].status,
                QueryStatus::Failed(ServiceError::UnknownDataset(_))
            ),
            "{:?}",
            report.outcomes[0].status
        );
    }

    /// Builds a service holding one *fragmented* live dataset over `live`
    /// (partial base + chunked appends, so every tier — base run, delta
    /// runs, frozen batches, memtable — is populated) and one frozen
    /// cataloged dataset over `frozen`.
    fn mixed_service(live: &[Item], frozen: &[Item]) -> (Service, LiveId, DatasetId) {
        let (service, _, ib) = service_over(frozen, frozen, ServiceConfig::default().with_workers(2));
        let config = LiveConfig {
            flush_threshold_bytes: 40 * ITEM_BYTES,
            compact_after_deltas: 3,
        };
        let split = live.len() / 3;
        let la = service.register_live("mixed", &live[..split], config).unwrap();
        for chunk in live[split..].chunks(29) {
            service.append_live("mixed", chunk).unwrap();
        }
        (service, la, ib)
    }

    #[test]
    fn mixed_joins_match_brute_force_including_limit_and_cancellation() {
        let a = grid(12, 4.0, 0.0, 0);
        let b = grid(12, 4.0, 1.5, 100_000);
        let (service, la, ib) = mixed_service(&a, &b);
        // The live side genuinely spans tiers when the join runs.
        assert!(service.live_backlog("mixed").unwrap_or(0) > 0 || {
            service.with_live(|l| l.get(la).unwrap().memtable_len() > 0)
        });

        let expected = brute_pairs(&a, &b);
        let token = CancelToken::new();
        token.cancel();
        let report = service.run(vec![
            QueryRequest::mixed_join(la, ib).collecting(),
            QueryRequest::mixed_join(la, ib),
            QueryRequest::mixed_join(la, ib).with_limit(9).collecting(),
            QueryRequest::mixed_join(la, ib).with_cancel(token),
        ]);
        let mut collected = report.outcomes[0].pairs.clone().unwrap();
        collected.sort_unstable();
        assert_eq!(collected, expected, "mixed join diverged from brute force");
        assert_eq!(report.outcomes[1].result().unwrap().pairs, expected.len() as u64);
        // LIMIT truncates the stream to an exact prefix of true pairs.
        let limited = report.outcomes[2].pairs.as_ref().unwrap();
        assert_eq!(limited.len(), 9.min(expected.len()));
        for p in limited {
            assert!(expected.binary_search(p).is_ok(), "{p:?} not a result pair");
        }
        assert!(matches!(report.outcomes[3].status, QueryStatus::Cancelled(None)));
        assert_eq!(report.stats.completed, 3);
        assert_eq!(report.stats.cancelled, 1);
    }

    #[test]
    fn mixed_join_cancellation_stops_the_stream_partway() {
        let a = grid(14, 4.0, 0.0, 0);
        let b = grid(14, 4.0, 1.5, 100_000);
        let (service, la, ib) = mixed_service(&a, &b);
        let expected = brute_pairs(&a, &b);
        let token = CancelToken::new();
        let (_, report) = service.with_session(|session| {
            session.submit(QueryRequest::mixed_join(la, ib).with_cancel(token.clone()).collecting());
            // Spin until the query is genuinely executing, then pull the
            // token out from under it mid-stream.
            while session.running() == 0 && session.queue_depth() > 0 {
                std::thread::yield_now();
            }
            token.cancel();
        });
        let outcome = &report.outcomes[0];
        // Raced against a fast query the cancel may lose — but whatever
        // prefix streamed out must consist of true pairs only.
        match &outcome.status {
            QueryStatus::Cancelled(partial) => {
                let delivered = outcome.pairs.as_ref().map_or(0, |p| p.len());
                assert!(delivered <= expected.len());
                assert!(partial.is_none() || partial.as_ref().unwrap().pairs == delivered as u64);
            }
            QueryStatus::Completed(r) => assert_eq!(r.pairs, expected.len() as u64),
            QueryStatus::Failed(e) => panic!("mixed join failed: {e}"),
        }
        for p in outcome.pairs.as_ref().unwrap() {
            assert!(expected.binary_search(p).is_ok(), "{p:?} not a result pair");
        }
    }

    #[test]
    fn live_selections_cover_every_tier_and_match_brute_force() {
        let a = grid(13, 4.0, 0.0, 0);
        let (service, la, _) = mixed_service(&a, &a);
        let windows = [
            Rect::from_coords(0.0, 0.0, 18.0, 18.0),
            Rect::from_coords(20.0, 20.0, 52.0, 52.0),
            Rect::from_coords(-5.0, -5.0, 100.0, 100.0),
            Rect::from_coords(90.0, 90.0, 95.0, 95.0), // beyond the bbox
        ];
        let mut requests: Vec<QueryRequest> = windows
            .iter()
            .map(|w| QueryRequest::live_window(la, *w).collecting())
            .collect();
        let probe = Point { x: 10.1, y: 10.1 };
        requests.push(QueryRequest::live_point(la, probe).collecting());
        requests.push(QueryRequest::live_window(la, windows[2]).with_limit(5).collecting());
        let report = service.run(requests);
        assert_eq!(report.stats.completed, 6);
        for (i, window) in windows.iter().enumerate() {
            let mut expected: Vec<u32> = a
                .iter()
                .filter(|it| it.rect.intersects(window))
                .map(|it| it.id)
                .collect();
            expected.sort_unstable();
            let mut got: Vec<u32> = report.outcomes[i]
                .pairs
                .as_ref()
                .unwrap()
                .iter()
                .map(|&(id, _)| id)
                .collect();
            got.sort_unstable();
            assert_eq!(got, expected, "window #{i} diverged from brute force");
        }
        let probe_rect = Rect::from_coords(probe.x, probe.y, probe.x, probe.y);
        let hits = a.iter().filter(|it| it.rect.intersects(&probe_rect)).count();
        assert_eq!(report.outcomes[4].pairs.as_ref().unwrap().len(), hits);
        assert_eq!(report.outcomes[5].pairs.as_ref().unwrap().len(), 5);
    }

    #[test]
    fn background_maintenance_matches_inline_and_shrinks_no_answers() {
        let a = grid(12, 4.0, 0.0, 0);
        let b = grid(12, 4.0, 1.5, 100_000);
        let run_mode = |background: bool| {
            let mut env = SimEnv::new(MachineConfig::machine3());
            let mut catalog = Catalog::new();
            let ib = catalog.register(&mut env, "frozen", &b).unwrap();
            let service = Service::new(
                env,
                catalog,
                ServiceConfig::default()
                    .with_workers(2)
                    .with_background_maintenance(background),
            );
            let config = LiveConfig {
                flush_threshold_bytes: 32 * ITEM_BYTES,
                compact_after_deltas: 2,
            };
            let la = service.register_live("live", &a[..40], config).unwrap();
            for chunk in a[40..].chunks(23) {
                service.append_live("live", chunk).unwrap();
            }
            // Quiesce: waits out the background queue, then drains every
            // tier into a single compacted base run.
            service.quiesce_live("live").unwrap();
            assert_eq!(service.live_backlog("live"), Some(0));
            service.with_live(|live| {
                let ds = live.get(la).unwrap();
                assert_eq!(ds.memtable_len(), 0, "quiesce left memtable items");
                assert_eq!(ds.pending_flush_batches(), 0);
            });
            let stats = service.live_stats("live").unwrap();
            assert!(stats.flushes > 0, "maintenance never flushed");
            let report = service.run(vec![QueryRequest::mixed_join(la, ib).collecting()]);
            let mut pairs = report.outcomes[0].pairs.clone().unwrap();
            pairs.sort_unstable();
            pairs
        };
        let inline = run_mode(false);
        let background = run_mode(true);
        assert_eq!(inline, brute_pairs(&a, &b));
        assert_eq!(inline, background, "maintenance modes diverged");
    }

    #[test]
    fn promotion_roundtrip_matches_a_fresh_registration() {
        let a = grid(11, 4.0, 0.0, 0);
        let b = grid(11, 4.0, 1.5, 100_000);
        let window = Rect::from_coords(3.0, 3.0, 25.0, 25.0);

        // Promoted path: grow the dataset through live appends (background
        // maintenance on, to exercise the worker), then promote.
        let mut env = SimEnv::new(MachineConfig::machine3());
        let mut catalog = Catalog::new();
        let ib = catalog.register(&mut env, "peer", &b).unwrap();
        let mut service = Service::new(
            env,
            catalog,
            ServiceConfig::default()
                .with_workers(2)
                .with_background_maintenance(true),
        );
        let config = LiveConfig {
            flush_threshold_bytes: 32 * ITEM_BYTES,
            compact_after_deltas: 2,
        };
        service.register_live("grown", &a[..30], config).unwrap();
        for chunk in a[30..].chunks(17) {
            service.append_live("grown", chunk).unwrap();
        }
        let promoted = service.promote_live("grown").unwrap();
        // The dataset moved sides wholesale.
        assert!(service.with_live(|live| live.lookup("grown").is_none()));
        assert!(matches!(
            service.append_live("grown", &a[..1]),
            Err(ServiceError::UnknownDataset(_))
        ));
        let frozen = service.catalog().get(promoted).expect("promoted dataset");
        assert_eq!(frozen.len(), a.len() as u64);
        let report = service.run(vec![
            QueryRequest::join(promoted, ib).with_algorithm(Algo::Sssj).collecting(),
            QueryRequest::window(promoted, window).collecting(),
        ]);

        // Oracle path: register the same items directly.
        let mut env2 = SimEnv::new(MachineConfig::machine3());
        let mut catalog2 = Catalog::new();
        // Promotion preserves item identity, not arrival order — the
        // adopted run is sweep-key sorted. Register the same *set*.
        let fresh = catalog2.register(&mut env2, "fresh", &a).unwrap();
        let ib2 = catalog2.register(&mut env2, "peer", &b).unwrap();
        let oracle_service = Service::new(env2, catalog2, ServiceConfig::default().with_workers(2));
        let oracle = oracle_service.run(vec![
            QueryRequest::join(fresh, ib2).with_algorithm(Algo::Sssj).collecting(),
            QueryRequest::window(fresh, window).collecting(),
        ]);

        for k in 0..2 {
            let mut got = report.outcomes[k].pairs.clone().unwrap();
            let mut want = oracle.outcomes[k].pairs.clone().unwrap();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "query #{k} diverged after promotion");
        }
        // The promoted dataset has a real histogram: its admission estimate
        // path and planner treat it exactly like a registered peer.
        assert!(frozen.histogram().total() > 0);
    }

    #[test]
    fn promote_refuses_unknown_and_double_promotion() {
        let a = grid(6, 4.0, 0.0, 0);
        let (mut service, _, _) = {
            let (s, x, y) = service_over(&a, &a, ServiceConfig::default());
            (s, x, y)
        };
        assert!(matches!(
            service.promote_live("missing"),
            Err(ServiceError::UnknownDataset(_))
        ));
        service
            .register_live("once", &a, LiveConfig::default())
            .unwrap();
        service.promote_live("once").unwrap();
        assert!(matches!(
            service.promote_live("once"),
            Err(ServiceError::UnknownDataset(_))
        ));
        // The name is now taken on the frozen side too.
        assert!(matches!(
            service.register_live("once", &a, LiveConfig::default()).map(|_| ()),
            Ok(())
        ));
        assert!(matches!(
            service.promote_live("once"),
            Err(ServiceError::DuplicateDataset(_))
        ));
    }

    #[test]
    fn measured_peaks_tighten_repeat_admission() {
        // First run of a fingerprint is admitted on the 3x-input-size
        // heuristic; once a completed run has recorded its real gauge peak,
        // repeats are admitted on peak + 25% — a strictly smaller claim
        // here, so the same shared budget packs more concurrent queries.
        let a = grid(20, 4.0, 0.0, 0);
        let b = grid(20, 4.0, 1.5, 100_000);
        let (service, ia, ib) = service_over(&a, &b, ServiceConfig::default().with_workers(1));
        let request = || QueryRequest::join(ia, ib).with_algorithm(Algo::Sssj);

        let first = service.run(vec![request()]);
        let second = service.run(vec![request()]);
        let (o1, o2) = (&first.outcomes[0], &second.outcomes[0]);
        assert!(o1.is_completed() && o2.is_completed());
        assert_eq!(o1.result().unwrap().pairs, o2.result().unwrap().pairs);
        assert!(
            o2.stats.admitted_bytes < o1.stats.admitted_bytes,
            "measured-peak admission must be denser than the heuristic \
             ({} vs {})",
            o2.stats.admitted_bytes,
            o1.stats.admitted_bytes
        );
        // The margin really covers the run: the repeat finished inside its
        // tighter budget.
        assert!(o2.result().unwrap().memory.peak_bytes <= o2.stats.admitted_bytes);
    }

    #[test]
    fn truncated_runs_never_poison_admission_estimates() {
        // A LIMIT-stopped run's peak under-states the query's footprint; it
        // must not be recorded, so the repeat is still admitted on the
        // conservative heuristic.
        let a = grid(20, 4.0, 0.0, 0);
        let b = grid(20, 4.0, 1.5, 100_000);
        let (service, ia, ib) = service_over(&a, &b, ServiceConfig::default().with_workers(1));
        let limited = service.run(vec![QueryRequest::join(ia, ib)
            .with_algorithm(Algo::Sssj)
            .with_limit(1)]);
        assert!(limited.outcomes[0].is_completed());
        let repeat = service.run(vec![QueryRequest::join(ia, ib).with_algorithm(Algo::Sssj)]);
        assert_eq!(
            repeat.outcomes[0].stats.admitted_bytes,
            limited.outcomes[0].stats.admitted_bytes,
            "a truncated run must not shrink the next admission"
        );
    }
}
