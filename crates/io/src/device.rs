//! The simulated block device.
//!
//! The device is an in-memory array of 8 KiB pages. Its job is not to persist
//! data but to *account* for every access the way a 1999 SCSI/IDE disk would
//! experience it: a multi-page operation whose first page immediately follows
//! the last page touched by the previous operation is *sequential* (no seek);
//! anything else is *random* (one seek). This is exactly the distinction the
//! paper argues must be modelled to understand spatial-join performance.
//!
//! A device can additionally be created *on top of* a read-only **base
//! snapshot** ([`BlockDevice::with_base`]): a shared, immutable prefix of
//! pages taken from another device with [`BlockDevice::snapshot`]. This is
//! how the query service gives every concurrent query its own device — own
//! head position, own I/O statistics, own scratch space — over the *same*
//! stored catalog data, without copying a byte per query. Page identifiers
//! below the base length read from the snapshot; writes to them fail with
//! [`IoSimError::ReadOnlyPage`] (cataloged data is immutable), and new
//! allocations start right after the base, so the identifier space stays
//! contiguous.

use std::sync::Arc;

use crate::error::{IoSimError, Result};
use crate::fault::{FaultPlan, FaultStats};
use crate::page::{Page, PageId, PAGE_SIZE};
use crate::stats::IoStats;

/// The simulated disk.
#[derive(Debug, Default)]
pub struct BlockDevice {
    /// Read-only shared prefix (empty for a standalone device).
    base: Arc<Vec<Page>>,
    pages: Vec<Page>,
    stats: IoStats,
    /// Page that would be under the head after the previous operation
    /// (`last accessed page + 1`), or `None` before the first access.
    head: Option<PageId>,
    /// When `true`, accesses are recorded in the statistics. Preprocessing
    /// steps that the paper excludes from its measurements (e.g. workload
    /// materialisation) run with accounting disabled.
    accounting: bool,
    /// Installed fault schedule, if any. Boxed so the fault-free device
    /// (the overwhelmingly common case) pays only one pointer of state and
    /// a single `is_some` branch per operation.
    faults: Option<Box<FaultPlan>>,
}

impl BlockDevice {
    /// Creates an empty device with accounting enabled.
    pub fn new() -> Self {
        BlockDevice {
            base: Arc::new(Vec::new()),
            pages: Vec::new(),
            stats: IoStats::default(),
            head: None,
            accounting: true,
            faults: None,
        }
    }

    /// Creates a device whose first [`base_pages`](BlockDevice::base_pages)
    /// pages are the given read-only snapshot.
    ///
    /// Reads of snapshot pages are accounted like any other read; writes to
    /// them fail with [`IoSimError::ReadOnlyPage`]. New allocations continue
    /// after the snapshot.
    pub fn with_base(base: Arc<Vec<Page>>) -> Self {
        BlockDevice {
            base,
            ..BlockDevice::new()
        }
    }

    /// Deep-copies every allocated page (base and own) into a new shareable
    /// snapshot, suitable for [`BlockDevice::with_base`].
    ///
    /// This is an O(data) host-memory copy; it is meant to be taken *once*
    /// (e.g. when a query service freezes its catalog), after which any
    /// number of devices can be layered on top of the returned `Arc` for
    /// free.
    pub fn snapshot(&self) -> Arc<Vec<Page>> {
        let mut all = Vec::with_capacity(self.base.len() + self.pages.len());
        all.extend(self.base.iter().cloned());
        all.extend(self.pages.iter().cloned());
        Arc::new(all)
    }

    /// Number of read-only base-snapshot pages under this device.
    #[inline]
    pub fn base_pages(&self) -> u64 {
        self.base.len() as u64
    }

    /// Number of pages currently allocated (including the base snapshot).
    #[inline]
    pub fn allocated_pages(&self) -> u64 {
        (self.base.len() + self.pages.len()) as u64
    }

    /// Total allocated bytes.
    #[inline]
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated_pages() * PAGE_SIZE as u64
    }

    /// Current accumulated I/O statistics.
    #[inline]
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Resets the I/O statistics (the allocated pages are untouched) and the
    /// head position.
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
        self.head = None;
    }

    /// Enables or disables accounting; returns the previous setting.
    pub fn set_accounting(&mut self, on: bool) -> bool {
        std::mem::replace(&mut self.accounting, on)
    }

    /// Whether accesses are currently recorded.
    #[inline]
    pub fn accounting(&self) -> bool {
        self.accounting
    }

    /// Installs a fault schedule; subsequent reads and writes may fail with
    /// [`IoSimError::DeviceFault`], tear multi-page writes, or panic,
    /// according to the plan. Replaces any previously installed plan.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(Box::new(plan));
    }

    /// Removes the installed fault schedule, returning its final counters.
    pub fn clear_faults(&mut self) -> Option<FaultStats> {
        self.faults.take().map(|p| p.stats())
    }

    /// Counters of the installed fault schedule (`None` when no plan is
    /// installed).
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.faults.as_ref().map(|p| p.stats())
    }

    /// Allocates `n` zero-filled pages at the end of the device and returns
    /// the identifier of the first one.
    ///
    /// Allocation itself is free: the cost of actually writing the pages is
    /// charged when they are written.
    pub fn allocate(&mut self, n: u64) -> PageId {
        let first = self.allocated_pages();
        self.pages
            .extend(std::iter::repeat_with(Page::zeroed).take(n as usize));
        first
    }

    /// Resolves a page identifier to its storage (base snapshot or own).
    fn page_ref(&self, page: PageId) -> &Page {
        let base_len = self.base.len() as u64;
        if page < base_len {
            &self.base[page as usize]
        } else {
            &self.pages[(page - base_len) as usize]
        }
    }

    /// Rejects writes addressed to the read-only base snapshot. Writes are
    /// contiguous from their first page and the base is a prefix of the
    /// identifier space, so checking the first page covers the whole range.
    fn check_writable(&self, first: PageId) -> Result<()> {
        if first < self.base.len() as u64 {
            return Err(IoSimError::ReadOnlyPage { page: first });
        }
        Ok(())
    }

    /// Resolves an own (writable) page; callers must have passed
    /// [`check_writable`](BlockDevice::check_writable) first.
    fn page_mut(&mut self, page: PageId) -> &mut Page {
        let base_len = self.base.len() as u64;
        &mut self.pages[(page - base_len) as usize]
    }

    fn check_range(&self, first: PageId, n: u64) -> Result<()> {
        let end = first.checked_add(n).ok_or(IoSimError::PageOutOfBounds {
            page: first,
            allocated: self.allocated_pages(),
        })?;
        if end > self.allocated_pages() || n == 0 {
            return Err(IoSimError::PageOutOfBounds {
                page: first + n.saturating_sub(1),
                allocated: self.allocated_pages(),
            });
        }
        Ok(())
    }

    fn record(&mut self, first: PageId, n: u64, is_read: bool) {
        if !self.accounting {
            return;
        }
        let sequential = self.head == Some(first);
        match (is_read, sequential) {
            (true, true) => self.stats.seq_read_ops += 1,
            (true, false) => self.stats.rand_read_ops += 1,
            (false, true) => self.stats.seq_write_ops += 1,
            (false, false) => self.stats.rand_write_ops += 1,
        }
        if is_read {
            self.stats.pages_read += n;
        } else {
            self.stats.pages_written += n;
        }
        self.head = Some(first + n);
    }

    /// Reads a single page, returning a copy of its contents.
    pub fn read_page(&mut self, page: PageId) -> Result<Vec<u8>> {
        self.check_range(page, 1)?;
        if let Some(plan) = self.faults.as_mut() {
            plan.before_read()?;
        }
        self.record(page, 1, true);
        Ok(self.page_ref(page).bytes().to_vec())
    }

    /// Reads `n` consecutive pages starting at `first` as one I/O operation.
    pub fn read_pages(&mut self, first: PageId, n: u64) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        self.read_pages_into(first, n, &mut out)?;
        Ok(out)
    }

    /// Reads `n` consecutive pages starting at `first` as one I/O operation
    /// into a caller-provided buffer (cleared first).
    ///
    /// This is the zero-allocation sibling of
    /// [`read_pages`](BlockDevice::read_pages): sequential consumers such as
    /// [`ItemStreamReader`](crate::stream::ItemStreamReader) reuse one buffer
    /// across every block of a scan instead of allocating a fresh vector per
    /// read. The I/O accounting is identical.
    pub fn read_pages_into(&mut self, first: PageId, n: u64, out: &mut Vec<u8>) -> Result<()> {
        self.check_range(first, n)?;
        if let Some(plan) = self.faults.as_mut() {
            plan.before_read()?;
        }
        self.record(first, n, true);
        out.clear();
        out.reserve(n as usize * PAGE_SIZE);
        for i in 0..n {
            out.extend_from_slice(self.page_ref(first + i).bytes());
        }
        Ok(())
    }

    /// Writes a single page (the buffer is truncated or zero-padded to the
    /// page size) as one I/O operation.
    pub fn write_page(&mut self, page: PageId, data: &[u8]) -> Result<()> {
        if data.len() > PAGE_SIZE {
            return Err(IoSimError::OffsetOutOfPage {
                offset: 0,
                len: data.len(),
            });
        }
        self.check_range(page, 1)?;
        self.check_writable(page)?;
        if let Some(plan) = self.faults.as_mut() {
            // Single-page writes are atomic: `before_write(1)` never tears.
            plan.before_write(1)?;
        }
        self.record(page, 1, false);
        let dst = self.page_mut(page).bytes_mut();
        dst[..data.len()].copy_from_slice(data);
        for b in dst[data.len()..].iter_mut() {
            *b = 0;
        }
        Ok(())
    }

    /// Writes `n` consecutive pages starting at `first` as one I/O operation.
    ///
    /// `data` must be at most `n * PAGE_SIZE` bytes; the tail of the last page
    /// is zero-filled.
    pub fn write_pages(&mut self, first: PageId, n: u64, data: &[u8]) -> Result<()> {
        if data.len() > n as usize * PAGE_SIZE {
            return Err(IoSimError::OffsetOutOfPage {
                offset: 0,
                len: data.len(),
            });
        }
        self.check_range(first, n)?;
        self.check_writable(first)?;
        // A torn write durably commits only the first `k < n` pages before
        // failing persistently — the crash-mid-write case that run
        // checksums exist to detect.
        let torn = match self.faults.as_mut() {
            Some(plan) => plan.before_write(n)?,
            None => None,
        };
        let written = torn.unwrap_or(n);
        self.record(first, written, false);
        for i in 0..written as usize {
            let dst = self.page_mut(first + i as u64).bytes_mut();
            let start = i * PAGE_SIZE;
            let end = ((i + 1) * PAGE_SIZE).min(data.len());
            if start < data.len() {
                let chunk = &data[start..end];
                dst[..chunk.len()].copy_from_slice(chunk);
                for b in dst[chunk.len()..].iter_mut() {
                    *b = 0;
                }
            } else {
                for b in dst.iter_mut() {
                    *b = 0;
                }
            }
        }
        if torn.is_some() {
            return Err(IoSimError::DeviceFault { transient: false });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_then_read_back_zeroes() {
        let mut d = BlockDevice::new();
        let p = d.allocate(3);
        assert_eq!(p, 0);
        assert_eq!(d.allocated_pages(), 3);
        let data = d.read_page(1).unwrap();
        assert_eq!(data.len(), PAGE_SIZE);
        assert!(data.iter().all(|&b| b == 0));
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut d = BlockDevice::new();
        let p = d.allocate(2);
        d.write_page(p, b"hello world").unwrap();
        let back = d.read_page(p).unwrap();
        assert_eq!(&back[..11], b"hello world");
        assert!(back[11..].iter().all(|&b| b == 0));
    }

    #[test]
    fn multi_page_write_read_roundtrip() {
        let mut d = BlockDevice::new();
        let p = d.allocate(4);
        let data: Vec<u8> = (0..PAGE_SIZE * 3).map(|i| (i % 251) as u8).collect();
        d.write_pages(p, 3, &data).unwrap();
        let back = d.read_pages(p, 3).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn out_of_bounds_accesses_are_rejected() {
        let mut d = BlockDevice::new();
        d.allocate(2);
        assert!(d.read_page(2).is_err());
        assert!(d.read_pages(1, 2).is_err());
        assert!(d.write_page(5, b"x").is_err());
        assert!(d.read_pages(0, 0).is_err());
    }

    #[test]
    fn oversized_write_is_rejected() {
        let mut d = BlockDevice::new();
        let p = d.allocate(1);
        let big = vec![1u8; PAGE_SIZE + 1];
        assert!(matches!(
            d.write_page(p, &big),
            Err(IoSimError::OffsetOutOfPage { .. })
        ));
    }

    #[test]
    fn sequential_vs_random_classification() {
        let mut d = BlockDevice::new();
        d.allocate(10);
        // First access is always random (head position unknown).
        d.read_page(0).unwrap();
        // Next page follows the head: sequential.
        d.read_page(1).unwrap();
        d.read_page(2).unwrap();
        // Jump: random.
        d.read_page(7).unwrap();
        // Follows the jump: sequential.
        d.read_page(8).unwrap();
        // Re-reading an earlier page: random.
        d.read_page(0).unwrap();
        let s = d.stats();
        assert_eq!(s.rand_read_ops, 3);
        assert_eq!(s.seq_read_ops, 3);
        assert_eq!(s.pages_read, 6);
    }

    #[test]
    fn multi_page_ops_count_once_but_transfer_all_pages() {
        let mut d = BlockDevice::new();
        d.allocate(64);
        d.read_pages(0, 16).unwrap();
        d.read_pages(16, 16).unwrap();
        d.read_pages(0, 16).unwrap();
        let s = d.stats();
        assert_eq!(s.read_ops(), 3);
        assert_eq!(s.rand_read_ops, 2);
        assert_eq!(s.seq_read_ops, 1);
        assert_eq!(s.pages_read, 48);
    }

    #[test]
    fn writes_interleaved_with_reads_track_head() {
        let mut d = BlockDevice::new();
        d.allocate(10);
        d.write_page(0, b"a").unwrap(); // random (first)
        d.write_page(1, b"b").unwrap(); // sequential
        d.read_page(2).unwrap(); // sequential (follows the write)
        d.write_page(9, b"c").unwrap(); // random
        let s = d.stats();
        assert_eq!(s.rand_write_ops, 2);
        assert_eq!(s.seq_write_ops, 1);
        assert_eq!(s.seq_read_ops, 1);
    }

    #[test]
    fn accounting_can_be_disabled() {
        let mut d = BlockDevice::new();
        d.allocate(4);
        let was = d.set_accounting(false);
        assert!(was);
        d.read_page(0).unwrap();
        d.write_page(1, b"x").unwrap();
        assert_eq!(d.stats().total_ops(), 0);
        d.set_accounting(true);
        d.read_page(2).unwrap();
        assert_eq!(d.stats().total_ops(), 1);
    }

    #[test]
    fn base_snapshot_is_readable_but_write_protected() {
        let mut d = BlockDevice::new();
        let p = d.allocate(3);
        d.write_page(p, b"catalog").unwrap();
        d.write_page(p + 2, b"tail").unwrap();

        let base = d.snapshot();
        let mut worker = BlockDevice::with_base(base);
        assert_eq!(worker.base_pages(), 3);
        assert_eq!(worker.allocated_pages(), 3);

        // Base pages read back the snapshot contents, with accounting.
        let bytes = worker.read_page(p).unwrap();
        assert_eq!(&bytes[..7], b"catalog");
        assert_eq!(worker.stats().pages_read, 1);

        // Writes to snapshot pages are rejected without being accounted.
        assert!(matches!(
            worker.write_page(p, b"x"),
            Err(IoSimError::ReadOnlyPage { page }) if page == p
        ));
        assert!(matches!(
            worker.write_pages(p + 1, 2, b"xy"),
            Err(IoSimError::ReadOnlyPage { .. })
        ));
        assert_eq!(worker.stats().pages_written, 0);

        // New allocations continue after the base and are writable.
        let q = worker.allocate(2);
        assert_eq!(q, 3);
        worker.write_page(q, b"scratch").unwrap();
        assert_eq!(&worker.read_page(q).unwrap()[..7], b"scratch");

        // The snapshot owner is unaffected by the worker's scratch writes.
        assert_eq!(d.allocated_pages(), 3);
        assert_eq!(&d.read_page(p).unwrap()[..7], b"catalog");
    }

    #[test]
    fn snapshot_of_layered_device_flattens_base_and_own_pages() {
        let mut d = BlockDevice::new();
        let p = d.allocate(1);
        d.write_page(p, b"first").unwrap();
        let mut layered = BlockDevice::with_base(d.snapshot());
        let q = layered.allocate(1);
        layered.write_page(q, b"second").unwrap();

        let mut relayered = BlockDevice::with_base(layered.snapshot());
        assert_eq!(relayered.base_pages(), 2);
        assert_eq!(&relayered.read_page(p).unwrap()[..5], b"first");
        assert_eq!(&relayered.read_page(q).unwrap()[..6], b"second");
    }

    #[test]
    fn transient_read_fault_is_retryable_and_unaccounted() {
        use crate::fault::FaultConfig;
        let mut d = BlockDevice::new();
        d.allocate(4);
        d.write_page(0, b"payload").unwrap();
        d.reset_stats();
        d.install_faults(FaultPlan::new(FaultConfig {
            read_fault: 1.0,
            max_faults: 1,
            ..FaultConfig::quiet(5)
        }));
        assert_eq!(
            d.read_page(0),
            Err(IoSimError::DeviceFault { transient: true })
        );
        // The failed operation moved no data and charged no I/O.
        assert_eq!(d.stats().total_ops(), 0);
        // The budget is spent: the retry succeeds and reads the real bytes.
        let back = d.read_page(0).unwrap();
        assert_eq!(&back[..7], b"payload");
        assert_eq!(d.stats().pages_read, 1);
        let stats = d.clear_faults().unwrap();
        assert_eq!(stats.read_faults, 1);
        assert_eq!(stats.ops, 2);
    }

    #[test]
    fn torn_write_commits_a_strict_prefix_then_fails_persistently() {
        use crate::fault::FaultConfig;
        let mut d = BlockDevice::new();
        let p = d.allocate(4);
        let data: Vec<u8> = (0..PAGE_SIZE * 4).map(|i| (i % 239 + 1) as u8).collect();
        d.install_faults(FaultPlan::new(FaultConfig {
            torn_write: 1.0,
            max_faults: 1,
            ..FaultConfig::quiet(11)
        }));
        assert_eq!(
            d.write_pages(p, 4, &data),
            Err(IoSimError::DeviceFault { transient: false })
        );
        let k = d.fault_stats().unwrap().torn_writes;
        assert_eq!(k, 1);
        // Some strict prefix of pages holds the data, the rest stayed zero,
        // and accounting matches the pages actually committed.
        let committed = d.stats().pages_written;
        assert!((1..4).contains(&committed), "committed {committed}");
        let back = d.read_pages(p, 4).unwrap();
        let cut = committed as usize * PAGE_SIZE;
        assert_eq!(&back[..cut], &data[..cut]);
        assert!(back[cut..].iter().all(|&b| b == 0));
        // The budget is spent: re-issuing the whole write now succeeds.
        d.write_pages(p, 4, &data).unwrap();
        assert_eq!(d.read_pages(p, 4).unwrap(), data);
    }

    #[test]
    fn fault_free_plan_is_byte_identical_to_no_plan() {
        use crate::fault::FaultConfig;
        let run = |install: bool| {
            let mut d = BlockDevice::new();
            if install {
                d.install_faults(FaultPlan::new(FaultConfig::quiet(3)));
            }
            let p = d.allocate(4);
            let data: Vec<u8> = (0..PAGE_SIZE * 3).map(|i| (i % 13) as u8).collect();
            d.write_pages(p, 3, &data).unwrap();
            let back = d.read_pages(p, 3).unwrap();
            (back, d.stats())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn faults_fire_only_on_valid_operations() {
        use crate::fault::FaultConfig;
        let mut d = BlockDevice::new();
        d.allocate(1);
        d.install_faults(FaultPlan::new(FaultConfig {
            read_fault: 1.0,
            write_fault: 1.0,
            ..FaultConfig::quiet(1)
        }));
        // Out-of-bounds / read-only violations report their own error and
        // consume no fault-schedule decisions.
        assert!(matches!(
            d.read_page(9),
            Err(IoSimError::PageOutOfBounds { .. })
        ));
        assert_eq!(d.fault_stats().unwrap().ops, 0);
    }

    #[test]
    fn reset_stats_clears_counts_and_head() {
        let mut d = BlockDevice::new();
        d.allocate(4);
        d.read_page(0).unwrap();
        d.read_page(1).unwrap();
        d.reset_stats();
        assert_eq!(d.stats().total_ops(), 0);
        // After a reset the head position is unknown, so the next access is
        // random even if it would have been sequential.
        d.read_page(2).unwrap();
        assert_eq!(d.stats().rand_read_ops, 1);
    }
}
