//! Seeded, deterministic fault injection for the simulated device.
//!
//! A [`FaultPlan`] is installed on a [`BlockDevice`](crate::BlockDevice)
//! (usually through [`SimEnv::install_faults`](crate::SimEnv::install_faults))
//! and decides, for every device operation, whether to inject one of three
//! failure modes:
//!
//! * **Transient errors** — the operation fails with
//!   [`IoSimError::DeviceFault { transient: true }`](crate::IoSimError::DeviceFault)
//!   before any data moves; a retry of the same request draws a fresh
//!   decision and usually succeeds. This is the simulated bus hiccup the
//!   service's retry-with-backoff path is built for.
//! * **Torn writes** — a multi-page `write_pages` is truncated at a page
//!   boundary: a strict prefix of the pages is durably written, then the
//!   operation fails with `DeviceFault { transient: false }`. This is the
//!   crash-mid-write case checksums and manifests exist to detect.
//! * **Injected panics** — the operation panics instead of returning, at an
//!   arbitrary point inside whatever operator issued it. This is how worker
//!   panic isolation is exercised deterministically: the panic surfaces deep
//!   inside join/selection code with arbitrary live state.
//!
//! Every decision is a pure function of `(seed, operation index, domain)`
//! through SplitMix64 — the same domain-separation idiom as the load
//! generator's arrival schedule — so a fault schedule replays exactly from
//! its seed regardless of what the faults do to control flow *between*
//! operations of one device. A device with no plan installed takes a single
//! `Option` branch per operation and behaves byte-identically to a
//! fault-free device.

/// Domain tags separating the per-operation decision streams. Each device
/// operation consumes one operation index; each domain hashes that index
/// independently, so e.g. the torn-write schedule does not shift when the
/// read-fault rate changes.
const DOMAIN_READ: u64 = 0x5245_4144; // "READ"
const DOMAIN_WRITE: u64 = 0x5752_4954; // "WRIT"
const DOMAIN_TORN: u64 = 0x544f_524e; // "TORN"
const DOMAIN_TORN_LEN: u64 = 0x544c_454e; // "TLEN"
const DOMAIN_PANIC: u64 = 0x504e_4943; // "PNIC"

/// One SplitMix64 output for the given state.
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a well-separated child seed from a parent seed and a stream
/// index — used by callers (the service, the chaos harness) that install
/// one plan per worker from a single experiment seed.
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    splitmix64(seed ^ splitmix64(stream))
}

/// Probabilities and budget of a fault schedule. Rates are per device
/// *operation* (not per page), in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the decision streams.
    pub seed: u64,
    /// Probability that a read operation fails transiently.
    pub read_fault: f64,
    /// Probability that a write operation fails transiently (before any
    /// page is written).
    pub write_fault: f64,
    /// Probability that a multi-page write is torn: a strict prefix of its
    /// pages is durably written, then the operation fails persistently.
    /// Single-page writes are atomic and never torn.
    pub torn_write: f64,
    /// Probability that an operation panics instead of returning.
    pub panic: f64,
    /// Hard cap on the total number of injected faults (errors, tears and
    /// panics combined); once reached the device behaves normally. Keeps
    /// bounded-retry loops guaranteed to make progress.
    pub max_faults: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            read_fault: 0.0,
            write_fault: 0.0,
            torn_write: 0.0,
            panic: 0.0,
            max_faults: u64::MAX,
        }
    }
}

impl FaultConfig {
    /// A plan that never fires (useful as a base for struct update syntax).
    pub fn quiet(seed: u64) -> Self {
        FaultConfig { seed, ..FaultConfig::default() }
    }
}

/// Counters of what a plan actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Device operations the plan examined.
    pub ops: u64,
    /// Transient read faults injected.
    pub read_faults: u64,
    /// Transient write faults injected.
    pub write_faults: u64,
    /// Multi-page writes torn at a page boundary.
    pub torn_writes: u64,
    /// Panics injected.
    pub panics: u64,
}

impl FaultStats {
    /// Total faults injected across every mode.
    pub fn injected(&self) -> u64 {
        self.read_faults + self.write_faults + self.torn_writes + self.panics
    }

    /// Adds another stats block (per-worker plans rolling up).
    pub fn merge(&mut self, other: &FaultStats) {
        self.ops += other.ops;
        self.read_faults += other.read_faults;
        self.write_faults += other.write_faults;
        self.torn_writes += other.torn_writes;
        self.panics += other.panics;
    }
}

/// The installed fault schedule: configuration thresholds, the operation
/// counter, and the injection counters.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    read_t: u64,
    write_t: u64,
    torn_t: u64,
    panic_t: u64,
    max_faults: u64,
    ops: u64,
    stats: FaultStats,
}

/// Converts a probability into a threshold on a uniform 64-bit draw.
fn threshold(p: f64) -> u64 {
    if p <= 0.0 {
        0
    } else if p >= 1.0 {
        u64::MAX
    } else {
        (p * (u64::MAX as f64)) as u64
    }
}

impl FaultPlan {
    /// Builds the plan for a configuration.
    pub fn new(config: FaultConfig) -> Self {
        FaultPlan {
            seed: config.seed,
            read_t: threshold(config.read_fault),
            write_t: threshold(config.write_fault),
            torn_t: threshold(config.torn_write),
            panic_t: threshold(config.panic),
            max_faults: config.max_faults,
            ops: 0,
            stats: FaultStats::default(),
        }
    }

    /// Counters of what the plan injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    fn roll(&self, op: u64, domain: u64) -> u64 {
        splitmix64(self.seed ^ splitmix64(domain) ^ op)
    }

    fn can_inject(&self) -> bool {
        self.stats.injected() < self.max_faults
    }

    /// Decision for one read operation. Consumes one operation index.
    ///
    /// # Panics
    ///
    /// Panics when the panic domain fires — that is the injected fault.
    pub(crate) fn before_read(&mut self) -> crate::error::Result<()> {
        let op = self.ops;
        self.ops += 1;
        self.stats.ops += 1;
        if !self.can_inject() {
            return Ok(());
        }
        if self.roll(op, DOMAIN_PANIC) < self.panic_t {
            self.stats.panics += 1;
            panic!("injected device fault panic (read op {op})");
        }
        if self.roll(op, DOMAIN_READ) < self.read_t {
            self.stats.read_faults += 1;
            return Err(crate::error::IoSimError::DeviceFault { transient: true });
        }
        Ok(())
    }

    /// Decision for one write operation of `n` pages. Consumes one
    /// operation index. Returns `Ok(Some(k))` when the write must be torn
    /// after `k < n` pages (the caller writes the prefix, then fails with a
    /// persistent fault), `Ok(None)` for a clean write.
    ///
    /// # Panics
    ///
    /// Panics when the panic domain fires — that is the injected fault.
    pub(crate) fn before_write(&mut self, n: u64) -> crate::error::Result<Option<u64>> {
        let op = self.ops;
        self.ops += 1;
        self.stats.ops += 1;
        if !self.can_inject() {
            return Ok(None);
        }
        if self.roll(op, DOMAIN_PANIC) < self.panic_t {
            self.stats.panics += 1;
            panic!("injected device fault panic (write op {op})");
        }
        if self.roll(op, DOMAIN_WRITE) < self.write_t {
            self.stats.write_faults += 1;
            return Err(crate::error::IoSimError::DeviceFault { transient: true });
        }
        if n >= 2 && self.roll(op, DOMAIN_TORN) < self.torn_t {
            self.stats.torn_writes += 1;
            let k = 1 + self.roll(op, DOMAIN_TORN_LEN) % (n - 1);
            return Ok(Some(k));
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chatty(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            read_fault: 0.25,
            write_fault: 0.25,
            torn_write: 0.5,
            panic: 0.0,
            max_faults: u64::MAX,
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed: u64| {
            let mut plan = FaultPlan::new(chatty(seed));
            let mut outcomes = Vec::new();
            for i in 0..200 {
                if i % 2 == 0 {
                    outcomes.push(format!("{:?}", plan.before_read()));
                } else {
                    outcomes.push(format!("{:?}", plan.before_write(4)));
                }
            }
            (outcomes, plan.stats())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0, "different seeds, different schedule");
        let stats = run(42).1;
        assert!(stats.read_faults > 0 && stats.write_faults > 0 && stats.torn_writes > 0);
        assert_eq!(stats.ops, 200);
    }

    #[test]
    fn domains_are_separated() {
        // Turning one rate off must not shift the decisions of the others:
        // the op indices where read faults fire are identical whether or
        // not writes ever fault.
        let fire_ops = |cfg: FaultConfig| {
            let mut plan = FaultPlan::new(cfg);
            let mut fired = Vec::new();
            for i in 0..400u64 {
                if plan.before_read().is_err() {
                    fired.push(i);
                }
            }
            fired
        };
        let with_writes = fire_ops(chatty(7));
        let without_writes = fire_ops(FaultConfig { write_fault: 0.0, torn_write: 0.0, ..chatty(7) });
        assert_eq!(with_writes, without_writes);
        assert!(!with_writes.is_empty());
    }

    #[test]
    fn torn_writes_only_apply_to_multi_page_ops() {
        let mut plan = FaultPlan::new(FaultConfig { torn_write: 1.0, ..FaultConfig::quiet(1) });
        for _ in 0..50 {
            assert_eq!(plan.before_write(1).unwrap(), None, "single-page writes are atomic");
        }
        let k = plan.before_write(8).unwrap().expect("torn at rate 1.0");
        assert!((1..8).contains(&k), "torn prefix {k} must be a strict nonempty prefix");
    }

    #[test]
    fn max_faults_budget_caps_injection() {
        let mut plan = FaultPlan::new(FaultConfig {
            read_fault: 1.0,
            max_faults: 3,
            ..FaultConfig::quiet(9)
        });
        let mut failures = 0;
        for _ in 0..50 {
            if plan.before_read().is_err() {
                failures += 1;
            }
        }
        assert_eq!(failures, 3);
        assert_eq!(plan.stats().injected(), 3);
    }

    #[test]
    #[should_panic(expected = "injected device fault panic")]
    fn panic_domain_panics() {
        let mut plan = FaultPlan::new(FaultConfig { panic: 1.0, ..FaultConfig::quiet(2) });
        let _ = plan.before_read();
    }

    #[test]
    fn derive_seed_separates_streams() {
        let a = derive_seed(1, 0);
        let b = derive_seed(1, 1);
        let c = derive_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_seed(1, 0));
    }

    #[test]
    fn stats_merge_sums_counters() {
        let mut a = FaultStats { ops: 1, read_faults: 2, write_faults: 3, torn_writes: 4, panics: 5 };
        let b = FaultStats { ops: 10, read_faults: 20, write_faults: 30, torn_writes: 40, panics: 50 };
        a.merge(&b);
        assert_eq!(a.ops, 11);
        assert_eq!(a.injected(), 2 + 3 + 4 + 5 + 20 + 30 + 40 + 50);
    }
}
