//! LRU buffer pool.
//!
//! The synchronized R-tree traversal (ST) revisits index pages, so the paper
//! gives it a generous 22 MB LRU buffer pool (Section 3.3). The pool sits in
//! front of the simulated device: hits are free, misses read the page from the
//! device (and therefore show up in the I/O statistics as page requests).

use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use crate::device::BlockDevice;
use crate::error::Result;
use crate::gauge::{MemoryGauge, MemoryReservation};
use crate::page::{PageId, PAGE_SIZE};

/// Statistics kept by the buffer pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferPoolStats {
    /// Page requests satisfied from the pool.
    pub hits: u64,
    /// Page requests that had to go to the device.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
}

impl BufferPoolStats {
    /// Total page requests seen by the pool.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of requests served from the pool (0 when no requests yet).
    pub fn hit_ratio(&self) -> f64 {
        if self.requests() == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests() as f64
        }
    }

    /// Adds `other` into `self` component-wise.
    ///
    /// Workers of a parallel partitioned run each keep their own pool; the
    /// merged statistics describe the aggregate caching behaviour of the
    /// whole run.
    pub fn merge(&mut self, other: &BufferPoolStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }
}

/// A least-recently-used page cache in front of the simulated device.
#[derive(Debug)]
pub struct LruBufferPool {
    capacity_pages: usize,
    /// page -> (cached bytes, LRU stamp of the most recent use)
    cache: HashMap<PageId, (Rc<Vec<u8>>, u64)>,
    /// LRU stamp -> page, for O(log n) victim selection.
    lru: BTreeMap<u64, PageId>,
    next_stamp: u64,
    stats: BufferPoolStats,
    /// Gauge claim on the resident pages, when the pool is governed (see
    /// [`LruBufferPool::with_capacity_bytes_gauged`]). Grows on insert and
    /// shrinks on eviction, so the pool's footprint is measured, not assumed.
    reservation: Option<MemoryReservation>,
}

impl LruBufferPool {
    /// Creates a pool holding at most `capacity_pages` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_pages` is zero.
    pub fn new(capacity_pages: usize) -> Self {
        assert!(capacity_pages > 0, "buffer pool must hold at least one page");
        LruBufferPool {
            capacity_pages,
            cache: HashMap::with_capacity(capacity_pages),
            lru: BTreeMap::new(),
            next_stamp: 0,
            stats: BufferPoolStats::default(),
            reservation: None,
        }
    }

    /// Creates a pool sized in bytes (rounded down to whole pages), matching
    /// the paper's "22 MB buffer pool" configuration.
    pub fn with_capacity_bytes(bytes: usize) -> Self {
        Self::new((bytes / PAGE_SIZE).max(1))
    }

    /// Creates a pool sized in bytes whose resident pages are charged to
    /// `gauge`.
    ///
    /// The capacity is additionally clamped to the gauge's current headroom
    /// (but never below one page), so a pool configured for the paper's
    /// 22 MB cannot overcommit a 4 MB environment: it simply caches less and
    /// pays more page requests — the degradation Section 3.3 describes.
    pub fn with_capacity_bytes_gauged(bytes: usize, gauge: &MemoryGauge) -> Self {
        let clamped = bytes.min(gauge.headroom().max(PAGE_SIZE));
        let mut pool = Self::with_capacity_bytes(clamped);
        pool.reservation = Some(gauge.reserve_empty());
        pool
    }

    /// Maximum number of resident pages.
    pub fn capacity_pages(&self) -> usize {
        self.capacity_pages
    }

    /// Number of currently resident pages.
    pub fn resident_pages(&self) -> usize {
        self.cache.len()
    }

    /// Hit/miss/eviction statistics.
    pub fn stats(&self) -> BufferPoolStats {
        self.stats
    }

    /// Empties the pool (statistics are kept).
    pub fn clear(&mut self) {
        self.cache.clear();
        self.lru.clear();
        if let Some(r) = &mut self.reservation {
            r.release();
        }
    }

    fn touch(&mut self, page: PageId) {
        if let Some((_, stamp)) = self.cache.get(&page) {
            self.lru.remove(stamp);
        }
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        if let Some(entry) = self.cache.get_mut(&page) {
            entry.1 = stamp;
        }
        self.lru.insert(stamp, page);
    }

    fn evict_one(&mut self) -> bool {
        let Some((&stamp, &victim)) = self.lru.iter().next() else {
            return false;
        };
        self.lru.remove(&stamp);
        self.cache.remove(&victim);
        self.stats.evictions += 1;
        if let Some(r) = &mut self.reservation {
            r.shrink(PAGE_SIZE);
        }
        true
    }

    fn evict_if_full(&mut self) {
        while self.cache.len() >= self.capacity_pages && self.evict_one() {}
    }

    /// Fetches a page through the pool. Misses are read from `device` (one
    /// random or sequential page request); hits cost nothing.
    pub fn get(&mut self, device: &mut BlockDevice, page: PageId) -> Result<Rc<Vec<u8>>> {
        if self.cache.contains_key(&page) {
            self.stats.hits += 1;
            self.touch(page);
            return Ok(Rc::clone(&self.cache[&page].0));
        }
        self.stats.misses += 1;
        let bytes = Rc::new(device.read_page(page)?);
        self.evict_if_full();
        // A governed pool charges the incoming page to the gauge; under
        // pressure from other working sets it sheds cached pages rather than
        // overcommit, failing only when even a single-page pool cannot fit.
        if self.reservation.is_some() {
            loop {
                let grown = self
                    .reservation
                    .as_mut()
                    .expect("checked above")
                    .try_grow(PAGE_SIZE);
                match grown {
                    Ok(()) => break,
                    Err(e) => {
                        if !self.evict_one() {
                            return Err(e);
                        }
                    }
                }
            }
        }
        self.cache.insert(page, (Rc::clone(&bytes), 0));
        self.touch(page);
        Ok(bytes)
    }

    /// Returns `true` if `page` is currently resident.
    pub fn contains(&self, page: PageId) -> bool {
        self.cache.contains_key(&page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device_with_pages(n: u64) -> BlockDevice {
        let mut d = BlockDevice::new();
        let first = d.allocate(n);
        for i in 0..n {
            let mut data = vec![0u8; 8];
            data[0] = i as u8;
            d.write_page(first + i, &data).unwrap();
        }
        d.reset_stats();
        d
    }

    #[test]
    fn hit_avoids_device_read() {
        let mut d = device_with_pages(4);
        let mut pool = LruBufferPool::new(2);
        pool.get(&mut d, 0).unwrap();
        pool.get(&mut d, 0).unwrap();
        pool.get(&mut d, 0).unwrap();
        assert_eq!(pool.stats().hits, 2);
        assert_eq!(pool.stats().misses, 1);
        assert_eq!(d.stats().read_ops(), 1);
    }

    #[test]
    fn returns_correct_page_contents() {
        let mut d = device_with_pages(4);
        let mut pool = LruBufferPool::new(2);
        for i in 0..4u64 {
            let bytes = pool.get(&mut d, i).unwrap();
            assert_eq!(bytes[0], i as u8);
        }
    }

    #[test]
    fn lru_eviction_keeps_recently_used_pages() {
        let mut d = device_with_pages(4);
        let mut pool = LruBufferPool::new(2);
        pool.get(&mut d, 0).unwrap();
        pool.get(&mut d, 1).unwrap();
        pool.get(&mut d, 0).unwrap(); // 0 is now more recent than 1
        pool.get(&mut d, 2).unwrap(); // evicts 1
        assert!(pool.contains(0));
        assert!(!pool.contains(1));
        assert!(pool.contains(2));
        assert_eq!(pool.stats().evictions, 1);
        // Re-reading 1 is a miss, re-reading 0 a hit.
        pool.get(&mut d, 1).unwrap();
        assert_eq!(pool.stats().misses, 4);
    }

    #[test]
    fn resident_count_never_exceeds_capacity() {
        let mut d = device_with_pages(64);
        let mut pool = LruBufferPool::new(8);
        for round in 0..3 {
            for i in 0..64u64 {
                pool.get(&mut d, (i * 7 + round) % 64).unwrap();
                assert!(pool.resident_pages() <= 8);
            }
        }
    }

    #[test]
    fn capacity_in_bytes_matches_paper_configuration() {
        let pool = LruBufferPool::with_capacity_bytes(22 * 1024 * 1024);
        assert_eq!(pool.capacity_pages(), 22 * 1024 * 1024 / PAGE_SIZE);
    }

    #[test]
    fn hit_ratio_reported() {
        let mut d = device_with_pages(2);
        let mut pool = LruBufferPool::new(2);
        assert_eq!(pool.stats().hit_ratio(), 0.0);
        pool.get(&mut d, 0).unwrap();
        pool.get(&mut d, 0).unwrap();
        pool.get(&mut d, 1).unwrap();
        pool.get(&mut d, 1).unwrap();
        assert!((pool.stats().hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clear_drops_pages_but_keeps_stats() {
        let mut d = device_with_pages(2);
        let mut pool = LruBufferPool::new(2);
        pool.get(&mut d, 0).unwrap();
        pool.clear();
        assert_eq!(pool.resident_pages(), 0);
        assert_eq!(pool.stats().misses, 1);
        pool.get(&mut d, 0).unwrap();
        assert_eq!(pool.stats().misses, 2);
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_capacity_is_rejected() {
        let _ = LruBufferPool::new(0);
    }

    #[test]
    fn gauged_pool_charges_resident_pages_and_clamps_to_headroom() {
        use crate::gauge::MemoryGauge;
        let mut d = device_with_pages(16);
        // Headroom of 3 pages: a 22 MB configuration is clamped down.
        let gauge = MemoryGauge::new(3 * PAGE_SIZE);
        let mut pool = LruBufferPool::with_capacity_bytes_gauged(22 * 1024 * 1024, &gauge);
        assert_eq!(pool.capacity_pages(), 3);
        for i in 0..8u64 {
            pool.get(&mut d, i).unwrap();
            assert!(gauge.current() <= 3 * PAGE_SIZE);
            assert_eq!(gauge.current(), pool.resident_pages() * PAGE_SIZE);
        }
        assert_eq!(gauge.peak(), 3 * PAGE_SIZE);
        pool.clear();
        assert_eq!(gauge.current(), 0);
    }

    #[test]
    fn gauged_pool_sheds_pages_under_external_pressure() {
        use crate::gauge::MemoryGauge;
        let mut d = device_with_pages(8);
        let gauge = MemoryGauge::new(4 * PAGE_SIZE);
        let mut pool = LruBufferPool::with_capacity_bytes_gauged(4 * PAGE_SIZE, &gauge);
        pool.get(&mut d, 0).unwrap();
        pool.get(&mut d, 1).unwrap();
        pool.get(&mut d, 2).unwrap();
        // Another working set claims most of the memory: the pool must evict
        // down to what still fits instead of overcommitting.
        let _pressure = gauge.try_reserve(PAGE_SIZE).unwrap();
        pool.get(&mut d, 3).unwrap();
        assert!(pool.resident_pages() <= 3);
        assert!(gauge.current() <= 4 * PAGE_SIZE);
        assert!(pool.contains(3), "the newly fetched page is resident");
    }
}
