//! Converting recorded counters into the paper's two time measures.
//!
//! Section 6.2 of the paper contrasts two ways of reporting the cost of a
//! spatial join:
//!
//! 1. **Estimated running time** — the methodology of most earlier work:
//!    count the pages requested, multiply by the *average* (i.e. random)
//!    disk read time, and add the measured CPU time (Figure 2(a)–(c)).
//! 2. **Observed running time** — what a stopwatch actually shows, which
//!    differs substantially because bulk-loaded R-trees are laid out largely
//!    sequentially and streaming algorithms read the disk sequentially
//!    (Figure 2(d)–(f), Figure 3).
//!
//! [`CostModel`] reproduces both measures from the deterministic
//! [`IoStats`]/[`CpuCounter`] recorded during a join.

use crate::machine::MachineConfig;
use crate::stats::{CpuCounter, IoStats};
use crate::PAGE_SIZE;

/// A simulated running time, split into the CPU and I/O components the
/// paper's bar charts show.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostBreakdown {
    /// Simulated CPU seconds.
    pub cpu_secs: f64,
    /// Simulated I/O seconds.
    pub io_secs: f64,
}

impl CostBreakdown {
    /// Total simulated seconds.
    #[inline]
    pub fn total_secs(&self) -> f64 {
        self.cpu_secs + self.io_secs
    }

    /// Component-wise sum.
    pub fn combined(&self, other: &CostBreakdown) -> CostBreakdown {
        CostBreakdown {
            cpu_secs: self.cpu_secs + other.cpu_secs,
            io_secs: self.io_secs + other.io_secs,
        }
    }
}

/// Cost model bound to one of the Table-1 machines.
#[derive(Debug, Clone)]
pub struct CostModel {
    machine: MachineConfig,
}

impl CostModel {
    /// Creates a cost model for `machine`.
    pub fn new(machine: MachineConfig) -> Self {
        CostModel { machine }
    }

    /// The underlying machine configuration.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The *estimated* cost used by earlier index-join studies and by
    /// Figure 2(a)–(c): every requested page is charged the average (random)
    /// read access time, regardless of layout, plus the CPU time.
    pub fn estimated(&self, io: &IoStats, cpu: &CpuCounter) -> CostBreakdown {
        let pages = io.pages_read + io.pages_written;
        CostBreakdown {
            cpu_secs: self.machine.cpu_secs(cpu),
            io_secs: pages as f64 * self.machine.random_access_secs(),
        }
    }

    /// The *observed* cost: random operations pay a seek, sequential ones do
    /// not, and all transferred bytes pay the sequential transfer time
    /// (writes with the configured write penalty).
    pub fn observed(&self, io: &IoStats, cpu: &CpuCounter) -> CostBreakdown {
        let seeks = (io.rand_read_ops + io.rand_write_ops) as f64;
        let io_secs = seeks * self.machine.random_access_secs()
            + self.machine.read_transfer_secs(io.pages_read * PAGE_SIZE as u64)
            + self
                .machine
                .write_transfer_secs(io.pages_written * PAGE_SIZE as u64);
        CostBreakdown {
            cpu_secs: self.machine.cpu_secs(cpu),
            io_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CpuOp;

    fn sample_io(rand_reads: u64, seq_reads: u64) -> IoStats {
        IoStats {
            seq_read_ops: seq_reads,
            rand_read_ops: rand_reads,
            seq_write_ops: 0,
            rand_write_ops: 0,
            pages_read: rand_reads + seq_reads,
            pages_written: 0,
        }
    }

    #[test]
    fn estimated_ignores_access_pattern() {
        let model = CostModel::new(MachineConfig::machine3());
        let cpu = CpuCounter::new();
        let all_random = sample_io(1000, 0);
        let all_sequential = sample_io(0, 1000);
        let a = model.estimated(&all_random, &cpu);
        let b = model.estimated(&all_sequential, &cpu);
        assert!((a.io_secs - b.io_secs).abs() < 1e-12);
        assert!(a.io_secs > 0.0);
    }

    #[test]
    fn observed_rewards_sequential_access() {
        let model = CostModel::new(MachineConfig::machine3());
        let cpu = CpuCounter::new();
        let all_random = model.observed(&sample_io(1000, 0), &cpu);
        let all_sequential = model.observed(&sample_io(0, 1000), &cpu);
        assert!(
            all_random.io_secs > 5.0 * all_sequential.io_secs,
            "random I/O should be much slower: {} vs {}",
            all_random.io_secs,
            all_sequential.io_secs
        );
    }

    #[test]
    fn estimated_matches_observed_for_purely_random_page_reads() {
        // When every request is a single random page, the estimate's
        // "requests x average read time" and the observed "seeks + transfer"
        // agree up to the (small) transfer term.
        let model = CostModel::new(MachineConfig::machine1());
        let cpu = CpuCounter::new();
        let io = sample_io(500, 0);
        let est = model.estimated(&io, &cpu);
        let obs = model.observed(&io, &cpu);
        assert!(obs.io_secs >= est.io_secs);
        assert!(obs.io_secs < est.io_secs * 1.25);
    }

    #[test]
    fn cpu_component_comes_from_machine_model() {
        let model = CostModel::new(MachineConfig::machine1());
        let mut cpu = CpuCounter::new();
        cpu.add(CpuOp::Compare, 50_000_000);
        let est = model.estimated(&IoStats::default(), &cpu);
        let obs = model.observed(&IoStats::default(), &cpu);
        assert_eq!(est.cpu_secs, obs.cpu_secs);
        assert!(est.cpu_secs > 0.0);
        assert_eq!(est.io_secs, 0.0);
        assert_eq!(obs.io_secs, 0.0);
    }

    #[test]
    fn breakdown_total_and_combine() {
        let a = CostBreakdown { cpu_secs: 1.0, io_secs: 2.0 };
        let b = CostBreakdown { cpu_secs: 0.5, io_secs: 0.25 };
        assert_eq!(a.total_secs(), 3.0);
        let c = a.combined(&b);
        assert_eq!(c.cpu_secs, 1.5);
        assert_eq!(c.io_secs, 2.25);
    }

    #[test]
    fn writes_are_charged_with_penalty_in_observed() {
        let model = CostModel::new(MachineConfig::machine3());
        let cpu = CpuCounter::new();
        let reads = IoStats { seq_read_ops: 10, pages_read: 1000, ..Default::default() };
        let writes = IoStats { seq_write_ops: 10, pages_written: 1000, ..Default::default() };
        let r = model.observed(&reads, &cpu).io_secs;
        let w = model.observed(&writes, &cpu).io_secs;
        assert!((w / r - 1.5).abs() < 1e-9);
    }
}
