//! Error type for the simulated external-memory substrate.

use std::fmt;

/// Errors produced by the simulated disk and the structures built on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoSimError {
    /// A page identifier referred to a page that was never allocated.
    PageOutOfBounds {
        /// The offending page identifier.
        page: u64,
        /// Number of pages currently allocated on the device.
        allocated: u64,
    },
    /// A read or write touched byte offsets beyond the fixed page size.
    OffsetOutOfPage {
        /// First byte offset of the access.
        offset: usize,
        /// Length of the access in bytes.
        len: usize,
    },
    /// A stream or structure was asked to hold more data than the simulated
    /// internal memory allows.
    MemoryLimitExceeded {
        /// Bytes that would have been required.
        required: usize,
        /// The configured limit.
        limit: usize,
    },
    /// A write touched a page of the device's read-only base snapshot
    /// (shared catalog storage attached with
    /// [`BlockDevice::with_base`](crate::BlockDevice::with_base)).
    ReadOnlyPage {
        /// The page the write was addressed to.
        page: u64,
    },
    /// A record could not be decoded from its on-page representation.
    CorruptRecord(&'static str),
    /// An operation was issued against a stream in the wrong state
    /// (e.g. reading a stream that is still being written).
    InvalidStreamState(&'static str),
    /// The device failed the operation because an installed
    /// [`FaultPlan`](crate::fault::FaultPlan) scheduled a fault here.
    ///
    /// `transient: true` means a retry of the same operation may succeed
    /// (the simulated bus hiccup); `transient: false` means durable damage
    /// was done — a multi-page write was torn at a page boundary — and the
    /// caller must treat the written region as garbage.
    DeviceFault {
        /// Whether retrying the operation can succeed.
        transient: bool,
    },
}

impl fmt::Display for IoSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoSimError::PageOutOfBounds { page, allocated } => {
                write!(f, "page {page} out of bounds (allocated: {allocated})")
            }
            IoSimError::OffsetOutOfPage { offset, len } => {
                write!(f, "access of {len} bytes at offset {offset} exceeds the page size")
            }
            IoSimError::MemoryLimitExceeded { required, limit } => {
                write!(f, "internal-memory limit exceeded: need {required} bytes, limit {limit}")
            }
            IoSimError::ReadOnlyPage { page } => {
                write!(f, "page {page} belongs to the read-only base snapshot")
            }
            IoSimError::CorruptRecord(what) => write!(f, "corrupt record: {what}"),
            IoSimError::InvalidStreamState(what) => write!(f, "invalid stream state: {what}"),
            IoSimError::DeviceFault { transient } => {
                let kind = if *transient { "transient" } else { "torn write" };
                write!(f, "injected device fault ({kind})")
            }
        }
    }
}

impl std::error::Error for IoSimError {}

/// Convenience alias used throughout the substrate.
pub type Result<T> = std::result::Result<T, IoSimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable_messages() {
        let e = IoSimError::PageOutOfBounds { page: 7, allocated: 3 };
        assert!(e.to_string().contains("page 7"));
        let e = IoSimError::MemoryLimitExceeded { required: 10, limit: 5 };
        assert!(e.to_string().contains("limit 5"));
        let e = IoSimError::OffsetOutOfPage { offset: 9000, len: 20 };
        assert!(e.to_string().contains("9000"));
        let e = IoSimError::CorruptRecord("bad header");
        assert!(e.to_string().contains("bad header"));
        let e = IoSimError::InvalidStreamState("still writing");
        assert!(e.to_string().contains("still writing"));
        let e = IoSimError::ReadOnlyPage { page: 4 };
        assert!(e.to_string().contains("page 4"));
    }
}
