//! The memory governor: a gauge every allocation-heavy structure registers
//! with.
//!
//! The paper's entire argument is about behaviour under a *bounded internal
//! memory* (the 64 MB machines of Table 1, of which 24 MB is free). Before
//! this module the limit in [`SimEnv::memory_limit`](crate::SimEnv) was
//! advisory: algorithms sized their working sets from it, but nothing stopped
//! a skewed partition or an oversized sweep structure from silently blowing
//! the budget. The [`MemoryGauge`] turns the limit into a hard invariant:
//!
//! * every tracked working set holds a [`MemoryReservation`] (RAII — dropping
//!   it releases the bytes);
//! * a reservation can only be created or grown through fallible calls that
//!   return [`IoSimError::MemoryLimitExceeded`] when the budget would be
//!   exceeded — so exceeding the limit is impossible by construction;
//! * the gauge records the high-water mark, which the join algorithms report
//!   as the *measured* `JoinResult::memory.peak_bytes`.
//!
//! The gauge is shared by cloning (atomics behind an [`Arc`]), so a sweep
//! structure or stream buffer can keep charging its bytes without holding a
//! borrow of the whole [`SimEnv`](crate::SimEnv). Forked worker environments
//! get a *fresh* gauge with the same limit: each worker of a parallel
//! partitioned run has its own memory budget, which is why peak statistics
//! merge by maximum rather than by sum.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::error::{IoSimError, Result};

/// Shared counters of one gauge: bytes currently reserved and the high-water
/// mark since the last [`MemoryGauge::begin_phase`].
#[derive(Debug, Default)]
struct GaugeInner {
    current: AtomicUsize,
    peak: AtomicUsize,
}

impl GaugeInner {
    fn bump_peak(&self, candidate: usize) {
        self.peak.fetch_max(candidate, Ordering::Relaxed);
    }
}

/// A cloneable handle to the internal-memory accounting of one environment.
///
/// See the [module documentation](self) for the governing rules. All clones
/// share the same counters; the limit is a plain value copied into each
/// clone, so it must be configured (via
/// [`SimEnv::with_memory_limit`](crate::SimEnv::with_memory_limit) /
/// [`SimEnv::set_memory_limit`](crate::SimEnv::set_memory_limit)) before
/// long-lived reservations are handed out.
#[derive(Debug, Clone)]
pub struct MemoryGauge {
    inner: Arc<GaugeInner>,
    limit: usize,
}

impl MemoryGauge {
    /// Creates a gauge enforcing `limit` bytes.
    pub fn new(limit: usize) -> Self {
        MemoryGauge {
            inner: Arc::new(GaugeInner::default()),
            limit,
        }
    }

    /// The configured internal-memory limit in bytes.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Bytes currently reserved.
    pub fn current(&self) -> usize {
        self.inner.current.load(Ordering::Relaxed)
    }

    /// Bytes still available before the limit is reached.
    pub fn headroom(&self) -> usize {
        self.limit.saturating_sub(self.current())
    }

    /// High-water mark of [`current`](MemoryGauge::current) since the last
    /// [`begin_phase`](MemoryGauge::begin_phase) (or creation).
    pub fn peak(&self) -> usize {
        self.inner.peak.load(Ordering::Relaxed)
    }

    /// Resets the high-water mark to the current usage, starting a new
    /// measured phase. Every join algorithm calls this on entry so that
    /// `JoinResult::memory.peak_bytes` covers exactly that join.
    pub fn begin_phase(&self) {
        self.inner
            .peak
            .store(self.current(), Ordering::Relaxed);
    }

    /// Creates an empty reservation (0 bytes) that can be grown later.
    pub fn reserve_empty(&self) -> MemoryReservation {
        MemoryReservation {
            inner: Arc::clone(&self.inner),
            limit: self.limit,
            bytes: 0,
        }
    }

    /// Reserves `bytes`, failing with [`IoSimError::MemoryLimitExceeded`] if
    /// the reservation would push the total over the limit.
    pub fn try_reserve(&self, bytes: usize) -> Result<MemoryReservation> {
        let mut r = self.reserve_empty();
        r.try_grow(bytes)?;
        Ok(r)
    }
}

/// An RAII claim on part of the internal memory of one [`MemoryGauge`].
///
/// Dropping the reservation releases its bytes. Growth is fallible (the
/// governor says no rather than letting the limit be exceeded); shrinking is
/// always allowed.
#[derive(Debug)]
pub struct MemoryReservation {
    inner: Arc<GaugeInner>,
    limit: usize,
    bytes: usize,
}

impl MemoryReservation {
    /// Bytes currently held by this reservation.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Grows the reservation by `delta` bytes, failing if the gauge total
    /// would exceed the limit.
    pub fn try_grow(&mut self, delta: usize) -> Result<()> {
        if delta == 0 {
            return Ok(());
        }
        let mut cur = self.inner.current.load(Ordering::Relaxed);
        loop {
            let required = cur.saturating_add(delta);
            if required > self.limit {
                return Err(IoSimError::MemoryLimitExceeded {
                    required,
                    limit: self.limit,
                });
            }
            match self.inner.current.compare_exchange_weak(
                cur,
                required,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.bytes += delta;
                    self.inner.bump_peak(required);
                    return Ok(());
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Shrinks the reservation by `delta` bytes (saturating at zero).
    pub fn shrink(&mut self, delta: usize) {
        let delta = delta.min(self.bytes);
        if delta > 0 {
            self.inner.current.fetch_sub(delta, Ordering::Relaxed);
            self.bytes -= delta;
        }
    }

    /// Resizes the reservation to exactly `bytes`, failing (and leaving the
    /// reservation unchanged) if growing would exceed the limit.
    pub fn try_set(&mut self, bytes: usize) -> Result<()> {
        if bytes > self.bytes {
            self.try_grow(bytes - self.bytes)
        } else {
            self.shrink(self.bytes - bytes);
            Ok(())
        }
    }

    /// Releases every byte held (equivalent to `try_set(0)`).
    pub fn release(&mut self) {
        self.shrink(self.bytes);
    }

    /// Moves every byte held into a *new* reservation against the same
    /// gauge, leaving `self` empty. The gauge total is unchanged — no
    /// release/re-reserve window where another thread could claim the
    /// bytes. This is the hand-over primitive of the live-catalog flush
    /// path: a frozen memtable transfers its claim to the flush batch,
    /// which keeps charging the gauge until the batch is persisted.
    pub fn take(&mut self) -> MemoryReservation {
        let bytes = self.bytes;
        self.bytes = 0;
        MemoryReservation {
            inner: Arc::clone(&self.inner),
            limit: self.limit,
            bytes,
        }
    }
}

impl Drop for MemoryReservation {
    fn drop(&mut self) {
        self.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservations_accumulate_and_release_on_drop() {
        let g = MemoryGauge::new(100);
        let a = g.try_reserve(40).unwrap();
        let b = g.try_reserve(30).unwrap();
        assert_eq!(g.current(), 70);
        assert_eq!(g.peak(), 70);
        drop(a);
        assert_eq!(g.current(), 30);
        assert_eq!(g.peak(), 70, "peak survives releases");
        drop(b);
        assert_eq!(g.current(), 0);
    }

    #[test]
    fn exceeding_the_limit_is_an_error() {
        let g = MemoryGauge::new(100);
        let _a = g.try_reserve(80).unwrap();
        let err = g.try_reserve(21).unwrap_err();
        assert!(matches!(
            err,
            IoSimError::MemoryLimitExceeded { required: 101, limit: 100 }
        ));
        // Exactly reaching the limit is allowed.
        let _b = g.try_reserve(20).unwrap();
        assert_eq!(g.headroom(), 0);
    }

    #[test]
    fn grow_shrink_and_set_adjust_the_gauge() {
        let g = MemoryGauge::new(1000);
        let mut r = g.reserve_empty();
        r.try_grow(100).unwrap();
        r.try_set(400).unwrap();
        assert_eq!(g.current(), 400);
        r.shrink(150);
        assert_eq!(r.bytes(), 250);
        assert_eq!(g.current(), 250);
        assert!(r.try_set(1001).is_err());
        assert_eq!(r.bytes(), 250, "failed grow leaves the reservation intact");
        r.release();
        assert_eq!(g.current(), 0);
    }

    #[test]
    fn begin_phase_rebases_the_peak() {
        let g = MemoryGauge::new(100);
        {
            let _a = g.try_reserve(90).unwrap();
        }
        assert_eq!(g.peak(), 90);
        let _b = g.try_reserve(10).unwrap();
        g.begin_phase();
        assert_eq!(g.peak(), 10, "phase peak starts at the live usage");
        let _c = g.try_reserve(25).unwrap();
        assert_eq!(g.peak(), 35);
    }

    #[test]
    fn take_transfers_bytes_without_touching_the_gauge() {
        let g = MemoryGauge::new(100);
        let mut a = g.try_reserve(60).unwrap();
        let b = a.take();
        assert_eq!(a.bytes(), 0);
        assert_eq!(b.bytes(), 60);
        assert_eq!(g.current(), 60, "the gauge total is unchanged by take");
        drop(a);
        assert_eq!(g.current(), 60, "the emptied source releases nothing");
        drop(b);
        assert_eq!(g.current(), 0);
    }

    #[test]
    fn clones_share_counters() {
        let g = MemoryGauge::new(64);
        let h = g.clone();
        let _r = h.try_reserve(48).unwrap();
        assert_eq!(g.current(), 48);
        assert!(g.try_reserve(32).is_err());
    }
}
