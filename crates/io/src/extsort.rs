//! External multiway mergesort over item streams.
//!
//! Both non-indexed inputs of SSSJ/PQ and the R-tree bulk-loading procedure
//! start by sorting their input: SSSJ sorts by the lower y-coordinate of each
//! MBR, bulk loading sorts by the Hilbert value of each MBR centre. The sort
//! is the classic external-memory multiway mergesort: sorted runs of at most
//! the available internal memory are formed in one sequential pass, then
//! merged with a k-way merge whose fan-in is limited by the number of logical
//! blocks that fit in memory.

use std::cmp::Ordering;

use usj_geom::{Item, Rect};

use crate::error::Result;
use crate::page::PAGE_SIZE;
use crate::sim::SimEnv;
use crate::stats::CpuOp;
use crate::stream::{ItemStream, ItemStreamReader, ItemStreamWriter};

/// Statistics describing one external sort.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SortStats {
    /// Number of initial sorted runs formed.
    pub initial_runs: u64,
    /// Number of merge passes performed (0 if a single run sufficed).
    pub merge_passes: u64,
    /// Records sorted.
    pub items: u64,
    /// Bounding box of all sorted records, gathered for free during run
    /// formation (SSSJ uses it to size the sweep structure's strips).
    pub bbox: Rect,
}

/// Sorts `input` by ascending lower y-coordinate (the plane-sweep order).
///
/// Uses the key-accelerated path: the packed [`Item::sweep_key`] radix key is
/// precomputed once per record, so the hot sort loop compares single `u64`
/// values instead of walking the multi-field float comparator.
pub fn external_sort_by_lower_y(env: &mut SimEnv, input: &ItemStream) -> Result<ItemStream> {
    external_sort_by_key(env, input, |it| it.sweep_key(), Item::cmp_by_lower_y).map(|(s, _)| s)
}

/// Sorts `input` with an arbitrary comparator, returning the sorted stream
/// and the sort statistics.
///
/// Prefer [`external_sort_by_key`] when a `u64` key that agrees with the
/// comparator's leading fields is available — the run-formation sort and the
/// merge heap then compare precomputed keys and only fall back to the
/// comparator on collisions.
pub fn external_sort_by<F>(
    env: &mut SimEnv,
    input: &ItemStream,
    cmp: F,
) -> Result<(ItemStream, SortStats)>
where
    F: Fn(&Item, &Item) -> Ordering + Copy,
{
    external_sort_by_key(env, input, |_| 0, cmp)
}

/// One record of the keyed run buffer: the precomputed key and the record.
type SortEntry = (u64, Item);

/// Sorts `input` by `(key, cmp)`: the precomputed `u64` key decides first and
/// `cmp` breaks key collisions, so `cmp` must refine the key's order (true
/// for any comparator whose leading fields the key packs). Returns the
/// sorted stream and the sort statistics.
pub fn external_sort_by_key<K, F>(
    env: &mut SimEnv,
    input: &ItemStream,
    key: K,
    cmp: F,
) -> Result<(ItemStream, SortStats)>
where
    K: Fn(&Item) -> u64 + Copy,
    F: Fn(&Item, &Item) -> Ordering + Copy,
{
    let pages_per_block = input.pages_per_block();
    let mut stats = SortStats {
        items: input.len(),
        bbox: Rect::empty(),
        ..SortStats::default()
    };

    // Run formation: fill half the internal memory, sort, write out. The run
    // buffer (keys + records) is the sort's dominant working set, so it is
    // claimed from the memory governor up front (the stream reader and run
    // writer buffers charge themselves). Capacity is sized by the *keyed*
    // entry (32 bytes — honest accounting for the resident keys), so runs
    // are ~38 % shorter than the pre-key 20-byte sizing; inputs whose size
    // falls between the two thresholds at a given memory limit form one
    // more run and pay one more (charged) merge pass.
    let entry_bytes = std::mem::size_of::<SortEntry>();
    let run_capacity = ((env.memory_limit / 2) / entry_bytes).max(1024);
    let buffer_capacity = run_capacity.min(input.len() as usize + 1);
    let run_reservation = env.memory.try_reserve(buffer_capacity * entry_bytes)?;
    let mut runs: Vec<ItemStream> = Vec::new();
    let mut reader = input.reader();
    let mut buffer: Vec<SortEntry> = Vec::with_capacity(buffer_capacity);
    loop {
        let item = reader.next(env)?;
        if let Some(it) = item {
            stats.bbox = stats.bbox.union(&it.rect);
            buffer.push((key(&it), it));
        }
        if buffer.len() >= run_capacity || (item.is_none() && !buffer.is_empty()) {
            sort_entries_in_memory(env, &mut buffer, cmp);
            let mut w = ItemStreamWriter::new(env, pages_per_block);
            for (_, it) in &buffer {
                w.push(env, *it)?;
            }
            runs.push(w.finish(env)?);
            buffer.clear();
        }
        if item.is_none() {
            break;
        }
    }
    drop(run_reservation);
    stats.initial_runs = runs.len() as u64;

    if runs.is_empty() {
        // Empty input: produce an empty stream.
        let w = ItemStreamWriter::new(env, pages_per_block);
        return Ok((w.finish(env)?, stats));
    }

    // Merge passes: k-way merge with fan-in limited by the memory available
    // for one logical block per run plus one output block.
    let block_bytes = (pages_per_block as usize) * PAGE_SIZE;
    let fan_in = ((env.memory_limit / 2) / block_bytes).max(2);
    while runs.len() > 1 {
        stats.merge_passes += 1;
        let mut next_level: Vec<ItemStream> = Vec::new();
        for group in runs.chunks(fan_in) {
            if group.len() == 1 {
                next_level.push(group[0].clone());
                continue;
            }
            next_level.push(merge_group(env, group, key, cmp, pages_per_block)?);
        }
        runs = next_level;
    }
    Ok((runs.pop().expect("at least one run"), stats))
}

/// Sorts a buffer in memory, charging the deterministic CPU counters for the
/// comparisons and record moves a real quicksort would perform.
pub fn sort_in_memory<F>(env: &mut SimEnv, buffer: &mut [Item], cmp: F)
where
    F: Fn(&Item, &Item) -> Ordering + Copy,
{
    charge_sort(env, buffer.len() as u64);
    buffer.sort_unstable_by(cmp);
}

/// Sorts a keyed run buffer: unstable sort over the precomputed `u64` keys,
/// comparator fallback on collisions only. Same deterministic CPU charges as
/// [`sort_in_memory`] — the key trick changes host wall-clock, not the
/// simulated cost model.
fn sort_entries_in_memory<F>(env: &mut SimEnv, buffer: &mut [SortEntry], cmp: F)
where
    F: Fn(&Item, &Item) -> Ordering + Copy,
{
    charge_sort(env, buffer.len() as u64);
    buffer.sort_unstable_by(|a, b| a.0.cmp(&b.0).then_with(|| cmp(&a.1, &b.1)));
}

fn charge_sort(env: &mut SimEnv, n: u64) {
    if n > 1 {
        let log = (64 - n.leading_zeros()) as u64;
        env.charge(CpuOp::Compare, n * log);
        env.charge(CpuOp::ItemMove, n);
    }
}

/// One entry of the k-way merge heap: precomputed key, record, source run.
#[derive(Clone, Copy)]
struct HeapEntry {
    key: u64,
    item: Item,
    run: usize,
}

impl HeapEntry {
    /// Key-first comparison with comparator fallback on collisions.
    #[inline]
    fn less_than<F>(&self, other: &HeapEntry, cmp: F) -> bool
    where
        F: Fn(&Item, &Item) -> Ordering,
    {
        self.key
            .cmp(&other.key)
            .then_with(|| cmp(&self.item, &other.item))
            == Ordering::Less
    }
}

/// Minimal binary min-heap parameterised by an external comparator.
struct MergeHeap<F> {
    entries: Vec<HeapEntry>,
    cmp: F,
}

impl<F> MergeHeap<F>
where
    F: Fn(&Item, &Item) -> Ordering + Copy,
{
    fn new(cmp: F) -> Self {
        MergeHeap {
            entries: Vec::new(),
            cmp,
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn push(&mut self, env: &mut SimEnv, e: HeapEntry) {
        env.charge(CpuOp::HeapOp, 1);
        self.entries.push(e);
        let mut i = self.entries.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            env.charge(CpuOp::Compare, 1);
            if self.entries[i].less_than(&self.entries[parent], self.cmp) {
                self.entries.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn pop(&mut self, env: &mut SimEnv) -> Option<HeapEntry> {
        if self.entries.is_empty() {
            return None;
        }
        env.charge(CpuOp::HeapOp, 1);
        let last = self.entries.len() - 1;
        self.entries.swap(0, last);
        let out = self.entries.pop();
        let mut i = 0;
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut smallest = i;
            if l < self.entries.len() {
                env.charge(CpuOp::Compare, 1);
                if self.entries[l].less_than(&self.entries[smallest], self.cmp) {
                    smallest = l;
                }
            }
            if r < self.entries.len() {
                env.charge(CpuOp::Compare, 1);
                if self.entries[r].less_than(&self.entries[smallest], self.cmp) {
                    smallest = r;
                }
            }
            if smallest == i {
                break;
            }
            self.entries.swap(i, smallest);
            i = smallest;
        }
        out
    }
}

fn merge_group<K, F>(
    env: &mut SimEnv,
    group: &[ItemStream],
    key: K,
    cmp: F,
    pages_per_block: u64,
) -> Result<ItemStream>
where
    K: Fn(&Item) -> u64 + Copy,
    F: Fn(&Item, &Item) -> Ordering + Copy,
{
    let mut readers: Vec<ItemStreamReader> = group.iter().map(|s| s.reader()).collect();
    let mut heap = MergeHeap::new(cmp);
    for (run, r) in readers.iter_mut().enumerate() {
        if let Some(item) = r.next(env)? {
            heap.push(env, HeapEntry { key: key(&item), item, run });
        }
    }
    let mut out = ItemStreamWriter::new(env, pages_per_block);
    while heap.len() > 0 {
        let e = heap.pop(env).expect("non-empty heap");
        out.push(env, e.item)?;
        if let Some(next) = readers[e.run].next(env)? {
            heap.push(env, HeapEntry { key: key(&next), item: next, run: e.run });
        }
    }
    out.finish(env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use usj_geom::Rect;

    fn env_with_memory(bytes: usize) -> SimEnv {
        SimEnv::new(MachineConfig::machine3()).with_memory_limit(bytes)
    }

    fn random_items(n: u32, seed: u64) -> Vec<Item> {
        // Simple deterministic LCG so the io crate does not need a rand
        // dependency for its own tests.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..n)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let y = ((state >> 33) % 1_000_000) as f32 / 100.0;
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let x = ((state >> 33) % 1_000_000) as f32 / 100.0;
                Item::new(Rect::from_coords(x, y, x + 1.0, y + 1.0), i)
            })
            .collect()
    }

    fn is_sorted_by_y(items: &[Item]) -> bool {
        items.windows(2).all(|w| w[0].rect.lo.y <= w[1].rect.lo.y)
    }

    #[test]
    fn sorts_small_input_in_one_run() {
        let mut env = env_with_memory(4 * 1024 * 1024);
        let data = random_items(1000, 1);
        let s = ItemStream::from_items(&mut env, &data).unwrap();
        let (sorted, stats) = external_sort_by(&mut env, &s, Item::cmp_by_lower_y).unwrap();
        let out = sorted.read_all(&mut env).unwrap();
        assert_eq!(out.len(), data.len());
        assert!(is_sorted_by_y(&out));
        assert_eq!(stats.initial_runs, 1);
        assert_eq!(stats.merge_passes, 0);
        // The bounding box gathered during run formation covers every record.
        for it in &out {
            assert!(stats.bbox.contains(&it.rect));
        }
    }

    #[test]
    fn sorts_multi_run_input() {
        // Memory limit small enough to force several runs (run capacity is
        // clamped to >= 1024 items, so use more items than that).
        let mut env = env_with_memory(64 * 1024);
        let data = random_items(10_000, 2);
        let s = ItemStream::from_items_with_block(&mut env, &data, 2).unwrap();
        let (sorted, stats) = external_sort_by(&mut env, &s, Item::cmp_by_lower_y).unwrap();
        let out = sorted.read_all(&mut env).unwrap();
        assert_eq!(out.len(), data.len());
        assert!(is_sorted_by_y(&out));
        assert!(stats.initial_runs > 1, "expected multiple runs, got {stats:?}");
        assert!(stats.merge_passes >= 1);
        // The multiset of ids must be preserved.
        let mut in_ids: Vec<u32> = data.iter().map(|i| i.id).collect();
        let mut out_ids: Vec<u32> = out.iter().map(|i| i.id).collect();
        in_ids.sort_unstable();
        out_ids.sort_unstable();
        assert_eq!(in_ids, out_ids);
    }

    #[test]
    fn empty_and_single_item_streams() {
        let mut env = env_with_memory(1024 * 1024);
        let empty = ItemStream::from_items(&mut env, &[]).unwrap();
        let sorted = external_sort_by_lower_y(&mut env, &empty).unwrap();
        assert!(sorted.is_empty());

        let one = ItemStream::from_items(&mut env, &random_items(1, 3)).unwrap();
        let sorted = external_sort_by_lower_y(&mut env, &one).unwrap();
        assert_eq!(sorted.len(), 1);
    }

    #[test]
    fn custom_comparator_sorts_by_id_descending() {
        let mut env = env_with_memory(1024 * 1024);
        let data = random_items(500, 4);
        let s = ItemStream::from_items(&mut env, &data).unwrap();
        let (sorted, _) =
            external_sort_by(&mut env, &s, |a, b| b.id.cmp(&a.id)).unwrap();
        let out = sorted.read_all(&mut env).unwrap();
        assert!(out.windows(2).all(|w| w[0].id >= w[1].id));
    }

    #[test]
    fn sorting_charges_cpu_and_io() {
        let mut env = env_with_memory(64 * 1024);
        let data = random_items(5_000, 5);
        let s = ItemStream::from_items_with_block(&mut env, &data, 2).unwrap();
        let m = env.begin();
        let _ = external_sort_by_lower_y(&mut env, &s).unwrap();
        let (io, cpu) = env.since(&m);
        assert!(io.pages_read > 0);
        assert!(io.pages_written > 0);
        assert!(cpu.get(CpuOp::Compare) > 0);
        assert!(cpu.get(CpuOp::HeapOp) > 0);
    }

    #[test]
    fn already_sorted_input_stays_sorted() {
        let mut env = env_with_memory(64 * 1024);
        let mut data = random_items(3_000, 6);
        data.sort_unstable_by(Item::cmp_by_lower_y);
        let s = ItemStream::from_items_with_block(&mut env, &data, 2).unwrap();
        let sorted = external_sort_by_lower_y(&mut env, &s).unwrap();
        assert_eq!(sorted.read_all(&mut env).unwrap(), data);
    }
}
