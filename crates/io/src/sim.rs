//! The simulation environment handed to every algorithm.

use std::sync::Arc;

use crate::cost::{CostBreakdown, CostModel};
use crate::device::BlockDevice;
use crate::gauge::MemoryGauge;
use crate::machine::MachineConfig;
use crate::page::Page;
use crate::stats::{CpuCounter, CpuOp, IoStats};

/// Default amount of internal memory available to the algorithms.
///
/// The paper's machines have 64 MB of RAM of which at least 24 MB is free;
/// all memory-limit decisions (sort run length, PBSM partition sizing, the
/// ST buffer pool) are taken against this figure.
pub const DEFAULT_MEMORY_LIMIT: usize = 24 * 1024 * 1024;

/// A snapshot of the accounting state, used to measure a phase of a join.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    io_at_start: IoStats,
    cpu_at_start: CpuCounter,
}

/// An open observability phase: a tracing span plus (when recording) the
/// counter snapshot that will attribute the phase's charged I/O to it.
/// Created by [`SimEnv::obs_phase`], closed by [`SimEnv::obs_close`].
#[must_use = "close the phase with SimEnv::obs_close to attribute its I/O"]
pub struct ObsPhase {
    span: usj_obs::SpanGuard,
    measure: Option<Measurement>,
}

/// The environment a join algorithm runs in: the simulated disk, the machine
/// cost model, the deterministic CPU counter, and the internal-memory limit.
#[derive(Debug)]
pub struct SimEnv {
    /// The simulated disk.
    pub device: BlockDevice,
    /// The machine (Table 1) this run is simulating.
    pub machine: MachineConfig,
    /// Deterministic CPU-work counter.
    pub cpu: CpuCounter,
    /// Internal memory available to the algorithms, in bytes.
    ///
    /// Mutate it only through [`SimEnv::with_memory_limit`] /
    /// [`SimEnv::set_memory_limit`], which keep the enforcing
    /// [`memory`](SimEnv::memory) gauge in sync.
    pub memory_limit: usize,
    /// The memory governor enforcing [`memory_limit`](SimEnv::memory_limit):
    /// allocation-heavy structures (sweep active lists, PBSM partition
    /// buffers, stream block buffers, the PQ heaps, the ST buffer pool)
    /// register their bytes here, so the reported peak is *measured* and
    /// exceeding the limit is impossible by construction.
    pub memory: MemoryGauge,
}

impl SimEnv {
    /// Creates a fresh environment for `machine` with the default 24 MB
    /// internal-memory limit.
    pub fn new(machine: MachineConfig) -> Self {
        SimEnv {
            device: BlockDevice::new(),
            machine,
            cpu: CpuCounter::new(),
            memory_limit: DEFAULT_MEMORY_LIMIT,
            memory: MemoryGauge::new(DEFAULT_MEMORY_LIMIT),
        }
    }

    /// Sets the internal-memory limit (builder style).
    pub fn with_memory_limit(mut self, bytes: usize) -> Self {
        self.set_memory_limit(bytes);
        self
    }

    /// Sets the internal-memory limit, replacing the gauge.
    ///
    /// Call this between joins (any [`MemoryReservation`] still alive keeps
    /// charging the *old* gauge — the new one starts empty).
    ///
    /// [`MemoryReservation`]: crate::gauge::MemoryReservation
    pub fn set_memory_limit(&mut self, bytes: usize) {
        self.memory_limit = bytes;
        self.memory = MemoryGauge::new(bytes);
    }

    /// Creates an independent *worker* environment: the same machine model
    /// and internal-memory limit, but a fresh (empty) simulated disk and
    /// zeroed CPU counters.
    ///
    /// This is the unit of isolation used by the parallel partitioned
    /// executor: every shard of a `ParallelJoin` run (in the core crate)
    /// gets its own forked environment, so per-shard I/O and CPU
    /// accounting never interleave and can later be rolled up with
    /// [`IoStats::merge`](crate::stats::IoStats::merge) /
    /// [`CpuCounter::merge`](crate::stats::CpuCounter::merge). Forking does
    /// not copy any pages: data a worker needs must be re-materialised in
    /// (scattered to) the forked environment, which is exactly the
    /// distribution cost a real partitioned system would pay.
    pub fn fork(&self) -> SimEnv {
        SimEnv {
            device: BlockDevice::new(),
            machine: self.machine.clone(),
            cpu: CpuCounter::new(),
            memory_limit: self.memory_limit,
            // Each worker gets a fresh gauge with the same budget: the
            // per-worker peak is the invariant of interest, which is why
            // `MemoryStats::merge` takes maxima rather than sums.
            memory: MemoryGauge::new(self.memory_limit),
        }
    }

    /// Creates a worker environment like [`fork`](SimEnv::fork), but whose
    /// device is layered over the given read-only page snapshot.
    ///
    /// This is the forking mode of the query service: the snapshot holds the
    /// frozen catalog (stored sorted runs, R-tree nodes, the catalog
    /// directory), so a worker can *read* every registered dataset — with
    /// its reads charged to its own statistics — while all scratch
    /// allocations stay private to the fork. Writes to snapshot pages fail
    /// with [`IoSimError::ReadOnlyPage`](crate::IoSimError::ReadOnlyPage).
    pub fn fork_with_base(&self, base: Arc<Vec<Page>>) -> SimEnv {
        SimEnv {
            device: BlockDevice::with_base(base),
            machine: self.machine.clone(),
            cpu: CpuCounter::new(),
            memory_limit: self.memory_limit,
            memory: MemoryGauge::new(self.memory_limit),
        }
    }

    /// Installs a fault schedule on this environment's device; see
    /// [`BlockDevice::install_faults`].
    pub fn install_faults(&mut self, plan: crate::fault::FaultPlan) {
        self.device.install_faults(plan);
    }

    /// Counters of the installed fault schedule, if any; see
    /// [`BlockDevice::fault_stats`].
    pub fn fault_stats(&self) -> Option<crate::fault::FaultStats> {
        self.device.fault_stats()
    }

    /// The cost model for this environment's machine.
    pub fn cost_model(&self) -> CostModel {
        CostModel::new(self.machine.clone())
    }

    /// Records `n` CPU operations of kind `op`.
    #[inline]
    pub fn charge(&mut self, op: CpuOp, n: u64) {
        self.cpu.add(op, n);
    }

    /// Starts measuring a phase: returns a snapshot of the current counters.
    pub fn begin(&self) -> Measurement {
        Measurement {
            io_at_start: self.device.stats(),
            cpu_at_start: self.cpu,
        }
    }

    /// I/O and CPU deltas since `m` was taken.
    pub fn since(&self, m: &Measurement) -> (IoStats, CpuCounter) {
        (
            self.device.stats().delta_since(&m.io_at_start),
            self.cpu.delta_since(&m.cpu_at_start),
        )
    }

    /// Observed (sequential/random-aware) simulated cost since `m`.
    pub fn observed_since(&self, m: &Measurement) -> CostBreakdown {
        let (io, cpu) = self.since(m);
        self.cost_model().observed(&io, &cpu)
    }

    /// Estimated (every page charged a random read) simulated cost since `m`.
    pub fn estimated_since(&self, m: &Measurement) -> CostBreakdown {
        let (io, cpu) = self.since(m);
        self.cost_model().estimated(&io, &cpu)
    }

    /// Runs `f` with device accounting disabled, restoring the previous
    /// setting afterwards. Used for preprocessing that the paper excludes
    /// from its measurements (e.g. materialising the raw input files).
    pub fn unaccounted<T>(&mut self, f: impl FnOnce(&mut SimEnv) -> T) -> T {
        let was = self.device.set_accounting(false);
        let out = f(self);
        self.device.set_accounting(was);
        out
    }

    /// Opens an observability span named `name` that will attribute the
    /// charged I/O of the enclosed phase to itself.
    ///
    /// With no recorder installed on the current thread (the production
    /// default) this is a single thread-local probe: no measurement is
    /// taken and the returned phase is inert. When recording, the phase
    /// snapshots the counters ([`SimEnv::begin`]) so that
    /// [`obs_close`](SimEnv::obs_close) can report the delta on the span.
    /// A phase that is dropped without `obs_close` still closes its span,
    /// just without I/O attribution.
    pub fn obs_phase(&self, name: &'static str) -> ObsPhase {
        let span = usj_obs::span(name);
        let measure = span.is_recording().then(|| self.begin());
        ObsPhase { span, measure }
    }

    /// Closes an observability phase, attributing the I/O charged since
    /// [`obs_phase`](SimEnv::obs_phase) to its span.
    pub fn obs_close(&self, mut phase: ObsPhase) {
        if let Some(m) = phase.measure.take() {
            let (io, _) = self.since(&m);
            phase.span.add_io(io.span_io());
        }
        // Dropping the guard emits the span-end event.
    }

    /// Runs `f` under a *temporary* memory budget of `bytes`, restoring the
    /// previous gauge and limit afterwards.
    ///
    /// The scoped work gets a fresh gauge enforcing `bytes`, so its sorts and
    /// merges degrade (spill) at that budget instead of the environment's
    /// full limit. Reservations created before the call keep charging the
    /// *old* gauge (which is restored on exit), so long-lived structures —
    /// live memtables, frozen flush batches — are unaffected. This is the
    /// governor of background maintenance: compaction merges run inside
    /// `with_budget(maintenance_budget_bytes, ..)` so their transient working
    /// sets stay bounded independently of query admission.
    pub fn with_budget<T>(&mut self, bytes: usize, f: impl FnOnce(&mut SimEnv) -> T) -> T {
        let prev_limit = self.memory_limit;
        let prev_gauge = std::mem::replace(&mut self.memory, MemoryGauge::new(bytes));
        self.memory_limit = bytes;
        let out = f(self);
        self.memory_limit = prev_limit;
        self.memory = prev_gauge;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_env_has_default_memory_limit() {
        let env = SimEnv::new(MachineConfig::machine3());
        assert_eq!(env.memory_limit, DEFAULT_MEMORY_LIMIT);
        let env = env.with_memory_limit(1024);
        assert_eq!(env.memory_limit, 1024);
    }

    #[test]
    fn fork_is_isolated_from_the_parent() {
        let mut env = SimEnv::new(MachineConfig::machine2()).with_memory_limit(4096);
        let p = env.device.allocate(2);
        env.device.read_page(p).unwrap();
        env.charge(CpuOp::Compare, 7);

        let mut worker = env.fork();
        // Same machine and memory budget...
        assert_eq!(worker.machine, env.machine);
        assert_eq!(worker.memory_limit, 4096);
        // ...but a fresh disk and zeroed counters.
        assert_eq!(worker.device.allocated_pages(), 0);
        assert_eq!(worker.device.stats(), IoStats::default());
        assert_eq!(worker.cpu.total(), 0);

        // Traffic in the fork never shows up in the parent and vice versa.
        let q = worker.device.allocate(3);
        worker.device.read_page(q).unwrap();
        worker.charge(CpuOp::HeapOp, 3);
        assert_eq!(env.device.stats().read_ops(), 1);
        assert_eq!(env.cpu.get(CpuOp::HeapOp), 0);
        assert_eq!(worker.device.stats().read_ops(), 1);
    }

    #[test]
    fn fork_with_base_shares_stored_pages_read_only() {
        let mut env = SimEnv::new(MachineConfig::machine3()).with_memory_limit(1 << 20);
        let p = env.device.allocate(2);
        env.device.write_page(p, b"stored").unwrap();

        let base = env.device.snapshot();
        let mut worker = env.fork_with_base(base);
        assert_eq!(worker.memory_limit, 1 << 20);
        assert_eq!(worker.device.base_pages(), 2);
        // The worker reads the parent's stored data on its own accounting.
        assert_eq!(&worker.device.read_page(p).unwrap()[..6], b"stored");
        assert_eq!(worker.device.stats().pages_read, 1);
        assert_eq!(env.device.stats().pages_read, 0);
        // Stored pages are immutable from the fork.
        assert!(worker.device.write_page(p, b"x").is_err());
        // Scratch allocations are private.
        let q = worker.device.allocate(1);
        worker.device.write_page(q, b"mine").unwrap();
        assert_eq!(env.device.allocated_pages(), 2);
    }

    #[test]
    fn measurement_captures_only_the_phase() {
        let mut env = SimEnv::new(MachineConfig::machine3());
        let p = env.device.allocate(8);
        env.device.read_page(p).unwrap();
        env.charge(CpuOp::Compare, 100);

        let m = env.begin();
        env.device.read_page(p + 1).unwrap();
        env.device.read_page(p + 5).unwrap();
        env.charge(CpuOp::Compare, 50);
        let (io, cpu) = env.since(&m);
        assert_eq!(io.read_ops(), 2);
        assert_eq!(cpu.get(CpuOp::Compare), 50);
    }

    #[test]
    fn observed_and_estimated_costs_are_consistent() {
        let mut env = SimEnv::new(MachineConfig::machine1());
        let p = env.device.allocate(4);
        let m = env.begin();
        for i in 0..4 {
            env.device.read_page(p + i).unwrap();
        }
        let obs = env.observed_since(&m);
        let est = env.estimated_since(&m);
        // Three of the four reads are sequential, so the observed I/O time
        // must be lower than the all-random estimate.
        assert!(obs.io_secs < est.io_secs);
        assert!(obs.io_secs > 0.0);
    }

    #[test]
    fn with_budget_scopes_the_gauge_and_restores_it() {
        let mut env = SimEnv::new(MachineConfig::machine3()).with_memory_limit(1 << 20);
        let outer = env.memory.try_reserve(512 * 1024).unwrap();
        env.with_budget(64 * 1024, |e| {
            assert_eq!(e.memory_limit, 64 * 1024);
            // The scoped gauge starts empty: the outer reservation charges
            // the (suspended) outer gauge, not this one.
            assert_eq!(e.memory.current(), 0);
            assert!(e.memory.try_reserve(128 * 1024).is_err());
            let _inner = e.memory.try_reserve(32 * 1024).unwrap();
        });
        assert_eq!(env.memory_limit, 1 << 20);
        assert_eq!(env.memory.current(), 512 * 1024);
        drop(outer);
        assert_eq!(env.memory.current(), 0);
    }

    #[test]
    fn obs_phase_attributes_io_only_when_recording() {
        let mut env = SimEnv::new(MachineConfig::machine3());
        let p = env.device.allocate(4);

        // No recorder installed: the phase is inert (no measurement taken).
        let phase = env.obs_phase("phase");
        env.device.read_page(p).unwrap();
        env.obs_close(phase);

        // Recording: the span-end event carries the phase's I/O delta.
        let ring = Arc::new(usj_obs::RingCollector::new(64));
        let guard = usj_obs::install(ring.clone(), Arc::new(usj_obs::VirtualClock::new()));
        let phase = env.obs_phase("phase");
        env.device.read_page(p + 1).unwrap();
        env.device.read_page(p + 3).unwrap();
        env.obs_close(phase);
        drop(guard);

        let (events, dropped) = ring.drain();
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 2, "one begin + one end");
        let usj_obs::Event::SpanEnd { io, .. } = &events[1] else {
            panic!("expected span end, got {:?}", events[1]);
        };
        assert_eq!(io.pages_read, 2);
        assert_eq!(io.seq_ops + io.rand_ops, 2);
    }

    #[test]
    fn unaccounted_suppresses_io_charges() {
        let mut env = SimEnv::new(MachineConfig::machine2());
        env.device.allocate(4);
        let m = env.begin();
        env.unaccounted(|e| {
            e.device.read_page(0).unwrap();
            e.device.write_page(1, b"x").unwrap();
        });
        let (io, _) = env.since(&m);
        assert_eq!(io.total_ops(), 0);
        // Accounting is restored afterwards.
        env.device.read_page(2).unwrap();
        let (io, _) = env.since(&m);
        assert_eq!(io.total_ops(), 1);
    }
}
