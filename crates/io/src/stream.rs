//! Sequential record streams on the simulated disk.
//!
//! SSSJ and PBSM are stream-based algorithms: they read and write their
//! inputs strictly sequentially, in large logical blocks (the paper uses a
//! 512 KB logical page size for the stream-based BTE). An [`ItemStream`] is a
//! sequence of 20-byte [`Item`] records stored in fixed-size *extents* of
//! consecutive pages; as long as a single stream is written at a time the
//! extents themselves end up consecutive on the device and the traffic is
//! classified as sequential.
//!
//! ## Zero-copy block decode
//!
//! Readers and writers work directly on page-laid-out byte buffers. A reader
//! pulls each block into one reusable byte buffer
//! ([`BlockDevice::read_pages_into`](crate::BlockDevice::read_pages_into) —
//! no per-block allocation) and decodes records lazily on delivery; the old
//! decode-the-whole-block-into-`Vec<Item>` staging pass is gone, and skipped
//! records ([`ItemStream::reader_from`] starts) are never decoded at all.
//! Bulk consumers iterate an [`ItemsView`] — a borrowed items-view over the
//! page-resident bytes of the current block — via
//! [`ItemStreamReader::next_view`]. Gauge reservations are per *block*: a
//! writer claims its block buffer once (falling back to per-record growth
//! only when the governor is too tight for a whole block), a reader re-sizes
//! one claim per block fill, so the gauge's atomic counters leave the
//! per-record hot path.

use usj_geom::{Item, ITEM_BYTES};

use crate::error::{IoSimError, Result};
use crate::gauge::MemoryReservation;
use crate::page::{PageId, PAGE_SIZE};
use crate::sim::SimEnv;
use crate::stats::CpuOp;

/// Number of 20-byte items that fit in one 8 KiB page.
pub const ITEMS_PER_PAGE: usize = PAGE_SIZE / ITEM_BYTES;

/// Default logical block size for stream I/O, in pages.
///
/// 64 pages × 8 KiB = 512 KiB, the logical page size the paper uses for the
/// stream-based algorithms to exploit sequential disk access.
pub const DEFAULT_PAGES_PER_BLOCK: u64 = 64;

/// Byte offset of record `i` within a page-laid-out block buffer.
///
/// Items never straddle a page boundary: each page holds exactly
/// [`ITEMS_PER_PAGE`] records and the remaining tail bytes are unused,
/// mirroring the paper's fixed 20-byte record files.
#[inline]
fn record_offset(i: usize) -> usize {
    (i / ITEMS_PER_PAGE) * PAGE_SIZE + (i % ITEMS_PER_PAGE) * ITEM_BYTES
}

/// A borrowed items-view over the page-resident bytes of one stream block.
///
/// The view indexes records in place — nothing is decoded until a record is
/// actually requested, and no intermediate `Vec<Item>` is materialised.
/// Obtained from [`ItemStreamReader::next_view`].
#[derive(Debug, Clone, Copy)]
pub struct ItemsView<'a> {
    bytes: &'a [u8],
    /// Index of the first viewed record within the block.
    start: usize,
    len: usize,
}

impl<'a> ItemsView<'a> {
    /// Number of records in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the view holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Decodes the record at index `i` (`0 <= i < len`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> Item {
        assert!(i < self.len, "view index {i} out of bounds ({})", self.len);
        let off = record_offset(self.start + i);
        Item::decode(&self.bytes[off..off + ITEM_BYTES])
    }

    /// Iterates over the records, decoding each lazily.
    pub fn iter(&self) -> impl Iterator<Item = Item> + 'a {
        let (bytes, start) = (self.bytes, self.start);
        (0..self.len).map(move |i| {
            let off = record_offset(start + i);
            Item::decode(&bytes[off..off + ITEM_BYTES])
        })
    }
}

/// A stream of [`Item`] records stored on the simulated disk.
#[derive(Debug, Clone)]
pub struct ItemStream {
    extents: Vec<PageId>,
    pages_per_block: u64,
    len: u64,
}

impl ItemStream {
    /// Number of records in the stream.
    #[inline]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Returns `true` if the stream holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Logical block size used for I/O, in pages.
    #[inline]
    pub fn pages_per_block(&self) -> u64 {
        self.pages_per_block
    }

    /// First-page identifiers of the stream's extents, in stream order.
    ///
    /// Every extent spans [`pages_per_block`](ItemStream::pages_per_block)
    /// pages except possibly the last (its page count follows from
    /// [`len`](ItemStream::len)). Exposed so integrity layers (the live
    /// catalog's per-block run checksums) can address the stream's storage
    /// block by block.
    #[inline]
    pub fn extents(&self) -> &[PageId] {
        &self.extents
    }

    /// Number of disk pages occupied by the stream.
    pub fn pages(&self) -> u64 {
        let items_per_block = self.pages_per_block * ITEMS_PER_PAGE as u64;
        let full_blocks = self.len / items_per_block;
        let rem = self.len % items_per_block;
        full_blocks * self.pages_per_block + rem.div_ceil(ITEMS_PER_PAGE as u64)
    }

    /// Total size of the stream's records in bytes.
    pub fn data_bytes(&self) -> u64 {
        self.len * ITEM_BYTES as u64
    }

    /// Materialises an in-memory slice of items as a stream, using the
    /// default logical block size.
    pub fn from_items(env: &mut SimEnv, items: &[Item]) -> Result<ItemStream> {
        Self::from_items_with_block(env, items, DEFAULT_PAGES_PER_BLOCK)
    }

    /// Materialises an in-memory slice of items as a stream with an explicit
    /// logical block size.
    pub fn from_items_with_block(
        env: &mut SimEnv,
        items: &[Item],
        pages_per_block: u64,
    ) -> Result<ItemStream> {
        let mut w = ItemStreamWriter::new(env, pages_per_block);
        for it in items {
            w.push(env, *it)?;
        }
        w.finish(env)
    }

    /// Creates a reader positioned at the first record.
    pub fn reader(&self) -> ItemStreamReader {
        self.reader_from(0)
    }

    /// Creates a reader positioned at record `start` (clamped to the stream
    /// length). Blocks before the start are never read — only the block
    /// containing `start` pays for the records in front of it — and the
    /// skipped records at the front of that block are never even decoded.
    pub fn reader_from(&self, start: u64) -> ItemStreamReader {
        let items_per_block = self.pages_per_block * ITEMS_PER_PAGE as u64;
        let (block, delivered, skip) = if start >= self.len {
            // Exhausted from the outset: no block needs reading at all.
            (self.extents.len(), self.len, 0)
        } else {
            (
                (start / items_per_block) as usize,
                start / items_per_block * items_per_block,
                start % items_per_block,
            )
        };
        ItemStreamReader {
            stream: self.clone(),
            next_block: block,
            block: Vec::new(),
            in_block: 0,
            pos: 0,
            reservation: None,
            items_delivered: delivered,
            pending_skip: skip,
        }
    }

    /// Serializes the stream *descriptor* (block size, length, extent list —
    /// not the records, which already live on the device) into a byte
    /// buffer, for embedding in an on-device directory such as the service
    /// catalog.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(24 + self.extents.len() * 8);
        buf.extend_from_slice(&self.pages_per_block.to_le_bytes());
        buf.extend_from_slice(&self.len.to_le_bytes());
        buf.extend_from_slice(&(self.extents.len() as u64).to_le_bytes());
        for e in &self.extents {
            buf.extend_from_slice(&e.to_le_bytes());
        }
        buf
    }

    /// Decodes a descriptor produced by [`encode`](ItemStream::encode),
    /// returning the stream and the number of bytes consumed.
    ///
    /// The descriptor refers to device pages by identifier, so it is only
    /// meaningful on the device (or a snapshot of the device) it was encoded
    /// on.
    pub fn decode(buf: &[u8]) -> Result<(ItemStream, usize)> {
        let u64_at = |off: usize| -> Result<u64> {
            buf.get(off..off + 8)
                .map(|b| u64::from_le_bytes(b.try_into().expect("checked length")))
                .ok_or(IoSimError::CorruptRecord("stream descriptor truncated"))
        };
        let pages_per_block = u64_at(0)?;
        let len = u64_at(8)?;
        let extent_count = u64_at(16)? as usize;
        if pages_per_block == 0 {
            return Err(IoSimError::CorruptRecord("stream descriptor block size"));
        }
        // Validate the count against the buffer *before* allocating, so a
        // corrupt descriptor returns an error instead of attempting an
        // absurd allocation.
        if extent_count
            .checked_mul(8)
            .and_then(|b| b.checked_add(24))
            .map_or(true, |need| need > buf.len())
        {
            return Err(IoSimError::CorruptRecord("stream descriptor truncated"));
        }
        let mut extents = Vec::with_capacity(extent_count);
        for i in 0..extent_count {
            extents.push(u64_at(24 + i * 8)?);
        }
        Ok((
            ItemStream {
                extents,
                pages_per_block,
                len,
            },
            24 + extent_count * 8,
        ))
    }

    /// Reads the entire stream into memory (one sequential pass).
    pub fn read_all(&self, env: &mut SimEnv) -> Result<Vec<Item>> {
        let mut out = Vec::new();
        self.read_all_into(env, &mut out)?;
        Ok(out)
    }

    /// Reads the entire stream into a caller-provided buffer (cleared first),
    /// one sequential pass through borrowed block views.
    ///
    /// Callers that load many streams in a row (PBSM loads one pair of
    /// partition streams per partition) reuse one buffer instead of
    /// allocating per load.
    pub fn read_all_into(&self, env: &mut SimEnv, out: &mut Vec<Item>) -> Result<()> {
        out.clear();
        out.reserve(self.len as usize);
        let mut r = self.reader();
        while let Some(view) = r.next_view(env)? {
            out.extend(view.iter());
        }
        Ok(())
    }
}

/// Incremental writer producing an [`ItemStream`].
///
/// Records are encoded straight into a page-laid-out block buffer (no
/// `Vec<Item>` staging, no per-flush allocation). The buffer's gauge claim is
/// made once per writer — per-*block*, not per-record — with a graceful
/// fallback to per-record growth when the governor cannot spare a whole
/// block up front.
#[derive(Debug)]
pub struct ItemStreamWriter {
    extents: Vec<PageId>,
    pages_per_block: u64,
    /// Page-laid-out bytes of the block being filled.
    buf: Vec<u8>,
    items_in_buf: usize,
    /// Gauge claim on the block buffer (see the struct docs).
    reservation: MemoryReservation,
    /// Whether `reservation` covers a whole block's records up front.
    block_reserved: bool,
    len: u64,
    finished: bool,
}

impl ItemStreamWriter {
    /// Starts a new stream with the default logical block size.
    pub fn with_default_block(env: &mut SimEnv) -> Self {
        Self::new(env, DEFAULT_PAGES_PER_BLOCK)
    }

    /// Starts a new stream with an explicit logical block size (in pages).
    pub fn new(env: &mut SimEnv, pages_per_block: u64) -> Self {
        assert!(pages_per_block > 0, "logical block must be at least one page");
        ItemStreamWriter {
            extents: Vec::new(),
            pages_per_block,
            buf: Vec::new(),
            items_in_buf: 0,
            reservation: env.memory.reserve_empty(),
            block_reserved: false,
            len: 0,
            finished: false,
        }
    }

    fn items_per_block(&self) -> usize {
        self.pages_per_block as usize * ITEMS_PER_PAGE
    }

    /// Appends one record to the stream.
    pub fn push(&mut self, env: &mut SimEnv, item: Item) -> Result<()> {
        if self.finished {
            return Err(IoSimError::InvalidStreamState("push after finish"));
        }
        if !self.block_reserved {
            if self.items_in_buf == 0
                && self
                    .reservation
                    .try_set(self.items_per_block() * ITEM_BYTES)
                    .is_ok()
            {
                // One gauge transaction covers the whole block; held until
                // `finish` so subsequent blocks are free of gauge traffic.
                self.block_reserved = true;
            } else {
                // Governor too tight for a whole block: degrade to exact
                // per-record accounting, as before the block-granular path.
                self.reservation.try_grow(ITEM_BYTES)?;
            }
        }
        let off = record_offset(self.items_in_buf);
        if self.buf.len() < off + ITEM_BYTES {
            // Grow to the next page boundary; `resize` zero-fills the page
            // tails that pad records to page granularity.
            let pages = self.items_in_buf / ITEMS_PER_PAGE + 1;
            self.buf.resize(pages * PAGE_SIZE, 0);
        }
        item.encode(&mut self.buf[off..off + ITEM_BYTES]);
        self.items_in_buf += 1;
        self.len += 1;
        if self.items_in_buf >= self.items_per_block() {
            self.flush_block(env)?;
        }
        Ok(())
    }

    /// Appends many records to the stream.
    pub fn extend(&mut self, env: &mut SimEnv, items: &[Item]) -> Result<()> {
        for it in items {
            self.push(env, *it)?;
        }
        Ok(())
    }

    fn flush_block(&mut self, env: &mut SimEnv) -> Result<()> {
        if self.items_in_buf == 0 {
            return Ok(());
        }
        let pages_needed = (self.items_in_buf as u64).div_ceil(ITEMS_PER_PAGE as u64);
        let first = env.device.allocate(pages_needed);
        env.charge(CpuOp::ItemMove, self.items_in_buf as u64);
        env.device.write_pages(first, pages_needed, &self.buf)?;
        self.extents.push(first);
        self.buf.clear();
        self.items_in_buf = 0;
        if !self.block_reserved {
            self.reservation.release();
        }
        Ok(())
    }

    /// Flushes any buffered records and returns the finished stream.
    pub fn finish(mut self, env: &mut SimEnv) -> Result<ItemStream> {
        self.flush_block(env)?;
        self.finished = true;
        self.reservation.release();
        Ok(ItemStream {
            extents: std::mem::take(&mut self.extents),
            pages_per_block: self.pages_per_block,
            len: self.len,
        })
    }
}

/// Sequential reader over an [`ItemStream`].
///
/// One reusable byte buffer holds the page-resident bytes of the current
/// block; records are decoded lazily on delivery (or iterated in place
/// through [`next_view`](ItemStreamReader::next_view)).
#[derive(Debug)]
pub struct ItemStreamReader {
    stream: ItemStream,
    next_block: usize,
    /// Raw page bytes of the current block (reused across blocks).
    block: Vec<u8>,
    /// Records resident in `block`.
    in_block: usize,
    /// Index of the next record to deliver within `block`.
    pos: usize,
    /// Gauge claim on the block buffer, (re)sized on every refill — one
    /// gauge transaction per block. `None` until the first block is read
    /// (readers are created without an environment).
    reservation: Option<MemoryReservation>,
    items_delivered: u64,
    /// Records to step over inside the first block read (a
    /// [`reader_from`](ItemStream::reader_from) start that is not
    /// block-aligned). Skipped records are never decoded.
    pending_skip: u64,
}

impl ItemStreamReader {
    /// Number of records already returned by [`ItemStreamReader::next`].
    pub fn items_delivered(&self) -> u64 {
        self.items_delivered
    }

    /// Returns the next record, or `None` at end of stream.
    pub fn next(&mut self, env: &mut SimEnv) -> Result<Option<Item>> {
        if self.pos >= self.in_block && !self.fill(env)? {
            return Ok(None);
        }
        let off = record_offset(self.pos);
        let it = Item::decode(&self.block[off..off + ITEM_BYTES]);
        self.pos += 1;
        self.items_delivered += 1;
        Ok(Some(it))
    }

    /// Returns the next record without consuming it.
    pub fn peek(&mut self, env: &mut SimEnv) -> Result<Option<Item>> {
        if self.pos >= self.in_block && !self.fill(env)? {
            return Ok(None);
        }
        let off = record_offset(self.pos);
        Ok(Some(Item::decode(&self.block[off..off + ITEM_BYTES])))
    }

    /// Returns a borrowed view over every not-yet-delivered record of the
    /// current block (reading the next block if the buffer is drained), or
    /// `None` at end of stream. The viewed records count as delivered.
    ///
    /// This is the bulk-iteration path: one `next_view` call per block, no
    /// per-record state updates, no intermediate `Vec<Item>`.
    pub fn next_view(&mut self, env: &mut SimEnv) -> Result<Option<ItemsView<'_>>> {
        if self.pos >= self.in_block && !self.fill(env)? {
            return Ok(None);
        }
        let view = ItemsView {
            bytes: &self.block,
            start: self.pos,
            len: self.in_block - self.pos,
        };
        self.items_delivered += view.len as u64;
        self.pos = self.in_block;
        Ok(Some(view))
    }

    fn fill(&mut self, env: &mut SimEnv) -> Result<bool> {
        if self.next_block >= self.stream.extents.len() {
            self.reservation = None;
            return Ok(false);
        }
        let remaining = self.stream.len - self.items_delivered;
        if remaining == 0 {
            self.reservation = None;
            return Ok(false);
        }
        let items_per_block = self.stream.pages_per_block * ITEMS_PER_PAGE as u64;
        let in_this_block = remaining.min(items_per_block);
        let pages = in_this_block.div_ceil(ITEMS_PER_PAGE as u64);
        match &mut self.reservation {
            Some(r) => r.try_set(in_this_block as usize * ITEM_BYTES)?,
            None => {
                self.reservation =
                    Some(env.memory.try_reserve(in_this_block as usize * ITEM_BYTES)?)
            }
        }
        let first = self.stream.extents[self.next_block];
        env.device.read_pages_into(first, pages, &mut self.block)?;
        env.charge(CpuOp::ItemMove, in_this_block);
        self.in_block = in_this_block as usize;
        self.pos = 0;
        self.next_block += 1;
        if self.pending_skip > 0 {
            // Step over the records in front of a mid-block start without
            // decoding them.
            let skip = self.pending_skip.min(self.in_block as u64);
            self.pos = skip as usize;
            self.items_delivered += skip;
            self.pending_skip = 0;
            if self.pos >= self.in_block {
                return self.fill(env);
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use usj_geom::Rect;

    fn items(n: u32) -> Vec<Item> {
        (0..n)
            .map(|i| {
                let f = i as f32;
                Item::new(Rect::from_coords(f, f * 2.0, f + 1.0, f * 2.0 + 1.0), i)
            })
            .collect()
    }

    fn env() -> SimEnv {
        SimEnv::new(MachineConfig::machine3())
    }

    #[test]
    fn roundtrip_small_stream() {
        let mut env = env();
        let data = items(10);
        let s = ItemStream::from_items(&mut env, &data).unwrap();
        assert_eq!(s.len(), 10);
        assert!(!s.is_empty());
        assert_eq!(s.read_all(&mut env).unwrap(), data);
    }

    #[test]
    fn roundtrip_multi_block_stream() {
        let mut env = env();
        // 3 pages per block, enough items for several blocks plus a partial one.
        let data = items((ITEMS_PER_PAGE as u32) * 7 + 13);
        let s = ItemStream::from_items_with_block(&mut env, &data, 3).unwrap();
        assert_eq!(s.len() as usize, data.len());
        assert_eq!(s.read_all(&mut env).unwrap(), data);
    }

    #[test]
    fn empty_stream_is_valid() {
        let mut env = env();
        let s = ItemStream::from_items(&mut env, &[]).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.pages(), 0);
        assert_eq!(s.read_all(&mut env).unwrap(), Vec::new());
    }

    #[test]
    fn page_count_matches_item_capacity() {
        let mut env = env();
        let one_page = items(ITEMS_PER_PAGE as u32);
        let s = ItemStream::from_items_with_block(&mut env, &one_page, 4).unwrap();
        assert_eq!(s.pages(), 1);
        let s2 = ItemStream::from_items_with_block(&mut env, &items(ITEMS_PER_PAGE as u32 + 1), 4)
            .unwrap();
        assert_eq!(s2.pages(), 2);
        assert_eq!(s.data_bytes(), (ITEMS_PER_PAGE * ITEM_BYTES) as u64);
    }

    #[test]
    fn writing_and_reading_is_sequential_io() {
        let mut env = env();
        let data = items((ITEMS_PER_PAGE as u32) * 20);
        let m = env.begin();
        let s = ItemStream::from_items_with_block(&mut env, &data, 4).unwrap();
        let _ = s.read_all(&mut env).unwrap();
        let (io, _) = env.since(&m);
        // The very first write may be random; everything else must be
        // sequential because blocks are allocated and visited in order.
        assert!(io.rand_write_ops <= 1, "writes: {io:?}");
        assert!(io.rand_read_ops <= 1, "reads: {io:?}");
        assert!(io.seq_write_ops >= 4);
        assert!(io.seq_read_ops >= 4);
    }

    #[test]
    fn reader_from_skips_whole_blocks_without_reading_them() {
        let mut env = env();
        // 5 blocks of 2 pages each plus a partial tail.
        let data = items((ITEMS_PER_PAGE as u32) * 10 + 7);
        let s = ItemStream::from_items_with_block(&mut env, &data, 2).unwrap();
        let items_per_block = 2 * ITEMS_PER_PAGE as u64;
        for start in [
            0u64,
            1,
            items_per_block - 1,
            items_per_block,
            items_per_block * 3 + 17,
            s.len() - 1,
            s.len(),
            s.len() + 5,
        ] {
            let m = env.begin();
            let mut r = s.reader_from(start);
            let mut got = Vec::new();
            while let Some(it) = r.next(&mut env).unwrap() {
                got.push(it);
            }
            let (io, _) = env.since(&m);
            let expected_start = start.min(s.len()) as usize;
            assert_eq!(got, data[expected_start..], "start {start}");
            // Only the blocks from the starting one onward are read.
            let blocks_needed = if expected_start as u64 >= s.len() {
                0
            } else {
                5 + 1 - expected_start as u64 / items_per_block
            };
            assert!(
                io.pages_read <= blocks_needed * 2,
                "start {start}: read {} pages for {blocks_needed} blocks",
                io.pages_read
            );
        }
    }

    #[test]
    fn descriptor_roundtrip_preserves_the_stream() {
        let mut env = env();
        let data = items((ITEMS_PER_PAGE as u32) * 5 + 3);
        let s = ItemStream::from_items_with_block(&mut env, &data, 2).unwrap();
        let mut blob = s.encode();
        blob.extend_from_slice(b"trailing directory bytes");
        let (back, consumed) = ItemStream::decode(&blob).unwrap();
        assert_eq!(consumed, s.encode().len());
        assert_eq!(back.len(), s.len());
        assert_eq!(back.pages(), s.pages());
        assert_eq!(back.read_all(&mut env).unwrap(), data);
        // Truncated descriptors are rejected.
        assert!(ItemStream::decode(&blob[..10]).is_err());
    }

    #[test]
    fn reader_peek_does_not_consume() {
        let mut env = env();
        let data = items(5);
        let s = ItemStream::from_items(&mut env, &data).unwrap();
        let mut r = s.reader();
        assert_eq!(r.peek(&mut env).unwrap(), Some(data[0]));
        assert_eq!(r.peek(&mut env).unwrap(), Some(data[0]));
        assert_eq!(r.next(&mut env).unwrap(), Some(data[0]));
        assert_eq!(r.next(&mut env).unwrap(), Some(data[1]));
        assert_eq!(r.items_delivered(), 2);
    }

    #[test]
    fn push_after_finish_is_rejected() {
        let mut env = env();
        let w = ItemStreamWriter::with_default_block(&mut env);
        let _s = w.finish(&mut env).unwrap();
        // A fresh writer still works; a finished one cannot be reused because
        // finish() consumes it — verify the error path via a manual flag by
        // constructing the scenario through extend on a new writer instead.
        let mut w2 = ItemStreamWriter::new(&mut env, 2);
        w2.extend(&mut env, &items(3)).unwrap();
        let s2 = w2.finish(&mut env).unwrap();
        assert_eq!(s2.len(), 3);
    }

    #[test]
    fn interleaved_writers_still_roundtrip() {
        // Two streams written in alternation: extents interleave on the device
        // (more random I/O) but the data must still round-trip correctly.
        let mut env = env();
        let mut w1 = ItemStreamWriter::new(&mut env, 1);
        let mut w2 = ItemStreamWriter::new(&mut env, 1);
        let d1 = items(ITEMS_PER_PAGE as u32 * 3);
        let d2: Vec<Item> = items(ITEMS_PER_PAGE as u32 * 3)
            .into_iter()
            .map(|mut it| {
                it.id += 10_000;
                it
            })
            .collect();
        for i in 0..d1.len() {
            w1.push(&mut env, d1[i]).unwrap();
            w2.push(&mut env, d2[i]).unwrap();
        }
        let s1 = w1.finish(&mut env).unwrap();
        let s2 = w2.finish(&mut env).unwrap();
        assert_eq!(s1.read_all(&mut env).unwrap(), d1);
        assert_eq!(s2.read_all(&mut env).unwrap(), d2);
    }

    #[test]
    fn view_iteration_equals_owned_decode_item_for_item() {
        let mut env = env();
        // Multiple blocks plus a partial tail block.
        let data = items((ITEMS_PER_PAGE as u32) * 6 + 11);
        let s = ItemStream::from_items_with_block(&mut env, &data, 2).unwrap();

        // Owned path: record-at-a-time decode.
        let mut owned = Vec::new();
        let mut r = s.reader();
        while let Some(it) = r.next(&mut env).unwrap() {
            owned.push(it);
        }

        // Borrowed path: block views, indexed and iterated.
        let mut viewed = Vec::new();
        let mut r = s.reader();
        while let Some(view) = r.next_view(&mut env).unwrap() {
            assert!(!view.is_empty());
            for i in 0..view.len() {
                viewed.push(view.get(i));
            }
            // The iterator decodes the same records as indexed access.
            assert!(view.iter().eq(viewed[viewed.len() - view.len()..].iter().copied()));
        }

        assert_eq!(owned, data);
        assert_eq!(viewed, data);
        assert_eq!(r.items_delivered(), data.len() as u64);
    }

    #[test]
    fn view_iteration_matches_owned_on_mid_stream_starts() {
        let mut env = env();
        let data = items((ITEMS_PER_PAGE as u32) * 4 + 5);
        let s = ItemStream::from_items_with_block(&mut env, &data, 2).unwrap();
        let items_per_block = 2 * ITEMS_PER_PAGE as u64;
        for start in [1u64, items_per_block - 1, items_per_block + 17, s.len() - 1] {
            let mut owned = Vec::new();
            let mut r = s.reader_from(start);
            while let Some(it) = r.next(&mut env).unwrap() {
                owned.push(it);
            }
            let mut viewed = Vec::new();
            let mut r = s.reader_from(start);
            while let Some(view) = r.next_view(&mut env).unwrap() {
                viewed.extend(view.iter());
            }
            assert_eq!(owned, data[start as usize..], "start {start}");
            assert_eq!(viewed, owned, "start {start}");
        }
    }

    #[test]
    fn views_read_identically_from_a_base_snapshot_overlay() {
        use crate::device::BlockDevice;

        let mut env = env();
        let data = items((ITEMS_PER_PAGE as u32) * 3 + 7);
        let s = ItemStream::from_items_with_block(&mut env, &data, 2).unwrap();

        // Freeze the device and layer a fresh one on top: the stream's pages
        // now come from the read-only base snapshot.
        let base = env.device.snapshot();
        let mut overlay_env = SimEnv::new(MachineConfig::machine3());
        overlay_env.device = BlockDevice::with_base(base);

        let mut viewed = Vec::new();
        let mut r = s.reader();
        while let Some(view) = r.next_view(&mut overlay_env).unwrap() {
            viewed.extend(view.iter());
        }
        assert_eq!(viewed, data);
        // Snapshot reads are charged like any other read.
        assert_eq!(overlay_env.device.stats().pages_read, s.pages());
        // The mid-stream path works over the overlay too.
        let mut tail = Vec::new();
        let mut r = s.reader_from(s.len() - 3);
        while let Some(view) = r.next_view(&mut overlay_env).unwrap() {
            tail.extend(view.iter());
        }
        assert_eq!(tail, data[data.len() - 3..]);
    }

    #[test]
    fn read_all_into_reuses_the_buffer() {
        let mut env = env();
        let a = items(ITEMS_PER_PAGE as u32 + 3);
        let b = items(7);
        let sa = ItemStream::from_items_with_block(&mut env, &a, 1).unwrap();
        let sb = ItemStream::from_items_with_block(&mut env, &b, 1).unwrap();
        let mut buf = Vec::new();
        sa.read_all_into(&mut env, &mut buf).unwrap();
        assert_eq!(buf, a);
        let cap = buf.capacity();
        sb.read_all_into(&mut env, &mut buf).unwrap();
        assert_eq!(buf, b);
        assert!(buf.capacity() >= cap, "read_all_into must not shrink the buffer");
    }

    #[test]
    fn writer_claims_blocks_not_records_from_the_gauge() {
        let mut env = env();
        let block_payload = ITEMS_PER_PAGE * ITEM_BYTES;
        let mut w = ItemStreamWriter::new(&mut env, 1);
        assert_eq!(env.memory.current(), 0, "no claim before the first record");
        w.push(&mut env, items(1)[0]).unwrap();
        assert_eq!(
            env.memory.current(),
            block_payload,
            "the first record claims the whole block"
        );
        w.extend(&mut env, &items(ITEMS_PER_PAGE as u32 * 2)).unwrap();
        assert_eq!(
            env.memory.current(),
            block_payload,
            "later records and flushes cause no gauge traffic"
        );
        let s = w.finish(&mut env).unwrap();
        assert_eq!(env.memory.current(), 0, "finish releases the claim");
        assert_eq!(s.len(), 1 + 2 * ITEMS_PER_PAGE as u64);
    }

    #[test]
    fn writer_degrades_to_per_record_claims_under_a_tight_governor() {
        // A limit below one default block: the writer must still work,
        // charging record-granular claims like the pre-block-granular path.
        let mut env = SimEnv::new(MachineConfig::machine3()).with_memory_limit(4096);
        let mut w = ItemStreamWriter::new(&mut env, DEFAULT_PAGES_PER_BLOCK);
        let data = items(100);
        for it in &data {
            w.push(&mut env, *it).unwrap();
        }
        assert_eq!(env.memory.current(), 100 * ITEM_BYTES);
        let s = w.finish(&mut env).unwrap();
        assert_eq!(env.memory.current(), 0);
        assert_eq!(s.read_all(&mut env).unwrap(), data);
    }
}
