//! Sequential record streams on the simulated disk.
//!
//! SSSJ and PBSM are stream-based algorithms: they read and write their
//! inputs strictly sequentially, in large logical blocks (the paper uses a
//! 512 KB logical page size for the stream-based BTE). An [`ItemStream`] is a
//! sequence of 20-byte [`Item`] records stored in fixed-size *extents* of
//! consecutive pages; as long as a single stream is written at a time the
//! extents themselves end up consecutive on the device and the traffic is
//! classified as sequential.

use usj_geom::{Item, ITEM_BYTES};

use crate::error::{IoSimError, Result};
use crate::gauge::MemoryReservation;
use crate::page::{PageId, PAGE_SIZE};
use crate::sim::SimEnv;
use crate::stats::CpuOp;

/// Number of 20-byte items that fit in one 8 KiB page.
pub const ITEMS_PER_PAGE: usize = PAGE_SIZE / ITEM_BYTES;

/// Default logical block size for stream I/O, in pages.
///
/// 64 pages × 8 KiB = 512 KiB, the logical page size the paper uses for the
/// stream-based algorithms to exploit sequential disk access.
pub const DEFAULT_PAGES_PER_BLOCK: u64 = 64;

/// A stream of [`Item`] records stored on the simulated disk.
#[derive(Debug, Clone)]
pub struct ItemStream {
    extents: Vec<PageId>,
    pages_per_block: u64,
    len: u64,
}

impl ItemStream {
    /// Number of records in the stream.
    #[inline]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Returns `true` if the stream holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Logical block size used for I/O, in pages.
    #[inline]
    pub fn pages_per_block(&self) -> u64 {
        self.pages_per_block
    }

    /// Number of disk pages occupied by the stream.
    pub fn pages(&self) -> u64 {
        let items_per_block = self.pages_per_block * ITEMS_PER_PAGE as u64;
        let full_blocks = self.len / items_per_block;
        let rem = self.len % items_per_block;
        full_blocks * self.pages_per_block + rem.div_ceil(ITEMS_PER_PAGE as u64)
    }

    /// Total size of the stream's records in bytes.
    pub fn data_bytes(&self) -> u64 {
        self.len * ITEM_BYTES as u64
    }

    /// Materialises an in-memory slice of items as a stream, using the
    /// default logical block size.
    pub fn from_items(env: &mut SimEnv, items: &[Item]) -> Result<ItemStream> {
        Self::from_items_with_block(env, items, DEFAULT_PAGES_PER_BLOCK)
    }

    /// Materialises an in-memory slice of items as a stream with an explicit
    /// logical block size.
    pub fn from_items_with_block(
        env: &mut SimEnv,
        items: &[Item],
        pages_per_block: u64,
    ) -> Result<ItemStream> {
        let mut w = ItemStreamWriter::new(env, pages_per_block);
        for it in items {
            w.push(env, *it)?;
        }
        w.finish(env)
    }

    /// Creates a reader positioned at the first record.
    pub fn reader(&self) -> ItemStreamReader {
        self.reader_from(0)
    }

    /// Creates a reader positioned at record `start` (clamped to the stream
    /// length). Blocks before the start are never read — only the block
    /// containing `start` pays for the records in front of it.
    pub fn reader_from(&self, start: u64) -> ItemStreamReader {
        let items_per_block = self.pages_per_block * ITEMS_PER_PAGE as u64;
        let (block, delivered, skip) = if start >= self.len {
            // Exhausted from the outset: no block needs reading at all.
            (self.extents.len(), self.len, 0)
        } else {
            (
                (start / items_per_block) as usize,
                start / items_per_block * items_per_block,
                start % items_per_block,
            )
        };
        ItemStreamReader {
            stream: self.clone(),
            next_block: block,
            buffer: Vec::new(),
            reservation: None,
            buffer_pos: 0,
            items_delivered: delivered,
            pending_skip: skip,
        }
    }

    /// Serializes the stream *descriptor* (block size, length, extent list —
    /// not the records, which already live on the device) into a byte
    /// buffer, for embedding in an on-device directory such as the service
    /// catalog.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(24 + self.extents.len() * 8);
        buf.extend_from_slice(&self.pages_per_block.to_le_bytes());
        buf.extend_from_slice(&self.len.to_le_bytes());
        buf.extend_from_slice(&(self.extents.len() as u64).to_le_bytes());
        for e in &self.extents {
            buf.extend_from_slice(&e.to_le_bytes());
        }
        buf
    }

    /// Decodes a descriptor produced by [`encode`](ItemStream::encode),
    /// returning the stream and the number of bytes consumed.
    ///
    /// The descriptor refers to device pages by identifier, so it is only
    /// meaningful on the device (or a snapshot of the device) it was encoded
    /// on.
    pub fn decode(buf: &[u8]) -> Result<(ItemStream, usize)> {
        let u64_at = |off: usize| -> Result<u64> {
            buf.get(off..off + 8)
                .map(|b| u64::from_le_bytes(b.try_into().expect("checked length")))
                .ok_or(IoSimError::CorruptRecord("stream descriptor truncated"))
        };
        let pages_per_block = u64_at(0)?;
        let len = u64_at(8)?;
        let extent_count = u64_at(16)? as usize;
        if pages_per_block == 0 {
            return Err(IoSimError::CorruptRecord("stream descriptor block size"));
        }
        // Validate the count against the buffer *before* allocating, so a
        // corrupt descriptor returns an error instead of attempting an
        // absurd allocation.
        if extent_count
            .checked_mul(8)
            .and_then(|b| b.checked_add(24))
            .map_or(true, |need| need > buf.len())
        {
            return Err(IoSimError::CorruptRecord("stream descriptor truncated"));
        }
        let mut extents = Vec::with_capacity(extent_count);
        for i in 0..extent_count {
            extents.push(u64_at(24 + i * 8)?);
        }
        Ok((
            ItemStream {
                extents,
                pages_per_block,
                len,
            },
            24 + extent_count * 8,
        ))
    }

    /// Reads the entire stream into memory (one sequential pass).
    pub fn read_all(&self, env: &mut SimEnv) -> Result<Vec<Item>> {
        let mut out = Vec::with_capacity(self.len as usize);
        let mut r = self.reader();
        while let Some(it) = r.next(env)? {
            out.push(it);
        }
        Ok(out)
    }
}

/// Incremental writer producing an [`ItemStream`].
#[derive(Debug)]
pub struct ItemStreamWriter {
    extents: Vec<PageId>,
    pages_per_block: u64,
    buffer: Vec<Item>,
    /// Gauge claim on the block buffer, grown per record and released on
    /// every flush, so partially filled buffers are charged exactly.
    reservation: MemoryReservation,
    len: u64,
    finished: bool,
}

impl ItemStreamWriter {
    /// Starts a new stream with the default logical block size.
    pub fn with_default_block(env: &mut SimEnv) -> Self {
        Self::new(env, DEFAULT_PAGES_PER_BLOCK)
    }

    /// Starts a new stream with an explicit logical block size (in pages).
    pub fn new(env: &mut SimEnv, pages_per_block: u64) -> Self {
        assert!(pages_per_block > 0, "logical block must be at least one page");
        ItemStreamWriter {
            extents: Vec::new(),
            pages_per_block,
            buffer: Vec::with_capacity((pages_per_block as usize) * ITEMS_PER_PAGE),
            reservation: env.memory.reserve_empty(),
            len: 0,
            finished: false,
        }
    }

    fn items_per_block(&self) -> usize {
        self.pages_per_block as usize * ITEMS_PER_PAGE
    }

    /// Appends one record to the stream.
    pub fn push(&mut self, env: &mut SimEnv, item: Item) -> Result<()> {
        if self.finished {
            return Err(IoSimError::InvalidStreamState("push after finish"));
        }
        self.reservation.try_grow(ITEM_BYTES)?;
        self.buffer.push(item);
        self.len += 1;
        if self.buffer.len() >= self.items_per_block() {
            self.flush_block(env)?;
        }
        Ok(())
    }

    /// Appends many records to the stream.
    pub fn extend(&mut self, env: &mut SimEnv, items: &[Item]) -> Result<()> {
        for it in items {
            self.push(env, *it)?;
        }
        Ok(())
    }

    fn flush_block(&mut self, env: &mut SimEnv) -> Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let pages_needed = (self.buffer.len() as u64).div_ceil(ITEMS_PER_PAGE as u64);
        let first = env.device.allocate(pages_needed);
        let mut bytes = vec![0u8; (pages_needed as usize) * PAGE_SIZE];
        for (i, it) in self.buffer.iter().enumerate() {
            // Items never straddle a page boundary: each page holds exactly
            // ITEMS_PER_PAGE records and the remaining tail bytes are unused,
            // mirroring the paper's fixed 20-byte record files.
            let page_idx = i / ITEMS_PER_PAGE;
            let offset = page_idx * PAGE_SIZE + (i % ITEMS_PER_PAGE) * ITEM_BYTES;
            it.encode(&mut bytes[offset..offset + ITEM_BYTES]);
        }
        env.charge(CpuOp::ItemMove, self.buffer.len() as u64);
        env.device.write_pages(first, pages_needed, &bytes)?;
        self.extents.push(first);
        self.buffer.clear();
        self.reservation.release();
        Ok(())
    }

    /// Flushes any buffered records and returns the finished stream.
    pub fn finish(mut self, env: &mut SimEnv) -> Result<ItemStream> {
        self.flush_block(env)?;
        self.finished = true;
        Ok(ItemStream {
            extents: std::mem::take(&mut self.extents),
            pages_per_block: self.pages_per_block,
            len: self.len,
        })
    }
}

/// Sequential reader over an [`ItemStream`].
#[derive(Debug)]
pub struct ItemStreamReader {
    stream: ItemStream,
    next_block: usize,
    buffer: Vec<Item>,
    /// Gauge claim on the block buffer, (re)established on every refill.
    /// `None` until the first block is read (readers are created without an
    /// environment).
    reservation: Option<MemoryReservation>,
    buffer_pos: usize,
    items_delivered: u64,
    /// Records to step over inside the first block read (a
    /// [`reader_from`](ItemStream::reader_from) start that is not
    /// block-aligned).
    pending_skip: u64,
}

impl ItemStreamReader {
    /// Number of records already returned by [`ItemStreamReader::next`].
    pub fn items_delivered(&self) -> u64 {
        self.items_delivered
    }

    /// Returns the next record, or `None` at end of stream.
    pub fn next(&mut self, env: &mut SimEnv) -> Result<Option<Item>> {
        if self.buffer_pos >= self.buffer.len() && !self.fill(env)? {
            return Ok(None);
        }
        let it = self.buffer[self.buffer_pos];
        self.buffer_pos += 1;
        self.items_delivered += 1;
        Ok(Some(it))
    }

    /// Returns the next record without consuming it.
    pub fn peek(&mut self, env: &mut SimEnv) -> Result<Option<Item>> {
        if self.buffer_pos >= self.buffer.len() && !self.fill(env)? {
            return Ok(None);
        }
        Ok(self.buffer.get(self.buffer_pos).copied())
    }

    fn fill(&mut self, env: &mut SimEnv) -> Result<bool> {
        if self.next_block >= self.stream.extents.len() {
            self.reservation = None;
            return Ok(false);
        }
        let remaining = self.stream.len - self.items_delivered;
        if remaining == 0 {
            self.reservation = None;
            return Ok(false);
        }
        let items_per_block = self.stream.pages_per_block * ITEMS_PER_PAGE as u64;
        let in_this_block = remaining.min(items_per_block);
        let pages = in_this_block.div_ceil(ITEMS_PER_PAGE as u64);
        match &mut self.reservation {
            Some(r) => r.try_set(in_this_block as usize * ITEM_BYTES)?,
            None => {
                self.reservation =
                    Some(env.memory.try_reserve(in_this_block as usize * ITEM_BYTES)?)
            }
        }
        let first = self.stream.extents[self.next_block];
        let bytes = env.device.read_pages(first, pages)?;
        self.buffer.clear();
        self.buffer.reserve(in_this_block as usize);
        for i in 0..in_this_block as usize {
            let page_idx = i / ITEMS_PER_PAGE;
            let offset = page_idx * PAGE_SIZE + (i % ITEMS_PER_PAGE) * ITEM_BYTES;
            self.buffer.push(Item::decode(&bytes[offset..offset + ITEM_BYTES]));
        }
        env.charge(CpuOp::ItemMove, in_this_block);
        self.buffer_pos = 0;
        self.next_block += 1;
        if self.pending_skip > 0 {
            let skip = self.pending_skip.min(self.buffer.len() as u64);
            self.buffer_pos = skip as usize;
            self.items_delivered += skip;
            self.pending_skip = 0;
            if self.buffer_pos >= self.buffer.len() {
                return self.fill(env);
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use usj_geom::Rect;

    fn items(n: u32) -> Vec<Item> {
        (0..n)
            .map(|i| {
                let f = i as f32;
                Item::new(Rect::from_coords(f, f * 2.0, f + 1.0, f * 2.0 + 1.0), i)
            })
            .collect()
    }

    fn env() -> SimEnv {
        SimEnv::new(MachineConfig::machine3())
    }

    #[test]
    fn roundtrip_small_stream() {
        let mut env = env();
        let data = items(10);
        let s = ItemStream::from_items(&mut env, &data).unwrap();
        assert_eq!(s.len(), 10);
        assert!(!s.is_empty());
        assert_eq!(s.read_all(&mut env).unwrap(), data);
    }

    #[test]
    fn roundtrip_multi_block_stream() {
        let mut env = env();
        // 3 pages per block, enough items for several blocks plus a partial one.
        let data = items((ITEMS_PER_PAGE as u32) * 7 + 13);
        let s = ItemStream::from_items_with_block(&mut env, &data, 3).unwrap();
        assert_eq!(s.len() as usize, data.len());
        assert_eq!(s.read_all(&mut env).unwrap(), data);
    }

    #[test]
    fn empty_stream_is_valid() {
        let mut env = env();
        let s = ItemStream::from_items(&mut env, &[]).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.pages(), 0);
        assert_eq!(s.read_all(&mut env).unwrap(), Vec::new());
    }

    #[test]
    fn page_count_matches_item_capacity() {
        let mut env = env();
        let one_page = items(ITEMS_PER_PAGE as u32);
        let s = ItemStream::from_items_with_block(&mut env, &one_page, 4).unwrap();
        assert_eq!(s.pages(), 1);
        let s2 = ItemStream::from_items_with_block(&mut env, &items(ITEMS_PER_PAGE as u32 + 1), 4)
            .unwrap();
        assert_eq!(s2.pages(), 2);
        assert_eq!(s.data_bytes(), (ITEMS_PER_PAGE * ITEM_BYTES) as u64);
    }

    #[test]
    fn writing_and_reading_is_sequential_io() {
        let mut env = env();
        let data = items((ITEMS_PER_PAGE as u32) * 20);
        let m = env.begin();
        let s = ItemStream::from_items_with_block(&mut env, &data, 4).unwrap();
        let _ = s.read_all(&mut env).unwrap();
        let (io, _) = env.since(&m);
        // The very first write may be random; everything else must be
        // sequential because blocks are allocated and visited in order.
        assert!(io.rand_write_ops <= 1, "writes: {io:?}");
        assert!(io.rand_read_ops <= 1, "reads: {io:?}");
        assert!(io.seq_write_ops >= 4);
        assert!(io.seq_read_ops >= 4);
    }

    #[test]
    fn reader_from_skips_whole_blocks_without_reading_them() {
        let mut env = env();
        // 5 blocks of 2 pages each plus a partial tail.
        let data = items((ITEMS_PER_PAGE as u32) * 10 + 7);
        let s = ItemStream::from_items_with_block(&mut env, &data, 2).unwrap();
        let items_per_block = 2 * ITEMS_PER_PAGE as u64;
        for start in [
            0u64,
            1,
            items_per_block - 1,
            items_per_block,
            items_per_block * 3 + 17,
            s.len() - 1,
            s.len(),
            s.len() + 5,
        ] {
            let m = env.begin();
            let mut r = s.reader_from(start);
            let mut got = Vec::new();
            while let Some(it) = r.next(&mut env).unwrap() {
                got.push(it);
            }
            let (io, _) = env.since(&m);
            let expected_start = start.min(s.len()) as usize;
            assert_eq!(got, data[expected_start..], "start {start}");
            // Only the blocks from the starting one onward are read.
            let blocks_needed = if expected_start as u64 >= s.len() {
                0
            } else {
                5 + 1 - expected_start as u64 / items_per_block
            };
            assert!(
                io.pages_read <= blocks_needed * 2,
                "start {start}: read {} pages for {blocks_needed} blocks",
                io.pages_read
            );
        }
    }

    #[test]
    fn descriptor_roundtrip_preserves_the_stream() {
        let mut env = env();
        let data = items((ITEMS_PER_PAGE as u32) * 5 + 3);
        let s = ItemStream::from_items_with_block(&mut env, &data, 2).unwrap();
        let mut blob = s.encode();
        blob.extend_from_slice(b"trailing directory bytes");
        let (back, consumed) = ItemStream::decode(&blob).unwrap();
        assert_eq!(consumed, s.encode().len());
        assert_eq!(back.len(), s.len());
        assert_eq!(back.pages(), s.pages());
        assert_eq!(back.read_all(&mut env).unwrap(), data);
        // Truncated descriptors are rejected.
        assert!(ItemStream::decode(&blob[..10]).is_err());
    }

    #[test]
    fn reader_peek_does_not_consume() {
        let mut env = env();
        let data = items(5);
        let s = ItemStream::from_items(&mut env, &data).unwrap();
        let mut r = s.reader();
        assert_eq!(r.peek(&mut env).unwrap(), Some(data[0]));
        assert_eq!(r.peek(&mut env).unwrap(), Some(data[0]));
        assert_eq!(r.next(&mut env).unwrap(), Some(data[0]));
        assert_eq!(r.next(&mut env).unwrap(), Some(data[1]));
        assert_eq!(r.items_delivered(), 2);
    }

    #[test]
    fn push_after_finish_is_rejected() {
        let mut env = env();
        let w = ItemStreamWriter::with_default_block(&mut env);
        let _s = w.finish(&mut env).unwrap();
        // A fresh writer still works; a finished one cannot be reused because
        // finish() consumes it — verify the error path via a manual flag by
        // constructing the scenario through extend on a new writer instead.
        let mut w2 = ItemStreamWriter::new(&mut env, 2);
        w2.extend(&mut env, &items(3)).unwrap();
        let s2 = w2.finish(&mut env).unwrap();
        assert_eq!(s2.len(), 3);
    }

    #[test]
    fn interleaved_writers_still_roundtrip() {
        // Two streams written in alternation: extents interleave on the device
        // (more random I/O) but the data must still round-trip correctly.
        let mut env = env();
        let mut w1 = ItemStreamWriter::new(&mut env, 1);
        let mut w2 = ItemStreamWriter::new(&mut env, 1);
        let d1 = items(ITEMS_PER_PAGE as u32 * 3);
        let d2: Vec<Item> = items(ITEMS_PER_PAGE as u32 * 3)
            .into_iter()
            .map(|mut it| {
                it.id += 10_000;
                it
            })
            .collect();
        for i in 0..d1.len() {
            w1.push(&mut env, d1[i]).unwrap();
            w2.push(&mut env, d2[i]).unwrap();
        }
        let s1 = w1.finish(&mut env).unwrap();
        let s2 = w2.finish(&mut env).unwrap();
        assert_eq!(s1.read_all(&mut env).unwrap(), d1);
        assert_eq!(s2.read_all(&mut env).unwrap(), d2);
    }
}
