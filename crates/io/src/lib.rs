//! Simulated external-memory substrate.
//!
//! The paper's entire evaluation revolves around the behaviour of disk I/O:
//! how many pages each join algorithm requests, whether those requests are
//! *sequential* or *random*, and how the answer interacts with the relative
//! CPU/disk performance of three 1999-era machines (Table 1). None of that
//! hardware is available to a reproduction, so this crate builds the closest
//! synthetic equivalent:
//!
//! * [`device::BlockDevice`] — an in-memory "disk" of 8 KiB pages that records
//!   every read and write operation and classifies it as sequential or random
//!   based on the position of the previous access.
//! * [`stats::IoStats`] / [`stats::CpuCounter`] — deterministic operation
//!   counters which replace `getrusage`/`gettimeofday` measurements.
//! * [`machine::MachineConfig`] — the three hardware platforms of Table 1
//!   expressed as a cost model (CPU clock, average random-access latency,
//!   peak sequential transfer rate).
//! * [`cost::CostModel`] — converts the recorded counters into the two time
//!   measures used in the paper: the *estimated* cost (every page request
//!   charged the average random read time, Figure 2(a)–(c)) and the
//!   *observed* cost (sequential and random accesses charged differently,
//!   Figure 2(d)–(f) and Figure 3).
//! * [`fault::FaultPlan`] — seeded, deterministic fault injection (transient
//!   device errors, torn multi-page writes, injected panics) installed on a
//!   device for chaos testing; zero-cost when absent.
//! * [`buffer::LruBufferPool`] — the LRU page cache used by the ST join.
//! * [`gauge::MemoryGauge`] — the memory governor: every allocation-heavy
//!   structure registers its bytes, making the internal-memory limit a hard,
//!   measured invariant instead of an advisory sizing hint.
//! * [`stream::ItemStream`] — sequential record streams (the TPIE-style
//!   stream abstraction used by SSSJ and PBSM), with a configurable logical
//!   block size.
//! * [`extsort`] — external multiway mergesort over item streams, used by
//!   SSSJ's preprocessing and by R-tree bulk loading.
//! * [`sim::SimEnv`] — bundles a device, a machine model and the CPU counter
//!   into the single environment value the join algorithms operate on.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod buffer;
pub mod cost;
pub mod device;
pub mod error;
pub mod extsort;
pub mod fault;
pub mod gauge;
pub mod machine;
pub mod page;
pub mod sim;
pub mod stats;
pub mod stream;

pub use buffer::LruBufferPool;
pub use cost::{CostBreakdown, CostModel};
pub use device::BlockDevice;
pub use error::{IoSimError, Result};
pub use fault::{FaultConfig, FaultPlan, FaultStats};
pub use gauge::{MemoryGauge, MemoryReservation};
pub use machine::MachineConfig;
pub use page::{Page, PageId, PAGE_SIZE};
pub use sim::{ObsPhase, SimEnv};
pub use stats::{CpuCounter, CpuOp, IoStats};
pub use stream::{ItemStream, ItemStreamReader, ItemStreamWriter, ItemsView};
